//! `wlz`: a tiny, deterministic LZSS codec for the sweep store's binary
//! segment format (`docs/store-format.md` § "Compression framing").
//!
//! The store needs a codec that is **offline** (no crates.io access),
//! **deterministic** (the same input bytes always compress to the same
//! output bytes, on every machine — binary store files are byte-compared
//! in CI), and **honest about failure** (decompression of malformed
//! input returns `None`, never garbage). Ratio matters less than those
//! three properties, but the store's canonical text payloads compress
//! well anyway: structural repeats (field names, separators) fall to
//! this ~150-line greedy LZSS, and the high-entropy half — 16-digit
//! lowercase-hex float encodings — halves under the [`hex_pack`]
//! transform applied before it (real series stores land around 2×
//! overall; see PERF.md).
//!
//! # Token stream
//!
//! Compressed data is a sequence of *groups*: one control byte followed
//! by up to 8 tokens, one per control bit, **least-significant bit
//! first**. A clear bit (0) is a literal token (1 raw byte); a set bit
//! (1) is a match token (3 bytes): a little-endian `u16` *distance*
//! (1-based, counted back from the current output position, ≤
//! [`WINDOW`]) followed by one *length* byte encoding match length −
//! [`MIN_MATCH`] (so lengths span 4..=259). The final group may be
//! partial; trailing unused control bits must be zero. An empty input
//! compresses to an empty output.
//!
//! Matches may overlap their own output (distance < length copies
//! RLE-style), which is what makes the codec double as the "RLE shim"
//! for long runs.
//!
//! # Determinism
//!
//! The compressor is single-strategy greedy: at each position it
//! consults a 4-byte-prefix hash table that remembers only the *most
//! recent* occurrence, takes the match there if it is at least
//! [`MIN_MATCH`] long, and never searches further. No heuristics depend
//! on timing, allocation addresses, or platform word size, so output
//! bytes are a pure function of input bytes — pinned by
//! `compress_is_deterministic`.
//!
//! ```
//! let data = b"abcabcabcabcabcabc-the-quick-brown-fox".repeat(20);
//! let packed = wlz::compress(&data);
//! assert!(packed.len() < data.len() / 4);
//! assert_eq!(wlz::decompress(&packed, data.len()).unwrap(), data);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Maximum match distance: how far back a match token may reach — the
/// largest value a 1-based `u16` distance can carry (65536 would wrap
/// to 0 in the token, which decoders rightly reject).
pub const WINDOW: usize = u16::MAX as usize;

/// Minimum match length worth a 3-byte token (shorter repeats are
/// emitted as literals).
pub const MIN_MATCH: usize = 4;

/// Maximum match length one token can encode (`MIN_MATCH + 255`).
pub const MAX_MATCH: usize = MIN_MATCH + 255;

const HASH_BITS: u32 = 15;

/// Hashes the 4-byte prefix at `input[i..]` into the match table slot.
fn hash4(input: &[u8], i: usize) -> usize {
    let quad = u32::from_le_bytes([input[i], input[i + 1], input[i + 2], input[i + 3]]);
    (quad.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Compresses `input` into the token stream described in the module
/// docs. Deterministic: equal inputs yield equal outputs on every
/// machine. The output of an empty input is empty.
#[must_use]
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    // Most-recent occurrence of each 4-byte-prefix hash. usize::MAX =
    // empty slot (a real position can never reach it).
    let mut table = vec![usize::MAX; 1 << HASH_BITS];

    let mut ctrl_pos = usize::MAX; // index of the current control byte in `out`
    let mut ctrl_bit = 8u8; // 8 = control byte exhausted, start a new one
    let mut push_token = |out: &mut Vec<u8>, is_match: bool, bytes: &[u8]| {
        if ctrl_bit == 8 {
            ctrl_pos = out.len();
            out.push(0);
            ctrl_bit = 0;
        }
        if is_match {
            out[ctrl_pos] |= 1 << ctrl_bit;
        }
        ctrl_bit += 1;
        out.extend_from_slice(bytes);
    };

    let mut i = 0;
    while i < input.len() {
        let mut emitted_match = false;
        if i + MIN_MATCH <= input.len() {
            let slot = hash4(input, i);
            let candidate = table[slot];
            table[slot] = i;
            if candidate != usize::MAX && i - candidate <= WINDOW {
                let limit = (input.len() - i).min(MAX_MATCH);
                let mut len = 0;
                while len < limit && input[candidate + len] == input[i + len] {
                    len += 1;
                }
                if len >= MIN_MATCH {
                    let dist = (i - candidate) as u16; // 1-based, ≤ WINDOW
                    let mut tok = [0u8; 3];
                    tok[..2].copy_from_slice(&dist.to_le_bytes());
                    tok[2] = (len - MIN_MATCH) as u8;
                    push_token(&mut out, true, &tok);
                    // Index the covered positions so later matches can
                    // refer into them (skip the last 3: no full quad).
                    let end = (i + len).min(input.len().saturating_sub(3));
                    for j in (i + 1)..end {
                        table[hash4(input, j)] = j;
                    }
                    i += len;
                    emitted_match = true;
                }
            }
        }
        if !emitted_match {
            push_token(&mut out, false, &input[i..=i]);
            i += 1;
        }
    }
    out
}

/// Decompresses a [`compress`]ed stream back into exactly `out_len`
/// bytes.
///
/// Returns `None` on any malformation: a token running past the input,
/// a match reaching before the start of the output, output overshooting
/// `out_len`, input left over after `out_len` bytes were produced, or a
/// nonzero unused control bit. A `None` is a *detected* corruption —
/// callers (the segment loader) treat it like a failed checksum and
/// skip the record.
#[must_use]
pub fn decompress(data: &[u8], out_len: usize) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(out_len);
    let mut pos = 0;
    while out.len() < out_len {
        let ctrl = *data.get(pos)?;
        pos += 1;
        for bit in 0..8 {
            if out.len() == out_len {
                // Unused trailing control bits must be zero.
                if ctrl >> bit != 0 {
                    return None;
                }
                break;
            }
            if ctrl & (1 << bit) == 0 {
                out.push(*data.get(pos)?);
                pos += 1;
            } else {
                let lo = *data.get(pos)?;
                let hi = *data.get(pos + 1)?;
                let len = MIN_MATCH + usize::from(*data.get(pos + 2)?);
                pos += 3;
                let dist = usize::from(u16::from_le_bytes([lo, hi]));
                if dist == 0 || dist > out.len() || out.len() + len > out_len {
                    return None;
                }
                // Byte-by-byte so overlapping (RLE-style) matches work.
                let start = out.len() - dist;
                for j in 0..len {
                    let b = out[start + j];
                    out.push(b);
                }
            }
        }
    }
    if pos != data.len() {
        return None;
    }
    Some(out)
}

// ---------------------------------------------------------------------------
// Hex-run packing: the pre-LZ transform for canonical store text.
// ---------------------------------------------------------------------------

/// Minimum run of hex characters worth packing (shorter runs stay
/// literal — a packed chunk costs one control byte).
pub const HEX_MIN_RUN: usize = 4;

fn is_hex(b: u8) -> bool {
    b.is_ascii_digit() || (b'a'..=b'f').contains(&b)
}

fn nibble(b: u8) -> u8 {
    if b.is_ascii_digit() {
        b - b'0'
    } else {
        b - b'a' + 10
    }
}

fn hex_char(n: u8) -> u8 {
    if n < 10 {
        n + b'0'
    } else {
        n - 10 + b'a'
    }
}

/// Packs runs of lowercase hex characters at 2 chars/byte — the
/// bijective transform that halves the store's canonical float
/// encodings (`x3ff0000000000000`) *before* [`compress`] looks for
/// structural repeats; generic LZ cannot shrink hex text below its
/// 4-bits-per-char entropy, but nibble packing can.
///
/// Output is a chunk stream. Each chunk is one control byte `c`:
/// `0x00..=0x7F` — a literal run of `c + 1` raw bytes follows;
/// `0x80..=0xFF` — a hex run of `c - 0x7F` packed bytes follows, each
/// encoding two lowercase hex characters, high nibble first. The
/// encoder is deterministic: it packs every maximal even-length run of
/// ≥ [`HEX_MIN_RUN`] hex characters (an odd trailing character joins
/// the following literal) and emits everything else as literals.
///
/// ```
/// let canon = b"steady_skew:x3f50624dd2f1a9fc,max_skew:x3f50624dd2f1aa01";
/// let packed = wlz::hex_pack(canon);
/// assert!(packed.len() < canon.len());
/// assert_eq!(wlz::hex_unpack(&packed).unwrap(), canon);
/// ```
#[must_use]
pub fn hex_pack(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 8);
    let mut lit_start = 0;
    let mut i = 0;
    let flush_literal = |out: &mut Vec<u8>, from: usize, to: usize| {
        let mut s = from;
        while s < to {
            let n = (to - s).min(128);
            out.push((n - 1) as u8);
            out.extend_from_slice(&input[s..s + n]);
            s += n;
        }
    };
    while i < input.len() {
        let run = input[i..].iter().take_while(|&&b| is_hex(b)).count();
        let even = run & !1;
        if even >= HEX_MIN_RUN {
            flush_literal(&mut out, lit_start, i);
            let mut s = i;
            let end = i + even;
            while s < end {
                let chars = (end - s).min(256);
                out.push(0x7F + (chars / 2) as u8);
                for pair in input[s..s + chars].chunks(2) {
                    out.push((nibble(pair[0]) << 4) | nibble(pair[1]));
                }
                s += chars;
            }
            i += even;
            lit_start = i;
        } else {
            i += run.max(1);
        }
    }
    flush_literal(&mut out, lit_start, input.len());
    out
}

/// Reverses [`hex_pack`]. Returns `None` on malformation (a chunk
/// running past the input).
#[must_use]
pub fn hex_unpack(data: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(data.len() * 2);
    let mut pos = 0;
    while pos < data.len() {
        let ctrl = data[pos];
        pos += 1;
        if ctrl < 0x80 {
            let n = usize::from(ctrl) + 1;
            out.extend_from_slice(data.get(pos..pos + n)?);
            pos += n;
        } else {
            let n = usize::from(ctrl - 0x7F);
            for &b in data.get(pos..pos + n)? {
                out.push(hex_char(b >> 4));
                out.push(hex_char(b & 0x0F));
            }
            pos += n;
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let packed = compress(data);
        assert_eq!(
            decompress(&packed, data.len()).as_deref(),
            Some(data),
            "round trip failed for {} bytes",
            data.len()
        );
    }

    #[test]
    fn roundtrips_edge_shapes() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abc");
        roundtrip(b"aaaa"); // minimal RLE-style overlap
        roundtrip(&[0u8; 10_000]); // long run
        roundtrip(b"abcdefgh"); // nothing compressible
        let mut mixed = Vec::new();
        for i in 0..5_000u32 {
            mixed.extend_from_slice(format!("field:{:08x},", i % 37).as_bytes());
        }
        roundtrip(&mixed);
    }

    #[test]
    fn roundtrips_pseudorandom_bytes() {
        // Xorshift64 noise: near-incompressible input must still survive.
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 56) as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn compresses_canonical_store_text_well() {
        // The shape of real payloads: repeated field names + hex floats.
        let payload = "SweepSeries{round_times:[x3ff0000000000000,x4000000000000000],\
                       round_skews:[x3f50624dd2f1a9fc,x3f40624dd2f1a9fc]}"
            .repeat(64);
        let packed = compress(payload.as_bytes());
        assert!(
            packed.len() * 4 < payload.len(),
            "expected ≥4× on repetitive canonical text, got {} -> {}",
            payload.len(),
            packed.len()
        );
        roundtrip(payload.as_bytes());
    }

    #[test]
    fn match_at_window_boundary_roundtrips() {
        // Regression: a repeat exactly WINDOW+1 bytes back once produced
        // a distance of 65536, which wrapped to 0 in the u16 token and
        // made the stream undecodable. The window must stop at what the
        // token can carry.
        for gap in [WINDOW - 4, WINDOW - 3, WINDOW - 2, WINDOW - 1, WINDOW] {
            let mut data = b"QUAD".to_vec();
            data.extend(std::iter::repeat_n(b'.', gap));
            data.extend_from_slice(b"QUAD");
            roundtrip(&data);
        }
    }

    #[test]
    fn compress_is_deterministic() {
        let data = b"determinism is the whole point".repeat(100);
        assert_eq!(compress(&data), compress(&data));
    }

    #[test]
    fn decompress_rejects_malformed() {
        let data = b"hello hello hello hello hello";
        let packed = compress(data);
        // Wrong expected length (both directions).
        assert!(decompress(&packed, data.len() + 1).is_none());
        assert!(decompress(&packed, data.len().saturating_sub(1)).is_none());
        // Truncated stream.
        assert!(decompress(&packed[..packed.len() - 1], data.len()).is_none());
        // Trailing garbage.
        let mut padded = packed.clone();
        padded.push(0xFF);
        assert!(decompress(&padded, data.len()).is_none());
        // A match reaching before the start of the output: control byte
        // says "match", distance 9999 with nothing yet produced.
        assert!(decompress(&[0b0000_0001, 0x0F, 0x27, 0x00], 10).is_none());
        // Zero distance is never legal.
        assert!(decompress(&[0b0000_0001, 0x00, 0x00, 0x00], 10).is_none());
    }

    #[test]
    fn hex_pack_roundtrips_and_halves_hex() {
        let cases: &[&[u8]] = &[
            b"",
            b"a",
            b"abc",
            b"xyz no hex at all",
            b"deadbeef",
            b"deadbee",                            // odd-length run
            b"x3ff0000000000000",                  // a canonical float
            b"prefix x3f50624dd2f1a9fc, suffix",   // mixed
            &[0u8; 300],                           // long literal (chunked)
            b"0123456789abcdef".repeat(40).leak(), // long hex (chunked)
        ];
        for &case in cases {
            let packed = hex_pack(case);
            assert_eq!(
                hex_unpack(&packed).as_deref(),
                Some(case),
                "hex_pack round trip failed for {case:?}"
            );
        }
        // A canonical float string: 17 chars -> 1 literal ctrl + 'x' +
        // 1 hex ctrl + 8 packed bytes = 11.
        assert_eq!(hex_pack(b"x3ff0000000000000").len(), 11);
        // Uppercase hex is NOT packed (the canonical grammar is
        // lowercase-only).
        assert_eq!(hex_pack(b"DEADBEEF").len(), 9);
    }

    #[test]
    fn hex_unpack_rejects_truncation() {
        let packed = hex_pack(b"x3ff0000000000000,x4000000000000000");
        assert!(hex_unpack(&packed[..packed.len() - 1]).is_none());
        assert!(hex_unpack(&[0x85]).is_none(), "hex chunk with no bytes");
        assert!(hex_unpack(&[0x05, b'a']).is_none(), "short literal chunk");
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert!(compress(b"").is_empty());
        assert_eq!(decompress(b"", 0).as_deref(), Some(&[][..]));
        assert!(decompress(b"\0", 0).is_none(), "trailing bytes rejected");
    }
}
