//! Offline, API-compatible subset of [`crossbeam`]'s channels, backed by
//! `std::sync::mpsc`. Only what the threaded runtime uses: unbounded
//! channels, `send`, `recv`, `recv_timeout`, and `recv_deadline`.
//!
//! [`crossbeam`]: https://crates.io/crates/crossbeam

/// Multi-producer channels (subset of `crossbeam_channel`).
pub mod channel {
    use std::sync::mpsc;
    use std::time::{Duration, Instant};

    /// Error returned by [`Receiver::recv_timeout`] / [`Receiver::recv_deadline`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived before the timeout.
        Timeout,
        /// All senders disconnected.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// The sending half (clonable).
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a value; errors only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Waits up to `timeout` for a value.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Waits until `deadline` for a value.
        pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
            self.recv_timeout(deadline.saturating_duration_since(Instant::now()))
        }

        /// Receives without blocking, if a value is ready.
        pub fn try_recv(&self) -> Result<T, RecvTimeoutError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => RecvTimeoutError::Timeout,
                mpsc::TryRecvError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// Creates an unbounded channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}
