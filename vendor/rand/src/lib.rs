//! Offline, API-compatible subset of the [`rand`] crate.
//!
//! This workspace builds in environments with no access to crates.io, so
//! the handful of `rand` APIs the simulator uses are reimplemented here:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`] and [`Rng::gen_bool`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — small, fast,
//! and of high statistical quality. It is **not** the same stream as the
//! upstream `StdRng` (ChaCha12); everything in this workspace only relies
//! on determinism-given-seed, never on a specific stream.
//!
//! [`rand`]: https://crates.io/crates/rand

use std::ops::{Range, RangeInclusive};

/// Random number generators.
pub mod rngs {
    /// The standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    #[inline]
    fn next(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The core of a random number generator: a stream of `u64`s.
pub trait RngCore {
    /// The next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// The next raw 32-bit output.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Standard xoshiro seeding recipe: expand via SplitMix64.
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

/// Types that can be sampled uniformly from a generator (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

/// Ranges that `gen_range` can sample from.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty f64 range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferable type (`rng.gen::<u64>()`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from a range (`rng.gen_range(0.0..1.0)`).
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(-2.0..=3.0);
            assert!((-2.0..=3.0).contains(&v));
            let w = r.gen_range(10.0..11.0);
            assert!((10.0..11.0).contains(&w));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_cover() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(0u32..10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit");
    }

    #[test]
    fn unit_f64_looks_uniform() {
        let mut r = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_respects_p() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
