//! The deserialization half — a compile-only stub.
//!
//! `#[derive(Deserialize)]` compiles against these traits so config types
//! keep both halves of the serde contract in their signatures, but the
//! generated impls return an error if invoked: this offline shim has no
//! deserializer implementation (and the workspace never deserializes).

use std::fmt::Display;

/// Trait for deserialization errors.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from a message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data format that can deserialize serde data structures.
///
/// This stub carries only the associated error type; no driving methods.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;
}

/// A data structure that can be deserialized.
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value. The derived impls in this offline shim always
    /// return an error.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}
