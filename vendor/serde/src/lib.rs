//! Offline, API-compatible subset of [`serde`].
//!
//! Provides the `Serialize`/`Serializer` half of serde's data model — enough
//! for derived impls and hand-written serializers (see the workspace's
//! `tiny_json` test encoder) — plus a stub `Deserialize` half so that
//! `#[derive(Deserialize)]` compiles. Deserialization is not implemented;
//! calling it returns an error. Nothing in this workspace deserializes at
//! runtime today — the derives exist so experiment configs keep a stable,
//! pinned serialization shape (test `serde_roundtrip.rs`).
//!
//! [`serde`]: https://serde.rs

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};
pub use serde_derive::{Deserialize, Serialize};
