//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline serde shim — no `syn`/`quote`, just a small token walker.
//!
//! Supported shapes (everything this workspace derives on):
//!
//! * unit structs, newtype/tuple structs, named-field structs;
//! * enums with unit, newtype, tuple, and struct variants;
//! * arbitrary attributes/doc comments on items, fields, and variants
//!   (skipped — `#[serde(...)]` customization is not supported).
//!
//! Generic types are intentionally rejected with a clear error: nothing in
//! the workspace derives serde on a generic type, and supporting bounds
//! without `syn` is not worth the complexity.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Kind {
    UnitStruct,
    TupleStruct(usize),
    NamedStruct(Vec<String>),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Parsed {
    name: String,
    kind: Kind,
}

fn parse_item(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;

    // Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic types are not supported (type `{name}`)");
        }
    }

    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(tuple_arity(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(named_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("serde_derive shim: unexpected struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(variants(g.stream()))
            }
            other => panic!("serde_derive shim: unexpected enum body {other:?}"),
        },
        kw => panic!("serde_derive shim: cannot derive on `{kw}` items"),
    };

    Parsed { name, kind }
}

/// Counts the top-level (angle-bracket-aware) comma-separated segments of a
/// tuple-struct body.
fn tuple_arity(body: TokenStream) -> usize {
    let mut arity = 0usize;
    let mut saw_any = false;
    let mut angle = 0i32;
    for t in body {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                arity += 1;
                saw_any = false;
                continue;
            }
            _ => {}
        }
        saw_any = true;
    }
    if saw_any {
        arity += 1;
    }
    arity
}

/// Extracts the field names of a named-struct body.
fn named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        // Skip attributes and visibility.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
                continue;
            }
            _ => {}
        }
        // Field name.
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected field name, got {other:?}"),
        };
        fields.push(name);
        i += 1;
        // Expect ':' then consume the type up to the next top-level comma.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive shim: expected `:` after field, got {other:?}"),
        }
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Extracts the variants of an enum body.
fn variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {
                i += 1;
                continue;
            }
            _ => {}
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected variant name, got {other:?}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(tuple_arity(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(named_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        // Skip a discriminant (`= expr`) if present, up to the next comma.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '=' {
                while i < tokens.len() {
                    if let TokenTree::Punct(p) = &tokens[i] {
                        if p.as_char() == ',' {
                            break;
                        }
                    }
                    i += 1;
                }
            }
        }
        out.push(Variant { name, shape });
    }
    out
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let Parsed { name, kind } = parse_item(input);
    let body = match &kind {
        Kind::UnitStruct => format!("__serializer.serialize_unit_struct(\"{name}\")"),
        Kind::TupleStruct(1) => {
            format!("__serializer.serialize_newtype_struct(\"{name}\", &self.0)")
        }
        Kind::TupleStruct(arity) => {
            let mut s =
                String::from("{ use ::serde::ser::SerializeTupleStruct as _; let mut __st = ");
            s.push_str(&format!(
                "__serializer.serialize_tuple_struct(\"{name}\", {arity}usize)?;"
            ));
            for idx in 0..*arity {
                s.push_str(&format!("__st.serialize_field(&self.{idx})?;"));
            }
            s.push_str("__st.end() }");
            s
        }
        Kind::NamedStruct(fields) => {
            let mut s = String::from("{ use ::serde::ser::SerializeStruct as _; let mut __st = ");
            s.push_str(&format!(
                "__serializer.serialize_struct(\"{name}\", {}usize)?;",
                fields.len()
            ));
            for f in fields {
                s.push_str(&format!("__st.serialize_field(\"{f}\", &self.{f})?;"));
            }
            s.push_str("__st.end() }");
            s
        }
        Kind::Enum(vars) => {
            let mut s = String::from("match self {");
            for (vi, v) in vars.iter().enumerate() {
                match &v.shape {
                    Shape::Unit => {
                        s.push_str(&format!(
                            "{name}::{v} => __serializer.serialize_unit_variant(\"{name}\", {vi}u32, \"{v}\"),",
                            v = v.name
                        ));
                    }
                    Shape::Tuple(1) => {
                        s.push_str(&format!(
                            "{name}::{v}(__f0) => __serializer.serialize_newtype_variant(\"{name}\", {vi}u32, \"{v}\", __f0),",
                            v = v.name
                        ));
                    }
                    Shape::Tuple(arity) => {
                        let binders: Vec<String> = (0..*arity).map(|k| format!("__f{k}")).collect();
                        s.push_str(&format!(
                            "{name}::{v}({binds}) => {{ use ::serde::ser::SerializeTupleVariant as _; let mut __st = __serializer.serialize_tuple_variant(\"{name}\", {vi}u32, \"{v}\", {arity}usize)?;",
                            v = v.name,
                            binds = binders.join(", ")
                        ));
                        for b in &binders {
                            s.push_str(&format!("__st.serialize_field({b})?;"));
                        }
                        s.push_str("__st.end() },");
                    }
                    Shape::Named(fields) => {
                        s.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => {{ use ::serde::ser::SerializeStructVariant as _; let mut __st = __serializer.serialize_struct_variant(\"{name}\", {vi}u32, \"{v}\", {len}usize)?;",
                            v = v.name,
                            binds = fields.join(", "),
                            len = fields.len()
                        ));
                        for f in fields {
                            s.push_str(&format!("__st.serialize_field(\"{f}\", {f})?;"));
                        }
                        s.push_str("__st.end() },");
                    }
                }
            }
            s.push('}');
            s
        }
    };
    let out = format!(
        "#[automatically_derived]\n\
         impl ::serde::ser::Serialize for {name} {{\n\
             fn serialize<__S: ::serde::ser::Serializer>(&self, __serializer: __S)\n\
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    );
    out.parse()
        .expect("serde_derive shim: generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` (compile-only stub: errors if invoked).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let Parsed { name, .. } = parse_item(input);
    let out = format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: ::serde::de::Deserializer<'de>>(_deserializer: __D)\n\
                 -> ::core::result::Result<Self, __D::Error> {{\n\
                 ::core::result::Result::Err(<__D::Error as ::serde::de::Error>::custom(\n\
                     \"offline serde shim: Deserialize is a compile-only stub\"))\n\
             }}\n\
         }}"
    );
    out.parse()
        .expect("serde_derive shim: generated invalid Deserialize impl")
}
