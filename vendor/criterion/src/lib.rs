//! Offline, API-compatible subset of [`criterion`].
//!
//! Implements the benchmarking surface this workspace uses —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], [`Throughput`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a simple
//! wall-clock measurement loop and plain-text reporting instead of
//! statistics + HTML. Good enough to track relative performance across
//! commits in an offline environment.
//!
//! [`criterion`]: https://crates.io/crates/criterion

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box` too.
pub use std::hint::black_box;

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(300);
/// Hard cap on iterations per benchmark.
const MAX_ITERS: u64 = 10_000;

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            throughput: None,
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(name, None);
        self
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Units-of-work metadata for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration units of work (printed as a rate).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; this shim sizes runs by wall time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks a closure against one input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.label), self.throughput);
        self
    }

    /// Benchmarks a closure with no input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: BenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.label), self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; runs and times the workload.
#[derive(Debug, Default)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up call, also used to size the timed run.
        let warm = Instant::now();
        black_box(routine());
        let once = warm.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET.as_nanos() / once.as_nanos()).clamp(1, MAX_ITERS as u128) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = iters;
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        if self.iters == 0 {
            println!("  {label:<40} (no measurement)");
            return;
        }
        let per = self.total.as_secs_f64() / self.iters as f64;
        let time = if per >= 1.0 {
            format!("{per:.3} s")
        } else if per >= 1e-3 {
            format!("{:.3} ms", per * 1e3)
        } else if per >= 1e-6 {
            format!("{:.3} us", per * 1e6)
        } else {
            format!("{:.1} ns", per * 1e9)
        };
        let rate = match throughput {
            Some(Throughput::Elements(n)) => {
                let eps = n as f64 / per;
                if eps >= 1e6 {
                    format!("  ({:.2} Melem/s)", eps / 1e6)
                } else if eps >= 1e3 {
                    format!("  ({:.2} Kelem/s)", eps / 1e3)
                } else {
                    format!("  ({eps:.1} elem/s)")
                }
            }
            Some(Throughput::Bytes(n)) => {
                format!("  ({:.2} MiB/s)", n as f64 / per / (1024.0 * 1024.0))
            }
            None => String::new(),
        };
        println!(
            "  {label:<40} time: {time}/iter  [{} iters]{rate}",
            self.iters
        );
    }
}

/// Declares a group function that runs each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
