//! Offline, API-compatible subset of [`proptest`].
//!
//! Covers the surface the workspace's property suite uses: range
//! strategies, [`strategy::Just`], `prop_map`, [`prop_oneof!`],
//! [`option::of`], [`bool::ANY`], [`ProptestConfig`], and the
//! [`proptest!`] macro with `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-case seed (no persisted failure file), and there is **no
//! shrinking** — a failing case panics with the standard assert message.
//!
//! [`proptest`]: https://proptest-rs.github.io/proptest/

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of randomized cases to run per test.
    pub cases: u32,
    /// Accepted for API compatibility; unused (this shim never shrinks).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Deterministic per-case RNG used by the [`proptest!`] macro.
pub mod test_runner {
    pub use rand::rngs::StdRng as TestRng;
    use rand::SeedableRng;

    /// Builds the RNG for one case of one property (deterministic).
    #[must_use]
    pub fn rng_for_case(test_name: &str, case: u32) -> TestRng {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seed_from_u64(h ^ (u64::from(case) << 32) ^ u64::from(case))
    }
}

/// Strategies: composable random-value generators.
pub mod strategy {
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// A source of random values for one property argument.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by the `prop_oneof!` macro).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe form of [`Strategy`].
    trait DynStrategy {
        type Value;
        fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<Value = V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.dyn_generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among several strategies (see the `prop_oneof!` macro).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds from the (non-empty) list of options.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    /// A strategy defined by a generation closure (used by `prop_compose!`).
    pub struct ComposeFn<F> {
        f: F,
    }

    impl<V, F: Fn(&mut TestRng) -> V> ComposeFn<F> {
        /// Wraps the closure.
        pub fn new(f: F) -> Self {
            Self { f }
        }
    }

    impl<V, F: Fn(&mut TestRng) -> V> Strategy for ComposeFn<F> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (self.f)(rng)
        }
    }

    impl Strategy for Range<char> {
        type Value = char;
        fn generate(&self, rng: &mut TestRng) -> char {
            let lo = self.start as u32;
            let hi = self.end as u32;
            char::from_u32(rng.gen_range(lo..hi)).unwrap_or(self.start)
        }
    }
}

/// Strategies over collections.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Accepted sizes for [`vec()`]: an exact length or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec`s of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Strategies over `Option`.
pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// `Some(inner)` three times out of four, `None` otherwise.
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.75) {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }

    /// Wraps a strategy to produce `Option`s.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// Strategies over `bool`.
pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// The strategy type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    /// Either boolean, uniformly.
    pub const ANY: Any = Any;
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts inside a property (no shrinking in this shim; plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each runs `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                for __case in 0..__config.cases {
                    let mut __rng =
                        $crate::test_runner::rng_for_case(stringify!($name), __case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Declares a function returning a composed strategy.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($fnarg:ident: $fnty:ty),* $(,)?)
            ($($arg:pat_param in $strat:expr),+ $(,)?)
            -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($fnarg: $fnty),*)
            -> impl $crate::strategy::Strategy<Value = $ret>
        {
            $crate::strategy::ComposeFn::new(
                move |__rng: &mut $crate::test_runner::TestRng| {
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    $body
                },
            )
        }
    };
}
