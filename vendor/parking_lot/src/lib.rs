//! Offline, API-compatible subset of [`parking_lot`]: a `Mutex` whose
//! `lock()` returns the guard directly (no `Result`), implemented over
//! `std::sync::Mutex` with poison recovery.
//!
//! [`parking_lot`]: https://crates.io/crates/parking_lot

use std::sync::{self, PoisonError};

/// A mutual-exclusion primitive (panic-safe: poisoning is swallowed).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}
