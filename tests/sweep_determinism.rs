//! The SweepRunner contract: a 64-scenario grid produces identical
//! results at any thread count, and grid seeds are stable.

use welch_lynch::core::Params;
use welch_lynch::harness::{derive_seed, DelayKind, ScenarioSpec, SweepRunner};
use welch_lynch::harness::{FaultKind, Maintenance};
use welch_lynch::sim::ProcessId;
use welch_lynch::time::RealTime;

/// A 64-point grid mixing seeds, delay models, and fault presence —
/// the shape a scaling experiment actually sweeps.
fn grid64() -> Vec<ScenarioSpec> {
    let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap();
    let delays = [
        DelayKind::Constant,
        DelayKind::Uniform,
        DelayKind::AdversarialSplit,
    ];
    (0..64u64)
        .map(|i| {
            let mut spec = ScenarioSpec::new(params.clone())
                .seed(derive_seed(0xC10C_C10C, i))
                .delay(delays[(i % 3) as usize])
                .t_end(RealTime::from_secs(2.0));
            if i % 4 == 0 {
                spec = spec.fault(ProcessId(3), FaultKind::Silent);
            }
            spec
        })
        .collect()
}

#[test]
fn sweep_64_grid_identical_at_every_thread_count() {
    let baseline = SweepRunner::serial().sweep::<Maintenance>(grid64());
    assert_eq!(baseline.len(), 64);
    for threads in [2usize, 4, 8] {
        let wide = SweepRunner::with_threads(threads).sweep::<Maintenance>(grid64());
        assert_eq!(wide.len(), baseline.len());
        for (a, b) in baseline.iter().zip(&wide) {
            assert_eq!(a.index, b.index, "order must match the input grid");
            assert_eq!(a.seed, b.seed);
            assert_eq!(
                a.stats, b.stats,
                "threads={threads}: simulator counters differ"
            );
            assert!(
                a.steady_skew == b.steady_skew && a.max_skew == b.max_skew,
                "threads={threads}: measured skews differ at grid point {}",
                a.index
            );
            assert_eq!(a.max_abs_adjustment, b.max_abs_adjustment);
        }
    }
}

#[test]
fn derived_seeds_are_stable_across_runs() {
    // Pinned literals: changing `derive_seed` silently re-seeds every sweep
    // in the repo, so make that an explicit decision by updating these.
    let s: Vec<u64> = (0..4).map(|i| derive_seed(1, i)).collect();
    assert_eq!(
        s,
        vec![
            0x910A_2DEC_8902_5CC1,
            0x6078_BF18_0FF8_632F,
            0x09A2_3C3A_0FFE_DFE9,
            0x3FA6_6524_0947_3294,
        ]
    );
    assert_eq!(s.iter().collect::<std::collections::HashSet<_>>().len(), 4);
}
