//! Integration test for the threaded real-time runtime: the same
//! Maintenance automaton that runs under the discrete-event simulator
//! synchronizes real OS threads over the shared medium (§9.3).
//!
//! Uses ~3 seconds of wall time (it is a real-time runtime).

use welch_lynch::analysis::skew::max_skew_at;
use welch_lynch::analysis::ExecutionView;
use welch_lynch::clock::drift::FleetClock;
use welch_lynch::core::{Maintenance, Params};
use welch_lynch::runtime::{Cluster, ClusterConfig};
use welch_lynch::sim::{Automaton, ProcessId};
use welch_lynch::time::{ClockTime, RealTime};

#[test]
fn threaded_cluster_synchronizes_with_stagger() {
    let n = 4;
    // Wall-clock scale: LAN-ish delays, rounds ~0.3s, 3s of runtime.
    let (rho, delta, eps) = (1e-4, 0.040, 0.008);
    let beta = 6.0 * eps;
    let p_round = 2.0 * welch_lynch::core::params::min_p(rho, delta, eps, beta);
    let busy_window = 0.004;
    let sigma = 2.0 * busy_window + beta;
    let params = Params::new(n, 1, rho, delta, eps, beta, p_round)
        .unwrap()
        .with_stagger(sigma)
        .unwrap();

    let config = ClusterConfig {
        n,
        rho,
        delta,
        eps,
        busy_window,
        duration: 3.0,
        seed: 5,
    };
    let starts = vec![ClockTime::from_secs(params.t0); n];
    let outcome = Cluster::run(&config, &starts, |p: ProcessId| {
        Box::new(Maintenance::new(p, params.clone(), 0.0)) as Box<dyn Automaton<Msg = _>>
    });

    // Staggered: no collisions, several rounds of broadcasts on air.
    assert_eq!(
        outcome.collisions, 0,
        "staggered broadcasts must not collide"
    );
    assert!(
        outcome.transmitted >= (n as u64) * 4,
        "expected several rounds of broadcasts, got {}",
        outcome.transmitted
    );
    // Every process kept resynchronizing.
    for (i, h) in outcome.corr.iter().enumerate() {
        assert!(
            h.adjustments().len() >= 3,
            "p{i} adjusted only {} times",
            h.adjustments().len()
        );
    }
    // Skew at the end of the run is bounded. Real-time scheduling jitter
    // (thread wakeups, channel latency) adds to the model's epsilon, so
    // the check is against a generous multiple of gamma rather than gamma
    // itself.
    let clocks: Vec<FleetClock> = outcome
        .clocks
        .iter()
        .map(|c| FleetClock::Linear(c.clone()))
        .collect();
    let view = ExecutionView::new(&clocks, &outcome.corr, vec![false; n]);
    let skew = max_skew_at(&view, RealTime::from_secs(2.9));
    let gamma = welch_lynch::core::theory::gamma(&params);
    assert!(
        skew < 5.0 * gamma,
        "end-of-run skew {skew} vs 5*gamma {}",
        5.0 * gamma
    );
}

#[test]
fn threaded_cluster_collides_without_stagger() {
    let n = 4;
    let (rho, delta, eps) = (1e-4, 0.040, 0.008);
    let beta = 6.0 * eps;
    let p_round = 2.0 * welch_lynch::core::params::min_p(rho, delta, eps, beta);
    let params = Params::new(n, 1, rho, delta, eps, beta, p_round).unwrap();

    let config = ClusterConfig {
        n,
        rho,
        delta,
        eps,
        busy_window: 0.004,
        duration: 1.5,
        seed: 6,
    };
    let starts = vec![ClockTime::from_secs(params.t0); n];
    let outcome = Cluster::run(&config, &starts, |p: ProcessId| {
        Box::new(Maintenance::new(p, params.clone(), 0.0)) as Box<dyn Automaton<Msg = _>>
    });
    // Synchronized broadcasts on a busy medium must collide ("when the
    // system behaves well, it is punished").
    assert!(
        outcome.collisions > 0,
        "expected collisions with sigma = 0, got stats {outcome:?}"
    );
}
