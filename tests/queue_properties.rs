//! Property tests for the pluggable event queue: the Welch–Lynch
//! theorems hold under **any interleaving-legal queue**, not just the
//! FIFO-tie-break heap.
//!
//! §2.3 constrains delivery order only by (1) delivery real time and
//! (2) TIMERs after ordinary messages at the same instant. The `seq`
//! tie-break among same-instant, same-class events is a simulator
//! convention, not a model guarantee — so a queue that permutes those
//! ties arbitrarily is still a legal execution of the model, and
//! Theorem 16 (agreement) and the adjustment bound (Lemma 10) must
//! survive it. [`ShuffledTieQueue`] below does exactly that, with a
//! seeded permutation so failures replay.

mod common;

use common::ShuffledTieQueue;
use proptest::prelude::*;
use welch_lynch::core::Params;
use welch_lynch::harness::{
    assemble_enum_with_queue, assemble_with_queue, run, DelayKind, FaultKind, Maintenance,
    ScenarioSpec,
};
use welch_lynch::sim::ProcessId;
use welch_lynch::time::RealTime;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        .. ProptestConfig::default()
    })]

    /// Agreement (Theorem 16) and the adjustment bound survive arbitrary
    /// legal tie-breaking, across seeds, delay models, and fleet sizes.
    #[test]
    fn prop_agreement_under_any_legal_interleaving(
        seed in 0u64..10_000,
        salt in 1u64..u64::MAX,
        delay_idx in 0usize..3,
        n_idx in 0usize..3,
    ) {
        let (n, f) = [(4, 1), (5, 1), (7, 2)][n_idx];
        let params = Params::auto(n, f, 1e-6, 0.010, 0.001).expect("feasible");
        let t_end = 15.0;
        let delay = [DelayKind::Constant, DelayKind::Uniform, DelayKind::AdversarialSplit][delay_idx];
        let spec = ScenarioSpec::new(params.clone())
            .seed(seed)
            .delay(delay)
            .t_end(RealTime::from_secs(t_end));
        let built = assemble_with_queue::<Maintenance, _>(&spec, ShuffledTieQueue::new(salt));
        let summary = run::run_summary(built, t_end);
        prop_assert!(
            summary.agreement.holds,
            "Theorem 16 violated under shuffled ties: max skew {} > gamma {}",
            summary.agreement.max_skew,
            summary.agreement.gamma,
        );
        prop_assert!(
            summary.adjustments.holds,
            "adjustment bound violated under shuffled ties: {} > {}",
            summary.adjustments.max_abs,
            summary.adjustments.bound,
        );
        prop_assert_eq!(summary.stats.timers_suppressed, 0);
    }

    /// Same spec, different tie permutations: counters that only count
    /// *what* happened (not in which tie order) are permutation-invariant.
    #[test]
    fn prop_event_counts_tie_invariant(
        seed in 0u64..1_000,
        salt_a in 1u64..u64::MAX,
        salt_b in 1u64..u64::MAX,
    ) {
        let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).expect("feasible");
        let spec = ScenarioSpec::new(params)
            .seed(seed)
            .delay(DelayKind::Constant)
            .t_end(RealTime::from_secs(8.0));
        let a = assemble_with_queue::<Maintenance, _>(&spec, ShuffledTieQueue::new(salt_a))
            .sim
            .run();
        let b = assemble_with_queue::<Maintenance, _>(&spec, ShuffledTieQueue::new(salt_b))
            .sim
            .run();
        // With a constant delay model the delay RNG is never consulted,
        // so the two runs see identical message timings; only tie order
        // differs, and the aggregate counters must agree.
        prop_assert_eq!(a.stats, b.stats);
    }

    /// The theorems also survive arbitrary legal tie-breaking when the
    /// fleet runs on the enum-dispatched fast path with a designated
    /// Byzantine attacker in it: the `f`-resilient bounds hold for the
    /// nonfaulty processes no matter how ties resolve.
    #[test]
    fn prop_agreement_enum_fleet_under_any_legal_interleaving(
        seed in 0u64..10_000,
        salt in 1u64..u64::MAX,
        n_idx in 0usize..3,
    ) {
        let (n, f) = [(4, 1), (5, 1), (7, 2)][n_idx];
        let params = Params::auto(n, f, 1e-6, 0.010, 0.001).expect("feasible");
        let attack = params.beta / 2.0;
        let t_end = 15.0;
        let spec = ScenarioSpec::new(params)
            .seed(seed)
            .delay(DelayKind::Uniform)
            .fault(ProcessId(0), FaultKind::TwoFaced(attack))
            .t_end(RealTime::from_secs(t_end));
        let built = assemble_enum_with_queue::<Maintenance, _>(&spec, ShuffledTieQueue::new(salt))
            .expect("faulted spec rides the enum path");
        let summary = run::run_summary_enum(built, t_end);
        prop_assert!(
            summary.agreement.holds,
            "Theorem 16 violated by enum fleet under shuffled ties: max skew {} > gamma {}",
            summary.agreement.max_skew,
            summary.agreement.gamma,
        );
        prop_assert!(
            summary.adjustments.holds,
            "adjustment bound violated by enum fleet under shuffled ties: {} > {}",
            summary.adjustments.max_abs,
            summary.adjustments.bound,
        );
    }
}
