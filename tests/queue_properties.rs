//! Property tests for the pluggable event queue: the Welch–Lynch
//! theorems hold under **any interleaving-legal queue**, not just the
//! FIFO-tie-break heap.
//!
//! §2.3 constrains delivery order only by (1) delivery real time and
//! (2) TIMERs after ordinary messages at the same instant. The `seq`
//! tie-break among same-instant, same-class events is a simulator
//! convention, not a model guarantee — so a queue that permutes those
//! ties arbitrarily is still a legal execution of the model, and
//! Theorem 16 (agreement) and the adjustment bound (Lemma 10) must
//! survive it. [`ShuffledTieQueue`] below does exactly that, with a
//! seeded permutation so failures replay.

use proptest::prelude::*;
use welch_lynch::core::Params;
use welch_lynch::harness::{assemble_with_queue, run, DelayKind, Maintenance, ScenarioSpec};
use welch_lynch::sim::{EventQueue, QueuedEvent};
use welch_lynch::time::RealTime;

/// Orders by `(at, class, mix(seq))` instead of `(at, class, seq)`:
/// time-legal and §2.3-property-4-legal, but same-instant same-class
/// ties resolve in a seeded pseudo-random order.
struct ShuffledTieQueue<M> {
    heap: std::collections::BinaryHeap<std::cmp::Reverse<Keyed<M>>>,
    salt: u64,
}

struct Keyed<M> {
    tie: u64,
    ev: QueuedEvent<M>,
}

impl<M> PartialEq for Keyed<M> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl<M> Eq for Keyed<M> {}
impl<M> PartialOrd for Keyed<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Keyed<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.ev
            .at
            .total_cmp(&other.ev.at)
            .then_with(|| self.ev.class.cmp(&other.ev.class))
            .then_with(|| self.tie.cmp(&other.tie))
            .then_with(|| self.ev.seq.cmp(&other.ev.seq))
    }
}

fn mix(seq: u64, salt: u64) -> u64 {
    // SplitMix64 finalizer: a seeded permutation of the tie-break space.
    let mut z = seq ^ salt;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl<M> ShuffledTieQueue<M> {
    fn new(salt: u64) -> Self {
        Self {
            heap: std::collections::BinaryHeap::new(),
            salt,
        }
    }
}

impl<M: Send> EventQueue<M> for ShuffledTieQueue<M> {
    fn push(&mut self, ev: QueuedEvent<M>) {
        let tie = mix(ev.seq, self.salt);
        self.heap.push(std::cmp::Reverse(Keyed { tie, ev }));
    }
    fn pop_next(&mut self) -> Option<QueuedEvent<M>> {
        self.heap.pop().map(|r| r.0.ev)
    }
    fn len(&self) -> usize {
        self.heap.len()
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        .. ProptestConfig::default()
    })]

    /// Agreement (Theorem 16) and the adjustment bound survive arbitrary
    /// legal tie-breaking, across seeds, delay models, and fleet sizes.
    #[test]
    fn prop_agreement_under_any_legal_interleaving(
        seed in 0u64..10_000,
        salt in 1u64..u64::MAX,
        delay_idx in 0usize..3,
        n_idx in 0usize..3,
    ) {
        let (n, f) = [(4, 1), (5, 1), (7, 2)][n_idx];
        let params = Params::auto(n, f, 1e-6, 0.010, 0.001).expect("feasible");
        let t_end = 15.0;
        let delay = [DelayKind::Constant, DelayKind::Uniform, DelayKind::AdversarialSplit][delay_idx];
        let spec = ScenarioSpec::new(params.clone())
            .seed(seed)
            .delay(delay)
            .t_end(RealTime::from_secs(t_end));
        let built = assemble_with_queue::<Maintenance, _>(&spec, ShuffledTieQueue::new(salt));
        let summary = run::run_summary(built, t_end);
        prop_assert!(
            summary.agreement.holds,
            "Theorem 16 violated under shuffled ties: max skew {} > gamma {}",
            summary.agreement.max_skew,
            summary.agreement.gamma,
        );
        prop_assert!(
            summary.adjustments.holds,
            "adjustment bound violated under shuffled ties: {} > {}",
            summary.adjustments.max_abs,
            summary.adjustments.bound,
        );
        prop_assert_eq!(summary.stats.timers_suppressed, 0);
    }

    /// Same spec, different tie permutations: counters that only count
    /// *what* happened (not in which tie order) are permutation-invariant.
    #[test]
    fn prop_event_counts_tie_invariant(
        seed in 0u64..1_000,
        salt_a in 1u64..u64::MAX,
        salt_b in 1u64..u64::MAX,
    ) {
        let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).expect("feasible");
        let spec = ScenarioSpec::new(params)
            .seed(seed)
            .delay(DelayKind::Constant)
            .t_end(RealTime::from_secs(8.0));
        let a = assemble_with_queue::<Maintenance, _>(&spec, ShuffledTieQueue::new(salt_a))
            .sim
            .run();
        let b = assemble_with_queue::<Maintenance, _>(&spec, ShuffledTieQueue::new(salt_b))
            .sim
            .run();
        // With a constant delay model the delay RNG is never consulted,
        // so the two runs see identical message timings; only tie order
        // differs, and the aggregate counters must agree.
        prop_assert_eq!(a.stats, b.stats);
    }
}
