//! Property-based end-to-end tests: agreement and safety invariants hold
//! for randomized feasible parameters, seeds, drift models, and fault
//! mixes — not just the hand-picked configurations.

use proptest::prelude::*;
use welch_lynch::analysis::adjustment::check_adjustments;
use welch_lynch::analysis::agreement::check_agreement;
use welch_lynch::analysis::ExecutionView;
use welch_lynch::clock::drift::DriftModel;
use welch_lynch::core::Params;
use welch_lynch::harness::{assemble, DelayKind, FaultKind, Maintenance, ScenarioSpec};
use welch_lynch::sim::ProcessId;
use welch_lynch::time::{RealDur, RealTime};

fn arb_fault(beta: f64) -> impl Strategy<Value = FaultKind> {
    prop_oneof![
        Just(FaultKind::Silent),
        Just(FaultKind::RoundSpam),
        (5.0f64..30.0).prop_map(FaultKind::CrashAt),
        (0.1f64..1.0).prop_map(move |k| FaultKind::PullApart(k * beta)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// Theorem 16 under randomized conditions: any feasible parameters,
    /// any seed, any delay model, any single-fault behaviour.
    #[test]
    fn prop_agreement_holds_randomized(
        seed in 0u64..10_000,
        rho_exp in 1.0f64..3.0,            // rho in [1e-6, 1e-4]-ish
        eps_frac in 0.01f64..0.2,          // eps = frac * delta
        delay_idx in 0usize..3,
        fault in proptest::option::of(arb_fault(1.0)), // beta scaled below
        victim in 0usize..4,
        drift_split in proptest::bool::ANY,
    ) {
        let rho = 10f64.powf(-3.0 - rho_exp);
        let delta = 0.010;
        let eps = eps_frac * delta;
        let params = Params::auto(4, 1, rho, delta, eps).expect("feasible");
        let delay = [DelayKind::Constant, DelayKind::Uniform, DelayKind::AdversarialSplit][delay_idx];
        let drift = if drift_split {
            DriftModel::Split { rho }
        } else {
            DriftModel::RandomConstant { rho }
        };
        let t_end = 20.0;
        let mut spec = ScenarioSpec::new(params.clone())
            .seed(seed)
            .delay(delay)
            .drift(drift)
            .t_end(RealTime::from_secs(t_end));
        if let Some(f) = fault {
            // Rescale pull-apart amplitude to the actual beta.
            let f = match f {
                FaultKind::PullApart(k) => FaultKind::PullApart(k * params.beta),
                other => other,
            };
            spec = spec.fault(ProcessId(victim), f);
        }
        let built = assemble::<Maintenance>(&spec);
        let plan = built.plan.clone();
        let mut sim = built.sim;
        let outcome = sim.run();
        prop_assert_eq!(outcome.stats.timers_suppressed, 0);
        let view = ExecutionView::with_plan(sim.clocks(), &outcome.corr, &plan);
        let report = check_agreement(
            &view,
            &params,
            RealTime::from_secs(params.t0 + 2.0 * params.p_round),
            RealTime::from_secs(t_end * 0.95),
            RealDur::from_secs(params.p_round / 5.0),
        );
        prop_assert!(report.holds, "agreement violated: {:?} (params {:?})", report, params);

        let adj = check_adjustments(&view, &params, 1);
        prop_assert!(adj.holds, "adjustment bound violated: {:?}", adj);
    }

    /// The simulator is deterministic: identical seeds give identical
    /// correction histories.
    #[test]
    fn prop_execution_deterministic(seed in 0u64..1000) {
        let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap();
        let run = |seed| {
            let built = assemble::<Maintenance>(
                &ScenarioSpec::new(params.clone())
                    .seed(seed)
                    .t_end(RealTime::from_secs(8.0)),
            );
            let mut sim = built.sim;
            sim.run().corr
        };
        let a = run(seed);
        let b = run(seed);
        prop_assert_eq!(a, b);
    }

    /// Feasible parameter derivation is robust across the hardware space.
    #[test]
    fn prop_params_auto_always_feasible(
        rho_exp in 0.0f64..4.0,
        delta_ms in 0.5f64..200.0,
        eps_frac in 0.001f64..0.5,
        f in 1usize..5,
    ) {
        let rho = 10f64.powf(-3.0 - rho_exp);
        let delta = delta_ms * 1e-3;
        let eps = eps_frac * delta;
        let n = 3 * f + 1;
        let params = Params::auto(n, f, rho, delta, eps).expect("must derive");
        prop_assert!(params.validate().is_ok());
        prop_assert!(params.p_round >= params.min_p());
        prop_assert!(params.p_round <= params.max_p());
        // The derived beta respects the paper floor beta > 4 eps.
        prop_assert!(params.beta > 4.0 * eps);
    }
}
