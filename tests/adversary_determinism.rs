//! The adversary determinism contract: every built-in
//! [`AdversaryStrategy`] is byte-deterministic under thread count,
//! arbitrary legal tie-breaking, the service wire codec, and
//! text↔binary store migration — the properties the sweep cache, shard
//! merge, and results service all lean on (`docs/adversaries.md`).
//!
//! Byte-identity is checked with [`SweepOutcome::bit_identical`] (IEEE
//! bit patterns, not epsilons) and `std::fs::read` equality on saved
//! stores — the same currency `fleet_parity.rs` and the CI shard smoke
//! use.

mod common;

use common::ShuffledTieQueue;
use proptest::prelude::*;
use welch_lynch::core::Params;
use welch_lynch::harness::service::{decode_spec, encode_spec};
use welch_lynch::harness::{
    assemble_enum_with_queue, assemble_with_queue, derive_seed, run, AdversarySpec,
    AdversaryStrategy, Capture, DelayKind, Maintenance, ScenarioSpec, ServeConfig, ServiceAddr,
    ServiceClient, ServiceSweepCache, StoreFormat, SweepCache, SweepOutcome, SweepRequest,
    SweepStore, TierPolicy,
};
use welch_lynch::sim::ProcessId;
use welch_lynch::time::RealTime;

/// Every built-in strategy (all nine discriminants; both pull-apart
/// orientations), with payloads scaled to the family's β and P.
fn gallery(params: &Params) -> Vec<AdversaryStrategy> {
    let beta = params.beta;
    vec![
        AdversaryStrategy::Crash { at: 2.0 },
        AdversaryStrategy::Mute,
        AdversaryStrategy::Spam,
        AdversaryStrategy::PullApart {
            amplitude: beta,
            high: false,
        },
        AdversaryStrategy::PullApart {
            amplitude: beta,
            high: true,
        },
        AdversaryStrategy::TwoFacedValue { amplitude: beta },
        AdversaryStrategy::Collude { amplitude: beta },
        AdversaryStrategy::Churn {
            up: 2.0 * params.p_round,
            down: params.p_round,
        },
        AdversaryStrategy::TargetedDelay { victim: 2 },
        AdversaryStrategy::Partition,
    ]
}

fn family() -> Params {
    Params::auto(4, 1, 1e-6, 0.010, 0.001).expect("feasible")
}

fn adversarial_spec(params: &Params, strategy: AdversaryStrategy, seed: u64) -> ScenarioSpec {
    ScenarioSpec::new(params.clone())
        .seed(seed)
        .delay(DelayKind::Uniform)
        .adversary(AdversarySpec::new(vec![ProcessId(0)], strategy).seed(7))
        .t_end(RealTime::from_secs(4.0))
}

/// One spec per gallery strategy, seeds derived from `base_seed`.
fn gallery_grid(params: &Params, base_seed: u64) -> Vec<ScenarioSpec> {
    gallery(params)
        .into_iter()
        .enumerate()
        .map(|(i, s)| adversarial_spec(params, s, derive_seed(base_seed, i as u64)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        .. ProptestConfig::default()
    })]

    /// The full gallery swept serially and at several thread counts —
    /// bit-identical outcomes at every grid point.
    #[test]
    fn prop_gallery_identical_at_every_thread_count(
        base_seed in 0u64..10_000,
        threads_idx in 0usize..3,
    ) {
        let params = family();
        let serial = SweepRequest::new()
            .threads(1)
            .run::<Maintenance>(gallery_grid(&params, base_seed));
        let threads = [2usize, 4, 8][threads_idx];
        let wide = SweepRequest::new()
            .threads(threads)
            .run::<Maintenance>(gallery_grid(&params, base_seed));
        prop_assert_eq!(serial.len(), wide.len());
        for (a, b) in serial.iter().zip(&wide) {
            prop_assert!(
                a.bit_identical(b),
                "threads={}: adversarial outcome diverged at grid point {}",
                threads,
                a.index
            );
        }
    }

    /// Delay-only adversaries (the attack lives in the shared delay
    /// model, every process stays correct) qualify for the enum fast
    /// path — and it must match the boxed path bit-for-bit under the
    /// same arbitrary legal tie-breaking.
    #[test]
    fn prop_delay_only_adversaries_ride_the_enum_path_identically(
        seed in 0u64..10_000,
        salt in 1u64..u64::MAX,
        partition in proptest::bool::ANY,
    ) {
        let params = family();
        let strategy = if partition {
            AdversaryStrategy::Partition
        } else {
            AdversaryStrategy::TargetedDelay { victim: 2 }
        };
        let spec = adversarial_spec(&params, strategy, seed);
        let t_end = spec.t_end.as_secs();
        let boxed = assemble_with_queue::<Maintenance, _>(&spec, ShuffledTieQueue::new(salt));
        let boxed_out = SweepOutcome::new(0, spec.seed, &run::run_summary(boxed, t_end));
        let enum_built =
            assemble_enum_with_queue::<Maintenance, _>(&spec, ShuffledTieQueue::new(salt))
                .expect("delay-only adversaries qualify for the enum fast path");
        let enum_out = SweepOutcome::new(0, spec.seed, &run::run_summary_enum(enum_built, t_end));
        prop_assert!(
            enum_out.bit_identical(&boxed_out),
            "enum fleet diverged from boxed fleet under {:?} (salt {})",
            strategy,
            salt
        );
    }

    /// Behaviour adversaries are wrapper automata hosted by the boxed
    /// path: the enum path must decline them, and the boxed execution —
    /// including the strategy's own seeded RNG — must be a pure function
    /// of (spec, tie order): the same shuffled-tie salt reproduces the
    /// run bit-for-bit.
    #[test]
    fn prop_behaviour_adversaries_deterministic_under_shuffled_ties(
        seed in 0u64..10_000,
        salt in 1u64..u64::MAX,
        strat_idx in 0usize..8,
    ) {
        let params = family();
        let strategy = gallery(&params)[strat_idx]; // 0..8 = the behaviour strategies
        let spec = adversarial_spec(&params, strategy, seed);
        prop_assert!(
            assemble_enum_with_queue::<Maintenance, _>(&spec, ShuffledTieQueue::new(salt))
                .is_none(),
            "behaviour strategy {:?} must fall back to the boxed path",
            strategy
        );
        let t_end = spec.t_end.as_secs();
        let once = assemble_with_queue::<Maintenance, _>(&spec, ShuffledTieQueue::new(salt));
        let a = SweepOutcome::new(0, spec.seed, &run::run_summary(once, t_end));
        let again = assemble_with_queue::<Maintenance, _>(&spec, ShuffledTieQueue::new(salt));
        let b = SweepOutcome::new(0, spec.seed, &run::run_summary(again, t_end));
        prop_assert!(
            a.bit_identical(&b),
            "behaviour strategy {:?} is not deterministic under salt {}",
            strategy,
            salt
        );
    }

    /// Every gallery spec survives the service wire codec exactly:
    /// decode(encode(spec)) == spec, and the canonical string (the cache
    /// key) is unchanged by the round trip.
    #[test]
    fn prop_gallery_specs_round_trip_the_wire_codec(
        base_seed in 0u64..10_000,
    ) {
        let params = family();
        for spec in gallery_grid(&params, base_seed) {
            let decoded = decode_spec(&encode_spec(&spec)).expect("wire codec decodes");
            prop_assert_eq!(&decoded, &spec);
            prop_assert_eq!(decoded.content_hash(), spec.content_hash());
        }
    }
}

/// End-to-end transport determinism: the same adversarial gallery
/// resolved (a) by local simulation and (b) through a live results
/// service — server-side simulation, wire transfer, cache seeding —
/// produces bit-identical outcomes and **byte-identical** saved stores,
/// and those stores survive text → binary → text migration unchanged.
#[test]
fn gallery_byte_identical_through_service_transport_and_migration() {
    let params = family();
    let grid = gallery_grid(&params, 0xAD0E_5EED);

    // (a) Local: every point simulated in this process.
    let local_cache = SweepCache::new();
    let local = SweepRequest::new()
        .threads(1)
        .cached(&local_cache)
        .tier(TierPolicy::LocalOnly)
        .run::<Maintenance>(grid.clone());
    assert_eq!(local_cache.misses(), grid.len() as u64);

    // (b) Service: every point simulated by the server's resident pool
    // and delivered over the wire codec.
    let dir = std::env::temp_dir().join(format!("wl-adv-transport-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let cfg = ServeConfig {
        addr: ServiceAddr::Tcp("127.0.0.1:0".into()),
        store: dir.join("service.wls"),
        format: StoreFormat::Binary,
        threads: 2,
        crash_after_batches: None,
    };
    let (tx, rx) = std::sync::mpsc::channel();
    let server = std::thread::spawn(move || {
        welch_lynch::harness::serve(&cfg, move |addr| tx.send(addr.clone()).unwrap())
    });
    let addr = rx.recv().expect("server ready");
    let service = ServiceSweepCache::new(addr.clone());
    let service_cache = SweepCache::new();
    let served = service.prefetch::<Maintenance>(&grid, Capture::Scalar, &service_cache);
    assert_eq!(served, grid.len(), "server must resolve the whole gallery");
    let remote = SweepRequest::new()
        .threads(1)
        .cached(&service_cache)
        .tier(TierPolicy::LocalOnly)
        .run::<Maintenance>(grid.clone());
    assert_eq!(
        service_cache.misses(),
        0,
        "prefetched sweep must be all hits"
    );
    ServiceClient::new(addr).shutdown().expect("shutdown");
    server.join().expect("server thread").expect("serve ok");

    assert_eq!(local.len(), remote.len());
    for (a, b) in local.iter().zip(&remote) {
        assert!(
            a.bit_identical(b),
            "service-transported outcome diverged at grid point {}",
            a.index
        );
    }

    // The two caches serialize to byte-identical stores.
    let save = |cache: &SweepCache, name: &str| {
        let mut store = SweepStore::new();
        store.set_format(StoreFormat::Text);
        store.absorb(cache);
        let path = dir.join(name);
        store.save_to(&path).expect("save");
        path
    };
    let path_local = save(&local_cache, "local.wls");
    let path_remote = save(&service_cache, "remote.wls");
    let text = std::fs::read(&path_local).expect("read local");
    assert_eq!(
        text,
        std::fs::read(&path_remote).expect("read remote"),
        "local and service-transported stores must be byte-identical"
    );

    // Adversarial records survive text → binary → text unchanged.
    let bin = dir.join("roundtrip.wlb");
    let back = dir.join("roundtrip.wls");
    SweepStore::migrate(&path_local, &bin, StoreFormat::Binary).expect("to binary");
    SweepStore::migrate(&bin, &back, StoreFormat::Text).expect("back to text");
    assert_eq!(
        text,
        std::fs::read(&back).expect("read round-trip"),
        "text↔binary migration must preserve adversarial records byte-for-byte"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
