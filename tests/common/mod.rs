//! Helpers shared by the root integration-test binaries.
//!
//! Currently: [`ShuffledTieQueue`], an interleaving-legal event queue
//! that permutes same-instant same-class ties pseudo-randomly. Used by
//! `queue_properties.rs` (the theorems survive any legal tie-breaking)
//! and `fleet_parity.rs` (the enum fleet matches the boxed fleet under
//! any legal tie-breaking).

use welch_lynch::sim::{EventQueue, QueuedEvent};

/// Orders by `(at, class, mix(seq))` instead of `(at, class, seq)`:
/// time-legal and §2.3-property-4-legal, but same-instant same-class
/// ties resolve in a seeded pseudo-random order.
pub struct ShuffledTieQueue<M> {
    heap: std::collections::BinaryHeap<std::cmp::Reverse<Keyed<M>>>,
    salt: u64,
}

struct Keyed<M> {
    tie: u64,
    ev: QueuedEvent<M>,
}

impl<M> PartialEq for Keyed<M> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl<M> Eq for Keyed<M> {}
impl<M> PartialOrd for Keyed<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Keyed<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.ev
            .at
            .total_cmp(&other.ev.at)
            .then_with(|| self.ev.class.cmp(&other.ev.class))
            .then_with(|| self.tie.cmp(&other.tie))
            .then_with(|| self.ev.seq.cmp(&other.ev.seq))
    }
}

fn mix(seq: u64, salt: u64) -> u64 {
    // SplitMix64 finalizer: a seeded permutation of the tie-break space.
    let mut z = seq ^ salt;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl<M> ShuffledTieQueue<M> {
    /// A queue whose tie permutation is derived from `salt`.
    pub fn new(salt: u64) -> Self {
        Self {
            heap: std::collections::BinaryHeap::new(),
            salt,
        }
    }
}

impl<M: Send> EventQueue<M> for ShuffledTieQueue<M> {
    fn push(&mut self, ev: QueuedEvent<M>) {
        let tie = mix(ev.seq, self.salt);
        self.heap.push(std::cmp::Reverse(Keyed { tie, ev }));
    }
    fn pop_next(&mut self) -> Option<QueuedEvent<M>> {
        self.heap.pop().map(|r| r.0.ev)
    }
    fn len(&self) -> usize {
        self.heap.len()
    }
}
