//! Integration tests for the §9 extensions: establishing synchronization
//! from arbitrary clocks (§9.2) and reintegrating a repaired process
//! (§9.1).

use welch_lynch::analysis::convergence::round_series;
use welch_lynch::analysis::skew::SkewSeries;
use welch_lynch::analysis::ExecutionView;
use welch_lynch::core::{theory, Params, StartupParams};
use welch_lynch::harness::{assemble, FaultKind, Rejoiner, ScenarioSpec, Startup};
use welch_lynch::sim::ProcessId;
use welch_lynch::time::{RealDur, RealTime};

#[test]
fn startup_converges_from_seconds_to_milliseconds() {
    let sp = StartupParams::new(4, 1, 1e-6, 0.010, 0.001).unwrap();
    let built = assemble::<Startup>(
        &ScenarioSpec::startup(&sp, 5.0)
            .seed(23)
            .t_end(RealTime::from_secs(10.0)),
    );
    let plan = built.plan.clone();
    let mut sim = built.sim;
    let outcome = sim.run();
    let view = ExecutionView::with_plan(sim.clocks(), &outcome.corr, &plan);
    let series = round_series(&view, RealDur::from_secs(sp.delta));
    let final_spread = series.final_skew().expect("rounds happened");
    assert!(
        final_spread < 10.0 * 4.0 * sp.eps,
        "failed to converge: {final_spread}"
    );
}

#[test]
fn startup_obeys_lemma20_recurrence_with_silent_fault() {
    let sp = StartupParams::new(4, 1, 1e-6, 0.010, 0.001).unwrap();
    let built = assemble::<Startup>(
        &ScenarioSpec::startup(&sp, 5.0)
            .seed(23)
            .t_end(RealTime::from_secs(10.0))
            .silent(&[ProcessId(3)]),
    );
    let plan = built.plan.clone();
    let mut sim = built.sim;
    let outcome = sim.run();
    let view = ExecutionView::with_plan(sim.clocks(), &outcome.corr, &plan);
    let series = round_series(&view, RealDur::from_secs(sp.delta));
    assert!(
        series.skews.len() >= 8,
        "too few rounds: {}",
        series.skews.len()
    );
    // Lemma 20 bound round by round (10% tolerance for wave-measurement
    // granularity).
    let violation = series.check_recurrence(
        |b| theory::startup_recurrence(sp.rho, sp.delta, sp.eps, b),
        0.10,
    );
    assert_eq!(violation, None, "Lemma 20 violated: {:?}", series.skews);
    // And convergence to within an order of magnitude of 4eps.
    assert!(series.final_skew().unwrap() < 10.0 * 4.0 * sp.eps);
}

#[test]
fn startup_works_for_larger_system() {
    let sp = StartupParams::new(7, 2, 1e-6, 0.010, 0.001).unwrap();
    let built = assemble::<Startup>(
        &ScenarioSpec::startup(&sp, 3.0)
            .seed(9)
            .t_end(RealTime::from_secs(10.0))
            .silent(&[ProcessId(1), ProcessId(5)]),
    );
    let plan = built.plan.clone();
    let mut sim = built.sim;
    let outcome = sim.run();
    let view = ExecutionView::with_plan(sim.clocks(), &outcome.corr, &plan);
    let series = round_series(&view, RealDur::from_secs(sp.delta));
    assert!(
        series.final_skew().unwrap() < 0.05,
        "spread {:?}",
        series.final_skew()
    );
}

#[test]
fn rejoiner_enters_envelope_at_every_repair_phase() {
    let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap();
    let gamma = theory::gamma(&params);
    for frac in [0.0, 0.3, 0.6, 0.9] {
        let repair = 8.0 + frac * params.p_round;
        let built = assemble::<Rejoiner>(
            &ScenarioSpec::new(params.clone())
                .seed(17)
                .rejoiner(ProcessId(3), RealTime::from_secs(repair))
                .t_end(RealTime::from_secs(35.0)),
        );
        let mut sim = built.sim;
        let outcome = sim.run();
        // All four processes — including the repaired one — within gamma
        // after a grace period.
        let view = ExecutionView::new(sim.clocks(), &outcome.corr, vec![false; 4]);
        let after = SkewSeries::sample_with_events(
            &view,
            RealTime::from_secs(repair + 4.0 * params.p_round),
            RealTime::from_secs(34.0),
            RealDur::from_secs(params.p_round / 5.0),
        )
        .max();
        assert!(
            after <= gamma,
            "phase {frac}: post-rejoin skew {after} > gamma {gamma}"
        );
        // The rejoiner must actually have adjusted its clock (its initial
        // offset was arbitrary).
        assert!(
            !outcome.corr[3].adjustments().is_empty(),
            "phase {frac}: rejoiner never adjusted"
        );
    }
}

#[test]
fn rejoiner_survives_concurrent_byzantine_noise() {
    // n = 7, f = 2: one rejoiner (counted faulty until it joins) plus one
    // spammer — the reintegration safeguards must not be fooled by forged
    // round values.
    let params = Params::auto(7, 2, 1e-6, 0.010, 0.001).unwrap();
    let built = assemble::<Rejoiner>(
        &ScenarioSpec::new(params.clone())
            .seed(29)
            .fault(ProcessId(0), FaultKind::RoundSpam)
            .rejoiner(ProcessId(6), RealTime::from_secs(9.0))
            .t_end(RealTime::from_secs(35.0)),
    );
    let mut sim = built.sim;
    let outcome = sim.run();
    let gamma = theory::gamma(&params);
    // Nonfaulty = everyone but the spammer; includes the rejoined process.
    let mut faulty = vec![false; 7];
    faulty[0] = true;
    let view = ExecutionView::new(sim.clocks(), &outcome.corr, faulty);
    let after = SkewSeries::sample_with_events(
        &view,
        RealTime::from_secs(9.0 + 5.0 * params.p_round),
        RealTime::from_secs(34.0),
        RealDur::from_secs(params.p_round / 5.0),
    )
    .max();
    assert!(after <= gamma, "skew {after} > gamma {gamma}");
}
