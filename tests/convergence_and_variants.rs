//! Integration tests for the convergence claims (Lemma 10) and the §7
//! variants (k exchanges per round, mean averaging).

use welch_lynch::analysis::convergence::round_series;
use welch_lynch::analysis::ExecutionView;
use welch_lynch::core::{theory, AveragingFn, Params};
use welch_lynch::harness::{assemble, DelayKind, FaultKind, Maintenance, ScenarioSpec};
use welch_lynch::sim::ProcessId;
use welch_lynch::time::{RealDur, RealTime};

fn wide_params() -> Params {
    let (rho, delta, eps) = (1e-6, 0.010, 0.001);
    let beta = 50.0 * eps;
    let p = 2.0 * welch_lynch::core::params::min_p(rho, delta, eps, beta);
    Params::new(4, 1, rho, delta, eps, beta, p).unwrap()
}

fn run_rounds(params: &Params, adversarial: bool, seed: u64) -> Vec<f64> {
    let t_end = params.t0 + 14.0 * params.p_round;
    let mut spec = ScenarioSpec::new(params.clone())
        .seed(seed)
        .spread_frac(0.95)
        .t_end(RealTime::from_secs(t_end));
    if adversarial {
        spec = spec
            .delay(DelayKind::AdversarialSplit)
            .fault(ProcessId(0), FaultKind::PullApart(params.beta / 2.0));
    }
    let built = assemble::<Maintenance>(&spec);
    let plan = built.plan.clone();
    let mut sim = built.sim;
    let outcome = sim.run();
    let view = ExecutionView::with_plan(sim.clocks(), &outcome.corr, &plan);
    round_series(&view, RealDur::from_secs(params.p_round / 4.0)).skews
}

#[test]
fn lemma10_recurrence_holds_every_round() {
    let params = wide_params();
    for adversarial in [false, true] {
        let skews = run_rounds(&params, adversarial, 7);
        assert!(skews.len() >= 10);
        for w in skews.windows(2) {
            let bound = theory::round_recurrence(&params, w[0]);
            assert!(
                w[1] <= bound * 1.05 + 1e-12,
                "adversarial={adversarial}: {} -> {} exceeds bound {bound}",
                w[0],
                w[1]
            );
        }
    }
}

#[test]
fn adversarial_execution_converges_to_4eps_fixed_point() {
    let params = wide_params();
    let skews = run_rounds(&params, true, 7);
    let fixed_point = theory::steady_state_beta(&params);
    let last = *skews.last().unwrap();
    // The worst case rides the recurrence exactly (see exp_halving), so
    // the final value is within 5% of the predicted fixed point.
    assert!(
        (last - fixed_point).abs() / fixed_point < 0.05,
        "final skew {last} vs fixed point {fixed_point}"
    );
}

#[test]
fn mean_contraction_rate_matches_paper_formula() {
    // Under the worst case, the mean variant contracts at f/(n-2f).
    let (rho, delta, eps) = (1e-6, 0.010, 0.001);
    let beta = 50.0 * eps;
    let p = 2.0 * welch_lynch::core::params::min_p(rho, delta, eps, beta);
    for n in [6usize, 8] {
        let mut params = Params::new(n, 1, rho, delta, eps, beta, p).unwrap();
        params.avg = AveragingFn::Mean;
        let t_end = params.t0 + 14.0 * params.p_round;
        let built = assemble::<Maintenance>(
            &ScenarioSpec::new(params.clone())
                .seed(55)
                .spread_frac(0.95)
                .delay(DelayKind::AdversarialSplit)
                .fault(ProcessId(0), FaultKind::PullApart(params.beta / 2.0))
                .t_end(RealTime::from_secs(t_end)),
        );
        let plan = built.plan.clone();
        let mut sim = built.sim;
        let outcome = sim.run();
        let view = ExecutionView::with_plan(sim.clocks(), &outcome.corr, &plan);
        let series = round_series(&view, RealDur::from_secs(params.p_round / 4.0));
        let c = series.contraction_factor().expect("enough rounds");
        let predicted = AveragingFn::Mean.convergence_rate(n, 1);
        assert!(
            (c - predicted).abs() < 0.08,
            "n={n}: contraction {c} vs predicted {predicted}"
        );
    }
}

#[test]
fn k_exchange_variant_synchronizes() {
    let (rho, delta, eps) = (1e-4, 0.010, 1e-4);
    let p_round = 2.0;
    let beta = Params::min_beta_for(rho, delta, eps, p_round).unwrap() * 1.3;
    for k in [2usize, 3] {
        let params = Params::new(4, 1, rho, delta, eps, beta, p_round)
            .unwrap()
            .with_exchanges(k)
            .unwrap();
        let built = assemble::<Maintenance>(
            &ScenarioSpec::new(params.clone())
                .seed(77)
                .t_end(RealTime::from_secs(30.0)),
        );
        let plan = built.plan.clone();
        let mut sim = built.sim;
        let outcome = sim.run();
        assert_eq!(outcome.stats.timers_suppressed, 0, "k={k}");
        let view = ExecutionView::with_plan(sim.clocks(), &outcome.corr, &plan);
        let skew = welch_lynch::analysis::skew::SkewSeries::sample_with_events(
            &view,
            RealTime::from_secs(15.0),
            RealTime::from_secs(29.0),
            RealDur::from_secs(p_round / 5.0),
        )
        .max();
        assert!(skew < theory::gamma(&params), "k={k}: skew {skew}");
    }
}

#[test]
fn staggered_variant_synchronizes_in_simulation() {
    let params = Params::auto(4, 1, 1e-6, 0.010, 0.001)
        .unwrap()
        .with_stagger(5e-4)
        .unwrap();
    let built = assemble::<Maintenance>(
        &ScenarioSpec::new(params.clone())
            .seed(13)
            .t_end(RealTime::from_secs(30.0)),
    );
    let plan = built.plan.clone();
    let mut sim = built.sim;
    let outcome = sim.run();
    assert_eq!(outcome.stats.timers_suppressed, 0);
    let view = ExecutionView::with_plan(sim.clocks(), &outcome.corr, &plan);
    let skew = welch_lynch::analysis::skew::SkewSeries::sample_with_events(
        &view,
        RealTime::from_secs(15.0),
        RealTime::from_secs(29.0),
        RealDur::from_secs(params.p_round / 5.0),
    )
    .max();
    assert!(skew < theory::gamma(&params), "stagger: skew {skew}");
}
