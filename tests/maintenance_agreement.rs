//! End-to-end integration tests: the maintenance algorithm achieves
//! γ-agreement (Theorem 16) in full simulated executions.

use wl_analysis::adjustment::check_adjustments;
use wl_analysis::agreement::check_agreement;
use wl_analysis::ExecutionView;
use wl_core::WlMsg;
use wl_core::{theory, Params};
use wl_harness::{assemble, BuiltScenario, DelayKind, FaultKind, Maintenance, ScenarioSpec};
use wl_sim::ProcessId;
use wl_time::{RealDur, RealTime};

fn run_and_check(
    built: BuiltScenario<WlMsg>,
    t_end: f64,
) -> wl_analysis::agreement::AgreementReport {
    let params = built.params.clone();
    let plan = built.plan.clone();
    let mut sim = built.sim;
    let outcome = sim.run();
    assert_eq!(
        outcome.stats.timers_suppressed, 0,
        "Theorem 4(b): no nonfaulty timer may land in the past"
    );
    let view = ExecutionView::with_plan(sim.clocks(), &outcome.corr, &plan);
    // Start checking after the latest start (the theorem's tmin0 suffices,
    // but tmax0 is cleaner for the first sample) and after one full round.
    let from = RealTime::from_secs(params.t0 + 2.0 * params.p_round);
    check_agreement(
        &view,
        &params,
        from,
        RealTime::from_secs(t_end * 0.98),
        RealDur::from_secs(params.p_round / 7.0),
    )
}

#[test]
fn fault_free_n4_agreement_holds() {
    let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap();
    let t_end = 60.0;
    let built = assemble::<Maintenance>(
        &ScenarioSpec::new(params)
            .seed(11)
            .t_end(RealTime::from_secs(t_end)),
    );
    let r = run_and_check(built, t_end);
    assert!(r.holds, "agreement violated: {r:?}");
    // The bound should not be vacuous: the algorithm does real work, the
    // skew is nonzero but well inside gamma.
    assert!(r.max_skew > 0.0);
}

#[test]
fn agreement_holds_across_seeds_and_delay_models() {
    let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap();
    for seed in [1, 2, 3] {
        for delay in [
            DelayKind::Constant,
            DelayKind::Uniform,
            DelayKind::AdversarialSplit,
        ] {
            let built = assemble::<Maintenance>(
                &ScenarioSpec::new(params.clone())
                    .seed(seed)
                    .delay(delay)
                    .t_end(RealTime::from_secs(40.0)),
            );
            let r = run_and_check(built, 40.0);
            assert!(r.holds, "seed={seed} delay={delay:?}: {r:?}");
        }
    }
}

#[test]
fn agreement_holds_with_silent_fault() {
    let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap();
    let built = assemble::<Maintenance>(
        &ScenarioSpec::new(params)
            .seed(5)
            .fault(ProcessId(3), FaultKind::Silent)
            .t_end(RealTime::from_secs(40.0)),
    );
    let r = run_and_check(built, 40.0);
    assert!(r.holds, "{r:?}");
}

#[test]
fn agreement_holds_with_crash_mid_run() {
    let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap();
    let built = assemble::<Maintenance>(
        &ScenarioSpec::new(params)
            .seed(6)
            .fault(ProcessId(2), FaultKind::CrashAt(15.0))
            .t_end(RealTime::from_secs(40.0)),
    );
    let r = run_and_check(built, 40.0);
    assert!(r.holds, "{r:?}");
}

#[test]
fn agreement_holds_with_round_spammer() {
    let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap();
    let built = assemble::<Maintenance>(
        &ScenarioSpec::new(params)
            .seed(7)
            .fault(ProcessId(1), FaultKind::RoundSpam)
            .t_end(RealTime::from_secs(40.0)),
    );
    let r = run_and_check(built, 40.0);
    assert!(r.holds, "{r:?}");
}

#[test]
fn agreement_holds_with_pull_apart_attacker() {
    let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap();
    let amp = params.beta / 2.0;
    let built = assemble::<Maintenance>(
        &ScenarioSpec::new(params)
            .seed(8)
            .fault(ProcessId(0), FaultKind::PullApart(amp))
            .t_end(RealTime::from_secs(40.0)),
    );
    let r = run_and_check(built, 40.0);
    assert!(r.holds, "{r:?}");
}

#[test]
fn agreement_holds_n7_f2_two_byzantine() {
    let params = Params::auto(7, 2, 1e-6, 0.010, 0.001).unwrap();
    let amp = params.beta / 2.0;
    let built = assemble::<Maintenance>(
        &ScenarioSpec::new(params)
            .seed(9)
            .fault(ProcessId(0), FaultKind::PullApart(amp))
            .fault(ProcessId(4), FaultKind::RoundSpam)
            .t_end(RealTime::from_secs(40.0)),
    );
    let r = run_and_check(built, 40.0);
    assert!(r.holds, "{r:?}");
}

#[test]
fn adjustments_respect_theorem_4a() {
    let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap();
    let plan;

    let mut sim = {
        let built = assemble::<Maintenance>(
            &ScenarioSpec::new(params.clone())
                .seed(13)
                .t_end(RealTime::from_secs(60.0)),
        );
        plan = built.plan;
        built.sim
    };
    let outcome = sim.run();
    let view = ExecutionView::with_plan(sim.clocks(), &outcome.corr, &plan);
    let r = check_adjustments(&view, &params, 1);
    assert!(r.count > 0);
    assert!(
        r.holds,
        "adjustment bound violated: max {} vs bound {}",
        r.max_abs, r.bound
    );
    // Steady-state adjustments should be comfortably below the bound too.
    assert!(r.mean_abs < theory::adjustment_bound(&params));
}
