//! Enum-fleet ↔ boxed-fleet parity: the `Vec<A::FleetAuto>` fast path
//! (`assemble_enum`) must produce **byte-identical** outcomes to the
//! historical `Vec<Box<dyn Automaton>>` path (`assemble`), across all
//! six algorithms, arbitrary fault lists, and — the property-test twist
//! — *arbitrary legal tie-breaking*: both fleets run under the same
//! seeded [`ShuffledTieQueue`], so the identity cannot be an artifact of
//! the default FIFO tie-break.
//!
//! Byte-identity is checked with [`SweepOutcome::bit_identical`] (IEEE
//! bit patterns, not epsilons) — the same currency the sweep cache and
//! shard merge use.

mod common;

use common::ShuffledTieQueue;
use proptest::prelude::*;
use welch_lynch::core::{Params, StartupParams};
use welch_lynch::harness::{
    assemble_enum_with_queue, assemble_with_queue, run, DelayKind, FaultKind, LmCnv,
    MahaneySchneider, Maintenance, Rejoiner, ScenarioSpec, SrikanthToueg, Startup, SweepOutcome,
    SyncAlgorithm,
};
use welch_lynch::sim::ProcessId;
use welch_lynch::time::RealTime;

/// Runs `spec` on both fleet representations under the same shuffled-tie
/// queue and asserts bit-identical outcomes.
fn assert_parity<A: SyncAlgorithm>(spec: &ScenarioSpec, salt: u64) {
    let t_end = spec.t_end.as_secs();
    let boxed = assemble_with_queue::<A, _>(spec, ShuffledTieQueue::new(salt));
    let boxed_out = SweepOutcome::new(0, spec.seed, &run::run_summary(boxed, t_end));
    let enum_built = assemble_enum_with_queue::<A, _>(spec, ShuffledTieQueue::new(salt))
        .expect("spec qualifies for the enum fast path");
    let enum_out = SweepOutcome::new(0, spec.seed, &run::run_summary_enum(enum_built, t_end));
    assert!(
        enum_out.bit_identical(&boxed_out),
        "enum fleet diverged from boxed fleet under {} (salt {salt})",
        A::NAME,
    );
}

fn wl_fault(idx: usize) -> FaultKind {
    [
        FaultKind::Silent,
        FaultKind::CrashAt(3.0),
        FaultKind::RoundSpam,
        FaultKind::PullApart(0.002),
        FaultKind::TwoFaced(0.002),
        FaultKind::PullApartHigh(0.002),
    ][idx]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    /// Maintenance: the full fault gallery, one or two designated-faulty
    /// processes, arbitrary tie-breaking.
    #[test]
    fn prop_maintenance_parity(
        seed in 0u64..10_000,
        salt in 1u64..u64::MAX,
        fault_idx in 0usize..6,
        second_fault in proptest::option::of(0usize..2),
    ) {
        let (n, f) = if second_fault.is_some() { (7, 2) } else { (4, 1) };
        let params = Params::auto(n, f, 1e-6, 0.010, 0.001).expect("feasible");
        let mut spec = ScenarioSpec::new(params)
            .seed(seed)
            .delay(DelayKind::Uniform)
            .fault(ProcessId(0), wl_fault(fault_idx))
            .t_end(RealTime::from_secs(8.0));
        if let Some(idx) = second_fault {
            spec = spec.fault(ProcessId(5), wl_fault(idx)); // Silent or CrashAt
        }
        assert_parity::<Maintenance>(&spec, salt);
    }

    /// Rejoiner: the repaired process' deferred START plus an optional
    /// additional fault ride the enum path identically.
    #[test]
    fn prop_rejoiner_parity(
        seed in 0u64..10_000,
        salt in 1u64..u64::MAX,
        with_fault in proptest::bool::ANY,
    ) {
        let (n, f) = if with_fault { (7, 2) } else { (4, 1) };
        let params = Params::auto(n, f, 1e-6, 0.010, 0.001).expect("feasible");
        let mut spec = ScenarioSpec::new(params)
            .seed(seed)
            .delay(DelayKind::Uniform)
            .rejoiner(ProcessId(1), RealTime::from_secs(4.0))
            .t_end(RealTime::from_secs(10.0));
        if with_fault {
            spec = spec.fault(ProcessId(0), FaultKind::Silent);
        }
        assert_parity::<Rejoiner>(&spec, salt);
    }

    /// Startup: cold-start discipline (nonzero initial corrections) with
    /// its one supported fault kind.
    #[test]
    fn prop_startup_parity(
        seed in 0u64..10_000,
        salt in 1u64..u64::MAX,
        silent in proptest::bool::ANY,
    ) {
        let sp = StartupParams::new(4, 1, 1e-6, 0.010, 0.001).expect("feasible");
        let mut spec = ScenarioSpec::startup(&sp, 5.0)
            .seed(seed)
            .delay(DelayKind::Uniform)
            .t_end(RealTime::from_secs(6.0));
        if silent {
            spec = spec.fault(ProcessId(2), FaultKind::Silent);
        }
        assert_parity::<Startup>(&spec, salt);
    }

    /// The §10 baselines: Silent and value/timing-lying two-faced
    /// attackers, each message family's enum against its boxed fleet.
    #[test]
    fn prop_baseline_parity(
        seed in 0u64..10_000,
        salt in 1u64..u64::MAX,
        algo_idx in 0usize..3,
        two_faced in proptest::bool::ANY,
    ) {
        let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).expect("feasible");
        let kind = if two_faced {
            FaultKind::TwoFaced(0.002)
        } else {
            FaultKind::Silent
        };
        let spec = ScenarioSpec::new(params)
            .seed(seed)
            .delay(DelayKind::Uniform)
            .fault(ProcessId(0), kind)
            .t_end(RealTime::from_secs(8.0));
        match algo_idx {
            0 => assert_parity::<LmCnv>(&spec, salt),
            1 => assert_parity::<MahaneySchneider>(&spec, salt),
            _ => assert_parity::<SrikanthToueg>(&spec, salt),
        }
    }
}
