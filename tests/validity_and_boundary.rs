//! Integration tests for Theorem 19 (validity) and the A2 fault boundary.

use welch_lynch::analysis::skew::SkewSeries;
use welch_lynch::analysis::validity::check_validity;
use welch_lynch::analysis::ExecutionView;
use welch_lynch::clock::drift::DriftModel;
use welch_lynch::core::{theory, Params};
use welch_lynch::harness::{assemble, FaultKind, Maintenance, ScenarioSpec};
use welch_lynch::sim::ProcessId;
use welch_lynch::time::{RealDur, RealTime};

fn nonfaulty_start_bounds(starts: &[RealTime], faulty: &[bool]) -> (RealTime, RealTime) {
    let mut tmin = RealTime::from_secs(f64::INFINITY);
    let mut tmax = RealTime::from_secs(f64::NEG_INFINITY);
    for (i, &t) in starts.iter().enumerate() {
        if !faulty[i] {
            tmin = tmin.min(t);
            tmax = tmax.max(t);
        }
    }
    (tmin, tmax)
}

#[test]
fn validity_envelope_holds_over_long_run() {
    let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap();
    let built = assemble::<Maintenance>(
        &ScenarioSpec::new(params.clone())
            .seed(31)
            .t_end(RealTime::from_secs(90.0)),
    );
    let plan = built.plan.clone();
    let starts = built.starts.clone();
    let mut sim = built.sim;
    let outcome = sim.run();
    let view = ExecutionView::with_plan(sim.clocks(), &outcome.corr, &plan);
    let (tmin0, tmax0) = nonfaulty_start_bounds(&starts, &view.faulty);
    let r = check_validity(
        &view,
        &params,
        tmin0,
        tmax0,
        tmax0,
        RealTime::from_secs(88.0),
        RealDur::from_secs(1.0),
    );
    assert!(r.holds, "{r:?}");
    // Synchronized time advances at essentially rate 1.
    assert!(
        (r.empirical_rate - 1.0).abs() < 1e-3,
        "rate {}",
        r.empirical_rate
    );
}

#[test]
fn validity_holds_under_byzantine_attack() {
    let params = Params::auto(4, 1, 1e-4, 0.010, 0.001).unwrap();
    let built = assemble::<Maintenance>(
        &ScenarioSpec::new(params.clone())
            .seed(37)
            .fault(ProcessId(0), FaultKind::PullApart(params.beta / 2.0))
            .t_end(RealTime::from_secs(60.0)),
    );
    let plan = built.plan.clone();
    let starts = built.starts.clone();
    let mut sim = built.sim;
    let outcome = sim.run();
    let view = ExecutionView::with_plan(sim.clocks(), &outcome.corr, &plan);
    let (tmin0, tmax0) = nonfaulty_start_bounds(&starts, &view.faulty);
    let r = check_validity(
        &view,
        &params,
        tmin0,
        tmax0,
        tmax0,
        RealTime::from_secs(58.0),
        RealDur::from_secs(0.5),
    );
    assert!(r.holds, "{r:?}");
}

fn boundary_skew(n: usize, f: usize) -> (f64, f64) {
    let mut params = Params::auto(3 * f + 1, f, 1e-4, 0.010, 0.001).unwrap();
    params.n = n;
    let mut spec = ScenarioSpec::new(params.clone())
        .seed(101)
        .drift(DriftModel::EvenSpread { rho: params.rho })
        .t_end(RealTime::from_secs(90.0));
    for i in 0..f {
        spec = spec.fault(ProcessId(i), FaultKind::PullApartHigh(3.0 * params.beta));
    }
    let built = assemble::<Maintenance>(&spec);
    let plan = built.plan.clone();
    let mut sim = built.sim;
    let outcome = sim.run();
    let view = ExecutionView::with_plan(sim.clocks(), &outcome.corr, &plan);
    let series = SkewSeries::sample_with_events(
        &view,
        RealTime::from_secs(5.0),
        RealTime::from_secs(88.0),
        RealDur::from_secs(params.p_round / 5.0),
    );
    (series.max(), theory::gamma(&params))
}

#[test]
fn straddle_attack_absorbed_at_3f_plus_1() {
    let (skew, gamma) = boundary_skew(4, 1);
    assert!(skew <= gamma, "skew {skew} > gamma {gamma}");
}

#[test]
fn straddle_attack_diverges_at_3f() {
    let (skew, gamma) = boundary_skew(3, 1);
    assert!(
        skew > 5.0 * gamma,
        "expected divergence at n = 3f: skew {skew}, gamma {gamma}"
    );
}

#[test]
fn straddle_attack_boundary_f2() {
    let (ok, gamma) = boundary_skew(7, 2);
    assert!(ok <= gamma, "n=7 skew {ok} > gamma {gamma}");
    let (broken, _) = boundary_skew(6, 2);
    assert!(broken > 5.0 * gamma, "n=6 should diverge, got {broken}");
}
