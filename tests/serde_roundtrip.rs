//! Serialization-shape tests (C-SERDE): the config and measurement types
//! derive `Serialize`/`Deserialize` so experiment setups can be stored and
//! replayed. `serde_json` is not in the offline dependency set, so these
//! tests drive the derives through a minimal JSON *encoder* implemented on
//! serde's `Serializer` trait and pin the encoded shape.

use welch_lynch::core::{Params, StartupParams, WlMsg};
use welch_lynch::multiset::Multiset;
use welch_lynch::sim::ProcessId;
use welch_lynch::time::{ClockDur, ClockTime, RealDur, RealTime};

/// A deliberately small JSON encoder, sufficient for the flat types in
/// this workspace (numbers, strings, bools, sequences, structs, enums).
mod tiny_json {
    pub fn to_string<T: serde::Serialize>(v: &T) -> String {
        let mut s = Ser { out: String::new() };
        v.serialize(&mut s).expect("encodable");
        s.out
    }

    pub struct Ser {
        pub out: String,
    }

    use serde::ser::*;
    use std::fmt::Write;

    #[derive(Debug)]
    pub struct Err0(String);
    impl std::fmt::Display for Err0 {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
    impl std::error::Error for Err0 {}
    impl serde::ser::Error for Err0 {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            Err0(msg.to_string())
        }
    }

    macro_rules! simple {
        ($m:ident, $t:ty) => {
            fn $m(self, v: $t) -> Result<(), Err0> {
                let _ = write!(self.out, "{v}");
                Ok(())
            }
        };
    }

    impl Serializer for &mut Ser {
        type Ok = ();
        type Error = Err0;
        type SerializeSeq = Self;
        type SerializeTuple = Self;
        type SerializeTupleStruct = Self;
        type SerializeTupleVariant = Self;
        type SerializeMap = Self;
        type SerializeStruct = Self;
        type SerializeStructVariant = Self;

        simple!(serialize_bool, bool);
        simple!(serialize_i8, i8);
        simple!(serialize_i16, i16);
        simple!(serialize_i32, i32);
        simple!(serialize_i64, i64);
        simple!(serialize_u8, u8);
        simple!(serialize_u16, u16);
        simple!(serialize_u32, u32);
        simple!(serialize_u64, u64);

        fn serialize_f32(self, v: f32) -> Result<(), Err0> {
            let _ = write!(self.out, "{v:?}");
            Ok(())
        }
        fn serialize_f64(self, v: f64) -> Result<(), Err0> {
            let _ = write!(self.out, "{v:?}");
            Ok(())
        }
        fn serialize_char(self, v: char) -> Result<(), Err0> {
            let _ = write!(self.out, "{v:?}");
            Ok(())
        }
        fn serialize_str(self, v: &str) -> Result<(), Err0> {
            let _ = write!(self.out, "{v:?}");
            Ok(())
        }
        fn serialize_bytes(self, _v: &[u8]) -> Result<(), Err0> {
            Err(Err0("bytes unsupported".into()))
        }
        fn serialize_none(self) -> Result<(), Err0> {
            self.out.push_str("null");
            Ok(())
        }
        fn serialize_some<T: Serialize + ?Sized>(self, v: &T) -> Result<(), Err0> {
            v.serialize(self)
        }
        fn serialize_unit(self) -> Result<(), Err0> {
            self.out.push_str("null");
            Ok(())
        }
        fn serialize_unit_struct(self, _n: &'static str) -> Result<(), Err0> {
            self.serialize_unit()
        }
        fn serialize_unit_variant(
            self,
            _n: &'static str,
            _i: u32,
            variant: &'static str,
        ) -> Result<(), Err0> {
            let _ = write!(self.out, "{variant:?}");
            Ok(())
        }
        fn serialize_newtype_struct<T: Serialize + ?Sized>(
            self,
            _n: &'static str,
            v: &T,
        ) -> Result<(), Err0> {
            v.serialize(self)
        }
        fn serialize_newtype_variant<T: Serialize + ?Sized>(
            self,
            _n: &'static str,
            _i: u32,
            variant: &'static str,
            v: &T,
        ) -> Result<(), Err0> {
            let _ = write!(self.out, "{{{variant:?}:");
            v.serialize(&mut *self)?;
            self.out.push('}');
            Ok(())
        }
        fn serialize_seq(self, _len: Option<usize>) -> Result<Self, Err0> {
            self.out.push('[');
            Ok(self)
        }
        fn serialize_tuple(self, len: usize) -> Result<Self, Err0> {
            self.serialize_seq(Some(len))
        }
        fn serialize_tuple_struct(self, _n: &'static str, len: usize) -> Result<Self, Err0> {
            self.serialize_seq(Some(len))
        }
        fn serialize_tuple_variant(
            self,
            _n: &'static str,
            _i: u32,
            variant: &'static str,
            _len: usize,
        ) -> Result<Self, Err0> {
            let _ = write!(self.out, "{{{variant:?}:[");
            Ok(self)
        }
        fn serialize_map(self, _len: Option<usize>) -> Result<Self, Err0> {
            self.out.push('{');
            Ok(self)
        }
        fn serialize_struct(self, _n: &'static str, len: usize) -> Result<Self, Err0> {
            self.serialize_map(Some(len))
        }
        fn serialize_struct_variant(
            self,
            _n: &'static str,
            _i: u32,
            variant: &'static str,
            _len: usize,
        ) -> Result<Self, Err0> {
            let _ = write!(self.out, "{{{variant:?}:{{");
            Ok(self)
        }
    }

    impl SerializeSeq for &mut Ser {
        type Ok = ();
        type Error = Err0;
        fn serialize_element<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Err0> {
            if !self.out.ends_with('[') {
                self.out.push(',');
            }
            v.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Err0> {
            self.out.push(']');
            Ok(())
        }
    }
    impl SerializeTuple for &mut Ser {
        type Ok = ();
        type Error = Err0;
        fn serialize_element<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Err0> {
            SerializeSeq::serialize_element(self, v)
        }
        fn end(self) -> Result<(), Err0> {
            SerializeSeq::end(self)
        }
    }
    impl SerializeTupleStruct for &mut Ser {
        type Ok = ();
        type Error = Err0;
        fn serialize_field<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Err0> {
            SerializeSeq::serialize_element(self, v)
        }
        fn end(self) -> Result<(), Err0> {
            SerializeSeq::end(self)
        }
    }
    impl SerializeTupleVariant for &mut Ser {
        type Ok = ();
        type Error = Err0;
        fn serialize_field<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Err0> {
            SerializeSeq::serialize_element(self, v)
        }
        fn end(self) -> Result<(), Err0> {
            self.out.push_str("]}");
            Ok(())
        }
    }
    impl SerializeMap for &mut Ser {
        type Ok = ();
        type Error = Err0;
        fn serialize_key<T: Serialize + ?Sized>(&mut self, k: &T) -> Result<(), Err0> {
            if !self.out.ends_with('{') {
                self.out.push(',');
            }
            k.serialize(&mut **self)
        }
        fn serialize_value<T: Serialize + ?Sized>(&mut self, v: &T) -> Result<(), Err0> {
            self.out.push(':');
            v.serialize(&mut **self)
        }
        fn end(self) -> Result<(), Err0> {
            self.out.push('}');
            Ok(())
        }
    }
    impl SerializeStruct for &mut Ser {
        type Ok = ();
        type Error = Err0;
        fn serialize_field<T: Serialize + ?Sized>(
            &mut self,
            k: &'static str,
            v: &T,
        ) -> Result<(), Err0> {
            SerializeMap::serialize_key(self, k)?;
            SerializeMap::serialize_value(self, v)
        }
        fn end(self) -> Result<(), Err0> {
            SerializeMap::end(self)
        }
    }
    impl SerializeStructVariant for &mut Ser {
        type Ok = ();
        type Error = Err0;
        fn serialize_field<T: Serialize + ?Sized>(
            &mut self,
            k: &'static str,
            v: &T,
        ) -> Result<(), Err0> {
            SerializeStruct::serialize_field(self, k, v)
        }
        fn end(self) -> Result<(), Err0> {
            self.out.push_str("}}");
            Ok(())
        }
    }
}

#[test]
fn params_serialize_to_stable_json_shape() {
    let p = Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap();
    let json = tiny_json::to_string(&p);
    for key in [
        "\"n\"",
        "\"f\"",
        "\"rho\"",
        "\"delta\"",
        "\"eps\"",
        "\"beta\"",
        "\"p_round\"",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    assert!(json.contains("\"Midpoint\""));
}

#[test]
fn startup_params_and_msgs_serialize() {
    let sp = StartupParams::new(4, 1, 1e-6, 0.010, 0.001).unwrap();
    let json = tiny_json::to_string(&sp);
    assert!(json.contains("\"delta\""));
    let m = WlMsg::Round(ClockTime::from_secs(2.5));
    let json = tiny_json::to_string(&m);
    assert!(json.contains("Round"), "{json}");
    assert!(tiny_json::to_string(&WlMsg::Ready).contains("Ready"));
}

#[test]
fn time_types_and_ids_serialize_as_plain_numbers() {
    assert_eq!(tiny_json::to_string(&RealTime::from_secs(1.5)), "1.5");
    assert_eq!(tiny_json::to_string(&ClockDur::from_secs(-2.0)), "-2.0");
    assert_eq!(tiny_json::to_string(&RealDur::from_millis(1.0)), "0.001");
    assert_eq!(tiny_json::to_string(&ProcessId(7)), "7");
}

#[test]
fn multiset_serializes_sorted() {
    let m = Multiset::from_values(&[3.0, 1.0, 2.0]);
    let json = tiny_json::to_string(&m);
    assert!(json.contains("[1.0,2.0,3.0]"), "{json}");
}
