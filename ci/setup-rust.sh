#!/usr/bin/env bash
# Shared CI toolchain setup — the one place the workflow installs Rust.
#
# GitHub's YAML has no anchors and this repo keeps no composite actions,
# so every job calls this script instead of repeating the rustup line:
#
#   ci/setup-rust.sh                  # toolchain only (bench jobs)
#   ci/setup-rust.sh clippy,rustfmt   # with components (lint job)
set -euo pipefail

components="${1:-}"
if [ -n "$components" ]; then
  rustup toolchain install stable --profile minimal --component "$components"
else
  rustup toolchain install stable --profile minimal
fi
rustup default stable
rustc --version
cargo --version
