//! A gallery of Byzantine behaviours thrown at the algorithm, including
//! the fault boundary: the same attack absorbed at n = 3f+1 diverges the
//! fleet at n = 3f (the [DHS] impossibility).
//!
//! Run: `cargo run --release --example byzantine_gallery`

use welch_lynch::analysis::skew::SkewSeries;
use welch_lynch::analysis::ExecutionView;
use welch_lynch::clock::drift::DriftModel;
use welch_lynch::core::scenario::{FaultKind, ScenarioBuilder};
use welch_lynch::core::{theory, Params};
use welch_lynch::sim::ProcessId;
use welch_lynch::time::{RealDur, RealTime};

fn steady_skew(params: &Params, fault: Option<FaultKind>, n_override: Option<usize>) -> f64 {
    let mut params = params.clone();
    if let Some(n) = n_override {
        params.n = n;
    }
    let mut b = ScenarioBuilder::new(params.clone())
        .seed(11)
        .drift(DriftModel::EvenSpread { rho: params.rho })
        .t_end(RealTime::from_secs(60.0));
    if let Some(k) = fault {
        b = b.fault(ProcessId(0), k);
    }
    let built = b.build();
    let plan = built.plan.clone();
    let mut sim = built.sim;
    let outcome = sim.run();
    let view = ExecutionView::with_plan(sim.clocks(), &outcome.corr, &plan);
    SkewSeries::sample_with_events(
        &view,
        RealTime::from_secs(30.0),
        RealTime::from_secs(58.0),
        RealDur::from_secs(params.p_round / 5.0),
    )
    .max()
}

fn main() {
    let params = Params::auto(4, 1, 1e-4, 0.010, 0.001).expect("feasible");
    let gamma = theory::gamma(&params);
    println!("n=4, f=1, gamma = {:.3}ms\n", gamma * 1e3);

    let cases: Vec<(&str, Option<FaultKind>)> = vec![
        ("no faults", None),
        ("silent", Some(FaultKind::Silent)),
        ("crash at t=20s", Some(FaultKind::CrashAt(20.0))),
        ("random protocol spam", Some(FaultKind::RoundSpam)),
        ("two-faced pull-apart", Some(FaultKind::PullApart(params.beta / 2.0))),
        ("targeted straddle", Some(FaultKind::PullApartHigh(3.0 * params.beta))),
    ];
    for (name, fault) in cases {
        let skew = steady_skew(&params, fault, None);
        println!(
            "{name:<24} skew {:>9.3}ms  ({})",
            skew * 1e3,
            if skew <= gamma { "within gamma" } else { "DIVERGED" }
        );
    }

    println!("\n--- the boundary: same straddle attack, one process fewer ---");
    let attack = Some(FaultKind::PullApartHigh(3.0 * params.beta));
    let ok = steady_skew(&params, attack, Some(4));
    let broken = steady_skew(&params, attack, Some(3));
    println!("n = 3f+1 = 4: skew {:>9.3}ms (absorbed)", ok * 1e3);
    println!("n = 3f   = 3: skew {:>9.3}ms (diverges: [DHS] impossibility)", broken * 1e3);
    assert!(ok <= gamma);
    assert!(broken > gamma, "expected divergence at n = 3f");
}
