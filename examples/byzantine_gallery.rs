//! A gallery of Byzantine behaviours thrown at the algorithm, including
//! the fault boundary: the same attack absorbed at n = 3f+1 diverges the
//! fleet at n = 3f (the [DHS] impossibility). The gallery sweep runs
//! through the harness's parallel `SweepRunner`.
//!
//! Run: `cargo run --release --example byzantine_gallery`

use welch_lynch::analysis::skew::SkewSeries;
use welch_lynch::analysis::ExecutionView;
use welch_lynch::clock::drift::DriftModel;
use welch_lynch::core::{theory, Params};
use welch_lynch::harness::{assemble, FaultKind, Maintenance, ScenarioSpec, SweepRunner};
use welch_lynch::sim::ProcessId;
use welch_lynch::time::{RealDur, RealTime};

fn gallery_spec(
    params: &Params,
    fault: Option<FaultKind>,
    n_override: Option<usize>,
) -> ScenarioSpec {
    let mut params = params.clone();
    if let Some(n) = n_override {
        params.n = n;
    }
    let rho = params.rho;
    let mut spec = ScenarioSpec::new(params)
        .seed(11)
        .drift(DriftModel::EvenSpread { rho })
        .t_end(RealTime::from_secs(60.0));
    if let Some(k) = fault {
        spec = spec.fault(ProcessId(0), k);
    }
    spec
}

fn steady_skew(spec: &ScenarioSpec) -> f64 {
    let built = assemble::<Maintenance>(spec);
    let params = built.params.clone();
    let plan = built.plan.clone();
    let mut sim = built.sim;
    let outcome = sim.run();
    let view = ExecutionView::with_plan(sim.clocks(), &outcome.corr, &plan);
    SkewSeries::sample_with_events(
        &view,
        RealTime::from_secs(30.0),
        RealTime::from_secs(58.0),
        RealDur::from_secs(params.p_round / 5.0),
    )
    .max()
}

fn main() {
    let params = Params::auto(4, 1, 1e-4, 0.010, 0.001).expect("feasible");
    let gamma = theory::gamma(&params);
    println!("n=4, f=1, gamma = {:.3}ms\n", gamma * 1e3);

    let cases: Vec<(&str, Option<FaultKind>)> = vec![
        ("no faults", None),
        ("silent", Some(FaultKind::Silent)),
        ("crash at t=20s", Some(FaultKind::CrashAt(20.0))),
        ("random protocol spam", Some(FaultKind::RoundSpam)),
        (
            "two-faced pull-apart",
            Some(FaultKind::PullApart(params.beta / 2.0)),
        ),
        (
            "targeted straddle",
            Some(FaultKind::PullApartHigh(3.0 * params.beta)),
        ),
    ];
    let specs: Vec<ScenarioSpec> = cases
        .iter()
        .map(|&(_, fault)| gallery_spec(&params, fault, None))
        .collect();
    let skews = SweepRunner::new().run(specs, |_, spec| steady_skew(spec));
    for ((name, _), skew) in cases.iter().zip(&skews) {
        println!(
            "{name:<24} skew {:>9.3}ms  ({})",
            skew * 1e3,
            if *skew <= gamma {
                "within gamma"
            } else {
                "DIVERGED"
            }
        );
    }

    println!("\n--- the boundary: same straddle attack, one process fewer ---");
    let attack = Some(FaultKind::PullApartHigh(3.0 * params.beta));
    let boundary = SweepRunner::new().run(
        vec![
            gallery_spec(&params, attack, Some(4)),
            gallery_spec(&params, attack, Some(3)),
        ],
        |_, spec| steady_skew(spec),
    );
    let (ok, broken) = (boundary[0], boundary[1]);
    println!("n = 3f+1 = 4: skew {:>9.3}ms (absorbed)", ok * 1e3);
    println!(
        "n = 3f   = 3: skew {:>9.3}ms (diverges: [DHS] impossibility)",
        broken * 1e3
    );
    assert!(ok <= gamma);
    assert!(broken > gamma, "expected divergence at n = 3f");
}
