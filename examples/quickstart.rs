//! Quickstart: synchronize 4 clocks, one of them Byzantine, and check the
//! paper's agreement guarantee.
//!
//! Run: `cargo run --release --example quickstart`

use welch_lynch::analysis::agreement::check_agreement;
use welch_lynch::analysis::ExecutionView;
use welch_lynch::core::{theory, Params};
use welch_lynch::harness::{assemble, FaultKind, Maintenance, ScenarioSpec};
use welch_lynch::sim::ProcessId;
use welch_lynch::time::{RealDur, RealTime};

fn main() {
    // Hardware-fixed constants: drift 1e-6, delay 10ms +/- 1ms.
    // `Params::auto` derives a feasible (beta, P) per the paper's 5.2.
    let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).expect("feasible");
    println!(
        "n={} f={} | beta={:.3}ms P={:.1}ms | gamma={:.3}ms",
        params.n,
        params.f,
        params.beta * 1e3,
        params.p_round * 1e3,
        theory::gamma(&params) * 1e3,
    );

    // One Byzantine process running the two-faced early/late attack.
    let t_end = 30.0;
    let built = assemble::<Maintenance>(
        &ScenarioSpec::new(params.clone())
            .seed(2024)
            .fault(ProcessId(0), FaultKind::PullApart(params.beta / 2.0))
            .t_end(RealTime::from_secs(t_end)),
    );

    let plan = built.plan.clone();
    let mut sim = built.sim;
    let outcome = sim.run();
    println!(
        "simulated {} events, {} messages",
        outcome.stats.events_delivered, outcome.stats.messages_sent
    );

    // Reconstruct every local-time function and check Theorem 16.
    let view = ExecutionView::with_plan(sim.clocks(), &outcome.corr, &plan);
    let report = check_agreement(
        &view,
        &params,
        RealTime::from_secs(params.t0 + 2.0 * params.p_round),
        RealTime::from_secs(t_end * 0.98),
        RealDur::from_secs(params.p_round / 7.0),
    );
    println!(
        "max skew among nonfaulty clocks: {:.1}us (gamma = {:.1}us) -> agreement {}",
        report.max_skew * 1e6,
        report.gamma * 1e6,
        if report.holds { "HOLDS" } else { "VIOLATED" }
    );
    assert!(report.holds);
}
