//! The §9.3 implementation story, live: run the algorithm on OS threads
//! over a shared broadcast medium. Synchronized broadcasts collide; the
//! staggered variant spreads them out.
//!
//! Takes ~12 seconds of wall time (it is a *real-time* runtime).
//!
//! Run: `cargo run --release --example ethernet_stagger`

use welch_lynch::core::{Maintenance, Params};
use welch_lynch::runtime::{Cluster, ClusterConfig};
use welch_lynch::sim::{Automaton, ProcessId};
use welch_lynch::time::ClockTime;

fn main() {
    let n = 4;
    let (rho, delta, eps) = (1e-4, 0.040, 0.008);
    let beta = 6.0 * eps;
    let p_round = 2.0 * welch_lynch::core::params::min_p(rho, delta, eps, beta);
    let busy_window = 0.004;

    for sigma in [0.0, 2.0 * busy_window + beta] {
        let params = Params::new(n, 1, rho, delta, eps, beta, p_round)
            .expect("feasible")
            .with_stagger(sigma)
            .expect("stagger fits");
        let config = ClusterConfig {
            n,
            rho,
            delta,
            eps,
            busy_window,
            duration: 6.0,
            seed: 3,
        };
        let starts = vec![ClockTime::from_secs(params.t0); n];
        let outcome = Cluster::run(&config, &starts, |p: ProcessId| {
            Box::new(Maintenance::new(p, params.clone(), 0.0)) as Box<dyn Automaton<Msg = _>>
        });
        println!(
            "sigma = {:>5.1}ms: {} broadcasts on air, {} collided ({:.0}% loss), {} datagrams delivered",
            sigma * 1e3,
            outcome.transmitted,
            outcome.collisions,
            outcome.collision_rate() * 100.0,
            outcome.delivered,
        );
    }
    println!("\n\"...when the system behaves well, it is punished.\"  (section 9.3)");
}
