//! Reintegration: a process crashes out, is repaired mid-round, orients
//! itself from the traffic, and rejoins within the synchronization
//! envelope (§9.1).
//!
//! Run: `cargo run --release --example rejoin`

use welch_lynch::analysis::skew::SkewSeries;
use welch_lynch::analysis::ExecutionView;
use welch_lynch::core::{theory, Params};
use welch_lynch::harness::{assemble, Rejoiner, ScenarioSpec};
use welch_lynch::sim::ProcessId;
use welch_lynch::time::{RealDur, RealTime};

fn main() {
    let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).expect("feasible");
    let repair_at = 10.0 + 0.4 * params.p_round; // mid-round, on purpose
    let t_end = 40.0;

    println!("process 3 is down from the start; repaired at t = {repair_at:.3}s (mid-round)");
    let built = assemble::<Rejoiner>(
        &ScenarioSpec::new(params.clone())
            .seed(5)
            .rejoiner(ProcessId(3), RealTime::from_secs(repair_at))
            .t_end(RealTime::from_secs(t_end))
            .trace(100_000),
    );
    let mut sim = built.sim;
    let outcome = sim.run();

    // The rejoiner annotates its lifecycle; print it.
    for ev in outcome.trace.for_process(ProcessId(3)) {
        if let welch_lynch::sim::trace::TraceEvent::Note { at, text, .. } = ev {
            println!("  [t={:+.3}s] {}", at.as_secs(), text);
        }
    }

    // After a grace period, the rejoined process must be indistinguishable:
    // skew over ALL FOUR processes within gamma.
    let view = ExecutionView::new(sim.clocks(), &outcome.corr, vec![false; 4]);
    let after = SkewSeries::sample_with_events(
        &view,
        RealTime::from_secs(repair_at + 4.0 * params.p_round),
        RealTime::from_secs(t_end * 0.98),
        RealDur::from_secs(params.p_round / 5.0),
    )
    .max();
    let gamma = theory::gamma(&params);
    println!(
        "post-rejoin skew including the repaired process: {:.1}us (gamma = {:.1}us)",
        after * 1e6,
        gamma * 1e6
    );
    assert!(
        after <= gamma,
        "rejoined process must be within the envelope"
    );
}
