//! Cold start: clocks that disagree by *seconds* converge to
//! sub-millisecond agreement with the §9.2 startup algorithm, halving the
//! spread each round (Lemma 20).
//!
//! Run: `cargo run --release --example cold_start`

use welch_lynch::analysis::convergence::round_series;
use welch_lynch::analysis::ExecutionView;
use welch_lynch::core::{theory, StartupParams};
use welch_lynch::harness::{assemble, ScenarioSpec, Startup};
use welch_lynch::sim::ProcessId;
use welch_lynch::time::{RealDur, RealTime};

fn main() {
    let params = StartupParams::new(4, 1, 1e-6, 0.010, 0.001).expect("valid");
    let initial_spread = 5.0; // clocks disagree by up to 5 SECONDS
    println!(
        "startup: initial spread {}s, target ~4eps = {:.1}ms",
        initial_spread,
        4.0 * params.eps * 1e3
    );

    // One silent (faulty) process keeps a stale zero in everyone's DIFF
    // array — the worst case for the averaging function, which makes the
    // per-round halving visible.
    let built = assemble::<Startup>(
        &ScenarioSpec::startup(&params, initial_spread)
            .seed(7)
            .t_end(RealTime::from_secs(10.0))
            .silent(&[ProcessId(3)]),
    );
    let plan = built.plan.clone();
    let mut sim = built.sim;
    let outcome = sim.run();

    let view = ExecutionView::with_plan(sim.clocks(), &outcome.corr, &plan);
    let series = round_series(&view, RealDur::from_secs(params.delta));
    println!("round | spread B_i | Lemma 20 bound from previous");
    let mut prev: Option<f64> = None;
    for (i, &b) in series.skews.iter().enumerate().take(12) {
        let bound =
            prev.map(|p| theory::startup_recurrence(params.rho, params.delta, params.eps, p));
        match bound {
            Some(bd) => println!("{i:>5} | {:>10.3}ms | {:.3}ms", b * 1e3, bd * 1e3),
            None => println!("{i:>5} | {:>10.3}ms | -", b * 1e3),
        }
        prev = Some(b);
    }
    let final_spread = series.final_skew().unwrap_or(f64::NAN);
    println!("final spread: {:.3}ms", final_spread * 1e3);
    assert!(final_spread < 0.01, "must converge below 10ms");
}
