//! # welch-lynch
//!
//! A complete Rust reproduction of *"A New Fault-Tolerant Algorithm for
//! Clock Synchronization"* by Jennifer Lundelius Welch and Nancy Lynch
//! (PODC 1984; Information and Computation 77:1–36, 1988).
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`time`] — type-safe real/clock time quantities.
//! * [`clock`] — ρ-bounded physical and logical clocks.
//! * [`multiset`] — the fault-tolerant averaging function and the
//!   Appendix multiset machinery.
//! * [`sim`] — the discrete-event simulator implementing the paper's
//!   execution model (§2).
//! * [`core`] — the algorithm: maintenance (§4), startup (§9.2),
//!   reintegration (§9.1), variants (§7, §9.3), parameter feasibility
//!   (§5.2), and the closed-form theory bounds.
//! * [`baselines`] — the §10 comparison algorithms (Lamport/Melliar-Smith
//!   interactive convergence, Mahaney–Schneider, Srikanth–Toueg).
//! * [`harness`] — the unified scenario layer: an algorithm-agnostic
//!   [`harness::ScenarioSpec`], the [`harness::SyncAlgorithm`] plug-in
//!   trait implemented by every algorithm above, and the parallel
//!   [`harness::SweepRunner`] for parameter grids.
//! * [`analysis`] — skew measurement and property checking (Theorems 4,
//!   16, 19; Lemmas 10, 20).
//! * [`runtime`] — a threaded real-time runtime with a shared-medium
//!   network model for the §9.3 implementation study.
//!
//! See `README.md` for a tour and `EXPERIMENTS.md` for the reproduction of
//! every quantitative claim in the paper.

pub use wl_analysis as analysis;
pub use wl_baselines as baselines;
pub use wl_clock as clock;
pub use wl_core as core;
pub use wl_harness as harness;
pub use wl_multiset as multiset;
pub use wl_runtime as runtime;
pub use wl_sim as sim;
pub use wl_time as time;
