//! The work-stealing frontier: a persisted queue of grid **chunks** that
//! any number of workers — local subprocesses, remote machines on a
//! shared mount, service-backed fleets — drain cooperatively.
//!
//! PR 4's driver slices a grid statically (`k/N` shards), which makes a
//! heterogeneous fleet finish at the pace of its slowest member and
//! makes a dead worker's slice wait for a restart. The frontier replaces
//! the static slice with a directory of chunk files whose *names* encode
//! their state, moved between states with `rename(2)` — the one
//! filesystem operation that is atomic on every platform this workspace
//! targets, including NFS-style shared mounts:
//!
//! ```text
//! frontier/
//!   frontier.manifest      # the grid this frontier belongs to (identity)
//!   c00004.todo            # chunk 4: unclaimed
//!   c00002.claim-w1-a0     # chunk 2: claimed by worker "w1-a0"
//!   c00000.done            # chunk 0: results durably checkpointed
//! ```
//!
//! * **Claim** — rename `cNNNNN.todo` → `cNNNNN.claim-<worker>`. Two
//!   workers racing the same chunk issue two renames of the same source;
//!   exactly one succeeds, the loser moves on. The winner then touches
//!   the claim file, and keeps touching it per grid point — the file's
//!   mtime is the chunk's heartbeat.
//! * **Complete** — the worker checkpoints its store (the chunk's
//!   records are durable *first*), then renames the claim → `.done`.
//!   `.done` files are only ever created, never removed, so "all chunks
//!   done" is a stable, race-free completion test.
//! * **Orphan requeue** — a claim whose mtime is older than the steal
//!   timeout is renamed back to `.todo` by whoever notices (a worker out
//!   of work, or the driver's monitor loop); a crashed worker's chunks
//!   are simply re-claimed. A *falsely* orphaned claim (the owner was
//!   slow, not dead) is harmless: the owner's completion rename fails
//!   with `NotFound`, its results stay in its own store, and the
//!   equality-confirmed merge tolerates the duplicate coverage.
//!
//! Every transition is a single-source rename, so each chunk is in
//! exactly one state; re-execution is idempotent because outcomes are
//! pure functions of the spec and the merge refuses disagreement. That
//! is why the merged store is **byte-identical to a 1-process run for
//! any chunk size, claim interleaving, or worker death schedule** —
//! pinned by `tests/frontier_determinism.rs` (proptest) and the
//! transport conformance suite. Byte layout and protocol:
//! `docs/sweeps.md` § "The frontier".
//!
//! The frontier refuses to operate on a directory initialized for a
//! *different* grid (other specs, other chunk size, other
//! [`ENGINE_VERSION`]): the manifest pins the identity, and a mismatch
//! is a [`FrontierError::Mismatch`] naming the offending field — never a
//! silent merge of two unrelated sweeps.

use crate::cache::{
    canon_string, fnv64_seeded, StoreFormat, SweepStore, ENGINE_VERSION, FNV_OFFSET,
};
use crate::spec::ScenarioSpec;
use crate::sweep::{
    run_point_cached, run_point_cached_series, run_point_cached_sketch, Capture, SweepAlgorithm,
    SweepRunner,
};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime};

/// Name of the identity file inside a frontier directory.
const MANIFEST: &str = "frontier.manifest";

// ---------------------------------------------------------------------------
// Identity.
// ---------------------------------------------------------------------------

/// What makes two frontiers "the same sweep": the grid, the algorithm,
/// the chunking, and the engine that will execute the points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontierSpec {
    /// Number of grid points.
    pub grid_len: usize,
    /// Grid points per chunk (the work-stealing granule).
    pub chunk: usize,
    /// Algorithm name ([`crate::SyncAlgorithm::NAME`]).
    pub algo: String,
    /// FNV-1a over every canonical spec serialization, in grid order —
    /// two grids hash equal iff they execute identically.
    pub grid_hash: u64,
    /// The [`ENGINE_VERSION`] whose records this frontier produces.
    pub engine_version: u32,
}

impl FrontierSpec {
    /// The identity of `grid` under algorithm `A`, cut into
    /// `chunk`-point chunks.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    #[must_use]
    pub fn for_grid<A: SweepAlgorithm>(grid: &[ScenarioSpec], chunk: usize) -> Self {
        assert!(chunk >= 1, "frontier chunks must hold at least one point");
        let mut hash = FNV_OFFSET;
        for spec in grid {
            hash = fnv64_seeded(hash, canon_string(&spec.canonical()).as_bytes());
            hash = fnv64_seeded(hash, b"\n");
        }
        Self {
            grid_len: grid.len(),
            chunk,
            algo: A::NAME.to_string(),
            grid_hash: hash,
            engine_version: ENGINE_VERSION,
        }
    }

    /// Number of chunks this spec cuts the grid into.
    #[must_use]
    pub fn chunks(&self) -> usize {
        self.grid_len.div_ceil(self.chunk)
    }

    fn manifest_text(&self) -> String {
        format!(
            "wl-frontier v1\nengine {}\nalgo {}\ngrid_len {}\nchunk {}\ngrid_hash {:016x}\n",
            self.engine_version, self.algo, self.grid_len, self.chunk, self.grid_hash
        )
    }

    fn parse_manifest(text: &str) -> Option<Self> {
        let mut lines = text.lines();
        if lines.next()? != "wl-frontier v1" {
            return None;
        }
        let mut field = |name: &str| -> Option<String> {
            let line = lines.next()?;
            let rest = line.strip_prefix(name)?.strip_prefix(' ')?;
            Some(rest.to_string())
        };
        Some(Self {
            engine_version: field("engine")?.parse().ok()?,
            algo: field("algo")?,
            grid_len: field("grid_len")?.parse().ok()?,
            chunk: field("chunk")?.parse().ok()?,
            grid_hash: u64::from_str_radix(&field("grid_hash")?, 16).ok()?,
        })
    }
}

// ---------------------------------------------------------------------------
// Errors.
// ---------------------------------------------------------------------------

/// Why a frontier could not be initialized, opened, or drained.
#[derive(Debug)]
pub enum FrontierError {
    /// Filesystem trouble.
    Io(io::Error),
    /// The directory holds a frontier for a **different sweep** — wrong
    /// grid, wrong algorithm, wrong chunk size, or wrong engine. Using
    /// it would merge two unrelated sweeps, so the operation refuses.
    Mismatch {
        /// The frontier directory that was refused.
        dir: PathBuf,
        /// The manifest field that disagreed (`engine`, `algo`,
        /// `grid_len`, `chunk`, `grid_hash`).
        field: &'static str,
        /// What the on-disk manifest says.
        found: String,
        /// What this run expected.
        expected: String,
    },
    /// The directory has no (parseable) manifest where one is required —
    /// workers refuse to guess what grid a bare directory means.
    Missing {
        /// The directory lacking a manifest.
        dir: PathBuf,
    },
}

impl std::fmt::Display for FrontierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "frontier I/O failure: {e}"),
            Self::Mismatch {
                dir,
                field,
                found,
                expected,
            } => write!(
                f,
                "frontier at {} belongs to a different sweep: {field} is {found}, \
                 this run expects {expected} — use a fresh directory (or finish/delete \
                 the old sweep first)",
                dir.display()
            ),
            Self::Missing { dir } => write!(
                f,
                "no frontier manifest in {} — initialize the frontier (driver side) \
                 before starting workers",
                dir.display()
            ),
        }
    }
}

impl std::error::Error for FrontierError {}

impl From<io::Error> for FrontierError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

// ---------------------------------------------------------------------------
// The frontier.
// ---------------------------------------------------------------------------

/// Counts of chunks per state, from one directory scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontierStatus {
    /// Unclaimed chunks.
    pub todo: usize,
    /// Chunks currently claimed by some worker.
    pub claimed: usize,
    /// Chunks whose results are durably checkpointed.
    pub done: usize,
}

/// A handle on one frontier directory (see the module docs for the
/// on-disk protocol).
#[derive(Debug, Clone)]
pub struct Frontier {
    dir: PathBuf,
    spec: FrontierSpec,
}

impl Frontier {
    /// Initializes (or resumes) the frontier for `spec` in `dir` — the
    /// **driver** side. A fresh directory gets one `.todo` file per
    /// chunk plus the manifest (written last, atomically, so a manifest
    /// implies a fully populated frontier). A directory already holding
    /// a manifest is validated against `spec`: a match *resumes* (chunks
    /// already done stay done — a re-drive pays only the remainder); any
    /// mismatch is refused.
    ///
    /// # Errors
    ///
    /// [`FrontierError::Mismatch`] for a foreign frontier,
    /// [`FrontierError::Io`] for filesystem failures.
    pub fn init(dir: impl Into<PathBuf>, spec: FrontierSpec) -> Result<Self, FrontierError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let manifest = dir.join(MANIFEST);
        if manifest.exists() {
            let frontier = Self { dir, spec };
            frontier.validate()?;
            return Ok(frontier);
        }
        let frontier = Self { dir, spec };
        for c in 0..frontier.spec.chunks() {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(frontier.todo_path(c))
            {
                Ok(_) => {}
                // A torn previous init left this one behind; keep it.
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {}
                Err(e) => return Err(e.into()),
            }
        }
        // Manifest last, atomically: its existence certifies the chunk
        // files above are all in place.
        let tmp = frontier.dir.join(format!("{MANIFEST}.tmp"));
        std::fs::write(&tmp, frontier.spec.manifest_text())?;
        std::fs::rename(&tmp, manifest)?;
        Ok(frontier)
    }

    /// Opens an existing frontier — the **worker** side. The manifest
    /// must exist and must match `spec` in every field except `chunk`
    /// (workers adopt whatever chunking the initializer picked, so the
    /// caller's `spec.chunk` is ignored).
    ///
    /// # Errors
    ///
    /// [`FrontierError::Missing`] if there is no manifest,
    /// [`FrontierError::Mismatch`] for a foreign frontier.
    pub fn open(dir: impl Into<PathBuf>, spec: FrontierSpec) -> Result<Self, FrontierError> {
        let dir = dir.into();
        let manifest = Self::read_manifest(&dir)?;
        let frontier = Self {
            dir,
            spec: FrontierSpec {
                chunk: manifest.chunk,
                ..spec
            },
        };
        frontier.validate()?;
        Ok(frontier)
    }

    fn read_manifest(dir: &Path) -> Result<FrontierSpec, FrontierError> {
        let text = match std::fs::read_to_string(dir.join(MANIFEST)) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Err(FrontierError::Missing { dir: dir.into() })
            }
            Err(e) => return Err(e.into()),
        };
        FrontierSpec::parse_manifest(&text)
            .ok_or_else(|| FrontierError::Missing { dir: dir.into() })
    }

    /// Re-reads the manifest and checks every identity field.
    fn validate(&self) -> Result<(), FrontierError> {
        let found = Self::read_manifest(&self.dir)?;
        let want = &self.spec;
        let mismatch = |field, found: String, expected: String| {
            Err(FrontierError::Mismatch {
                dir: self.dir.clone(),
                field,
                found,
                expected,
            })
        };
        if found.engine_version != want.engine_version {
            return mismatch(
                "engine",
                format!("v{}", found.engine_version),
                format!("v{}", want.engine_version),
            );
        }
        if found.algo != want.algo {
            return mismatch("algo", found.algo, want.algo.clone());
        }
        if found.grid_len != want.grid_len {
            return mismatch(
                "grid_len",
                found.grid_len.to_string(),
                want.grid_len.to_string(),
            );
        }
        if found.chunk != want.chunk {
            return mismatch("chunk", found.chunk.to_string(), want.chunk.to_string());
        }
        if found.grid_hash != want.grid_hash {
            return mismatch(
                "grid_hash",
                format!("{:016x}", found.grid_hash),
                format!("{:016x}", want.grid_hash),
            );
        }
        Ok(())
    }

    /// The identity this frontier was opened with.
    #[must_use]
    pub fn spec(&self) -> &FrontierSpec {
        &self.spec
    }

    /// The frontier directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Total chunk count.
    #[must_use]
    pub fn chunks(&self) -> usize {
        self.spec.chunks()
    }

    /// The grid-index range chunk `c` owns.
    #[must_use]
    pub fn chunk_range(&self, c: usize) -> std::ops::Range<usize> {
        let start = c * self.spec.chunk;
        start..((c + 1) * self.spec.chunk).min(self.spec.grid_len)
    }

    fn todo_path(&self, c: usize) -> PathBuf {
        self.dir.join(format!("c{c:05}.todo"))
    }

    fn done_path(&self, c: usize) -> PathBuf {
        self.dir.join(format!("c{c:05}.done"))
    }

    fn claim_path(&self, c: usize, worker: &str) -> PathBuf {
        self.dir.join(format!("c{c:05}.claim-{worker}"))
    }

    /// Parses `cNNNNN.<state>` off a directory entry.
    fn parse_entry(name: &str) -> Option<(usize, &str)> {
        let rest = name.strip_prefix('c')?;
        let (digits, state) = rest.split_once('.')?;
        if digits.len() != 5 || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        Some((digits.parse().ok()?, state))
    }

    fn scan(&self) -> io::Result<Vec<(usize, String)>> {
        let mut entries = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some((chunk, state)) = Self::parse_entry(name) {
                entries.push((chunk, state.to_string()));
            }
        }
        entries.sort();
        Ok(entries)
    }

    /// One directory scan, bucketed by state.
    ///
    /// # Errors
    ///
    /// Directory read failures.
    pub fn status(&self) -> io::Result<FrontierStatus> {
        let mut status = FrontierStatus::default();
        for (_, state) in self.scan()? {
            match state.as_str() {
                "todo" => status.todo += 1,
                "done" => status.done += 1,
                s if s.starts_with("claim-") => status.claimed += 1,
                _ => {}
            }
        }
        Ok(status)
    }

    /// Whether every chunk's results are durably checkpointed. `.done`
    /// files are only ever created, so a `true` is final — no rename
    /// race can un-complete a frontier.
    ///
    /// # Errors
    ///
    /// Directory read failures.
    pub fn is_complete(&self) -> io::Result<bool> {
        Ok((0..self.chunks()).all(|c| self.done_path(c).exists()))
    }

    /// Tries to claim one `.todo` chunk for `worker` (lowest chunk id
    /// first, so progress is front-to-back and post-mortems read
    /// linearly). `Ok(None)` = nothing claimable *right now* — the
    /// caller distinguishes "all done" from "all claimed elsewhere" via
    /// [`status`](Self::status).
    ///
    /// # Errors
    ///
    /// Directory read failures. Losing a claim race is not an error.
    pub fn claim(&self, worker: &str) -> io::Result<Option<Claim>> {
        for (chunk, state) in self.scan()? {
            if state != "todo" {
                continue;
            }
            let claim = self.claim_path(chunk, worker);
            match std::fs::rename(self.todo_path(chunk), &claim) {
                Ok(()) => {
                    // rename(2) preserves mtime; the heartbeat starts at
                    // the moment of claiming, so stamp it.
                    let _ = std::fs::OpenOptions::new()
                        .append(true)
                        .open(&claim)
                        .and_then(|mut f| f.write_all(b"+"));
                    return Ok(Some(Claim {
                        chunk,
                        range: self.chunk_range(chunk),
                        path: claim,
                        done: self.done_path(chunk),
                        todo: self.todo_path(chunk),
                    }));
                }
                // Someone else won the rename; try the next chunk.
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(None)
    }

    /// Requeues every claim whose heartbeat (file mtime) is older than
    /// `timeout` — the crash-recovery half of work stealing. Returns how
    /// many chunks went back to `.todo`.
    ///
    /// # Errors
    ///
    /// Directory read failures. A claim vanishing mid-requeue (its owner
    /// completed or another stealer got there first) is not an error.
    pub fn requeue_stale(&self, timeout: Duration) -> io::Result<usize> {
        let mut requeued = 0;
        for (chunk, state) in self.scan()? {
            if !state.starts_with("claim-") {
                continue;
            }
            let path = self.dir.join(format!("c{chunk:05}.{state}"));
            let stale = std::fs::metadata(&path)
                .and_then(|m| m.modified())
                .ok()
                .and_then(|mtime| SystemTime::now().duration_since(mtime).ok())
                .is_some_and(|age| age >= timeout);
            if !stale {
                continue;
            }
            match std::fs::rename(&path, self.todo_path(chunk)) {
                Ok(()) => requeued += 1,
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(requeued)
    }
}

/// A claimed chunk: the worker's exclusive (until stolen) license to
/// execute one grid-index range.
#[derive(Debug)]
pub struct Claim {
    chunk: usize,
    range: std::ops::Range<usize>,
    path: PathBuf,
    done: PathBuf,
    todo: PathBuf,
}

impl Claim {
    /// The claimed chunk's id.
    #[must_use]
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// The grid-index range this chunk owns.
    #[must_use]
    pub fn range(&self) -> std::ops::Range<usize> {
        self.range.clone()
    }

    /// Refreshes the claim's heartbeat (appends one byte, advancing the
    /// file mtime). Returns `false` if the claim has been stolen — the
    /// worker may finish the chunk anyway (harmless; see module docs) or
    /// abandon it.
    pub fn beat(&self) -> bool {
        std::fs::OpenOptions::new()
            .append(true)
            .open(&self.path)
            .and_then(|mut f| f.write_all(b"."))
            .is_ok()
    }

    /// Marks the chunk done. Call **only after** the store holding its
    /// records has been checkpointed — `.done` means durable. Returns
    /// `false` if the claim was stolen while the worker ran (the chunk
    /// is someone else's to finish; the caller's records merge fine).
    ///
    /// # Errors
    ///
    /// Rename failures other than the claim being gone.
    pub fn complete(self) -> io::Result<bool> {
        match std::fs::rename(&self.path, &self.done) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Returns the chunk to `.todo` unexecuted (a worker shutting down
    /// gracefully mid-queue).
    ///
    /// # Errors
    ///
    /// Rename failures other than the claim being gone.
    pub fn release(self) -> io::Result<()> {
        match std::fs::rename(&self.path, &self.todo) {
            Ok(()) | Err(_) => Ok(()),
        }
    }
}

// ---------------------------------------------------------------------------
// The frontier worker body.
// ---------------------------------------------------------------------------

/// Configuration of one frontier worker (the subprocess side of every
/// transport).
#[derive(Debug, Clone)]
pub struct FrontierWorkerConfig {
    /// The frontier directory (must already be initialized).
    pub frontier: PathBuf,
    /// This worker's claim identity — unique per launch (the transports
    /// use `w<slot>-a<attempt>`), sanitized to `[A-Za-z0-9_-]`.
    pub worker: String,
    /// The worker's private store (created if missing, hydrated if
    /// present — a restarted worker resumes, paying only for points that
    /// never checkpointed).
    pub store: PathBuf,
    /// On-disk store format (binary checkpoints are O(chunk) appends).
    pub format: StoreFormat,
    /// Claims older than this are considered orphaned and requeued when
    /// this worker runs out of `.todo` chunks.
    pub steal_timeout: Duration,
    /// How long to sleep between frontier scans while waiting for
    /// claimed-elsewhere chunks to resolve.
    pub poll: Duration,
    /// Fault injection: abort the process (as `kill -9` would) right
    /// after checkpointing this many chunks, **before** marking the last
    /// one done — the orphaned claim is what work stealing must recover.
    pub crash_after_chunks: Option<usize>,
    /// What each grid point records (scalar, sketch, or series). Every
    /// worker draining one frontier must agree — payload kinds are
    /// per-record, and a mixed fleet would leave the merged store's
    /// richness dependent on which worker won each chunk.
    pub capture: Capture,
}

/// Cumulative progress of a frontier worker, reported after every chunk.
#[derive(Debug, Clone, Copy, Default)]
pub struct FrontierProgress {
    /// Chunks this worker completed (claim → checkpoint → done).
    pub chunks: usize,
    /// Chunks this worker executed but could not mark done (its claim
    /// was stolen mid-run; the records still merge).
    pub stolen: usize,
    /// Orphaned claims this worker requeued for anyone to steal.
    pub requeued: usize,
    /// Grid points processed (hits and misses both count).
    pub points: usize,
    /// Cache hits (points served without simulating).
    pub hits: u64,
    /// Cache misses (points that ran a simulation).
    pub misses: u64,
    /// Records in the worker store after the last checkpoint.
    pub records: usize,
}

/// Drains the frontier at `cfg.frontier`: claim a chunk, execute its
/// grid points through the shared cached per-point body, checkpoint,
/// mark done, repeat — until every chunk is `.done`. The worker protocol
/// body shared by `sweep_drive --frontier-worker`, the conformance
/// suite's workers, and any remote machine on a shared mount.
///
/// When `WL_SWEEP_SERVICE` is configured, each claimed chunk is first
/// offered to the service as one batch claim (warm points arrive as
/// records, cold ones simulate locally) and the simulated remainder is
/// pushed back per chunk — so a service-backed fleet shares work at
/// chunk granularity, not only per sweep.
///
/// `on_chunk` fires after every chunk resolution (done, stolen, or
/// requeue pass); workers print one progress line from it.
///
/// # Errors
///
/// [`FrontierError::Missing`]/[`FrontierError::Mismatch`] if the
/// directory does not hold this grid's frontier; I/O failures.
pub fn run_worker_frontier<A: SweepAlgorithm>(
    runner: &SweepRunner,
    grid: Vec<ScenarioSpec>,
    cfg: &FrontierWorkerConfig,
    mut on_chunk: impl FnMut(&FrontierProgress),
) -> Result<FrontierProgress, FrontierError> {
    let frontier = Frontier::open(&cfg.frontier, FrontierSpec::for_grid::<A>(&grid, 1))?;
    let mut store = SweepStore::open(&cfg.store)?;
    store.set_format(cfg.format);
    let cache = store.hydrate();
    let service = crate::service::ServiceSweepCache::from_env();
    let mut progress = FrontierProgress {
        records: store.len(),
        ..FrontierProgress::default()
    };
    let mut checkpointed = 0usize;
    loop {
        let Some(claim) = frontier.claim(&cfg.worker)? else {
            if frontier.is_complete()? {
                break;
            }
            // Everything is claimed elsewhere: requeue orphans, then
            // give the living owners a beat to finish.
            progress.requeued += frontier.requeue_stale(cfg.steal_timeout)?;
            on_chunk(&progress);
            std::thread::sleep(cfg.poll);
            continue;
        };
        let points: Vec<(usize, ScenarioSpec)> =
            claim.range().map(|i| (i, grid[i].clone())).collect();
        if let Some(service) = &service {
            let specs: Vec<ScenarioSpec> = points.iter().map(|(_, s)| s.clone()).collect();
            service.prefetch::<A>(&specs, cfg.capture, &cache);
        }
        let _ = runner.run(points, |_, (index, spec)| {
            let outcome = match cfg.capture {
                Capture::Scalar => run_point_cached::<A>(*index, spec, &cache),
                Capture::Sketch => run_point_cached_sketch::<A>(*index, spec, &cache),
                Capture::Series => run_point_cached_series::<A>(*index, spec, &cache),
            };
            claim.beat();
            outcome
        });
        store.absorb(&cache);
        // Records durable before the chunk can read as done.
        store.checkpoint()?;
        checkpointed += 1;
        if let Some(service) = &service {
            service.push_back::<A>(&cache);
        }
        if cfg.crash_after_chunks == Some(checkpointed) {
            // Simulated crash: no unwinding, no destructors, the claim
            // left orphaned — the closest safe stand-in for `kill -9`.
            // Work stealing (or this worker's restart) must recover it.
            std::process::abort();
        }
        let range_len = claim.range().len();
        if claim.complete()? {
            progress.chunks += 1;
        } else {
            progress.stolen += 1;
        }
        progress.points += range_len;
        progress.hits = cache.hits();
        progress.misses = cache.misses();
        progress.records = store.len();
        on_chunk(&progress);
    }
    if progress.points == 0 {
        // A worker that never won a claim still writes a valid
        // (header-only) store so transports that merge by enumeration
        // find a file.
        store.save()?;
        on_chunk(&progress);
    }
    Ok(progress)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{derive_seed, SweepCache};
    use crate::Maintenance;
    use wl_core::Params;
    use wl_time::RealTime;

    fn grid(count: usize) -> Vec<ScenarioSpec> {
        let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap();
        (0..count)
            .map(|i| {
                ScenarioSpec::new(params.clone())
                    .seed(derive_seed(0xF407_713E, i as u64))
                    .t_end(RealTime::from_secs(1.5))
            })
            .collect()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wl-frontier-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn spec_identity_is_grid_sensitive() {
        let a = FrontierSpec::for_grid::<Maintenance>(&grid(4), 2);
        let b = FrontierSpec::for_grid::<Maintenance>(&grid(4), 2);
        assert_eq!(a, b);
        let c = FrontierSpec::for_grid::<Maintenance>(&grid(5), 2);
        assert_ne!(a.grid_hash, c.grid_hash);
        assert_eq!(a.chunks(), 2);
        assert_eq!(
            FrontierSpec::for_grid::<Maintenance>(&grid(5), 2).chunks(),
            3
        );
        // The manifest round-trips every field.
        let parsed = FrontierSpec::parse_manifest(&a.manifest_text()).unwrap();
        assert_eq!(parsed, a);
    }

    #[test]
    fn claims_are_exactly_once_and_complete() {
        let dir = tmp("claims");
        let spec = FrontierSpec::for_grid::<Maintenance>(&grid(5), 2);
        let frontier = Frontier::init(&dir, spec).unwrap();
        assert_eq!(frontier.chunks(), 3);
        assert_eq!(frontier.chunk_range(2), 4..5);

        let a = frontier.claim("a").unwrap().unwrap();
        let b = frontier.claim("b").unwrap().unwrap();
        let c = frontier.claim("c").unwrap().unwrap();
        assert_eq!((a.chunk(), b.chunk(), c.chunk()), (0, 1, 2));
        assert!(frontier.claim("d").unwrap().is_none(), "no fourth chunk");
        assert!(!frontier.is_complete().unwrap());

        assert!(a.complete().unwrap());
        c.release().unwrap();
        let status = frontier.status().unwrap();
        assert_eq!((status.todo, status.claimed, status.done), (1, 1, 1));
        let c2 = frontier.claim("d").unwrap().unwrap();
        assert_eq!(c2.chunk(), 2, "released chunk re-claimable");
        assert!(b.complete().unwrap());
        assert!(c2.complete().unwrap());
        assert!(frontier.is_complete().unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_claims_requeue_and_stolen_completion_is_reported() {
        let dir = tmp("steal");
        let spec = FrontierSpec::for_grid::<Maintenance>(&grid(2), 2);
        let frontier = Frontier::init(&dir, spec).unwrap();
        let claim = frontier.claim("slow").unwrap().unwrap();
        assert!(claim.beat());
        // Nothing is stale under a generous timeout…
        assert_eq!(
            frontier.requeue_stale(Duration::from_secs(3600)).unwrap(),
            0
        );
        // …and everything is under a zero timeout.
        assert_eq!(frontier.requeue_stale(Duration::ZERO).unwrap(), 1);
        let stolen = frontier.claim("thief").unwrap().unwrap();
        assert_eq!(stolen.chunk(), 0);
        // The original owner's completion reports the theft…
        assert!(!claim.complete().unwrap());
        assert!(!frontier.is_complete().unwrap());
        // …and its heartbeat fails, so a long-running owner can notice.
        assert!(stolen.complete().unwrap());
        assert!(frontier.is_complete().unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_frontier_is_refused_with_the_offending_field() {
        let dir = tmp("foreign");
        let spec = FrontierSpec::for_grid::<Maintenance>(&grid(4), 2);
        Frontier::init(&dir, spec.clone()).unwrap();

        // Same dir, different grid: refused on grid_hash (same length).
        let other = FrontierSpec::for_grid::<Maintenance>(
            &{
                let mut g = grid(4);
                g[0] = g[0].clone().seed(0xBAD);
                g
            },
            2,
        );
        match Frontier::init(&dir, other).unwrap_err() {
            FrontierError::Mismatch { field, .. } => assert_eq!(field, "grid_hash"),
            e => panic!("expected Mismatch, got {e}"),
        }
        // Different chunking: refused on chunk (init validates it; open
        // adopts the manifest's).
        match Frontier::init(&dir, FrontierSpec::for_grid::<Maintenance>(&grid(4), 3)) {
            Err(FrontierError::Mismatch { field, .. }) => assert_eq!(field, "chunk"),
            other => panic!("expected chunk mismatch, got {other:?}"),
        }
        // Different grid length: refused on grid_len (checked before the
        // hash so the message names the simplest divergence).
        match Frontier::init(&dir, FrontierSpec::for_grid::<Maintenance>(&grid(6), 2)) {
            Err(FrontierError::Mismatch { field, .. }) => assert_eq!(field, "grid_len"),
            other => panic!("expected grid_len mismatch, got {other:?}"),
        }
        // A stale ENGINE_VERSION in the manifest is refused too.
        let manifest = dir.join(MANIFEST);
        let text = std::fs::read_to_string(&manifest).unwrap();
        std::fs::write(
            &manifest,
            text.replace(
                &format!("engine {ENGINE_VERSION}"),
                &format!("engine {}", ENGINE_VERSION + 1),
            ),
        )
        .unwrap();
        match Frontier::open(&dir, spec).unwrap_err() {
            FrontierError::Mismatch { field, .. } => assert_eq!(field, "engine"),
            e => panic!("expected Mismatch, got {e}"),
        }
        // A bare directory is Missing, not silently adopted.
        std::fs::remove_file(&manifest).unwrap();
        let spec = FrontierSpec::for_grid::<Maintenance>(&grid(4), 2);
        assert!(matches!(
            Frontier::open(&dir, spec).unwrap_err(),
            FrontierError::Missing { .. }
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The 1-process reference store bytes for `grid(n)`.
    fn reference_bytes(n: usize, format: StoreFormat) -> Vec<u8> {
        let cache = SweepCache::new();
        let _ = SweepRunner::serial().sweep_cached::<Maintenance>(grid(n), &cache);
        let mut store = SweepStore::new();
        store.set_format(format);
        store.absorb(&cache);
        let path = std::env::temp_dir().join(format!(
            "wl-frontier-ref-{}-{n}-{format}.wls",
            std::process::id()
        ));
        store.save_to(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        bytes
    }

    fn worker_cfg(dir: &Path, name: &str, format: StoreFormat) -> FrontierWorkerConfig {
        FrontierWorkerConfig {
            frontier: dir.join("frontier"),
            worker: name.to_string(),
            store: dir.join(format!("{name}.wls")),
            format,
            steal_timeout: Duration::from_secs(3600),
            poll: Duration::from_millis(5),
            crash_after_chunks: None,
            capture: Capture::Scalar,
        }
    }

    #[test]
    fn single_frontier_worker_store_matches_reference() {
        for format in [StoreFormat::Text, StoreFormat::Binary] {
            let dir = tmp(&format!("solo-{format}"));
            std::fs::create_dir_all(&dir).unwrap();
            let spec = FrontierSpec::for_grid::<Maintenance>(&grid(5), 2);
            Frontier::init(dir.join("frontier"), spec).unwrap();
            let cfg = worker_cfg(&dir, "solo", format);
            let progress =
                run_worker_frontier::<Maintenance>(&SweepRunner::serial(), grid(5), &cfg, |_| {})
                    .unwrap();
            assert_eq!(progress.chunks, 3);
            assert_eq!(progress.points, 5);
            assert_eq!(progress.misses, 5);
            // The worker's store is already canonical-equivalent: merge
            // into a fresh store and compare against the reference.
            let mut merged = SweepStore::new();
            merged.set_format(format);
            merged
                .merge_from(&SweepStore::open(cfg.store.clone()).unwrap())
                .unwrap();
            let out = dir.join("merged.wls");
            merged.save_to(&out).unwrap();
            assert_eq!(
                std::fs::read(&out).unwrap(),
                reference_bytes(5, format),
                "{format} frontier store != 1-process reference"
            );
            // A re-run over the completed frontier is pure hits and
            // touches nothing.
            let progress =
                run_worker_frontier::<Maintenance>(&SweepRunner::serial(), grid(5), &cfg, |_| {})
                    .unwrap();
            assert_eq!(progress.chunks, 0, "no chunks left to claim");
            assert_eq!(progress.points, 0);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn two_threaded_workers_drain_the_frontier_to_reference_bytes() {
        let dir = tmp("duo");
        std::fs::create_dir_all(&dir).unwrap();
        let spec = FrontierSpec::for_grid::<Maintenance>(&grid(6), 1);
        Frontier::init(dir.join("frontier"), spec).unwrap();
        let cfgs = [
            worker_cfg(&dir, "left", StoreFormat::Text),
            worker_cfg(&dir, "right", StoreFormat::Text),
        ];
        std::thread::scope(|scope| {
            for cfg in &cfgs {
                scope.spawn(move || {
                    run_worker_frontier::<Maintenance>(
                        &SweepRunner::serial(),
                        grid(6),
                        cfg,
                        |_| {},
                    )
                    .unwrap();
                });
            }
        });
        let mut merged = SweepStore::new();
        for cfg in &cfgs {
            merged
                .merge_from(&SweepStore::open(cfg.store.clone()).unwrap())
                .unwrap();
        }
        assert_eq!(merged.len(), 6, "the two workers covered the grid");
        let out = dir.join("merged.wls");
        merged.save_to(&out).unwrap();
        assert_eq!(
            std::fs::read(&out).unwrap(),
            reference_bytes(6, StoreFormat::Text)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
