//! Multi-process sweep driver: partition a grid into `N` shards, run one
//! **worker subprocess** per shard, babysit them, and auto-merge their
//! stores.
//!
//! PR 3's sharding layer made grids splittable (`k/N` shards, canonical
//! stores, equality-confirmed merges) but left the operational half to a
//! human: launch N `sweep_shard` processes, watch them, re-run the ones
//! that died, merge by hand. This module is that human, mechanized:
//!
//! * [`run_worker`] — the **worker** half: runs one shard's grid points
//!   through the shared cached per-point body, *checkpointing* the shard
//!   store every few points (atomic tmp+rename saves). A worker killed at
//!   any instant — `kill -9` included — leaves either the previous or the
//!   next complete store; a re-run hydrates it and pays only for the
//!   points that never checkpointed. That is what makes the driver's
//!   restart policy safe: restarting a shard is idempotent.
//! * [`drive`] — the **driver** half: spawns one worker subprocess per
//!   shard (the caller supplies the [`Command`], so any binary speaking
//!   the worker protocol works), monitors a per-worker *heartbeat*
//!   (store mtime/size + log growth), restarts crashed workers with the
//!   same shard slice under a bounded retry budget, optionally
//!   `SIGKILL`s-and-restarts stalled ones, and finally folds the shard
//!   stores into one canonical output store with
//!   [`SweepStore::merge_from`].
//!
//! The end-to-end contract, pinned by `tests/driver_process.rs` and CI:
//! a driver run — including one whose worker was killed mid-sweep —
//! produces an output store **byte-identical** to a 1-process run over
//! the same grid. See `docs/sweeps.md` § "The driver".

use crate::cache::{MergeConflict, StoreFormat, SweepStore};
use crate::spec::ScenarioSpec;
use crate::sweep::{
    run_point_cached, run_point_cached_series, run_point_cached_sketch, Capture, Shard,
    SweepAlgorithm, SweepRunner,
};
use std::io;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant, SystemTime};

// ---------------------------------------------------------------------------
// Worker half.
// ---------------------------------------------------------------------------

/// Configuration of one shard worker (the subprocess side).
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// The `k/N` slice of the grid this worker owns.
    pub shard: Shard,
    /// The worker's private shard store (created if missing, hydrated if
    /// present — which is exactly how a restarted worker resumes).
    pub store: PathBuf,
    /// Points per checkpoint: after each batch of this many grid points
    /// the store is absorbed and atomically saved, and the heartbeat
    /// callback fires. `0` means "one checkpoint at the end".
    pub checkpoint: usize,
    /// Fault injection: abort the process (as a crash would) right after
    /// this many checkpoints. `None` in production; tests and the CI
    /// kill-smoke use it to crash a worker mid-sweep deterministically.
    pub crash_after: Option<usize>,
    /// On-disk format of the shard store. [`StoreFormat::Binary`] makes
    /// checkpoints *appends* — O(points per checkpoint) instead of
    /// O(points so far) — via [`SweepStore::checkpoint`]; an existing
    /// store in the other format is migrated on the first checkpoint.
    pub format: StoreFormat,
    /// What each grid point records: scalar summaries only (the default),
    /// a mergeable [`crate::SkewSketch`], or the full per-round series.
    /// All shards of one drive must agree, or the merged store would mix
    /// payload kinds across points.
    pub capture: Capture,
}

/// One worker heartbeat: cumulative progress at a checkpoint.
#[derive(Debug, Clone, Copy)]
pub struct WorkerProgress {
    /// Grid points processed so far (hits and misses both count).
    pub done: usize,
    /// Grid points this shard owns in total.
    pub total: usize,
    /// Cache hits so far (points served without simulating).
    pub hits: u64,
    /// Cache misses so far (points that ran a simulation).
    pub misses: u64,
    /// Records in the shard store after the checkpoint save.
    pub records: usize,
}

/// Runs one shard of `grid` under algorithm `A`, checkpointing the shard
/// store as configured — the worker protocol body shared by
/// `sweep_drive --worker` and the test workers.
///
/// `heartbeat` fires after every checkpoint *save*; workers should print
/// one progress line from it (the driver watches the log grow, and log
/// lines are what a human reads post-mortem).
///
/// Resume semantics: the store is opened (corruption-tolerant — a
/// truncated tail from a previous crash costs exactly the damaged
/// records) and hydrated into the cache, so previously checkpointed
/// points are hits and only the remainder simulates.
///
/// # Errors
///
/// Propagates store I/O failures. Simulation itself cannot fail.
pub fn run_worker<A: SweepAlgorithm>(
    runner: &SweepRunner,
    grid: Vec<ScenarioSpec>,
    cfg: &WorkerConfig,
    mut heartbeat: impl FnMut(&WorkerProgress),
) -> io::Result<WorkerProgress> {
    let mut store = SweepStore::open(&cfg.store)?;
    store.set_format(cfg.format);
    let cache = store.hydrate();
    let owned: Vec<(usize, ScenarioSpec)> = grid
        .into_iter()
        .enumerate()
        .filter(|&(i, _)| cfg.shard.owns(i))
        .collect();
    let total = owned.len();
    let chunk = if cfg.checkpoint == 0 {
        total.max(1)
    } else {
        cfg.checkpoint
    };

    // The service tier, when configured: resolve what the shard store
    // could not serve against the shared service before simulating, and
    // offer back whatever the service lacked once the shard is done.
    let service = crate::service::ServiceSweepCache::from_env();
    if let Some(service) = &service {
        let owned_specs: Vec<ScenarioSpec> = owned.iter().map(|(_, s)| s.clone()).collect();
        service.prefetch::<A>(&owned_specs, cfg.capture, &cache);
    }

    let mut progress = WorkerProgress {
        done: 0,
        total,
        hits: 0,
        misses: 0,
        records: store.len(),
    };
    let mut checkpoints = 0usize;
    for batch in owned.chunks(chunk) {
        let _ = runner.run(batch.to_vec(), |_, (index, spec)| match cfg.capture {
            Capture::Scalar => run_point_cached::<A>(*index, spec, &cache),
            Capture::Sketch => run_point_cached_sketch::<A>(*index, spec, &cache),
            Capture::Series => run_point_cached_series::<A>(*index, spec, &cache),
        });
        store.absorb(&cache);
        // Binary stores append one segment per checkpoint (torn tails
        // from a crash mid-append cost exactly that checkpoint on
        // resume); text stores rewrite atomically.
        store.checkpoint()?;
        checkpoints += 1;
        progress = WorkerProgress {
            done: progress.done + batch.len(),
            total,
            hits: cache.hits(),
            misses: cache.misses(),
            records: store.len(),
        };
        heartbeat(&progress);
        if cfg.crash_after == Some(checkpoints) {
            // Simulated crash: no unwinding, no destructors — the closest
            // safe stand-in for `kill -9` the process can inflict on
            // itself. The checkpoint just saved is what the restart sees.
            std::process::abort();
        }
    }
    if total == 0 {
        // An empty shard still writes a valid (header-only) store so the
        // merge step finds a file.
        store.save()?;
        heartbeat(&progress);
    }
    if let Some(service) = &service {
        service.push_back::<A>(&cache);
    }
    Ok(progress)
}

// ---------------------------------------------------------------------------
// Driver half.
// ---------------------------------------------------------------------------

/// Configuration of a [`drive`] run (the parent side).
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Number of shards = number of worker subprocesses.
    pub shards: u32,
    /// Working directory: shard stores (`shard-<k>.wls`) and worker logs
    /// (`worker-<k>.log`) live here. Created if missing. Use a fresh
    /// directory per grid — leftover shard stores from another grid
    /// would merge extra records into the output.
    pub dir: PathBuf,
    /// Path of the merged output store.
    pub out: PathBuf,
    /// Restart budget **per shard**: a worker may crash (or stall) at
    /// most this many times before the drive fails.
    pub max_restarts: u32,
    /// Monitor poll interval.
    pub poll: Duration,
    /// If set, a worker whose heartbeat (store mtime/size, log size)
    /// has not changed for this long is `SIGKILL`ed and restarted,
    /// consuming one restart. `None` trusts workers to either exit or
    /// make progress.
    pub stall_timeout: Option<Duration>,
    /// Format of the merged output store. Shard stores keep whatever
    /// format their workers wrote (the merge auto-detects per file), so
    /// a drive can merge mixed-format shards into either output.
    pub format: StoreFormat,
}

impl DriverConfig {
    /// A config with the defaults the `sweep_drive` bin uses: 2 restarts
    /// per shard, 50 ms poll, no stall timeout.
    #[must_use]
    pub fn new(shards: u32, dir: impl Into<PathBuf>, out: impl Into<PathBuf>) -> Self {
        Self {
            shards,
            dir: dir.into(),
            out: out.into(),
            max_restarts: 2,
            poll: Duration::from_millis(50),
            stall_timeout: None,
            format: StoreFormat::default(),
        }
    }

    /// The store path assigned to shard `k`.
    #[must_use]
    pub fn shard_store(&self, k: u32) -> PathBuf {
        self.dir.join(format!("shard-{k}.wls"))
    }

    /// The log file worker `k`'s stdout/stderr are appended to (across
    /// restarts, so the crash story reads in one place).
    #[must_use]
    pub fn worker_log(&self, k: u32) -> PathBuf {
        self.dir.join(format!("worker-{k}.log"))
    }
}

/// What a completed [`drive`] did.
#[derive(Debug, Clone, Copy, Default)]
pub struct DriveReport {
    /// Records in the merged output store.
    pub merged_records: usize,
    /// Worker restarts across all shards (crashes + stall kills).
    pub restarts: u32,
    /// How many of those restarts were stall kills.
    pub stall_kills: u32,
    /// Corrupt lines skipped while loading shard stores for the merge
    /// (a crashed worker's torn tail, tolerated by design).
    pub skipped_lines: usize,
    /// Stale-engine records ignored while loading shard stores.
    pub stale_records: usize,
    /// Binary shard-store records found superseded by later appended
    /// checkpoint segments (dead bytes a `--compact` would reclaim).
    pub superseded_records: usize,
}

/// Why a [`drive`] failed.
#[derive(Debug)]
pub enum DriveError {
    /// Spawning, polling, or store I/O failed.
    Io(io::Error),
    /// A shard's worker kept failing past its restart budget.
    WorkerExhausted {
        /// The shard whose worker could not be kept alive.
        shard: Shard,
        /// Launch attempts made (1 initial + restarts).
        attempts: u32,
        /// The worker's log, for the post-mortem.
        log: PathBuf,
    },
    /// Two shard stores disagreed — the determinism contract was broken
    /// (mixed engine builds, foreign stores in the work dir).
    Merge(MergeConflict),
}

impl std::fmt::Display for DriveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "driver I/O failure: {e}"),
            Self::WorkerExhausted {
                shard,
                attempts,
                log,
            } => write!(
                f,
                "worker for shard {shard} failed {attempts} time(s), retry budget exhausted \
                 (see {})",
                log.display()
            ),
            Self::Merge(c) => write!(f, "shard store merge failed: {c}"),
        }
    }
}

impl std::error::Error for DriveError {}

impl From<io::Error> for DriveError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// The heartbeat signature of one worker: (store mtime + size, log size).
/// Any change counts as life; checkpoint saves touch the store, progress
/// lines grow the log.
pub(crate) type BeatSig = (Option<(SystemTime, u64)>, u64);

pub(crate) fn beat_sig(store: &Path, log: &Path) -> BeatSig {
    let store_sig = std::fs::metadata(store)
        .ok()
        .and_then(|m| Some((m.modified().ok()?, m.len())));
    let log_len = std::fs::metadata(log).map_or(0, |m| m.len());
    (store_sig, log_len)
}

struct Slot {
    shard: Shard,
    store: PathBuf,
    log: PathBuf,
    child: Child,
    /// Launches so far (1 = initial).
    attempts: u32,
    last_beat: Instant,
    sig: BeatSig,
    done: bool,
}

pub(crate) fn spawn_worker(mut cmd: Command, log: &Path) -> io::Result<Child> {
    let log_file = std::fs::File::options()
        .create(true)
        .append(true)
        .open(log)?;
    let err_file = log_file.try_clone()?;
    cmd.stdin(Stdio::null())
        .stdout(Stdio::from(log_file))
        .stderr(Stdio::from(err_file))
        .spawn()
}

/// Partitions the grid `0/N … (N−1)/N`, runs one worker subprocess per
/// shard, keeps them alive (restart on crash, bounded per-shard retries,
/// optional stall kill), and merges the shard stores into
/// [`DriverConfig::out`].
///
/// `command_for(shard, store, attempt)` builds the worker invocation —
/// typically "this very binary with `--worker k/N --store <path>`"
/// (`attempt` is 0 for the initial launch, so fault injection can be
/// confined to first launches). The driver owns stdout/stderr: both are
/// appended to [`DriverConfig::worker_log`]. A worker signals success by
/// exiting 0 with its store saved; *any* other exit — including being
/// killed — triggers a restart with the same shard slice, which is safe
/// because checkpointed stores make workers idempotent ([`run_worker`]).
///
/// On success the merged store at `cfg.out` is canonical: byte-identical
/// to what a 1-process run over the same grid saves.
///
/// # Errors
///
/// [`DriveError::WorkerExhausted`] when a shard's restart budget runs
/// out (remaining workers are killed before returning),
/// [`DriveError::Merge`] when shard stores disagree, [`DriveError::Io`]
/// for spawn/poll/store failures.
///
/// # Panics
///
/// Panics if `cfg.shards == 0`.
pub fn drive(
    cfg: &DriverConfig,
    mut command_for: impl FnMut(Shard, &Path, u32) -> Command,
) -> Result<DriveReport, DriveError> {
    assert!(cfg.shards >= 1, "driver needs at least one shard");
    std::fs::create_dir_all(&cfg.dir)?;
    let mut report = DriveReport::default();

    let mut slots: Vec<Slot> = Vec::with_capacity(cfg.shards as usize);
    for k in 0..cfg.shards {
        let shard = Shard::new(k, cfg.shards);
        let store = cfg.shard_store(k);
        let log = cfg.worker_log(k);
        let child = match spawn_worker(command_for(shard, &store, 0), &log) {
            Ok(child) => child,
            Err(e) => {
                kill_all(&mut slots);
                return Err(e.into());
            }
        };
        slots.push(Slot {
            shard,
            store,
            log,
            child,
            attempts: 1,
            last_beat: Instant::now(),
            sig: (None, 0),
            done: false,
        });
    }

    let result = monitor(cfg, &mut slots, &mut command_for, &mut report);
    if result.is_err() {
        kill_all(&mut slots);
    }
    result?;

    let mut merged = SweepStore::new();
    merged.set_format(cfg.format);
    for slot in &slots {
        let shard_store = SweepStore::open(&slot.store)?;
        report.skipped_lines += shard_store.skipped_lines();
        report.stale_records += shard_store.stale_records();
        report.superseded_records += shard_store.superseded_records();
        merged.merge_from(&shard_store).map_err(DriveError::Merge)?;
    }
    merged.save_to(&cfg.out)?;
    report.merged_records = merged.len();
    Ok(report)
}

fn kill_all(slots: &mut [Slot]) {
    for slot in slots {
        if !slot.done {
            let _ = slot.child.kill();
            let _ = slot.child.wait();
        }
    }
}

fn monitor(
    cfg: &DriverConfig,
    slots: &mut [Slot],
    command_for: &mut impl FnMut(Shard, &Path, u32) -> Command,
    report: &mut DriveReport,
) -> Result<(), DriveError> {
    loop {
        let mut all_done = true;
        for slot in slots.iter_mut() {
            if slot.done {
                continue;
            }
            all_done = false;
            if let Some(status) = slot.child.try_wait()? {
                if status.success() {
                    slot.done = true;
                    continue;
                }
                restart(cfg, slot, command_for, report)?;
                continue;
            }
            // Still running: refresh the heartbeat, stall-kill if asked.
            let sig = beat_sig(&slot.store, &slot.log);
            if sig != slot.sig {
                slot.sig = sig;
                slot.last_beat = Instant::now();
            } else if let Some(stall) = cfg.stall_timeout {
                if slot.last_beat.elapsed() >= stall {
                    let _ = slot.child.kill(); // SIGKILL on unix
                    let _ = slot.child.wait();
                    report.stall_kills += 1;
                    restart(cfg, slot, command_for, report)?;
                }
            }
        }
        if all_done {
            return Ok(());
        }
        std::thread::sleep(cfg.poll);
    }
}

fn restart(
    cfg: &DriverConfig,
    slot: &mut Slot,
    command_for: &mut impl FnMut(Shard, &Path, u32) -> Command,
    report: &mut DriveReport,
) -> Result<(), DriveError> {
    if slot.attempts > cfg.max_restarts {
        return Err(DriveError::WorkerExhausted {
            shard: slot.shard,
            attempts: slot.attempts,
            log: slot.log.clone(),
        });
    }
    report.restarts += 1;
    let attempt = slot.attempts; // 1-based: first restart passes attempt=1
    slot.child = spawn_worker(command_for(slot.shard, &slot.store, attempt), &slot.log)?;
    slot.attempts += 1;
    slot.sig = beat_sig(&slot.store, &slot.log);
    slot.last_beat = Instant::now();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::derive_seed;
    use crate::Maintenance;
    use wl_core::Params;
    use wl_time::RealTime;

    fn grid(count: usize) -> Vec<ScenarioSpec> {
        let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap();
        (0..count)
            .map(|i| {
                ScenarioSpec::new(params.clone())
                    .seed(derive_seed(0xD21_5EED, i as u64))
                    .t_end(RealTime::from_secs(1.5))
            })
            .collect()
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("wl-driver-{}-{name}", std::process::id()))
    }

    #[test]
    fn worker_checkpoints_and_resumes_in_process() {
        // Same contract in both store formats; binary checkpoints are
        // appended segments rather than rewrites, so the resume path
        // additionally exercises the segment loader.
        for format in [StoreFormat::Text, StoreFormat::Binary] {
            let store = tmp(&format!("worker-{format}.wls"));
            let _ = std::fs::remove_file(&store);
            let cfg = WorkerConfig {
                shard: Shard::new(0, 2),
                store: store.clone(),
                checkpoint: 2,
                crash_after: None,
                format,
                capture: Capture::Scalar,
            };
            let mut beats = 0;
            let progress = run_worker::<Maintenance>(&SweepRunner::serial(), grid(7), &cfg, |p| {
                beats += 1;
                assert!(p.done <= p.total);
            })
            .unwrap();
            // Shard 0/2 of 7 points owns indices 0,2,4,6 → 4 points,
            // 2-point checkpoints → 2 saves.
            assert_eq!(progress.total, 4);
            assert_eq!(progress.done, 4);
            assert_eq!(progress.misses, 4);
            assert_eq!(beats, 2);

            // A re-run resumes from the store: all hits, no simulations.
            let progress =
                run_worker::<Maintenance>(&SweepRunner::serial(), grid(7), &cfg, |_| {}).unwrap();
            assert_eq!(progress.hits, 4, "{format} store must resume");
            assert_eq!(progress.misses, 0);
            let _ = std::fs::remove_file(&store);
        }
    }

    #[test]
    fn empty_shard_still_writes_a_store() {
        let store = tmp("empty.wls");
        let _ = std::fs::remove_file(&store);
        let cfg = WorkerConfig {
            shard: Shard::new(3, 4),
            store: store.clone(),
            checkpoint: 0,
            crash_after: None,
            format: StoreFormat::Text,
            capture: Capture::Scalar,
        };
        let progress =
            run_worker::<Maintenance>(&SweepRunner::serial(), grid(2), &cfg, |_| {}).unwrap();
        assert_eq!(progress.total, 0);
        assert!(store.exists(), "header-only store written for the merge");
        assert!(SweepStore::open(&store).unwrap().is_empty());
        let _ = std::fs::remove_file(&store);
    }
}
