//! The single scenario-assembly path: [`assemble`].
//!
//! Replaces the duplicated builders that used to live in
//! `wl_core::scenario` and `wl_baselines::scenario`. The RNG draw order
//! and sim-seed salting are preserved exactly, so executions are
//! bit-for-bit identical to the legacy paths (pinned by the
//! `harness_parity` integration tests).

use crate::algo::{AssemblyCtx, FleetRole, StartDiscipline, SyncAlgorithm};
use crate::spec::{DelayKind, ScenarioSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wl_clock::drift::FleetClock;
use wl_clock::Clock;
use wl_core::Params;
use wl_sim::delay::{AdversarialSplitDelay, ConstantDelay, DelayModel, UniformDelay};
use wl_sim::faults::FaultPlan;
use wl_sim::{
    Automaton, CalendarQueue, CorrectionSink, Counters, EventQueue, HeapQueue, NullObserver,
    Observer, ProcessId, SimBuilder, SimConfig, Simulation,
};
use wl_time::{ClockTime, RealTime};

/// A fully assembled scenario, generic over the protocol message type and
/// (defaulted) the engine's event queue.
pub struct BuiltScenario<M, Q = HeapQueue<M>> {
    /// The simulation, ready to run.
    pub sim: Simulation<M, Q>,
    /// Which processes are designated faulty (for the analysis).
    pub plan: FaultPlan,
    /// The parameters the scenario was built from.
    pub params: Params,
    /// The A4 start times `t⁰_p` (when each initial logical clock reads
    /// `T⁰`) — even for a rejoiner, whose *simulation* START is instead
    /// deferred to its repair time (`spec.rejoiner`). Mirrors the legacy
    /// builders' `starts` field.
    pub starts: Vec<RealTime>,
    /// Initial corrections per process (all zero unless cold-starting).
    pub initial_corrs: Vec<f64>,
}

impl<M, Q> std::fmt::Debug for BuiltScenario<M, Q> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuiltScenario")
            .field("plan", &self.plan)
            .field("params", &self.params)
            .finish()
    }
}

/// Assembles `spec` under algorithm `A`.
///
/// The assembly realizes the spec's assumptions in a fixed RNG draw
/// order so that identical `(spec, A)` pairs produce identical
/// executions — on any machine, at any sweep width:
///
/// 1. **Round-aligned** (A4): `n` initial offsets within
///    `spread_frac · β`, then the drift-model build seed, then START at
///    `c⁰_p(T⁰)`.
/// 2. **Cold start** (§9.2): the drift-model build seed, then `n`
///    initial corrections within ±`initial_spread/2`, then `n` START
///    times inside `[1, 1+δ)`.
///
/// The simulator's delay RNG is decorrelated with the algorithm's salt.
///
/// # Panics
///
/// Panics if the spec fails the algorithm's validation, a fault id is out
/// of range, or the algorithm does not support a requested fault kind or
/// rejoiner.
#[must_use]
pub fn assemble<A: SyncAlgorithm>(spec: &ScenarioSpec) -> BuiltScenario<A::Msg> {
    assemble_with_queue::<A, _>(spec, HeapQueue::new())
}

/// [`assemble`], but with the engine's [`CalendarQueue`] tuned to the
/// spec's delay band. Executions are byte-identical to [`assemble`]'s
/// (pinned by the `queue_parity` tests); only the queue's cost model
/// changes.
#[must_use]
pub fn assemble_calendar<A: SyncAlgorithm>(
    spec: &ScenarioSpec,
) -> BuiltScenario<A::Msg, CalendarQueue<A::Msg>> {
    let queue = CalendarQueue::for_bounds(&spec.params.delay_bounds());
    assemble_with_queue::<A, _>(spec, queue)
}

/// [`assemble`] with a caller-supplied event queue — the fully general
/// entry point behind both convenience wrappers.
///
/// # Panics
///
/// As [`assemble`].
#[must_use]
pub fn assemble_with_queue<A: SyncAlgorithm, Q: EventQueue<A::Msg>>(
    spec: &ScenarioSpec,
    queue: Q,
) -> BuiltScenario<A::Msg, Q> {
    let AssemblyParts {
        clocks,
        starts,
        initial_corrs,
        sim_seed,
        plan,
    } = assembly_parts::<A>(spec);

    let ctx = AssemblyCtx {
        clocks: &clocks,
        initial_corrs: &initial_corrs,
    };
    let n = spec.params.n;
    let mut starts_adj = starts.clone();
    let mut procs: Vec<Box<dyn Automaton<Msg = A::Msg>>> = Vec::with_capacity(n);
    for (i, start_slot) in starts_adj.iter_mut().enumerate() {
        let id = ProcessId(i);
        let fault = spec
            .faults
            .iter()
            .find(|&&(fid, _)| fid == id)
            .map(|&(_, k)| k);
        let is_rejoiner = spec.rejoiner.map(|(rid, _)| rid) == Some(id);
        let adversary_member = spec
            .adversary
            .as_ref()
            .filter(|adv| adv.controls(id) && !adv.strategy.is_delay_only());
        let auto: Box<dyn Automaton<Msg = A::Msg>> = if is_rejoiner {
            let (_, repair_at) = spec.rejoiner.expect("checked above");
            *start_slot = repair_at;
            A::rejoiner_automaton(spec, id, &ctx)
                .unwrap_or_else(|| panic!("{} does not support rejoiners", A::NAME))
        } else if let Some(adv) = adversary_member {
            A::adversary_member(spec, id, adv, &ctx)
        } else if let Some(kind) = fault {
            A::faulty(spec, id, kind, &ctx)
        } else {
            A::correct(spec, id, &ctx)
        };
        procs.push(auto);
    }

    let sim = SimBuilder::new()
        .clocks(clocks)
        .procs(procs)
        .starts(starts_adj)
        .fault_plan(plan.clone())
        .config(sim_config(spec, sim_seed))
        .delay_boxed(delay_model(spec))
        .build_with_queue(queue);

    BuiltScenario {
        sim,
        plan,
        params: spec.params.clone(),
        starts,
        initial_corrs,
    }
}

/// The algorithm-independent half of an assembly: clocks, START times,
/// initial corrections, the salted simulator seed, and the fault plan.
/// One RNG draw order, shared verbatim by the boxed and monomorphized
/// paths — byte-identical executions are a consequence, not a hope.
struct AssemblyParts {
    clocks: Vec<FleetClock>,
    starts: Vec<RealTime>,
    initial_corrs: Vec<f64>,
    sim_seed: u64,
    plan: FaultPlan,
}

fn assembly_parts<A: SyncAlgorithm>(spec: &ScenarioSpec) -> AssemblyParts {
    A::validate(spec);
    let p = &spec.params;
    let n = p.n;
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let drift = spec.effective_drift();

    let (clocks, starts, initial_corrs, sim_seed) = match A::discipline(spec) {
        StartDiscipline::RoundAligned { sim_seed_salt } => {
            // Initial offsets: logical clocks (corr = 0) read T⁰ within a
            // window of spread_frac · β, so their inverses at T⁰ are within
            // β even after drift widens the spread slightly (A4).
            let window = p.beta * spec.spread_frac;
            let offsets: Vec<ClockTime> = (0..n)
                .map(|_| ClockTime::from_secs(rng.gen_range(-window / 2.0..=window / 2.0)))
                .collect();
            let clocks = drift.build(n, &offsets, rng.gen());
            // A4: START arrives when the initial logical clock reads T⁰.
            let starts: Vec<RealTime> = clocks.iter().map(|c| c.time_of(p.t0_clock())).collect();
            (
                clocks,
                starts,
                vec![0.0; n],
                spec.seed.wrapping_add(sim_seed_salt),
            )
        }
        StartDiscipline::ColdStart { sim_seed_salt } => {
            let clocks = drift.build(n, &vec![ClockTime::ZERO; n], rng.gen());
            let initial_corrs: Vec<f64> = (0..n)
                .map(|_| rng.gen_range(-spec.initial_spread / 2.0..=spec.initial_spread / 2.0))
                .collect();
            // STARTs delivered within a small real-time window — the
            // problem statement lets the environment wake processes
            // arbitrarily; the first Time broadcast wakes the rest anyway.
            let starts: Vec<RealTime> = (0..n)
                .map(|_| RealTime::from_secs(1.0 + rng.gen_range(0.0..p.delta)))
                .collect();
            (
                clocks,
                starts,
                initial_corrs,
                spec.seed.wrapping_add(sim_seed_salt),
            )
        }
    };

    let mut faulty_ids: Vec<ProcessId> = spec.faults.iter().map(|&(id, _)| id).collect();
    if let Some((id, _)) = spec.rejoiner {
        faulty_ids.push(id);
    }
    // Behaviour-adversary members are designated faulty (A2 bookkeeping);
    // delay-only members stay correct — in-band delay scheduling is the
    // environment's prerogative under A3, not a process fault.
    if let Some(adv) = &spec.adversary {
        if !adv.strategy.is_delay_only() {
            faulty_ids.extend(adv.members.iter().copied());
        }
    }
    let plan = FaultPlan::with_faulty(n, &faulty_ids);

    AssemblyParts {
        clocks,
        starts,
        initial_corrs,
        sim_seed,
        plan,
    }
}

fn sim_config(spec: &ScenarioSpec, sim_seed: u64) -> SimConfig {
    SimConfig {
        t_end: spec.t_end,
        seed: sim_seed,
        delay_bounds: spec.params.delay_bounds(),
        trace_capacity: spec.trace_capacity,
        max_events: spec.max_events,
    }
}

fn delay_model(spec: &ScenarioSpec) -> Box<dyn DelayModel> {
    let p = &spec.params;
    let base: Box<dyn DelayModel> = match spec.delay {
        DelayKind::Constant => Box::new(ConstantDelay::new(wl_time::RealDur::from_secs(p.delta))),
        DelayKind::Uniform => Box::new(UniformDelay::new(p.delay_bounds())),
        DelayKind::AdversarialSplit => {
            Box::new(AdversarialSplitDelay::new(p.delay_bounds(), p.n / 2))
        }
    };
    // A delay-only adversary pins its chosen links to the band edges and
    // defers the rest to the base model (shared by all assembly paths, so
    // the mono/enum/boxed parity guarantees carry over to adversarial
    // delay scheduling).
    crate::adversary::wrap_delay_model(spec, base)
}

/// The simulation type of the monomorphized fast path: algorithm `A`'s
/// message type, the inline heap queue (fastest measured storage at this
/// workspace's payload sizes — see the `arena_*` axes in
/// `bench/benches/queue.rs`), observer `O`, and a `Vec<A>` fleet.
pub type MonoSimulation<A, O> =
    Simulation<<A as SyncAlgorithm>::Msg, HeapQueue<<A as SyncAlgorithm>::Msg>, O, Vec<A>>;

/// A scenario assembled on the monomorphized fast path: a `Vec<A>` fleet
/// (no per-event virtual dispatch) under a `(Counters, CorrectionSink)`
/// observer pair (no trace machinery). Produced by [`assemble_mono`];
/// executions are byte-identical to the boxed [`assemble`] path.
pub struct MonoScenario<A: SyncAlgorithm + Automaton<Msg = <A as SyncAlgorithm>::Msg>> {
    /// The simulation, ready to [`Simulation::drive`].
    pub sim: MonoSimulation<A, (Counters, CorrectionSink)>,
    /// Which processes are designated faulty (always none on this path).
    pub plan: FaultPlan,
    /// The parameters the scenario was built from.
    pub params: Params,
    /// The A4 start times `t⁰_p` (see [`BuiltScenario::starts`]).
    pub starts: Vec<RealTime>,
    /// Initial corrections per process (all zero unless cold-starting).
    pub initial_corrs: Vec<f64>,
}

/// Assembles `spec` on the monomorphized fast path, if it qualifies.
///
/// Qualifying specs are the all-correct ones — no faults, no rejoiner,
/// tracing disabled — under an algorithm that offers
/// [`SyncAlgorithm::correct_mono`]. Everything else returns `None` and
/// callers fall back to [`assemble`]; [`crate::SweepRunner`] does this
/// per grid point, so mixed fault/fault-free grids take the fast path
/// exactly where it applies.
///
/// The RNG draw order, simulator seed, delay model, and fault plan are
/// shared with [`assemble`] (one `assembly_parts` body), so the two
/// paths produce bit-identical executions — pinned by the
/// `mono_path_bit_identical_to_boxed` sweep test.
#[must_use]
pub fn assemble_mono<A>(spec: &ScenarioSpec) -> Option<MonoScenario<A>>
where
    A: SyncAlgorithm + Automaton<Msg = <A as SyncAlgorithm>::Msg>,
{
    let (parts, fleet) = mono_parts::<A>(spec)?;
    let observers = (Counters::new(), CorrectionSink::new(&parts.initial_corrs));
    let sim = SimBuilder::new()
        .clocks(parts.clocks)
        .fleet(fleet)
        .starts(parts.starts.clone())
        .fault_plan(parts.plan.clone())
        .config(sim_config(spec, parts.sim_seed))
        .delay_boxed(delay_model(spec))
        .build_with(HeapQueue::new(), observers);
    Some(MonoScenario {
        sim,
        plan: parts.plan,
        params: spec.params.clone(),
        starts: parts.starts,
        initial_corrs: parts.initial_corrs,
    })
}

/// [`assemble_mono`] under a caller-chosen observer — the fully
/// measurement-free variant with [`NullObserver`] is what the raw
/// Monte Carlo throughput benchmarks use (`bench/benches/sweep.rs`).
///
/// Returns `None` under exactly the same conditions as
/// [`assemble_mono`].
#[must_use]
pub fn assemble_mono_observed<A, O>(
    spec: &ScenarioSpec,
    observer: O,
) -> Option<MonoSimulation<A, O>>
where
    A: SyncAlgorithm + Automaton<Msg = <A as SyncAlgorithm>::Msg>,
    O: Observer<<A as SyncAlgorithm>::Msg>,
{
    let (parts, fleet) = mono_parts::<A>(spec)?;
    Some(
        SimBuilder::new()
            .clocks(parts.clocks)
            .fleet(fleet)
            .starts(parts.starts)
            .fault_plan(parts.plan)
            .config(sim_config(spec, parts.sim_seed))
            .delay_boxed(delay_model(spec))
            .build_with(HeapQueue::new(), observer),
    )
}

/// [`assemble_mono_observed`] with [`NullObserver`]: zero per-event
/// measurement work. The engine's own `events_delivered` counter is the
/// only instrument left.
#[must_use]
pub fn assemble_mono_null<A>(spec: &ScenarioSpec) -> Option<MonoSimulation<A, NullObserver>>
where
    A: SyncAlgorithm + Automaton<Msg = <A as SyncAlgorithm>::Msg>,
{
    assemble_mono_observed::<A, _>(spec, NullObserver)
}

fn mono_parts<A>(spec: &ScenarioSpec) -> Option<(AssemblyParts, Vec<A>)>
where
    A: SyncAlgorithm + Automaton<Msg = <A as SyncAlgorithm>::Msg>,
{
    if !spec.faults.is_empty() || spec.rejoiner.is_some() || spec.trace_capacity != 0 {
        return None;
    }
    // A behaviour adversary needs the boxed wrapper automata; a delay-only
    // adversary leaves every process correct (the attack lives in the
    // shared delay model), so the fast path stays available.
    if spec
        .adversary
        .as_ref()
        .is_some_and(|adv| !adv.strategy.is_delay_only())
    {
        return None;
    }
    let parts = assembly_parts::<A>(spec);
    let ctx = AssemblyCtx {
        clocks: &parts.clocks,
        initial_corrs: &parts.initial_corrs,
    };
    let fleet: Option<Vec<A>> = (0..spec.params.n)
        .map(|i| A::correct_mono(spec, ProcessId(i), &ctx))
        .collect();
    Some((parts, fleet?))
}

/// The simulation type of the enum-dispatched fast path: algorithm `A`'s
/// message type, the inline heap queue, observer `O`, and a
/// `Vec<A::FleetAuto>` fleet (enum-match dispatch, no boxing).
pub type EnumSimulation<A, O> = Simulation<
    <A as SyncAlgorithm>::Msg,
    HeapQueue<<A as SyncAlgorithm>::Msg>,
    O,
    Vec<<A as SyncAlgorithm>::FleetAuto>,
>;

/// A scenario assembled on the enum-dispatched fast path: a mixed fleet
/// (correct + faulty + rejoining processes) stored as a
/// `Vec<A::FleetAuto>` instead of `Vec<Box<dyn Automaton>>`, under a
/// `(Counters, CorrectionSink)` observer pair. Produced by
/// [`assemble_enum`] (inline heap queue) or
/// [`assemble_enum_with_queue`] (any queue); executions are
/// byte-identical to the boxed [`assemble`] path.
pub struct EnumScenario<A: SyncAlgorithm, Q = HeapQueue<<A as SyncAlgorithm>::Msg>> {
    /// The simulation, ready to [`Simulation::drive`].
    pub sim: Simulation<
        <A as SyncAlgorithm>::Msg,
        Q,
        (Counters, CorrectionSink),
        Vec<<A as SyncAlgorithm>::FleetAuto>,
    >,
    /// Which processes are designated faulty (for the analysis).
    pub plan: FaultPlan,
    /// The parameters the scenario was built from.
    pub params: Params,
    /// The A4 start times `t⁰_p` (see [`BuiltScenario::starts`]).
    pub starts: Vec<RealTime>,
    /// Initial corrections per process (all zero unless cold-starting).
    pub initial_corrs: Vec<f64>,
}

/// Assembles `spec` on the enum-dispatched fast path, if it qualifies.
///
/// This is the faulted-fleet counterpart of [`assemble_mono`]: any mix
/// of correct, designated-faulty, and rejoining processes runs as a
/// `Vec<A::FleetAuto>` — enum-match dispatch instead of
/// `Box<dyn Automaton>` virtual calls, one contiguous allocation instead
/// of one per process. Only tracing disqualifies a spec (the path runs
/// `(Counters, CorrectionSink)` observers, which record no trace), plus
/// a rejoiner under an algorithm that does not support one; both return
/// `None` and callers fall back to [`assemble`].
///
/// The RNG draw order, simulator seed, delay model, fault plan, rejoiner
/// START deferral, and per-process automaton construction
/// ([`SyncAlgorithm::fleet_automaton`] — the same single body the boxed
/// path boxes) are all shared with [`assemble`], so the two paths
/// produce bit-identical executions — pinned by
/// `enum_path_bit_identical_to_boxed` and the `fleet_parity` proptests.
///
/// # Panics
///
/// As [`assemble`] (validation failures, unsupported fault kinds).
#[must_use]
pub fn assemble_enum<A: SyncAlgorithm>(spec: &ScenarioSpec) -> Option<EnumScenario<A>> {
    assemble_enum_with_queue::<A, _>(spec, HeapQueue::new())
}

/// [`assemble_enum`] with a caller-supplied event queue — what the
/// `fleet_parity` proptests use to pit the enum fleet against the boxed
/// fleet under the *same* (arbitrary, legal) tie-breaking queue.
///
/// # Panics
///
/// As [`assemble_enum`].
#[must_use]
pub fn assemble_enum_with_queue<A: SyncAlgorithm, Q: EventQueue<A::Msg>>(
    spec: &ScenarioSpec,
    queue: Q,
) -> Option<EnumScenario<A, Q>> {
    if spec.trace_capacity != 0 {
        return None;
    }
    // Behaviour-adversary members are wrapper automata outside the fleet
    // enum; the boxed path hosts them. Delay-only adversaries qualify
    // (all processes correct, attack in the shared delay model).
    if spec
        .adversary
        .as_ref()
        .is_some_and(|adv| !adv.strategy.is_delay_only())
    {
        return None;
    }
    let parts = assembly_parts::<A>(spec);
    let ctx = AssemblyCtx {
        clocks: &parts.clocks,
        initial_corrs: &parts.initial_corrs,
    };
    let n = spec.params.n;
    let mut starts_adj = parts.starts.clone();
    let mut fleet: Vec<A::FleetAuto> = Vec::with_capacity(n);
    for (i, start_slot) in starts_adj.iter_mut().enumerate() {
        let id = ProcessId(i);
        let fault = spec
            .faults
            .iter()
            .find(|&&(fid, _)| fid == id)
            .map(|&(_, k)| k);
        let role = if spec.rejoiner.map(|(rid, _)| rid) == Some(id) {
            let (_, repair_at) = spec.rejoiner.expect("checked above");
            *start_slot = repair_at;
            FleetRole::Rejoiner
        } else if let Some(kind) = fault {
            FleetRole::Faulty(kind)
        } else {
            FleetRole::Correct
        };
        fleet.push(A::fleet_automaton(spec, id, role, &ctx)?);
    }

    // Mirror `build_with_queue`: the correction sink is seeded from the
    // *built fleet's* per-process initial corrections (a faulty wrapper
    // reports 0.0 even in a cold-start scenario, exactly as on the boxed
    // path).
    let initial: Vec<f64> = fleet.iter().map(Automaton::initial_correction).collect();
    let observers = (Counters::new(), CorrectionSink::new(&initial));
    let sim = SimBuilder::new()
        .clocks(parts.clocks)
        .fleet(fleet)
        .starts(starts_adj)
        .fault_plan(parts.plan.clone())
        .config(sim_config(spec, parts.sim_seed))
        .delay_boxed(delay_model(spec))
        .build_with(queue, observers);
    Some(EnumScenario {
        sim,
        plan: parts.plan,
        params: spec.params.clone(),
        starts: parts.starts,
        initial_corrs: parts.initial_corrs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FaultKind;
    use crate::{LmCnv, Maintenance, Startup};
    use wl_core::StartupParams;

    fn params() -> Params {
        Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap()
    }

    #[test]
    fn build_produces_n_processes_and_valid_starts() {
        let p = params();
        let built = ScenarioSpec::new(p.clone()).seed(3).build::<Maintenance>();
        assert_eq!(built.sim.n(), 4);
        assert_eq!(built.plan.fault_count(), 0);
        // Starts are within beta of each other (A4).
        let min = built
            .starts
            .iter()
            .cloned()
            .fold(RealTime::from_secs(f64::INFINITY), RealTime::min);
        let max = built
            .starts
            .iter()
            .cloned()
            .fold(RealTime::from_secs(f64::NEG_INFINITY), RealTime::max);
        assert!((max - min).as_secs() <= p.beta, "start spread exceeds beta");
    }

    #[test]
    fn faults_recorded_in_plan() {
        let p = Params::auto(7, 2, 1e-6, 0.010, 0.001).unwrap();
        let built = ScenarioSpec::new(p)
            .fault(ProcessId(1), FaultKind::Silent)
            .fault(ProcessId(5), FaultKind::PullApart(0.002))
            .build::<Maintenance>();
        assert_eq!(built.plan.fault_count(), 2);
        assert!(built.plan.is_faulty(ProcessId(1)));
        assert!(built.plan.is_faulty(ProcessId(5)));
        assert!(built.plan.satisfies_a2());
    }

    #[test]
    fn rejoiner_marked_faulty() {
        let built = ScenarioSpec::new(params())
            .rejoiner(ProcessId(2), RealTime::from_secs(5.0))
            .build::<Maintenance>();
        assert!(built.plan.is_faulty(ProcessId(2)));
    }

    #[test]
    fn short_run_executes_rounds() {
        let p = params();
        let mut sim = ScenarioSpec::new(p.clone())
            .t_end(RealTime::from_secs(5.0))
            .build::<Maintenance>()
            .sim;
        let outcome = sim.run();
        assert!(outcome.stats.messages_sent >= (p.n * p.n) as u64);
        assert_eq!(
            outcome.stats.timers_suppressed, 0,
            "no timer may land in the past"
        );
    }

    #[test]
    fn startup_scenario_builds_and_runs() {
        let sp = StartupParams::new(4, 1, 1e-6, 0.010, 0.001).unwrap();
        let built = ScenarioSpec::startup(&sp, 5.0)
            .seed(7)
            .t_end(RealTime::from_secs(3.0))
            .build::<Startup>();
        assert_eq!(built.sim.n(), 4);
        assert!(built.initial_corrs.iter().any(|&c| c != 0.0));
        let mut sim = built.sim;
        let outcome = sim.run();
        assert!(outcome.stats.messages_sent > 0);
    }

    #[test]
    fn same_spec_same_execution() {
        let p = params();
        let spec = ScenarioSpec::new(p)
            .seed(11)
            .t_end(RealTime::from_secs(5.0));
        let a = assemble::<Maintenance>(&spec).sim.run();
        let b = assemble::<Maintenance>(&spec).sim.run();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.corr, b.corr);
    }

    #[test]
    fn baseline_builds_under_same_spec() {
        let p = params();
        let spec = ScenarioSpec::new(p)
            .seed(11)
            .t_end(RealTime::from_secs(5.0));
        let mut sim = assemble::<LmCnv>(&spec).sim;
        let outcome = sim.run();
        assert!(outcome.stats.messages_sent > 0);
    }

    #[test]
    #[should_panic(expected = "does not support rejoiners")]
    fn baselines_reject_rejoiners() {
        let _ = ScenarioSpec::new(params())
            .rejoiner(ProcessId(1), RealTime::from_secs(2.0))
            .build::<LmCnv>();
    }
}
