//! Disk persistence for [`SweepCache`]: a content-addressed, append-only
//! record store shared across experiment binaries and machines.
//!
//! Sweeps are pure functions of their specs (`docs/sweeps.md` spells out
//! the contract), so their results are cacheable *forever* — as long as
//! three identities line up:
//!
//! 1. **the spec** — keyed by [`ScenarioSpec::content_hash`] and
//!    confirmed byte-for-byte against a canonical serialization of the
//!    spec (a hash collision degrades to a miss, never a wrong result);
//! 2. **the algorithm** — the [`SyncAlgorithm::NAME`] string;
//! 3. **the engine** — [`ENGINE_VERSION`], bumped whenever simulator
//!    semantics, seed derivation, or the canonical encoding change.
//!    Records from another engine version are *stale* and ignored.
//!
//! [`SweepStore`] owns the on-disk formats — two of them, auto-detected
//! on load and selected per store on save ([`StoreFormat`]):
//!
//! * **text** (`wlsweep 1`): one human-greppable record line per
//!   `(spec, algorithm)` pair, each carrying its own checksum. Scalar
//!   summaries are `R`-tagged; records whose outcome additionally
//!   carries a [`SweepSeries`] payload are `S`-tagged (the v2 record
//!   kind, introduced with `ENGINE_VERSION` 3).
//! * **binary** (`WLSB`, the v3 format): the same records framed as
//!   length-prefixed, checksummed binary units with their canonical
//!   strings [`wlz`]-compressed, packed into fixed-capacity segments
//!   ([`segment`] is the framing layer). ~2× smaller on series-heavy
//!   grids (the hex-entropy floor; PERF.md row 5 has measurements), and
//!   *appendable*: [`SweepStore::checkpoint`] extends the file by one
//!   segment instead of rewriting it. Migration between the two is
//!   lossless and byte-pinned ([`SweepStore::migrate`]).
//!
//! `docs/store-format.md` is the normative byte-level specification of
//! both formats. Loading tolerates arbitrary corruption (truncated
//! tails, mangled lines or segments, foreign files) by skipping what it
//! cannot verify; saving writes the whole store to a temp file and
//! atomically renames it, so readers never observe a half-written
//! store. Records are written in sorted key order, which makes saved
//! store files *canonical*: merging shard stores and then saving yields
//! byte-for-byte the file an unsharded run would have produced — CI
//! diffs the two, in both formats. Stale-engine records are **retained**
//! verbatim across saves (a new-engine process saving into a shared
//! store must not destroy another build's records);
//! [`SweepStore::compact`] is the explicit GC that drops them, along
//! with records superseded by appended checkpoint segments.
//!
//! Serialization uses the workspace's vendored `serde` (`Serialize`
//! half) through [`canon_string`]; the vendored shim's `Deserialize` is
//! compile-only by design, so loading goes through a small hand-rolled
//! parser over the same canonical grammar, pinned by round-trip tests.
//!
//! [`ScenarioSpec::content_hash`]: crate::ScenarioSpec::content_hash
//! [`SyncAlgorithm::NAME`]: crate::SyncAlgorithm::NAME

pub mod segment;

use crate::sketch::SkewSketch;
use crate::sweep::{SweepCache, SweepOutcome, SweepSeries};
use segment::{EncodedRecord, SegmentReader, SegmentWriter, DEFAULT_SEGMENT_CAPACITY};
use serde::ser::{
    SerializeMap, SerializeSeq, SerializeStruct, SerializeStructVariant, SerializeTuple,
    SerializeTupleStruct, SerializeTupleVariant,
};
use serde::{Serialize, Serializer};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::str::FromStr;
use wl_sim::SimStats;

/// The engine-semantics version stamped into every persisted record.
///
/// Cached results are only valid while executions remain bit-for-bit
/// reproducible, so **bump this** whenever anything that feeds an
/// execution changes: simulator event ordering, RNG draw order in
/// assembly, [`derive_seed`](crate::derive_seed), the spec hash, the
/// canonical encoding, or the [`SweepOutcome`] fields. Stale records are
/// ignored at load time (never an error), so old stores degrade to cold
/// caches instead of poisoning new runs.
///
/// History: 3 added the optional [`SweepSeries`] payload (`S`-tagged
/// records) and the `series` field to the canonical [`SweepOutcome`]
/// encoding. 4 added the adversary block to [`crate::ScenarioSpec`]
/// (an `adversary:` field in every spec canon) and the adversarial
/// record tags `A`/`B`; v3 stores still load — their records are
/// retained verbatim as stale, exactly like the v2→v3 migration.
/// 5 added the optional [`SkewSketch`] payload (`K`/`L`-tagged records)
/// and the `sketch` field to the canonical [`SweepOutcome`] encoding;
/// v4 stores load the same way — stale records retained verbatim,
/// re-served byte-for-byte across saves and text↔binary migration.
pub const ENGINE_VERSION: u32 = 5;

/// First line of every **text** store file: format magic + *format*
/// version (which is about the file layout; [`ENGINE_VERSION`] travels
/// per record). Binary stores open with [`segment::FILE_MAGIC`]
/// instead; [`SweepStore::open`] tells the two apart by these leading
/// bytes.
const HEADER: &str = "wlsweep 1";

/// Which on-disk layout a [`SweepStore`] reads and writes.
///
/// Both formats carry exactly the same records (`docs/store-format.md`
/// specifies each byte), so stores migrate between them losslessly —
/// text → binary → text reproduces the original file byte-for-byte.
/// [`SweepStore::open`] auto-detects the format of an existing file;
/// the format only has to be *chosen* when creating or migrating a
/// store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum StoreFormat {
    /// Line-oriented, human-greppable text (`wlsweep 1`): the v1/v2
    /// format, and the default for new stores.
    #[default]
    Text,
    /// Compressed binary segments (`WLSB`): the v3 format — ~2×
    /// smaller on series grids (PERF.md row 5), appendable in O(new
    /// records) by [`SweepStore::checkpoint`].
    Binary,
}

impl std::fmt::Display for StoreFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Text => "text",
            Self::Binary => "binary",
        })
    }
}

impl FromStr for StoreFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "text" => Ok(Self::Text),
            "binary" => Ok(Self::Binary),
            other => Err(format!("unknown store format `{other}` (text|binary)")),
        }
    }
}

// ---------------------------------------------------------------------------
// Canonical serialization (vendored-serde Serializer).
// ---------------------------------------------------------------------------

/// Serializes any [`serde::Serialize`] value into the canonical,
/// machine-independent text form the cache is keyed on.
///
/// Properties the store relies on:
///
/// * **deterministic & cross-machine stable** — no pointers, no hash
///   iteration order (the workspace's derived types are structs, enums,
///   tuples, and `Vec`s);
/// * **bit-exact floats** — `f64`/`f32` are emitted as the hex of their
///   IEEE bit patterns (`x3ff0000000000000`), so `-0.0`, `NaN` payloads,
///   and every last ULP survive the round trip;
/// * **whitespace-free** — records embed these strings in
///   space-separated lines; the string escape maps ` ` to `\s`.
#[must_use]
pub fn canon_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut canon = Canon { out: String::new() };
    value
        .serialize(&mut canon)
        .expect("canonical serialization is infallible");
    canon.out
}

/// Error type for [`Canon`] — required by the serde traits, never
/// actually produced.
#[derive(Debug)]
struct CanonError(String);

impl std::fmt::Display for CanonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "canonical serialization error: {}", self.0)
    }
}

impl std::error::Error for CanonError {}

impl serde::ser::Error for CanonError {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Self(msg.to_string())
    }
}

struct Canon {
    out: String,
}

impl Canon {
    fn push_escaped(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '\\' => self.out.push_str("\\\\"),
                '"' => self.out.push_str("\\\""),
                ' ' => self.out.push_str("\\s"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }
}

/// Compound-serializer helper: writes separators between elements.
struct Compound<'a> {
    canon: &'a mut Canon,
    first: bool,
    close: &'static str,
}

impl Compound<'_> {
    fn sep(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.canon.out.push(',');
        }
    }

    fn value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CanonError> {
        self.sep();
        value.serialize(&mut *self.canon)
    }

    fn field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), CanonError> {
        self.sep();
        self.canon.out.push_str(key);
        self.canon.out.push(':');
        value.serialize(&mut *self.canon)
    }

    fn finish(self) {
        self.canon.out.push_str(self.close);
    }
}

impl SerializeSeq for Compound<'_> {
    type Ok = ();
    type Error = CanonError;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CanonError> {
        self.value(value)
    }
    fn end(self) -> Result<(), CanonError> {
        self.finish();
        Ok(())
    }
}

impl SerializeTuple for Compound<'_> {
    type Ok = ();
    type Error = CanonError;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CanonError> {
        self.value(value)
    }
    fn end(self) -> Result<(), CanonError> {
        self.finish();
        Ok(())
    }
}

impl SerializeTupleStruct for Compound<'_> {
    type Ok = ();
    type Error = CanonError;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CanonError> {
        self.value(value)
    }
    fn end(self) -> Result<(), CanonError> {
        self.finish();
        Ok(())
    }
}

impl SerializeTupleVariant for Compound<'_> {
    type Ok = ();
    type Error = CanonError;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CanonError> {
        self.value(value)
    }
    fn end(self) -> Result<(), CanonError> {
        self.finish();
        Ok(())
    }
}

impl SerializeMap for Compound<'_> {
    type Ok = ();
    type Error = CanonError;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), CanonError> {
        self.sep();
        key.serialize(&mut *self.canon)?;
        self.canon.out.push_str("=>");
        Ok(())
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CanonError> {
        value.serialize(&mut *self.canon)
    }
    fn end(self) -> Result<(), CanonError> {
        self.finish();
        Ok(())
    }
}

impl SerializeStruct for Compound<'_> {
    type Ok = ();
    type Error = CanonError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), CanonError> {
        self.field(key, value)
    }
    fn end(self) -> Result<(), CanonError> {
        self.finish();
        Ok(())
    }
}

impl SerializeStructVariant for Compound<'_> {
    type Ok = ();
    type Error = CanonError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), CanonError> {
        self.field(key, value)
    }
    fn end(self) -> Result<(), CanonError> {
        self.finish();
        Ok(())
    }
}

impl<'a> Serializer for &'a mut Canon {
    type Ok = ();
    type Error = CanonError;
    type SerializeSeq = Compound<'a>;
    type SerializeTuple = Compound<'a>;
    type SerializeTupleStruct = Compound<'a>;
    type SerializeTupleVariant = Compound<'a>;
    type SerializeMap = Compound<'a>;
    type SerializeStruct = Compound<'a>;
    type SerializeStructVariant = Compound<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), CanonError> {
        self.out.push(if v { 'T' } else { 'F' });
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<(), CanonError> {
        self.serialize_i64(i64::from(v))
    }
    fn serialize_i16(self, v: i16) -> Result<(), CanonError> {
        self.serialize_i64(i64::from(v))
    }
    fn serialize_i32(self, v: i32) -> Result<(), CanonError> {
        self.serialize_i64(i64::from(v))
    }
    fn serialize_i64(self, v: i64) -> Result<(), CanonError> {
        write!(self.out, "{v}").expect("write to String");
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), CanonError> {
        self.serialize_u64(u64::from(v))
    }
    fn serialize_u16(self, v: u16) -> Result<(), CanonError> {
        self.serialize_u64(u64::from(v))
    }
    fn serialize_u32(self, v: u32) -> Result<(), CanonError> {
        self.serialize_u64(u64::from(v))
    }
    fn serialize_u64(self, v: u64) -> Result<(), CanonError> {
        write!(self.out, "{v}").expect("write to String");
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), CanonError> {
        write!(self.out, "y{:08x}", v.to_bits()).expect("write to String");
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<(), CanonError> {
        write!(self.out, "x{:016x}", v.to_bits()).expect("write to String");
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), CanonError> {
        self.push_escaped(&v.to_string());
        Ok(())
    }
    fn serialize_str(self, v: &str) -> Result<(), CanonError> {
        self.push_escaped(v);
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<(), CanonError> {
        self.out.push('b');
        for byte in v {
            write!(self.out, "{byte:02x}").expect("write to String");
        }
        Ok(())
    }
    fn serialize_none(self) -> Result<(), CanonError> {
        self.out.push('~');
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), CanonError> {
        self.out.push('+');
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), CanonError> {
        self.out.push_str("()");
        Ok(())
    }
    fn serialize_unit_struct(self, name: &'static str) -> Result<(), CanonError> {
        self.out.push_str(name);
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<(), CanonError> {
        self.out.push_str(name);
        self.out.push_str("::");
        self.out.push_str(variant);
        Ok(())
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<(), CanonError> {
        self.out.push_str(name);
        self.out.push('(');
        value.serialize(&mut *self)?;
        self.out.push(')');
        Ok(())
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), CanonError> {
        self.out.push_str(name);
        self.out.push_str("::");
        self.out.push_str(variant);
        self.out.push('(');
        value.serialize(&mut *self)?;
        self.out.push(')');
        Ok(())
    }
    fn serialize_seq(self, _len: Option<usize>) -> Result<Compound<'a>, CanonError> {
        self.out.push('[');
        Ok(Compound {
            canon: self,
            first: true,
            close: "]",
        })
    }
    fn serialize_tuple(self, _len: usize) -> Result<Compound<'a>, CanonError> {
        self.out.push('(');
        Ok(Compound {
            canon: self,
            first: true,
            close: ")",
        })
    }
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, CanonError> {
        self.out.push_str(name);
        self.out.push('(');
        Ok(Compound {
            canon: self,
            first: true,
            close: ")",
        })
    }
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, CanonError> {
        self.out.push_str(name);
        self.out.push_str("::");
        self.out.push_str(variant);
        self.out.push('(');
        Ok(Compound {
            canon: self,
            first: true,
            close: ")",
        })
    }
    fn serialize_map(self, _len: Option<usize>) -> Result<Compound<'a>, CanonError> {
        self.out.push('{');
        Ok(Compound {
            canon: self,
            first: true,
            close: "}",
        })
    }
    fn serialize_struct(self, name: &'static str, _len: usize) -> Result<Compound<'a>, CanonError> {
        self.out.push_str(name);
        self.out.push('{');
        Ok(Compound {
            canon: self,
            first: true,
            close: "}",
        })
    }
    fn serialize_struct_variant(
        self,
        name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, CanonError> {
        self.out.push_str(name);
        self.out.push_str("::");
        self.out.push_str(variant);
        self.out.push('{');
        Ok(Compound {
            canon: self,
            first: true,
            close: "}",
        })
    }
}

// ---------------------------------------------------------------------------
// The hand-rolled loader side: unescape + the SweepOutcome parser.
// ---------------------------------------------------------------------------

fn unescape(s: &str) -> Option<String> {
    let inner = s.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            '"' => out.push('"'),
            's' => out.push(' '),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            _ => return None,
        }
    }
    Some(out)
}

/// Strict cursor over a canonical string: every `eat` states exactly what
/// the generated encoding must contain next, so any drift between writer
/// and parser surfaces as `None` (→ a skipped record), never as a
/// misread value.
struct Cursor<'a> {
    s: &'a str,
}

impl<'a> Cursor<'a> {
    fn eat(&mut self, prefix: &str) -> Option<()> {
        self.s = self.s.strip_prefix(prefix)?;
        Some(())
    }

    fn take_while(&mut self, pred: impl Fn(char) -> bool) -> &'a str {
        let end = self
            .s
            .char_indices()
            .find(|&(_, c)| !pred(c))
            .map_or(self.s.len(), |(i, _)| i);
        let (head, tail) = self.s.split_at(end);
        self.s = tail;
        head
    }

    fn u64_dec(&mut self) -> Option<u64> {
        self.take_while(|c| c.is_ascii_digit()).parse().ok()
    }

    fn f64_bits(&mut self) -> Option<f64> {
        self.eat("x")?;
        let hex = self.take_while(|c| c.is_ascii_hexdigit());
        if hex.len() != 16 {
            return None;
        }
        Some(f64::from_bits(u64::from_str_radix(hex, 16).ok()?))
    }

    fn boolean(&mut self) -> Option<bool> {
        match self.take_while(|c| c == 'T' || c == 'F') {
            "T" => Some(true),
            "F" => Some(false),
            _ => None,
        }
    }

    /// A `[a,b,c]` sequence, elements parsed by `elem`.
    fn seq<T>(&mut self, mut elem: impl FnMut(&mut Self) -> Option<T>) -> Option<Vec<T>> {
        self.eat("[")?;
        let mut out = Vec::new();
        if self.eat("]").is_some() {
            return Some(out);
        }
        loop {
            out.push(elem(self)?);
            if self.eat("]").is_some() {
                return Some(out);
            }
            self.eat(",")?;
        }
    }

    fn f64_seq(&mut self) -> Option<Vec<f64>> {
        self.seq(Self::f64_bits)
    }

    fn u32_seq(&mut self) -> Option<Vec<u32>> {
        self.seq(|c| u32::try_from(c.u64_dec()?).ok())
    }

    fn u64_seq(&mut self) -> Option<Vec<u64>> {
        self.seq(Self::u64_dec)
    }
}

/// Parses the canonical encoding of a [`SweepSeries`] (the payload of
/// `S`-tagged records), mirroring `canon_string(&series)`.
fn parse_series(c: &mut Cursor<'_>) -> Option<SweepSeries> {
    c.eat("SweepSeries{round_times:")?;
    let round_times = c.f64_seq()?;
    c.eat(",round_skews:")?;
    let round_skews = c.f64_seq()?;
    c.eat(",skew_times:")?;
    let skew_times = c.f64_seq()?;
    c.eat(",skew_values:")?;
    let skew_values = c.f64_seq()?;
    c.eat(",corr_procs:")?;
    let corr_procs = c.u32_seq()?;
    c.eat(",corr_times:")?;
    let corr_times = c.f64_seq()?;
    c.eat(",corr_values:")?;
    let corr_values = c.f64_seq()?;
    c.eat("}")?;
    Some(SweepSeries {
        round_times,
        round_skews,
        skew_times,
        skew_values,
        corr_procs,
        corr_times,
        corr_values,
    })
}

/// Parses the canonical encoding of a [`SkewSketch`] (the payload of
/// `K`/`L`-tagged records), mirroring `canon_string(&sketch)`, and
/// rejecting structurally invalid histograms
/// ([`SkewSketch::well_formed`]) so a tampered record cannot reach the
/// merge arithmetic.
fn parse_sketch(c: &mut Cursor<'_>) -> Option<SkewSketch> {
    c.eat("SkewSketch{count:")?;
    let count = c.u64_dec()?;
    c.eat(",low:")?;
    let low = c.u64_dec()?;
    c.eat(",sum_hi:")?;
    let sum_hi = c.u64_dec()?;
    c.eat(",sum_lo:")?;
    let sum_lo = c.u64_dec()?;
    c.eat(",max:")?;
    let max = c.f64_bits()?;
    c.eat(",bin_idx:")?;
    // The canon stores bin indices differenced (first absolute, then
    // gaps); undo the deltas here so `well_formed` checks the real
    // histogram. Overflow means a tampered record: reject.
    let mut bin_idx = c.u32_seq()?;
    for i in 1..bin_idx.len() {
        bin_idx[i] = bin_idx[i - 1].checked_add(bin_idx[i])?;
    }
    c.eat(",bin_count:")?;
    let bin_count = c.u64_seq()?;
    c.eat("}")?;
    let sketch = SkewSketch {
        count,
        low,
        sum_hi,
        sum_lo,
        max,
        bin_idx,
        bin_count,
    };
    sketch.well_formed().then_some(sketch)
}

/// Parses the canonical encoding of a [`SweepOutcome`] — the exact
/// mirror of what `canon_string(&outcome)` emits (pinned by the
/// `outcome_roundtrip` test). Returns `None` on any mismatch.
/// `pub(crate)` so the service tier can validate wire records through
/// the same grammar the store loaders use.
pub(crate) fn parse_outcome(s: &str) -> Option<SweepOutcome> {
    let mut c = Cursor { s };
    c.eat("SweepOutcome{index:")?;
    let index = c.u64_dec()?;
    c.eat(",seed:")?;
    let seed = c.u64_dec()?;
    c.eat(",steady_skew:")?;
    let steady_skew = c.f64_bits()?;
    c.eat(",max_skew:")?;
    let max_skew = c.f64_bits()?;
    c.eat(",agreement_holds:")?;
    let agreement_holds = c.boolean()?;
    c.eat(",max_abs_adjustment:")?;
    let max_abs_adjustment = c.f64_bits()?;
    c.eat(",mean_abs_adjustment:")?;
    let mean_abs_adjustment = c.f64_bits()?;
    c.eat(",adjustment_holds:")?;
    let adjustment_holds = c.boolean()?;
    c.eat(",stats:SimStats{events_delivered:")?;
    let events_delivered = c.u64_dec()?;
    c.eat(",messages_sent:")?;
    let messages_sent = c.u64_dec()?;
    c.eat(",timers_set:")?;
    let timers_set = c.u64_dec()?;
    c.eat(",timers_suppressed:")?;
    let timers_suppressed = c.u64_dec()?;
    c.eat("},sketch:")?;
    let sketch = if c.eat("~").is_some() {
        None
    } else {
        c.eat("+")?;
        Some(parse_sketch(&mut c)?)
    };
    c.eat(",series:")?;
    let series = if c.eat("~").is_some() {
        None
    } else {
        c.eat("+")?;
        Some(parse_series(&mut c)?)
    };
    c.eat("}")?;
    if !c.s.is_empty() {
        return None;
    }
    Some(SweepOutcome {
        index: usize::try_from(index).ok()?,
        seed,
        steady_skew,
        max_skew,
        agreement_holds,
        max_abs_adjustment,
        mean_abs_adjustment,
        adjustment_holds,
        stats: SimStats {
            events_delivered,
            messages_sent,
            timers_set,
            timers_suppressed,
        },
        sketch,
        series,
    })
}

// ---------------------------------------------------------------------------
// The record store.
// ---------------------------------------------------------------------------

/// The FNV-1a offset basis and prime — one definition for every FNV use
/// in the crate (line checksums here, cache slot keys in `sweep.rs`).
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a continued from an arbitrary running state.
pub(crate) fn fnv64_seeded(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a over raw bytes — the per-line checksum.
fn fnv64(bytes: &[u8]) -> u64 {
    fnv64_seeded(FNV_OFFSET, bytes)
}

type StoreKey = (u64, String);

#[derive(Debug, Clone)]
struct StoreRecord {
    spec_canon: String,
    outcome_canon: String,
    outcome: SweepOutcome,
}

/// Records are equal iff their canonical bytes are — `outcome` is just
/// the parsed view of `outcome_canon`.
impl PartialEq for StoreRecord {
    fn eq(&self, other: &Self) -> bool {
        self.spec_canon == other.spec_canon && self.outcome_canon == other.outcome_canon
    }
}

/// The payload richness level of an outcome — which rung of the
/// scalar ⊑ sketch ⊑ series upgrade lattice it sits on (and which
/// record tag family it persists under).
fn payload_kind(outcome: &SweepOutcome) -> segment::PayloadKind {
    if outcome.series.is_some() {
        segment::PayloadKind::Series
    } else if outcome.sketch.is_some() {
        segment::PayloadKind::Sketch
    } else {
        segment::PayloadKind::Scalar
    }
}

/// The outcome's canonical bytes with every optional payload nulled —
/// the "scalar half" both sides of any lattice transition must agree
/// on byte-for-byte.
fn scalar_canon(outcome: &SweepOutcome) -> String {
    let mut scalar = outcome.clone();
    scalar.sketch = None;
    scalar.series = None;
    canon_string(&scalar)
}

/// Whether two same-key outcomes qualify for the [`SweepStore::merge_from`]
/// sketch ⊔ sketch arm: both are sketch-kind records (sketch present,
/// no series) whose scalar halves are byte-identical — only the
/// mergeable histogram payloads differ.
fn sketches_mergeable(a: &SweepOutcome, b: &SweepOutcome) -> bool {
    a.sketch.is_some()
        && b.sketch.is_some()
        && a.series.is_none()
        && b.series.is_none()
        && scalar_canon(a) == scalar_canon(b)
}

/// Why two stores refused to merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeConflict {
    /// The colliding spec content hash.
    pub content_hash: u64,
    /// The algorithm whose record collided.
    pub algo: String,
    /// Whether the specs or (worse) the outcomes disagreed.
    pub kind: MergeConflictKind,
}

/// The two ways records under one key can disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeConflictKind {
    /// Same key, different canonical specs: a genuine 64-bit hash
    /// collision between distinct scenarios. Harmless in-process (the
    /// cache degrades it to a miss) but unrepresentable in the one-slot
    /// store, so merging refuses.
    SpecMismatch,
    /// Same key, same spec, different outcomes: the two stores were
    /// written by executions that were *not* bit-identical — mixed
    /// engine builds or hardware-dependent math. This is the error the
    /// determinism contract exists to catch; do not pick a winner.
    OutcomeMismatch,
}

impl std::fmt::Display for MergeConflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match self.kind {
            MergeConflictKind::SpecMismatch => "distinct specs share a content hash",
            MergeConflictKind::OutcomeMismatch => "same spec, conflicting outcomes",
        };
        write!(
            f,
            "sweep store merge conflict under key {:016x}/{}: {what}",
            self.content_hash, self.algo
        )
    }
}

impl std::error::Error for MergeConflict {}

/// What [`SweepStore::merge_from`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Records the other store contributed that this one lacked.
    pub added: usize,
    /// Records present in both and confirmed byte-identical.
    pub agreed: usize,
    /// Sketch-kind records present in both with byte-identical scalar
    /// halves, combined by histogram add (the sketch ⊔ sketch arm).
    pub merged: usize,
}

/// A disk-persistent, content-addressed store of sweep records — the
/// serialization layer under [`SweepCache`].
///
/// See the [module docs](self) for the format and guarantees. Typical
/// shapes:
///
/// * **one process, warm restarts** — [`DiskSweepCache`] bundles a store
///   and a cache; experiment binaries use it via
///   [`DiskSweepCache::open_shared`].
/// * **N shards, one grid** — each shard opens its own store path, runs
///   [`SweepRunner::sweep_sharded_cached`], saves; a merge step folds
///   the shard stores together with [`SweepStore::merge_from`] and saves
///   the canonical union (`cargo run -p bench --bin sweep_shard`).
///
/// [`SweepRunner::sweep_sharded_cached`]: crate::SweepRunner::sweep_sharded_cached
#[derive(Debug)]
pub struct SweepStore {
    path: Option<PathBuf>,
    records: BTreeMap<StoreKey, StoreRecord>,
    format: StoreFormat,
    segment_capacity: u32,
    /// Stale-engine records carried verbatim (structurally) across
    /// saves and migrations; [`SweepStore::compact`] drops them.
    retained: Vec<EncodedRecord>,
    /// Keys changed since the last write to `path` — what
    /// [`SweepStore::checkpoint`] appends.
    unsaved: BTreeSet<StoreKey>,
    /// Whether the file at `path` is a cleanly-loaded (or just-written)
    /// binary store this process may extend by appending segments.
    append_base: bool,
    /// Ordinal the next appended segment should carry.
    next_ordinal: u32,
    skipped: usize,
    stale: usize,
    superseded: usize,
}

impl Default for SweepStore {
    fn default() -> Self {
        Self {
            path: None,
            records: BTreeMap::new(),
            format: StoreFormat::default(),
            segment_capacity: DEFAULT_SEGMENT_CAPACITY,
            retained: Vec::new(),
            unsaved: BTreeSet::new(),
            append_base: false,
            next_ordinal: 0,
            skipped: 0,
            stale: 0,
            superseded: 0,
        }
    }
}

impl SweepStore {
    /// An empty, path-less store (useful as a merge accumulator; save it
    /// with [`SweepStore::save_to`]).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens the store at `path`, tolerating anything it finds there.
    ///
    /// The format is auto-detected from the leading bytes: a `WLSB`
    /// magic loads as v3 binary, a `wlsweep 1` header as v1/v2 text —
    /// the store remembers which, and [`save`](SweepStore::save) writes
    /// it back the same way unless
    /// [`set_format`](SweepStore::set_format) says otherwise. A missing
    /// file is an empty store (in the default text format).
    ///
    /// Damage never errors, whatever the format: records that fail
    /// their checksum or their parse are counted in
    /// [`skipped_lines`](SweepStore::skipped_lines); records from
    /// another [`ENGINE_VERSION`] are counted in
    /// [`stale_records`](SweepStore::stale_records) *and retained* for
    /// the next save; binary records superseded by a later appended
    /// checkpoint are counted in
    /// [`superseded_records`](SweepStore::superseded_records);
    /// everything valid loads. A file whose header is foreign
    /// contributes nothing but skips. Truncation mid-record costs
    /// exactly the truncated record, in either format.
    ///
    /// # Errors
    ///
    /// Only genuine I/O failures (permissions, hardware) — *content*
    /// never errors.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Self> {
        let path = path.into();
        let mut store = Self {
            path: Some(path.clone()),
            ..Self::default()
        };
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(store),
            Err(e) => return Err(e),
        };
        if let Some(reader) = SegmentReader::new(&bytes) {
            store.load_binary(reader);
        } else {
            store.load_text(&String::from_utf8_lossy(&bytes));
        }
        Ok(store)
    }

    /// The v3 load path: drain a [`SegmentReader`], sorting each record
    /// into live / stale / skipped. Later records for a key a previous
    /// segment already supplied **supersede** it (last writer wins) —
    /// that is how an appended checkpoint upgrades a scalar record to a
    /// series-bearing one without rewriting the file.
    fn load_binary(&mut self, mut reader: SegmentReader<'_>) {
        self.format = StoreFormat::Binary;
        if reader.capacity() > 0 {
            self.segment_capacity = reader.capacity();
        }
        for encoded in reader.by_ref() {
            if encoded.engine_version != ENGINE_VERSION {
                self.stale += 1;
                self.retained.push(encoded);
                continue;
            }
            match live_record(&encoded) {
                Some((key, record)) => {
                    if self.records.insert(key, record).is_some() {
                        self.superseded += 1;
                    }
                }
                None => self.skipped += 1,
            }
        }
        self.skipped += reader.damaged();
        self.next_ordinal = reader.next_ordinal();
        // A store with damage must not be extended in place: the torn
        // tail would corrupt the first appended segment's framing.
        self.append_base = reader.damaged() == 0;
    }

    /// The v1/v2 load path, line-oriented. Duplicate keys keep the
    /// *first* record (the text format is never appended to by this
    /// crate, so an appended duplicate can only be a foreign artifact).
    fn load_text(&mut self, text: &str) {
        self.format = StoreFormat::Text;
        let mut lines = text.lines();
        if lines.next() != Some(HEADER) {
            self.skipped = text.lines().count();
            return;
        }
        for line in lines {
            match parse_line(line) {
                ParsedLine::Record { key, record } => match self.records.entry(key) {
                    std::collections::btree_map::Entry::Vacant(v) => {
                        v.insert(*record);
                    }
                    std::collections::btree_map::Entry::Occupied(_) => self.skipped += 1,
                },
                ParsedLine::Stale(encoded) => {
                    self.stale += 1;
                    self.retained.push(*encoded);
                }
                ParsedLine::Corrupt => self.skipped += 1,
            }
        }
    }

    /// Number of valid current-engine records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of valid current-engine records whose spec carries an
    /// adversary block (the `A`/`B`-tagged dimension of the store).
    #[must_use]
    pub fn adversarial_len(&self) -> usize {
        self.records
            .values()
            .filter(|r| spec_is_adversarial(&r.spec_canon))
            .count()
    }

    /// Lines the last [`open`](SweepStore::open) discarded as corrupt.
    #[must_use]
    pub fn skipped_lines(&self) -> usize {
        self.skipped
    }

    /// Records the last [`open`](SweepStore::open) ignored for carrying
    /// a different [`ENGINE_VERSION`]. They are not *lost*: the store
    /// retains them verbatim across saves until
    /// [`compact`](SweepStore::compact) drops them.
    #[must_use]
    pub fn stale_records(&self) -> usize {
        self.stale
    }

    /// Binary records the last [`open`](SweepStore::open) found
    /// superseded by a later appended checkpoint segment (their bytes
    /// still occupy the file until a rewrite —
    /// [`compact`](SweepStore::compact) reclaims them).
    #[must_use]
    pub fn superseded_records(&self) -> usize {
        self.superseded
    }

    /// The format this store loads from and saves to. Auto-detected by
    /// [`open`](SweepStore::open); change it with
    /// [`set_format`](SweepStore::set_format).
    #[must_use]
    pub fn format(&self) -> StoreFormat {
        self.format
    }

    /// Selects the on-disk format for subsequent saves — the in-place
    /// half of a migration (the next [`save`](SweepStore::save) rewrites
    /// the file in the new format; see [`SweepStore::migrate`] for the
    /// copying form).
    pub fn set_format(&mut self, format: StoreFormat) {
        if self.format != format {
            self.format = format;
            self.append_base = false;
        }
    }

    /// The capacity (in record-block bytes) binary saves pack segments
    /// to. Adopted from the file on load, [`segment::DEFAULT_SEGMENT_CAPACITY`]
    /// otherwise.
    #[must_use]
    pub fn segment_capacity(&self) -> u32 {
        self.segment_capacity
    }

    /// Overrides the segment capacity for subsequent binary saves.
    /// Capacity is part of a binary file's canonical identity (it moves
    /// segment boundaries), so two stores compare byte-identical only
    /// when saved at the same capacity. Values below 1 are clamped to 1.
    pub fn set_segment_capacity(&mut self, capacity: u32) {
        let capacity = capacity.max(1);
        if self.segment_capacity != capacity {
            self.segment_capacity = capacity;
            self.append_base = false;
        }
    }

    /// The path this store loads from and saves to, if it has one.
    #[must_use]
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Hydrates an in-memory [`SweepCache`] with every record — the
    /// read half of cross-process sharing.
    #[must_use]
    pub fn hydrate(&self) -> SweepCache {
        let cache = SweepCache::new();
        for ((hash, algo), record) in &self.records {
            cache.seed(
                *hash,
                algo.clone(),
                record.spec_canon.clone(),
                record.outcome.clone(),
            );
        }
        cache
    }

    /// Folds a cache's entries into the store (the write half), keyed by
    /// recomputing nothing: the cache already holds the canonical spec
    /// bytes. Outcome grid indices are normalized to zero so that *what*
    /// was computed, not *where in some grid* it sat, is what persists —
    /// this is what makes shard-store merges canonical.
    ///
    /// Returns how many records were added or replaced.
    pub fn absorb(&mut self, cache: &SweepCache) -> usize {
        let mut changed = 0;
        for (content_hash, algo, spec_canon, outcome) in cache.snapshot() {
            let mut normalized = outcome;
            normalized.index = 0;
            let outcome_canon = canon_string(&normalized);
            let key = (content_hash, algo);
            let record = StoreRecord {
                spec_canon,
                outcome_canon,
                outcome: normalized,
            };
            let slot = self.records.entry(key.clone());
            match slot {
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(record);
                    self.unsaved.insert(key);
                    changed += 1;
                }
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    if *o.get() != record {
                        o.insert(record);
                        self.unsaved.insert(key);
                        changed += 1;
                    }
                }
            }
        }
        changed
    }

    /// The canonical [`EncodedRecord`] for one live key, if present —
    /// the byte payload [`crate::service`] puts on the wire, so served
    /// records are *exactly* what a store save would write.
    pub(crate) fn record_encoded(&self, content_hash: u64, algo: &str) -> Option<EncodedRecord> {
        let key = (content_hash, algo.to_string());
        self.records
            .get(&key)
            .map(|record| encoded_record(&key, record))
    }

    /// Inserts one wire/store record, equality-confirmed like
    /// [`merge_from`](SweepStore::merge_from), with the same
    /// scalar/series upgrade lattice the in-memory cache applies: a
    /// series-bearing record replaces a scalar one for the same key iff
    /// their scalar halves are byte-identical, and a scalar arrival
    /// against a held series record is an agreeing no-op under the same
    /// condition. Grid indices are normalized to zero on the way in
    /// (the [`absorb`](SweepStore::absorb) rule). Returns whether the
    /// store changed; changed records are marked unsaved, so the next
    /// [`checkpoint`](SweepStore::checkpoint) persists them.
    ///
    /// # Errors
    ///
    /// [`MergeConflict`] if the record is corrupt (unparseable outcome,
    /// tag/payload disagreement) or contradicts a held record.
    pub(crate) fn insert_encoded(
        &mut self,
        encoded: &EncodedRecord,
    ) -> Result<bool, MergeConflict> {
        let conflict = |kind| MergeConflict {
            content_hash: encoded.content_hash,
            algo: encoded.algo.clone(),
            kind,
        };
        let Some((key, mut record)) = live_record(encoded) else {
            return Err(conflict(MergeConflictKind::OutcomeMismatch));
        };
        if record.outcome.index != 0 {
            record.outcome.index = 0;
            record.outcome_canon = canon_string(&record.outcome);
        }
        let Some(ours) = self.records.get(&key) else {
            self.records.insert(key.clone(), record);
            self.unsaved.insert(key);
            return Ok(true);
        };
        if ours.spec_canon != record.spec_canon {
            return Err(conflict(MergeConflictKind::SpecMismatch));
        }
        if ours.outcome_canon == record.outcome_canon {
            return Ok(false);
        }
        // The halves must agree scalar-for-scalar for any direction of
        // the scalar ⊑ sketch ⊑ series lattice to apply.
        if scalar_canon(&ours.outcome) != scalar_canon(&record.outcome) {
            return Err(conflict(MergeConflictKind::OutcomeMismatch));
        }
        // Across the sketch/series boundary the sketch must also be the
        // derivation of the series — a sketch is not new information,
        // so a disagreeing one is a contradiction, not an upgrade.
        let derivation_consistent =
            |richer: &SweepOutcome, poorer: &SweepOutcome| match (&poorer.sketch, &richer.series) {
                (Some(sketch), Some(series)) => SkewSketch::of_series(series).bit_identical(sketch),
                _ => true,
            };
        match payload_kind(&ours.outcome).cmp(&payload_kind(&record.outcome)) {
            // A poorer record arriving against a richer held one:
            // agreed, nothing to learn.
            std::cmp::Ordering::Greater
                if derivation_consistent(&ours.outcome, &record.outcome) =>
            {
                Ok(false)
            }
            // A richer record upgrading a poorer held one.
            std::cmp::Ordering::Less if derivation_consistent(&record.outcome, &ours.outcome) => {
                self.records.insert(key.clone(), record);
                self.unsaved.insert(key);
                Ok(true)
            }
            // Same kind but different bytes (or an inconsistent
            // sketch/series pair): a genuine contradiction.
            _ => Err(conflict(MergeConflictKind::OutcomeMismatch)),
        }
    }

    /// Merges another store's records into this one, equality-confirmed:
    /// a key present in both must carry byte-identical spec *and*
    /// outcome, otherwise the merge refuses with a [`MergeConflict`]
    /// (and this store is left unchanged).
    ///
    /// # Errors
    ///
    /// See [`MergeConflictKind`] for the two refusal modes.
    pub fn merge_from(&mut self, other: &Self) -> Result<MergeStats, MergeConflict> {
        // Validate everything before mutating anything.
        for (key, theirs) in &other.records {
            if let Some(ours) = self.records.get(key) {
                if ours.spec_canon != theirs.spec_canon {
                    return Err(MergeConflict {
                        content_hash: key.0,
                        algo: key.1.clone(),
                        kind: MergeConflictKind::SpecMismatch,
                    });
                }
                if ours.outcome_canon != theirs.outcome_canon
                    && !sketches_mergeable(&ours.outcome, &theirs.outcome)
                {
                    return Err(MergeConflict {
                        content_hash: key.0,
                        algo: key.1.clone(),
                        kind: MergeConflictKind::OutcomeMismatch,
                    });
                }
            }
        }
        let mut stats = MergeStats::default();
        for (key, theirs) in &other.records {
            match self.records.get_mut(key) {
                None => {
                    self.records.insert(key.clone(), theirs.clone());
                    self.unsaved.insert(key.clone());
                    stats.added += 1;
                }
                Some(ours) if ours.outcome_canon == theirs.outcome_canon => stats.agreed += 1,
                // The sketch ⊔ sketch arm (validated above): two partial
                // folds of one point's sample population combine by
                // histogram add — associative, commutative, and
                // order-independent, so merge order across shard stores
                // cannot change the result.
                Some(ours) => {
                    let theirs_sketch = theirs
                        .outcome
                        .sketch
                        .as_ref()
                        .expect("validated as mergeable sketches");
                    ours.outcome
                        .sketch
                        .as_mut()
                        .expect("validated as mergeable sketches")
                        .merge(theirs_sketch);
                    ours.outcome_canon = canon_string(&ours.outcome);
                    self.unsaved.insert(key.clone());
                    stats.merged += 1;
                }
            }
        }
        Ok(stats)
    }

    /// Adopts every record of `other` that this store lacks, never
    /// touching records it already has — the conflict-silent sibling of
    /// [`SweepStore::merge_from`], for when "ours is fresher" is the
    /// right policy (e.g. folding in what another process wrote to the
    /// shared file while we were running). Returns how many records
    /// were adopted.
    pub fn adopt_missing_from(&mut self, other: &Self) -> usize {
        let mut adopted = 0;
        for (key, theirs) in &other.records {
            if !self.records.contains_key(key) {
                self.records.insert(key.clone(), theirs.clone());
                self.unsaved.insert(key.clone());
                adopted += 1;
            }
        }
        adopted
    }

    /// Streams every live record as `(content_hash, algo, spec_canon,
    /// outcome)` in canonical (sorted-key) order — the read path
    /// [`crate::sketch::store_report`] aggregates over, deterministic so
    /// the report it feeds is too.
    pub(crate) fn iter_records(
        &self,
    ) -> impl Iterator<Item = (u64, &str, &str, &SweepOutcome)> + '_ {
        self.records.iter().map(|((hash, algo), record)| {
            (
                *hash,
                algo.as_str(),
                record.spec_canon.as_str(),
                &record.outcome,
            )
        })
    }

    /// Saves to the store's own path (see [`SweepStore::save_to`]) and
    /// resets the incremental-checkpoint bookkeeping: after a save the
    /// on-disk file is canonical, everything is flushed, and (for
    /// binary stores) subsequent [`checkpoint`](SweepStore::checkpoint)s
    /// may append to it.
    ///
    /// # Errors
    ///
    /// I/O failures, or [`io::ErrorKind::InvalidInput`] if the store was
    /// created path-less.
    pub fn save(&mut self) -> io::Result<()> {
        let path = self.path.clone().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "sweep store has no path")
        })?;
        let (bytes, next_ordinal) = self.render();
        write_atomic(&path, &bytes)?;
        self.unsaved.clear();
        self.next_ordinal = next_ordinal;
        self.append_base = self.format == StoreFormat::Binary;
        Ok(())
    }

    /// Writes the canonical store file to an arbitrary path, in the
    /// store's [`format`](SweepStore::format): live records in sorted
    /// key order (then any retained stale records, in load order) — so
    /// any two stores with equal contents produce byte-identical files,
    /// regardless of insertion history.
    ///
    /// The write is atomic-by-rename: content goes to a sibling temp
    /// file (suffixed with this process id) which is then renamed over
    /// `path`. Concurrent savers last-write-win a *complete* file;
    /// readers never observe a torn store.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from create/write/rename.
    pub fn save_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        write_atomic(path.as_ref(), &self.render().0)
    }

    /// Serializes the whole store in its configured format, returning
    /// the file bytes and the ordinal an appended segment would carry
    /// (meaningful for binary only).
    fn render(&self) -> (Vec<u8>, u32) {
        let live = self
            .records
            .iter()
            .map(|(key, record)| encoded_record(key, record));
        match self.format {
            StoreFormat::Text => {
                let mut content = String::with_capacity(64 + self.records.len() * 256);
                content.push_str(HEADER);
                content.push('\n');
                for encoded in live.chain(self.retained.iter().cloned()) {
                    content.push_str(&text_line(&encoded));
                    content.push('\n');
                }
                (content.into_bytes(), 0)
            }
            StoreFormat::Binary => {
                let records: Vec<EncodedRecord> =
                    live.chain(self.retained.iter().cloned()).collect();
                segment::write_file_with_ordinal(&records, self.segment_capacity)
            }
        }
    }

    /// Flushes changes since the last write **incrementally** where the
    /// format allows it: on a cleanly-loaded (or just-saved) binary
    /// store this *appends* one or more segments holding only the
    /// changed records — O(changes), not O(store) — relying on the v3
    /// last-writer-wins load rule to supersede any older versions of
    /// those keys. Everywhere else (text stores, damaged files, fresh
    /// paths, format changes) it falls back to a full
    /// [`save`](SweepStore::save). Returns how many records were
    /// flushed.
    ///
    /// The append is *not* atomic — a crash mid-append leaves a torn
    /// trailing segment — but it is **safe**: the corruption-tolerant
    /// loader recovers every record before the tear, so the cost is
    /// exactly the records of the interrupted checkpoint, which a
    /// restarted worker re-runs. This is the call
    /// [`run_worker`](crate::driver::run_worker) makes per checkpoint
    /// batch. An appended-to file is no longer *canonical* (records are
    /// no longer globally sorted); the next full save or
    /// [`compact`](SweepStore::compact) restores canonical form.
    ///
    /// # Errors
    ///
    /// I/O failures; [`io::ErrorKind::InvalidInput`] on a path-less
    /// store.
    pub fn checkpoint(&mut self) -> io::Result<usize> {
        let n = self.unsaved.len();
        if self.format != StoreFormat::Binary || !self.append_base {
            self.save()?;
            return Ok(n);
        }
        if n == 0 {
            return Ok(0);
        }
        let path = self.path.clone().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "sweep store has no path")
        })?;
        let mut writer = SegmentWriter::new(self.segment_capacity, self.next_ordinal);
        for key in &self.unsaved {
            if let Some(record) = self.records.get(key) {
                writer.push(&encoded_record(key, record));
            }
        }
        let (bytes, next_ordinal) = writer.into_parts();
        let result = (|| {
            use std::io::Write as _;
            let mut file = std::fs::File::options().append(true).open(&path)?;
            file.write_all(&bytes)
        })();
        if result.is_err() {
            // The file tail is now untrustworthy; force a rewrite next.
            self.append_base = false;
            return result.map(|()| n);
        }
        self.unsaved.clear();
        self.next_ordinal = next_ordinal;
        Ok(n)
    }

    /// Compaction / garbage collection: drops every stale-engine record
    /// retained from load and reclaims the bytes of superseded record
    /// versions by rewriting the file in canonical form (atomic
    /// tmp+rename, like any save). Live current-engine records are never
    /// touched — `compaction_preserves_live_records` pins that a
    /// compacted store serves exactly the same grid.
    ///
    /// ```
    /// use wl_harness::{StoreFormat, SweepStore};
    ///
    /// let path = std::env::temp_dir().join(format!("compact-doc-{}.wls", std::process::id()));
    /// # let _ = std::fs::remove_file(&path);
    /// let mut store = SweepStore::open(&path).expect("open");
    /// store.set_format(StoreFormat::Binary);
    /// let stats = store.compact().expect("compact");
    /// assert_eq!((stats.dropped_stale, stats.dropped_superseded), (0, 0));
    /// assert_eq!(stats.live, store.len());
    /// # let _ = std::fs::remove_file(&path);
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates save I/O failures (path-less stores compact in memory
    /// only and report `bytes_before == bytes_after == 0`).
    pub fn compact(&mut self) -> io::Result<CompactStats> {
        let on_disk = |path: &Option<PathBuf>| {
            path.as_ref()
                .and_then(|p| std::fs::metadata(p).ok())
                .map_or(0, |m| m.len())
        };
        let bytes_before = on_disk(&self.path);
        let stats = CompactStats {
            live: self.records.len(),
            dropped_stale: self.retained.len(),
            dropped_superseded: self.superseded,
            bytes_before,
            bytes_after: bytes_before,
        };
        self.retained.clear();
        self.stale = 0;
        self.superseded = 0;
        if self.path.is_some() {
            self.save()?;
        }
        Ok(CompactStats {
            bytes_after: on_disk(&self.path),
            ..stats
        })
    }

    /// Copies the store at `src` to `dst` in `format` — the lossless,
    /// byte-pinned migration: migrating text → binary → text (or the
    /// reverse) reproduces the original file **byte-for-byte**, stale
    /// records included, as long as both hops use the same segment
    /// capacity. `src` is left untouched; `src == dst` converts in
    /// place (the write is atomic-by-rename).
    ///
    /// ```
    /// use wl_harness::{StoreFormat, SweepStore};
    ///
    /// let dir = std::env::temp_dir();
    /// let text = dir.join(format!("migrate-doc-{}.wls", std::process::id()));
    /// let binary = dir.join(format!("migrate-doc-{}.wlb", std::process::id()));
    /// let round = dir.join(format!("migrate-doc-{}-round.wls", std::process::id()));
    /// # let _ = std::fs::remove_file(&text);
    /// let mut store = SweepStore::open(&text).expect("open");
    /// store.save().expect("write an (empty) text store");
    ///
    /// let report = SweepStore::migrate(&text, &binary, StoreFormat::Binary).expect("to binary");
    /// assert_eq!(report.records, 0);
    /// let _ = SweepStore::migrate(&binary, &round, StoreFormat::Text).expect("back to text");
    /// assert_eq!(
    ///     std::fs::read(&text).unwrap(),
    ///     std::fs::read(&round).unwrap(),
    ///     "text -> binary -> text is byte-identical",
    /// );
    /// # for p in [&text, &binary, &round] { let _ = std::fs::remove_file(p); }
    /// ```
    ///
    /// # Errors
    ///
    /// I/O failures from the read or the write; content damage never
    /// errors (it is skipped, and reported in the returned
    /// [`MigrationReport`]).
    pub fn migrate(
        src: impl AsRef<Path>,
        dst: impl AsRef<Path>,
        format: StoreFormat,
    ) -> io::Result<MigrationReport> {
        let bytes_in = std::fs::metadata(src.as_ref()).map_or(0, |m| m.len());
        let mut store = Self::open(src.as_ref().to_path_buf())?;
        store.set_format(format);
        store.save_to(dst.as_ref())?;
        Ok(MigrationReport {
            records: store.len(),
            stale_retained: store.retained.len(),
            skipped: store.skipped_lines(),
            superseded_dropped: store.superseded_records(),
            bytes_in,
            bytes_out: std::fs::metadata(dst.as_ref()).map_or(0, |m| m.len()),
        })
    }
}

/// Atomic-by-rename file write shared by every save path.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

/// What [`SweepStore::compact`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactStats {
    /// Current-engine records preserved (all of them, always).
    pub live: usize,
    /// Retained stale-engine records dropped.
    pub dropped_stale: usize,
    /// Superseded record versions whose file bytes were reclaimed.
    pub dropped_superseded: usize,
    /// File size before the rewrite (0 for path-less stores).
    pub bytes_before: u64,
    /// File size after the rewrite (0 for path-less stores).
    pub bytes_after: u64,
}

/// What [`SweepStore::migrate`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationReport {
    /// Live records carried across.
    pub records: usize,
    /// Stale-engine records carried across verbatim.
    pub stale_retained: usize,
    /// Damaged units in the source that could not be carried.
    pub skipped: usize,
    /// Superseded record versions left behind (migration always writes
    /// canonical files, so only the winning version survives).
    pub superseded_dropped: usize,
    /// Source file size in bytes.
    pub bytes_in: u64,
    /// Destination file size in bytes.
    pub bytes_out: u64,
}

/// Whether a canonical spec string describes an adversarial scenario.
///
/// The canonical grammar is space-free and escapes every string, the
/// spec has no free-form string fields, and `adversary` is a unique
/// field name, so the `adversary:+` prefix of a populated
/// `Option<AdversarySpec>` appears in a spec canon *iff* the spec
/// carries an adversary block. This is the store's adversary dimension:
/// it selects between the `R`/`S` and `A`/`B` record tags without
/// parsing the spec.
#[must_use]
pub fn spec_is_adversarial(spec_canon: &str) -> bool {
    spec_canon.contains("adversary:+")
}

/// The format-level view of one live record — what both the text and
/// the binary writer serialize. The tag duplicates what the payloads
/// say (`R`/`A` scalar, `K`/`L` sketch-bearing, `S`/`B` series-bearing;
/// `A`/`B`/`L` adversarial spec) so a reader can filter record kinds
/// without parsing payloads; both parsers cross-check tag against
/// payload on both dimensions.
fn encoded_record((hash, algo): &StoreKey, record: &StoreRecord) -> EncodedRecord {
    EncodedRecord {
        tag: segment::record_tag(
            payload_kind(&record.outcome),
            spec_is_adversarial(&record.spec_canon),
        ),
        content_hash: *hash,
        engine_version: ENGINE_VERSION,
        algo: algo.clone(),
        spec_canon: record.spec_canon.clone(),
        outcome_canon: record.outcome_canon.clone(),
    }
}

/// The inverse of [`encoded_record`]: validates a current-engine record
/// semantically (outcome parses, tag agrees with both payloads) and
/// produces the store's in-memory form. `None` = corrupt, skip it.
fn live_record(encoded: &EncodedRecord) -> Option<(StoreKey, StoreRecord)> {
    let outcome = parse_outcome(&encoded.outcome_canon)?;
    if segment::tag_payload_kind(encoded.tag) != payload_kind(&outcome) {
        return None;
    }
    if segment::tag_is_adversarial(encoded.tag) != spec_is_adversarial(&encoded.spec_canon) {
        return None;
    }
    Some((
        (encoded.content_hash, encoded.algo.clone()),
        StoreRecord {
            spec_canon: encoded.spec_canon.clone(),
            outcome_canon: encoded.outcome_canon.clone(),
            outcome,
        },
    ))
}

/// Renders one text record line (any engine version — retained stale
/// records re-emit through the same path as live ones).
fn text_line(encoded: &EncodedRecord) -> String {
    let prefix = format!(
        "{} {:016x} {} {} {} {}",
        encoded.tag as char,
        encoded.content_hash,
        encoded.engine_version,
        canon_string(&encoded.algo),
        encoded.spec_canon,
        encoded.outcome_canon,
    );
    let crc = fnv64(prefix.as_bytes());
    format!("{prefix} {crc:016x}")
}

enum ParsedLine {
    // Boxed: a parsed record (outcome + canon strings, possibly a whole
    // series payload) dwarfs the data-free variant.
    Record {
        key: StoreKey,
        record: Box<StoreRecord>,
    },
    /// Checksum-valid, structurally sound, but from another engine:
    /// carried as an [`EncodedRecord`] so saves can re-emit it verbatim
    /// (its outcome grammar may be unknown to this build, so it is
    /// never parsed).
    Stale(Box<EncodedRecord>),
    Corrupt,
}

fn parse_line(line: &str) -> ParsedLine {
    let Some((prefix, crc_tok)) = line.rsplit_once(' ') else {
        return ParsedLine::Corrupt;
    };
    if u64::from_str_radix(crc_tok, 16) != Ok(fnv64(prefix.as_bytes())) {
        return ParsedLine::Corrupt;
    }
    let fields: Vec<&str> = prefix.split(' ').collect();
    let [tag, hash_tok, engine_tok, algo_tok, spec_tok, outcome_tok] = fields.as_slice() else {
        return ParsedLine::Corrupt;
    };
    if !matches!(*tag, "R" | "S" | "A" | "B" | "K" | "L") {
        return ParsedLine::Corrupt;
    }
    let Ok(hash) = u64::from_str_radix(hash_tok, 16) else {
        return ParsedLine::Corrupt;
    };
    let Some(algo) = unescape(algo_tok) else {
        return ParsedLine::Corrupt;
    };
    // The binary record frames the algorithm with a u16 length; a text
    // line whose algo cannot survive that framing is treated as corrupt
    // here rather than panicking in a later cross-format save.
    if algo.len() > usize::from(u16::MAX) {
        return ParsedLine::Corrupt;
    }
    match engine_tok.parse::<u32>() {
        Ok(engine) if engine == ENGINE_VERSION => {}
        Ok(engine) => {
            return ParsedLine::Stale(Box::new(EncodedRecord {
                tag: tag.as_bytes()[0],
                content_hash: hash,
                engine_version: engine,
                algo,
                spec_canon: (*spec_tok).to_string(),
                outcome_canon: (*outcome_tok).to_string(),
            }))
        }
        Err(_) => return ParsedLine::Corrupt,
    }
    let Some(outcome) = parse_outcome(outcome_tok) else {
        return ParsedLine::Corrupt;
    };
    let tag_byte = tag.as_bytes()[0];
    if segment::tag_payload_kind(tag_byte) != payload_kind(&outcome) {
        return ParsedLine::Corrupt;
    }
    if segment::tag_is_adversarial(tag_byte) != spec_is_adversarial(spec_tok) {
        return ParsedLine::Corrupt;
    }
    ParsedLine::Record {
        key: (hash, algo),
        record: Box::new(StoreRecord {
            spec_canon: (*spec_tok).to_string(),
            outcome_canon: (*outcome_tok).to_string(),
            outcome,
        }),
    }
}

// ---------------------------------------------------------------------------
// The convenience bundle experiment binaries use.
// ---------------------------------------------------------------------------

/// A [`SweepStore`] + the [`SweepCache`] hydrated from it — the two
/// lines every experiment binary actually wants:
///
/// ```no_run
/// use wl_harness::{DiskSweepCache, Maintenance, SweepRunner};
/// # let grid = Vec::new();
/// let mut disk = DiskSweepCache::open_shared();
/// let outcomes = SweepRunner::new().sweep_cached::<Maintenance>(grid, disk.cache());
/// disk.persist().expect("save sweep cache");
/// ```
///
/// `open_shared` reads the `WL_SWEEP_CACHE_DIR` environment variable
/// (default `target/sweep-cache`; set it to `0` or `off` to disable
/// persistence) and *never fails*: an unreadable store degrades to an
/// in-memory cache with a warning on stderr, because a broken cache
/// must never break an experiment.
#[derive(Debug)]
pub struct DiskSweepCache {
    store: SweepStore,
    cache: SweepCache,
    enabled: bool,
}

impl DiskSweepCache {
    /// Opens the store at `path` and hydrates a cache from it.
    ///
    /// # Errors
    ///
    /// Genuine I/O failures from [`SweepStore::open`] only.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Self> {
        let store = SweepStore::open(path)?;
        let cache = store.hydrate();
        Ok(Self {
            store,
            cache,
            enabled: true,
        })
    }

    /// Opens the shared store under `WL_SWEEP_CACHE_DIR` (see the type
    /// docs). Infallible by design.
    ///
    /// The `WL_SWEEP_FORMAT` environment variable (`text` | `binary`)
    /// selects the on-disk [`StoreFormat`] future persists write —
    /// an existing store in the other format still loads (detection is
    /// by content, not by the variable) and is migrated in place on the
    /// next persist. Unset, the store keeps whatever format it already
    /// has (text for brand-new stores). Like every cache knob, the
    /// variable cannot change a *result* — only how it is stored.
    #[must_use]
    pub fn open_shared() -> Self {
        let dir = std::env::var("WL_SWEEP_CACHE_DIR").unwrap_or_default();
        let mut disk = match dir.as_str() {
            "0" | "off" => Self {
                store: SweepStore::new(),
                cache: SweepCache::new(),
                enabled: false,
            },
            "" => Self::open_or_warn(Path::new("target/sweep-cache").join("sweeps.wls")),
            dir => Self::open_or_warn(Path::new(dir).join("sweeps.wls")),
        };
        match std::env::var("WL_SWEEP_FORMAT").as_deref() {
            Err(_) | Ok("") => {}
            Ok(raw) => match raw.parse::<StoreFormat>() {
                Ok(format) => disk.store.set_format(format),
                Err(e) => eprintln!("warning: WL_SWEEP_FORMAT ignored: {e}"),
            },
        }
        disk
    }

    fn open_or_warn(path: PathBuf) -> Self {
        match Self::open(path.clone()) {
            Ok(disk) => disk,
            Err(e) => {
                eprintln!(
                    "warning: sweep cache at {} unavailable ({e}); running without persistence",
                    path.display()
                );
                Self {
                    store: SweepStore::new(),
                    cache: SweepCache::new(),
                    enabled: false,
                }
            }
        }
    }

    /// The cache to hand to [`SweepRunner::sweep_cached`].
    ///
    /// [`SweepRunner::sweep_cached`]: crate::SweepRunner::sweep_cached
    #[must_use]
    pub fn cache(&self) -> &SweepCache {
        &self.cache
    }

    /// The underlying store (for stats and inspection).
    #[must_use]
    pub fn store(&self) -> &SweepStore {
        &self.store
    }

    /// Selects the [`StoreFormat`] the next [`persist`](DiskSweepCache::persist)
    /// writes — the programmatic form of the `WL_SWEEP_FORMAT`
    /// environment knob (an existing store in the other format is
    /// migrated by that persist).
    pub fn set_format(&mut self, format: StoreFormat) {
        self.store.set_format(format);
    }

    /// Absorbs the cache into the store and saves it (no-op when
    /// persistence is disabled). Returns how many records were newly
    /// written.
    ///
    /// Before saving, the shared file is re-read and any records other
    /// processes wrote since we opened it are adopted — concurrent
    /// experiment binaries sharing `WL_SWEEP_CACHE_DIR` extend each
    /// other's stores instead of overwriting them (the save itself is
    /// atomic-by-rename, so the residual race is a benign
    /// lose-the-interleaved-write, not a torn file).
    ///
    /// # Errors
    ///
    /// Propagates save I/O failures.
    pub fn persist(&mut self) -> io::Result<usize> {
        if !self.enabled {
            return Ok(0);
        }
        let added = self.store.absorb(&self.cache);
        if let Some(path) = self.store.path().map(std::path::Path::to_path_buf) {
            if let Ok(on_disk) = SweepStore::open(path) {
                self.store.adopt_missing_from(&on_disk);
            }
        }
        self.store.save()?;
        Ok(added)
    }

    /// One status line for experiment binaries to print: hit/miss
    /// counts, where (whether) the store lives, and the full store-key
    /// dimensions — engine version and the adversarial record count —
    /// not just the service tier.
    #[must_use]
    pub fn status(&self) -> String {
        let target = match (self.enabled, self.store.path()) {
            (true, Some(p)) => format!("{} store {}", self.store.format(), p.display()),
            _ => "persistence off".to_string(),
        };
        let service = match crate::service::service_from_env() {
            Some(addr) => format!(", service tier {addr}"),
            None => String::new(),
        };
        format!(
            "sweep cache: {} hits, {} misses, {} records loaded \
             ({} adversarial, engine v{ENGINE_VERSION}, {target}{service})",
            self.cache.hits(),
            self.cache.misses(),
            self.store.len(),
            self.store.adversarial_len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioSpec;
    use crate::sweep::{derive_seed, SweepRunner};
    use crate::Maintenance;
    use wl_core::Params;
    use wl_time::RealTime;

    fn grid(count: usize) -> Vec<ScenarioSpec> {
        let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap();
        (0..count)
            .map(|i| {
                ScenarioSpec::new(params.clone())
                    .seed(derive_seed(0xCAFE, i as u64))
                    .t_end(RealTime::from_secs(2.0))
            })
            .collect()
    }

    fn tmp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("wl-cache-{}-{name}.wls", std::process::id()))
    }

    fn outcome_fixture() -> SweepOutcome {
        SweepOutcome {
            index: 3,
            seed: 0xDEAD_BEEF,
            steady_skew: 1.25e-3,
            max_skew: -0.0,
            agreement_holds: true,
            max_abs_adjustment: f64::NAN,
            mean_abs_adjustment: 7.5e-4,
            adjustment_holds: false,
            stats: wl_sim::SimStats {
                events_delivered: 1,
                messages_sent: 2,
                timers_set: 3,
                timers_suppressed: 4,
            },
            sketch: None,
            series: None,
        }
    }

    fn series_fixture() -> SweepSeries {
        SweepSeries {
            round_times: vec![1.0, 2.0],
            round_skews: vec![0.5, -0.0],
            skew_times: vec![0.0, 0.5, 1.0],
            skew_values: vec![1.0, f64::NAN, 0.25],
            corr_procs: vec![0, 3],
            corr_times: vec![1.0, 1.5],
            corr_values: vec![-0.125, 2.5e-3],
        }
    }

    #[test]
    fn insert_encoded_upgrade_lattice() {
        let mut store = SweepStore::new();
        let make = |outcome: &SweepOutcome| {
            let mut normalized = outcome.clone();
            normalized.index = 0;
            EncodedRecord {
                tag: segment::record_tag(payload_kind(&normalized), false),
                content_hash: 42,
                engine_version: ENGINE_VERSION,
                algo: "A".into(),
                spec_canon: "Spec{n:4}".into(),
                outcome_canon: canon_string(&normalized),
            }
        };
        let scalar = outcome_fixture();
        let mut series = outcome_fixture();
        series.series = Some(series_fixture());
        // The middle lattice rung: the sketch *derived from* the series
        // fixture, so the sketch ⊑ series consistency check can pass.
        let mut sketch = outcome_fixture();
        sketch.sketch = Some(crate::sketch::SkewSketch::of_series(
            series.series.as_ref().unwrap(),
        ));

        // Vacant insert normalizes the grid index and round-trips.
        let rec_scalar = make(&scalar);
        assert!(store.insert_encoded(&rec_scalar).unwrap());
        let held = store.record_encoded(42, "A").expect("held");
        assert_eq!(held, rec_scalar);
        assert!(store.record_encoded(42, "B").is_none());
        assert!(store.record_encoded(43, "A").is_none());

        // Same record again: agreed, unchanged.
        assert!(!store.insert_encoded(&rec_scalar).unwrap());
        // An index-denormalized copy is the same record after
        // normalization.
        let mut denorm = scalar.clone();
        denorm.index = 7;
        let rec_denorm = EncodedRecord {
            outcome_canon: canon_string(&denorm),
            ..rec_scalar.clone()
        };
        assert!(!store.insert_encoded(&rec_denorm).unwrap());

        // Sketch upgrade over the matching scalar half: accepted, and
        // the held record now carries the K tag.
        let rec_sketch = make(&sketch);
        assert!(store.insert_encoded(&rec_sketch).unwrap());
        assert_eq!(
            store.record_encoded(42, "A").unwrap().tag,
            segment::TAG_SKETCH
        );
        // Scalar re-arrival against the held sketch record: agreed no-op.
        assert!(!store.insert_encoded(&rec_scalar).unwrap());
        // A *different* sketch under the same scalar half is a same-kind
        // contradiction here — insert_encoded is equality-confirmed per
        // rung; only merge_from knows the sketch ⊔ sketch join.
        let mut other_sketch = sketch.clone();
        other_sketch.sketch.as_mut().unwrap().observe(1.25e-4);
        assert_eq!(
            store.insert_encoded(&make(&other_sketch)).unwrap_err().kind,
            MergeConflictKind::OutcomeMismatch
        );

        // Series upgrade over the matching sketch: accepted *because*
        // the held sketch is the derivation of the arriving series.
        let rec_series = make(&series);
        assert!(store.insert_encoded(&rec_series).unwrap());
        assert_eq!(
            store.record_encoded(42, "A").unwrap().tag,
            segment::TAG_SERIES
        );
        // Scalar and derived-sketch re-arrivals against the held series
        // record: agreed no-ops.
        assert!(!store.insert_encoded(&rec_scalar).unwrap());
        assert!(!store.insert_encoded(&rec_sketch).unwrap());
        assert_eq!(store.record_encoded(42, "A").unwrap(), rec_series);
        // A sketch that is NOT the derivation of the held series is a
        // contradiction, not an agreed downgrade.
        assert_eq!(
            store.insert_encoded(&make(&other_sketch)).unwrap_err().kind,
            MergeConflictKind::OutcomeMismatch
        );

        // A contradicting scalar half is refused.
        let mut wrong = outcome_fixture();
        wrong.seed ^= 1;
        let conflict = store.insert_encoded(&make(&wrong)).unwrap_err();
        assert_eq!(conflict.kind, MergeConflictKind::OutcomeMismatch);
        // A different spec behind the same key is refused.
        let rec_badspec = EncodedRecord {
            spec_canon: "Spec{n:5}".into(),
            ..rec_scalar.clone()
        };
        assert_eq!(
            store.insert_encoded(&rec_badspec).unwrap_err().kind,
            MergeConflictKind::SpecMismatch
        );
        // A corrupt outcome payload is refused, not inserted.
        let rec_corrupt = EncodedRecord {
            content_hash: 77,
            outcome_canon: "not an outcome".into(),
            ..rec_scalar.clone()
        };
        assert!(store.insert_encoded(&rec_corrupt).is_err());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn canon_encoding_is_pinned() {
        // The format contract: change this string only together with
        // ENGINE_VERSION.
        assert_eq!(canon_string(&true), "T");
        assert_eq!(canon_string(&1.0f64), "x3ff0000000000000");
        assert_eq!(canon_string(&Some(7u64)), "+7");
        assert_eq!(canon_string(&Option::<u64>::None), "~");
        assert_eq!(canon_string("a b\"c"), "\"a\\sb\\\"c\"");
        assert_eq!(
            canon_string(&crate::DelayKind::AdversarialSplit),
            "DelayKind::AdversarialSplit"
        );
        assert_eq!(
            canon_string(&wl_time::RealTime::from_secs(2.0)),
            "RealTime(x4000000000000000)"
        );
        let spec = grid(1).remove(0);
        let canon = canon_string(&spec.clone());
        assert!(canon.starts_with("ScenarioSpec{params:Params{n:4,f:1,"));
        assert!(
            !canon.contains(' '),
            "canonical encoding must be space-free"
        );
        assert_eq!(canon, canon_string(&spec), "encoding is deterministic");
    }

    #[test]
    fn outcome_roundtrip() {
        let outcome = outcome_fixture();
        let encoded = canon_string(&outcome);
        let decoded = parse_outcome(&encoded).expect("parses back");
        assert!(decoded.bit_identical(&outcome), "NaN and -0.0 must survive");
        // Any tampering is rejected, not misread.
        assert!(parse_outcome(&encoded[1..]).is_none());
        assert!(parse_outcome(&format!("{encoded}x")).is_none());
    }

    #[test]
    fn series_outcome_roundtrip() {
        let mut outcome = outcome_fixture();
        outcome.series = Some(series_fixture());
        let encoded = canon_string(&outcome);
        assert!(
            encoded.contains(",series:+SweepSeries{round_times:[x3ff0000000000000,"),
            "series payload is inlined in the outcome encoding: {encoded}"
        );
        assert!(!encoded.contains(' '), "series encoding must be space-free");
        let decoded = parse_outcome(&encoded).expect("series record parses back");
        assert!(
            decoded.bit_identical(&outcome),
            "every series element must survive bit-for-bit (incl. NaN, -0.0)"
        );
        // Truncating inside the series is rejected, not misread.
        assert!(parse_outcome(&encoded[..encoded.len() - 3]).is_none());
        // Empty series vectors round-trip too.
        outcome.series = Some(SweepSeries {
            round_times: vec![],
            round_skews: vec![],
            skew_times: vec![],
            skew_values: vec![],
            corr_procs: vec![],
            corr_times: vec![],
            corr_values: vec![],
        });
        let encoded = canon_string(&outcome);
        let decoded = parse_outcome(&encoded).expect("empty series parses back");
        assert!(decoded.bit_identical(&outcome));
    }

    #[test]
    fn series_records_tagged_and_cross_checked() {
        // A store holding one scalar and one series record writes `R` and
        // `S` tags respectively; forging the tag of either line fails the
        // cross-check (after re-checksumming, so only the tag is at
        // fault).
        let path = tmp_path("series-tags");
        let _ = std::fs::remove_file(&path);
        let cache = SweepCache::new();
        let g = grid(2);
        let _ = SweepRunner::serial().sweep_cached::<Maintenance>(vec![g[0].clone()], &cache);
        let _ =
            SweepRunner::serial().sweep_cached_series::<Maintenance>(vec![g[1].clone()], &cache);
        let mut store = SweepStore::open(&path).unwrap();
        store.absorb(&cache);
        store.save().unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let tags: Vec<char> = text
            .lines()
            .skip(1)
            .map(|l| l.chars().next().unwrap())
            .collect();
        let mut sorted = tags.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec!['R', 'S'], "one scalar + one series record");

        let reopened = SweepStore::open(&path).unwrap();
        assert_eq!(reopened.len(), 2);
        let hydrated = reopened.hydrate();
        let warm =
            SweepRunner::serial().sweep_cached_series::<Maintenance>(vec![g[1].clone()], &hydrated);
        assert_eq!(hydrated.hits(), 1, "series record serves a series request");
        assert!(warm[0].series.is_some());

        // Forge each tag: the line re-checksums fine but the payload
        // disagrees with the tag, so the loader must skip it.
        let forged: String = std::iter::once(text.lines().next().unwrap().to_string())
            .chain(text.lines().skip(1).map(|line| {
                let (prefix, _) = line.rsplit_once(' ').unwrap();
                let flipped = if let Some(rest) = prefix.strip_prefix("R ") {
                    format!("S {rest}")
                } else {
                    format!("R {}", prefix.strip_prefix("S ").unwrap())
                };
                let crc = fnv64(flipped.as_bytes());
                format!("{flipped} {crc:016x}")
            }))
            .collect::<Vec<_>>()
            .join("\n")
            + "\n";
        std::fs::write(&path, forged).unwrap();
        let reopened = SweepStore::open(&path).unwrap();
        assert_eq!(reopened.len(), 0);
        assert_eq!(reopened.skipped_lines(), 2, "both forged tags rejected");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn adversarial_records_tagged_and_cross_checked() {
        // An adversarial scalar writes `A`, an adversarial series record
        // `B`; forging either tag back to its non-adversarial twin
        // re-checksums fine but disagrees with the spec's `adversary:+`
        // block, so the loader must skip it.
        use crate::spec::{AdversarySpec, AdversaryStrategy};
        use wl_sim::ProcessId;
        let path = tmp_path("adv-tags");
        let _ = std::fs::remove_file(&path);
        let adv = |spec: ScenarioSpec| {
            spec.adversary(AdversarySpec::new(
                vec![ProcessId(0)],
                AdversaryStrategy::Mute,
            ))
        };
        let cache = SweepCache::new();
        let g = grid(2);
        let _ = SweepRunner::serial().sweep_cached::<Maintenance>(vec![adv(g[0].clone())], &cache);
        let _ = SweepRunner::serial()
            .sweep_cached_series::<Maintenance>(vec![adv(g[1].clone())], &cache);
        let mut store = SweepStore::open(&path).unwrap();
        store.absorb(&cache);
        store.save().unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let mut tags: Vec<char> = text
            .lines()
            .skip(1)
            .map(|l| l.chars().next().unwrap())
            .collect();
        tags.sort_unstable();
        assert_eq!(tags, vec!['A', 'B'], "adversarial scalar + series tags");
        assert_eq!(store.adversarial_len(), 2);

        let reopened = SweepStore::open(&path).unwrap();
        let hydrated = reopened.hydrate();
        let warm = SweepRunner::serial()
            .sweep_cached_series::<Maintenance>(vec![adv(g[1].clone())], &hydrated);
        assert_eq!(hydrated.hits(), 1, "B record serves a series request");
        assert!(warm[0].series.is_some());

        let forged: String = std::iter::once(text.lines().next().unwrap().to_string())
            .chain(text.lines().skip(1).map(|line| {
                let (prefix, _) = line.rsplit_once(' ').unwrap();
                let flipped = if let Some(rest) = prefix.strip_prefix("A ") {
                    format!("R {rest}")
                } else {
                    format!("S {}", prefix.strip_prefix("B ").unwrap())
                };
                let crc = fnv64(flipped.as_bytes());
                format!("{flipped} {crc:016x}")
            }))
            .collect::<Vec<_>>()
            .join("\n")
            + "\n";
        std::fs::write(&path, forged).unwrap();
        let reopened = SweepStore::open(&path).unwrap();
        assert_eq!(reopened.len(), 0);
        assert_eq!(reopened.skipped_lines(), 2, "both forged tags rejected");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unescape_rejects_malformed() {
        assert_eq!(unescape("\"a\\sb\"").as_deref(), Some("a b"));
        assert!(unescape("no-quotes").is_none());
        assert!(unescape("\"dangling\\\"").is_none());
        assert!(unescape("\"bad\\q\"").is_none());
    }

    #[test]
    fn store_roundtrip_and_rehydration() {
        let path = tmp_path("roundtrip");
        let _ = std::fs::remove_file(&path);

        let cache = SweepCache::new();
        let outcomes = SweepRunner::serial().sweep_cached::<Maintenance>(grid(3), &cache);
        let mut store = SweepStore::open(&path).unwrap();
        assert!(store.is_empty());
        assert_eq!(store.absorb(&cache), 3);
        store.save().unwrap();

        // Re-absorbing identical content changes nothing.
        assert_eq!(store.absorb(&cache), 0);

        let reopened = SweepStore::open(&path).unwrap();
        assert_eq!(reopened.len(), 3);
        assert_eq!(reopened.skipped_lines(), 0);
        assert_eq!(reopened.stale_records(), 0);

        // The hydrated cache serves the whole grid without a single miss.
        let warm = reopened.hydrate();
        let served = SweepRunner::serial().sweep_cached::<Maintenance>(grid(3), &warm);
        assert_eq!(warm.hits(), 3);
        assert_eq!(warm.misses(), 0);
        for (a, b) in served.iter().zip(&outcomes) {
            assert!(a.bit_identical(b));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_store_loads_as_empty() {
        let path = tmp_path("truncated");
        let cache = SweepCache::new();
        let _ = SweepRunner::serial().sweep_cached::<Maintenance>(grid(1), &cache);
        let mut store = SweepStore::open(&path).unwrap();
        store.absorb(&cache);
        store.save().unwrap();

        let full = std::fs::read_to_string(&path).unwrap();
        // Cut mid-record: the single record line loses its tail (and its
        // checksum with it).
        let cut = full.len() - 10;
        std::fs::write(&path, &full[..cut]).unwrap();

        let reopened = SweepStore::open(&path).unwrap();
        assert!(reopened.is_empty());
        assert_eq!(reopened.skipped_lines(), 1);

        // Truncating into the *header* orphans every line.
        std::fs::write(&path, &full[3..]).unwrap();
        let reopened = SweepStore::open(&path).unwrap();
        assert!(reopened.is_empty());
        assert!(reopened.skipped_lines() > 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_lines_are_skipped_not_fatal() {
        let path = tmp_path("corrupt");
        let cache = SweepCache::new();
        let _ = SweepRunner::serial().sweep_cached::<Maintenance>(grid(2), &cache);
        let mut store = SweepStore::open(&path).unwrap();
        store.absorb(&cache);
        store.save().unwrap();

        let mut text = std::fs::read_to_string(&path).unwrap();
        // Flip a byte inside the first record line's spec blob.
        let lines: Vec<&str> = text.lines().collect();
        let vandalized = lines[1].replacen("Params", "Psrams", 1);
        text = format!("{}\n{}\n{}\ngarbage line\n", lines[0], vandalized, lines[2]);
        std::fs::write(&path, text).unwrap();

        let reopened = SweepStore::open(&path).unwrap();
        assert_eq!(reopened.len(), 1, "the intact record survives");
        assert_eq!(reopened.skipped_lines(), 2, "vandalized + garbage");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stale_engine_records_are_ignored() {
        let path = tmp_path("stale");
        let cache = SweepCache::new();
        let _ = SweepRunner::serial().sweep_cached::<Maintenance>(grid(2), &cache);
        let mut store = SweepStore::open(&path).unwrap();
        store.absorb(&cache);
        store.save().unwrap();

        // Rewrite one record as if an older engine had produced it —
        // with a *valid* checksum, so only the version gate rejects it.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        let old = lines[1].clone();
        let (prefix, _) = old.rsplit_once(' ').unwrap();
        let downgraded_prefix = prefix.replacen(
            &format!(" {ENGINE_VERSION} "),
            &format!(" {} ", ENGINE_VERSION - 1),
            1,
        );
        let crc = fnv64(downgraded_prefix.as_bytes());
        lines[1] = format!("{downgraded_prefix} {crc:016x}");
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();

        let reopened = SweepStore::open(&path).unwrap();
        assert_eq!(reopened.len(), 1);
        assert_eq!(reopened.stale_records(), 1);
        assert_eq!(reopened.skipped_lines(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn merge_confirms_equality_and_detects_conflicts() {
        let a_cache = SweepCache::new();
        let b_cache = SweepCache::new();
        let _ = SweepRunner::serial().sweep_cached::<Maintenance>(grid(3), &a_cache);
        let _ = SweepRunner::serial().sweep_cached::<Maintenance>(grid(2), &b_cache);

        let mut a = SweepStore::new();
        a.absorb(&a_cache);
        let mut b = SweepStore::new();
        b.absorb(&b_cache);

        // b ⊂ a: everything agrees, nothing added.
        let stats = a.merge_from(&b).unwrap();
        assert_eq!(
            stats,
            MergeStats {
                added: 0,
                agreed: 2,
                merged: 0
            }
        );

        // Tamper with one of b's outcomes: the merge must refuse.
        let key = b.records.keys().next().unwrap().clone();
        let record = b.records.get_mut(&key).unwrap();
        record.outcome_canon = record.outcome_canon.replacen("seed:", "seed:1", 1);
        let err = a.merge_from(&b).unwrap_err();
        assert_eq!(err.kind, MergeConflictKind::OutcomeMismatch);
        assert_eq!(a.len(), 3, "failed merge left the target untouched");
    }

    /// Builds a one-record store holding `outcome` under `(hash, "A")`,
    /// for exercising the merge arms without running simulations.
    fn store_with(hash: u64, outcome: &SweepOutcome) -> SweepStore {
        let mut store = SweepStore::new();
        store.records.insert(
            (hash, "A".to_string()),
            StoreRecord {
                spec_canon: "Spec{n:4}".to_string(),
                outcome_canon: canon_string(outcome),
                outcome: outcome.clone(),
            },
        );
        store.unsaved.insert((hash, "A".to_string()));
        store
    }

    /// The full conflict matrix of [`SweepStore::merge_from`] across
    /// payload kinds: the sketch ⊔ sketch arm is the *only* same-key
    /// different-bytes combination that merges — every cross-kind or
    /// same-kind disagreement refuses, and refusal is atomic.
    #[test]
    fn merge_from_conflict_matrix_across_payload_kinds() {
        let scalar = outcome_fixture();
        let mut series = outcome_fixture();
        series.series = Some(series_fixture());
        let mut other_series = series.clone();
        other_series.series.as_mut().unwrap().round_skews[0] = 0.75;
        let sketch_over = |samples: &[f64]| {
            let mut out = outcome_fixture();
            let mut sk = crate::sketch::SkewSketch::new();
            for &v in samples {
                sk.observe(v);
            }
            out.sketch = Some(sk);
            out
        };
        let sk_a = sketch_over(&[1.0e-4, 3.0e-4, f64::NAN]);
        let sk_b = sketch_over(&[2.0e-4, -0.0]);

        // sketch ⊔ sketch over one scalar half: the single mergeable
        // cell — histogram add, equal to folding both sample sets.
        let mut target = store_with(1, &sk_a);
        let stats = target.merge_from(&store_with(1, &sk_b)).unwrap();
        assert_eq!(
            stats,
            MergeStats {
                added: 0,
                agreed: 0,
                merged: 1
            }
        );
        let joined = sketch_over(&[1.0e-4, 3.0e-4, f64::NAN, 2.0e-4, -0.0]);
        let held = &target.records[&(1, "A".to_string())];
        assert!(
            held.outcome
                .sketch
                .as_ref()
                .unwrap()
                .bit_identical(joined.sketch.as_ref().unwrap()),
            "merged sketch must equal the 1-process fold of both shards"
        );
        assert_eq!(
            held.outcome_canon,
            canon_string(&joined),
            "the canonical bytes were re-derived after the join"
        );

        // Identical sketch records agree instead of double-counting.
        let stats = target.merge_from(&store_with(1, &joined)).unwrap();
        assert_eq!(
            stats,
            MergeStats {
                added: 0,
                agreed: 1,
                merged: 0
            }
        );

        // Every other same-key disagreement refuses: scalar × sketch,
        // sketch × series (even derivation-consistent), series × series,
        // and sketch × sketch with drifted scalar halves.
        let mut consistent_sketch = outcome_fixture();
        consistent_sketch.sketch = Some(crate::sketch::SkewSketch::of_series(
            series.series.as_ref().unwrap(),
        ));
        let mut drifted = sk_b.clone();
        drifted.seed ^= 1;
        for (ours, theirs) in [
            (&scalar, &sk_a),
            (&sk_a, &scalar),
            (&consistent_sketch, &series),
            (&series, &consistent_sketch),
            (&series, &other_series),
            (&sk_a, &drifted),
        ] {
            let mut target = store_with(1, ours);
            let before = target.records[&(1, "A".to_string())].outcome_canon.clone();
            let err = target.merge_from(&store_with(1, theirs)).unwrap_err();
            assert_eq!(err.kind, MergeConflictKind::OutcomeMismatch);
            assert_eq!(
                target.records[&(1, "A".to_string())].outcome_canon,
                before,
                "refused merge must not touch the target"
            );
        }

        // Validation precedes mutation: a conflict on one key leaves a
        // mergeable sibling key untouched too.
        let mut target = store_with(1, &sk_a);
        target.records.insert(
            (2, "A".to_string()),
            StoreRecord {
                spec_canon: "Spec{n:4}".to_string(),
                outcome_canon: canon_string(&scalar),
                outcome: scalar.clone(),
            },
        );
        let mut incoming = store_with(1, &sk_b);
        incoming.records.insert(
            (2, "A".to_string()),
            StoreRecord {
                spec_canon: "Spec{n:4}".to_string(),
                outcome_canon: canon_string(&series),
                outcome: series.clone(),
            },
        );
        let before = target.records[&(1, "A".to_string())].outcome_canon.clone();
        assert!(target.merge_from(&incoming).is_err());
        assert_eq!(
            target.records[&(1, "A".to_string())].outcome_canon,
            before,
            "the mergeable key must not merge when a sibling conflicts"
        );
    }

    #[test]
    fn save_is_canonical_regardless_of_insertion_order() {
        let cache = SweepCache::new();
        let _ = SweepRunner::serial().sweep_cached::<Maintenance>(grid(4), &cache);
        let shard_a = SweepCache::new();
        let shard_b = SweepCache::new();
        let _ = SweepRunner::serial().sweep_sharded_cached::<Maintenance>(
            grid(4),
            crate::Shard::new(0, 2),
            &shard_a,
        );
        let _ = SweepRunner::serial().sweep_sharded_cached::<Maintenance>(
            grid(4),
            crate::Shard::new(1, 2),
            &shard_b,
        );

        let p_full = tmp_path("canon-full");
        let p_merged = tmp_path("canon-merged");
        let mut full = SweepStore::open(&p_full).unwrap();
        full.absorb(&cache);
        full.save().unwrap();

        // Merge b into a (reverse of creation order on purpose).
        let mut sa = SweepStore::new();
        sa.absorb(&shard_b);
        let mut sb = SweepStore::new();
        sb.absorb(&shard_a);
        sa.merge_from(&sb).unwrap();
        sa.save_to(&p_merged).unwrap();

        let full_bytes = std::fs::read(&p_full).unwrap();
        let merged_bytes = std::fs::read(&p_merged).unwrap();
        assert_eq!(
            full_bytes, merged_bytes,
            "2-shard merged store must be byte-identical to the unsharded store"
        );
        let _ = std::fs::remove_file(&p_full);
        let _ = std::fs::remove_file(&p_merged);
    }

    #[test]
    fn interleaved_persists_union_instead_of_clobbering() {
        // Two processes share one store file: both open it empty, run
        // disjoint grids, and persist one after the other. The second
        // persist must adopt the first's records, not overwrite them.
        let path = tmp_path("interleaved");
        let _ = std::fs::remove_file(&path);
        let mut a = DiskSweepCache::open(&path).unwrap();
        let mut b = DiskSweepCache::open(&path).unwrap();
        let _ = SweepRunner::serial().sweep_cached::<Maintenance>(grid(2), a.cache());
        let grid_b: Vec<ScenarioSpec> = grid(2)
            .into_iter()
            .enumerate()
            .map(|(i, s)| s.seed(derive_seed(0xB0B, i as u64)))
            .collect();
        let _ = SweepRunner::serial().sweep_cached::<Maintenance>(grid_b, b.cache());
        a.persist().unwrap();
        b.persist().unwrap();
        let merged = SweepStore::open(&path).unwrap();
        assert_eq!(merged.len(), 4, "both processes' records survive");
        let _ = std::fs::remove_file(&path);
    }

    // -----------------------------------------------------------------
    // v3 binary format, migration, checkpointing, compaction.
    // -----------------------------------------------------------------

    #[test]
    fn binary_store_roundtrip_and_rehydration() {
        let path = tmp_path("bin-roundtrip");
        let _ = std::fs::remove_file(&path);
        let cache = SweepCache::new();
        let outcomes = SweepRunner::serial().sweep_cached_series::<Maintenance>(grid(3), &cache);
        let mut store = SweepStore::open(&path).unwrap();
        store.set_format(StoreFormat::Binary);
        store.absorb(&cache);
        store.save().unwrap();

        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes[..4], b"WLSB", "binary magic");

        // Auto-detection: open() needs no format hint.
        let reopened = SweepStore::open(&path).unwrap();
        assert_eq!(reopened.format(), StoreFormat::Binary);
        assert_eq!(reopened.len(), 3);
        assert_eq!(reopened.skipped_lines(), 0);
        let warm = reopened.hydrate();
        let served = SweepRunner::serial().sweep_cached_series::<Maintenance>(grid(3), &warm);
        assert_eq!((warm.hits(), warm.misses()), (3, 0));
        for (a, b) in served.iter().zip(&outcomes) {
            assert!(a.bit_identical(b), "binary round trip must be lossless");
        }

        // Canonical regardless of how the records arrived: a merge
        // accumulator saving in binary produces the identical file.
        let mut merged = SweepStore::new();
        merged.set_format(StoreFormat::Binary);
        merged.merge_from(&reopened).unwrap();
        let p2 = tmp_path("bin-roundtrip-merged");
        merged.save_to(&p2).unwrap();
        assert_eq!(bytes, std::fs::read(&p2).unwrap());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&p2);
    }

    #[test]
    fn migration_text_binary_text_is_byte_identical() {
        // The PR-4-shaped store: scalar and series records mixed.
        let text1 = tmp_path("mig-text1");
        let binary = tmp_path("mig-binary");
        let text2 = tmp_path("mig-text2");
        let _ = std::fs::remove_file(&text1);
        let cache = SweepCache::new();
        let g = grid(4);
        let _ = SweepRunner::serial().sweep_cached::<Maintenance>(g[..2].to_vec(), &cache);
        let _ = SweepRunner::serial().sweep_cached_series::<Maintenance>(g[2..].to_vec(), &cache);
        let mut store = SweepStore::open(&text1).unwrap();
        store.absorb(&cache);
        store.save().unwrap();

        let to_bin = SweepStore::migrate(&text1, &binary, StoreFormat::Binary).unwrap();
        assert_eq!(
            (to_bin.records, to_bin.skipped, to_bin.stale_retained),
            (4, 0, 0)
        );
        let back = SweepStore::migrate(&binary, &text2, StoreFormat::Text).unwrap();
        assert_eq!(back.records, 4);
        assert_eq!(
            std::fs::read(&text1).unwrap(),
            std::fs::read(&text2).unwrap(),
            "text -> binary -> text must reproduce the file byte-for-byte"
        );
        // And binary -> binary is idempotent (the format is canonical).
        let binary2 = tmp_path("mig-binary2");
        SweepStore::migrate(&binary, &binary2, StoreFormat::Binary).unwrap();
        assert_eq!(
            std::fs::read(&binary).unwrap(),
            std::fs::read(&binary2).unwrap()
        );
        for p in [&text1, &binary, &text2, &binary2] {
            let _ = std::fs::remove_file(p);
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig {
            cases: 24,
            .. proptest::prelude::ProptestConfig::default()
        })]

        /// Migration round-trip byte-identity over *arbitrary* record
        /// contents: adversarial floats (NaN payloads, -0.0, subnormals
        /// — any bit pattern), algorithm names with spaces/quotes/
        /// escapes, empty and lopsided series vectors.
        #[test]
        fn prop_migration_roundtrip_byte_identity(seed in 0u64..u64::MAX) {
            use rand::{Rng, SeedableRng};
            fn f(rng: &mut rand::rngs::StdRng) -> f64 {
                f64::from_bits(rng.gen::<u64>())
            }
            fn fv(rng: &mut rand::rngs::StdRng, n: usize) -> Vec<f64> {
                (0..n).map(|_| f(rng)).collect()
            }
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let cache = SweepCache::new();
            let records = 1 + (rng.gen::<u64>() % 5) as usize;
            for i in 0..records {
                let series = if rng.gen::<u64>() % 2 == 0 {
                    let n = (rng.gen::<u64>() % 40) as usize;
                    Some(SweepSeries {
                        round_times: fv(&mut rng, n),
                        round_skews: fv(&mut rng, n),
                        skew_times: fv(&mut rng, n / 2),
                        skew_values: fv(&mut rng, n / 2),
                        corr_procs: (0..n / 3).map(|_| rng.gen::<u64>() as u32).collect(),
                        corr_times: fv(&mut rng, n / 3),
                        corr_values: fv(&mut rng, n / 3),
                    })
                } else {
                    None
                };
                // A sketch folded from arbitrary (often hostile) floats:
                // NaNs and non-positives land in the `low` bucket, the
                // rest in log bins — every branch of the sketch codec.
                let sketch = if series.is_none() && rng.gen::<u64>() % 2 == 0 {
                    let mut sk = crate::sketch::SkewSketch::new();
                    let samples = (rng.gen::<u64>() % 30) as usize;
                    for v in fv(&mut rng, samples) {
                        sk.observe(v);
                    }
                    Some(sk)
                } else {
                    None
                };
                let outcome = SweepOutcome {
                    index: i,
                    seed: rng.gen(),
                    steady_skew: f(&mut rng),
                    max_skew: f(&mut rng),
                    agreement_holds: rng.gen::<u64>() % 2 == 0,
                    max_abs_adjustment: f(&mut rng),
                    mean_abs_adjustment: f(&mut rng),
                    adjustment_holds: rng.gen::<u64>() % 2 == 0,
                    stats: wl_sim::SimStats {
                        events_delivered: rng.gen(),
                        messages_sent: rng.gen(),
                        timers_set: rng.gen(),
                        timers_suppressed: rng.gen(),
                    },
                    sketch,
                    series,
                };
                let nasty = ["algo a", "q\"uote", "tab\there", "wl-maintenance", "∆-sync"];
                let algo = format!("{}-{i}", nasty[(rng.gen::<u64>() % 5) as usize]);
                // The spec canon is opaque to the store; use an escaped
                // arbitrary string (space-free, like real canon output).
                let spec_canon = canon_string(&format!("spec {i} of seed {seed}"));
                cache.seed(rng.gen(), algo, spec_canon, outcome);
            }
            let text1 = tmp_path(&format!("prop-mig-t1-{seed}"));
            let binary = tmp_path(&format!("prop-mig-b-{seed}"));
            let text2 = tmp_path(&format!("prop-mig-t2-{seed}"));
            let mut store = SweepStore::new();
            store.absorb(&cache);
            store.save_to(&text1).unwrap();
            SweepStore::migrate(&text1, &binary, StoreFormat::Binary).unwrap();
            SweepStore::migrate(&binary, &text2, StoreFormat::Text).unwrap();
            let t1 = std::fs::read(&text1).unwrap();
            let t2 = std::fs::read(&text2).unwrap();
            for p in [&text1, &binary, &text2] {
                let _ = std::fs::remove_file(p);
            }
            proptest::prop_assert_eq!(t1, t2, "seed {} round trip diverged", seed);
        }
    }

    #[test]
    fn compaction_preserves_live_records_and_drops_stale() {
        let path = tmp_path("compact");
        let _ = std::fs::remove_file(&path);
        let cache = SweepCache::new();
        let _ = SweepRunner::serial().sweep_cached::<Maintenance>(grid(3), &cache);
        let mut store = SweepStore::open(&path).unwrap();
        store.absorb(&cache);
        store.save().unwrap();

        // Downgrade one record's engine version (valid checksum), as in
        // `stale_engine_records_are_ignored`.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        let (prefix, _) = lines[1]
            .clone()
            .rsplit_once(' ')
            .map(|(p, c)| (p.to_string(), c.to_string()))
            .unwrap();
        let downgraded = prefix.replacen(
            &format!(" {ENGINE_VERSION} "),
            &format!(" {} ", ENGINE_VERSION - 1),
            1,
        );
        let crc = fnv64(downgraded.as_bytes());
        lines[1] = format!("{downgraded} {crc:016x}");
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();

        // Retention: a load + save must NOT destroy the stale record.
        let mut store = SweepStore::open(&path).unwrap();
        assert_eq!((store.len(), store.stale_records()), (2, 1));
        store.save().unwrap();
        let reopened = SweepStore::open(&path).unwrap();
        assert_eq!(
            reopened.stale_records(),
            1,
            "stale records must survive an ordinary save"
        );

        // Compaction is the explicit GC that drops them.
        let mut store = SweepStore::open(&path).unwrap();
        let stats = store.compact().unwrap();
        assert_eq!(stats.live, 2);
        assert_eq!(stats.dropped_stale, 1);
        assert_eq!(stats.dropped_superseded, 0);
        assert!(stats.bytes_after < stats.bytes_before);
        let compacted = SweepStore::open(&path).unwrap();
        assert_eq!((compacted.len(), compacted.stale_records()), (2, 0));

        // Live records still serve their grid points.
        let warm = compacted.hydrate();
        let _ = SweepRunner::serial().sweep_cached::<Maintenance>(grid(3), &warm);
        assert_eq!(
            (warm.hits(), warm.misses()),
            (2, 1),
            "both live records survive compaction; only the stale one re-runs"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_appends_segments_and_supersedes_older_versions() {
        let path = tmp_path("checkpoint-append");
        let _ = std::fs::remove_file(&path);
        let g = grid(2);

        // Scalar records first, full save.
        let cache = SweepCache::new();
        let _ = SweepRunner::serial().sweep_cached::<Maintenance>(g.clone(), &cache);
        let mut store = SweepStore::open(&path).unwrap();
        store.set_format(StoreFormat::Binary);
        store.absorb(&cache);
        store.save().unwrap();
        let base = std::fs::read(&path).unwrap();

        // Upgrade both records to series-bearing; checkpoint() must
        // *append* (the old file is a byte prefix of the new one).
        let _ = SweepRunner::serial().sweep_cached_series::<Maintenance>(g.clone(), &cache);
        assert_eq!(store.absorb(&cache), 2, "series upgrade rewrites both");
        let flushed = store.checkpoint().unwrap();
        assert_eq!(flushed, 2);
        let extended = std::fs::read(&path).unwrap();
        assert!(extended.len() > base.len());
        assert_eq!(&extended[..base.len()], &base[..], "checkpoint appends");

        // Loading sees the upgraded records (last writer wins) and
        // counts the superseded scalar versions.
        let reopened = SweepStore::open(&path).unwrap();
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.superseded_records(), 2);
        let warm = reopened.hydrate();
        let served = SweepRunner::serial().sweep_cached_series::<Maintenance>(g, &warm);
        assert_eq!((warm.hits(), warm.misses()), (2, 0));
        assert!(served.iter().all(|o| o.series.is_some()));

        // Nothing new to flush: checkpoint is a no-op, not a rewrite.
        let mut reopened = reopened;
        assert_eq!(reopened.checkpoint().unwrap(), 0);
        assert_eq!(std::fs::read(&path).unwrap(), extended);

        // Compaction reclaims the dead scalar bytes.
        let stats = reopened.compact().unwrap();
        assert_eq!(stats.dropped_superseded, 2);
        assert!(stats.bytes_after < stats.bytes_before);
        let compacted = SweepStore::open(&path).unwrap();
        assert_eq!(compacted.superseded_records(), 0);
        assert_eq!(compacted.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn binary_truncation_costs_exactly_the_damaged_tail() {
        // Mirror of the v2 text pins (`truncated_store_loads_as_empty`,
        // driver_process's mid-record/boundary cuts), at the segment
        // level: one record per segment via a tiny capacity.
        let path = tmp_path("bin-truncate");
        let _ = std::fs::remove_file(&path);
        let cache = SweepCache::new();
        let _ = SweepRunner::serial().sweep_cached::<Maintenance>(grid(3), &cache);
        let mut store = SweepStore::open(&path).unwrap();
        store.set_format(StoreFormat::Binary);
        store.set_segment_capacity(1); // every record overflows: 1 segment each
        store.absorb(&cache);
        store.save().unwrap();
        let full = std::fs::read(&path).unwrap();

        // Mid-record cut: the torn record is lost, everything before it
        // survives.
        std::fs::write(&path, &full[..full.len() - 10]).unwrap();
        let reopened = SweepStore::open(&path).unwrap();
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.skipped_lines(), 1);

        // A damaged store must not be appended to (the torn tail would
        // corrupt the next segment's framing): checkpoint falls back to
        // a full rewrite, which also repairs the file.
        let mut repaired = reopened;
        repaired.absorb(&cache);
        repaired.checkpoint().unwrap();
        let fixed = SweepStore::open(&path).unwrap();
        assert_eq!((fixed.len(), fixed.skipped_lines()), (3, 0));
        assert_eq!(std::fs::read(&path).unwrap(), full, "rewrite is canonical");

        // Segment-boundary cut: costs nothing but the records beyond it.
        let mut reader = segment::SegmentReader::new(&full).unwrap();
        reader.by_ref().for_each(drop);
        assert_eq!(reader.segments(), 3);
        // Find the last segment's start: walk two segments' worth
        // (either kind — both state their stored length at bytes 12..16).
        let mut offset = segment::FILE_HEADER_LEN;
        for _ in 0..2 {
            let header_len = if full[offset..offset + 4] == segment::SEGMENT_MAGIC_PACKED {
                segment::PACKED_SEGMENT_HEADER_LEN
            } else {
                segment::SEGMENT_HEADER_LEN
            };
            let block_len = u32::from_le_bytes(full[offset + 12..offset + 16].try_into().unwrap());
            offset += header_len + block_len as usize;
        }
        std::fs::write(&path, &full[..offset]).unwrap();
        let boundary = SweepStore::open(&path).unwrap();
        assert_eq!((boundary.len(), boundary.skipped_lines()), (2, 0));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stale_binary_records_retained_and_format_portable() {
        // A stale record whose *outcome grammar* this build cannot parse
        // must still ride along through saves and format migrations.
        let path = tmp_path("bin-stale");
        let live_outcome = outcome_fixture();
        let live = EncodedRecord {
            tag: segment::TAG_SCALAR,
            content_hash: 0x1111,
            engine_version: ENGINE_VERSION,
            algo: "wl-maintenance".into(),
            spec_canon: canon_string("live spec"),
            outcome_canon: canon_string(&{
                let mut o = live_outcome;
                o.index = 0;
                o
            }),
        };
        let stale = EncodedRecord {
            tag: segment::TAG_SERIES,
            content_hash: 0x2222,
            engine_version: ENGINE_VERSION - 1,
            algo: "old algo".into(),
            spec_canon: "AncientSpec{v:1}".into(),
            outcome_canon: "AncientOutcome{grammar:unknown,series:+[]}".into(),
        };
        // Records the previous engine actually wrote: its outcome canon
        // had no `sketch:` field (that rung arrived with version 5), so
        // this build cannot parse them — every pre-bump tag must still
        // ride along verbatim, ready for the old engine to read back.
        let v4_canon = "SweepOutcome{index:0,seed:1,steady_skew:x3ff0000000000000,\
                        max_skew:x3ff0000000000000,agreement_holds:+,\
                        max_abs_adjustment:x0000000000000000,\
                        mean_abs_adjustment:x0000000000000000,adjustment_holds:+,\
                        stats:SimStats{events_delivered:1,messages_sent:1,timers_set:0,\
                        timers_suppressed:0},series:~}";
        let previous: Vec<EncodedRecord> = [
            segment::TAG_SCALAR,
            segment::TAG_ADV_SCALAR,
            segment::TAG_ADV_SERIES,
        ]
        .iter()
        .enumerate()
        .map(|(i, &tag)| EncodedRecord {
            tag,
            content_hash: 0x3333 + i as u64,
            engine_version: ENGINE_VERSION - 1,
            algo: format!("v4-algo-{i}"),
            spec_canon: "V4Spec{v:4}".into(),
            outcome_canon: v4_canon.into(),
        })
        .collect();
        let mut all = vec![&live, &stale];
        all.extend(previous.iter());
        std::fs::write(
            &path,
            segment::write_file(all, segment::DEFAULT_SEGMENT_CAPACITY),
        )
        .unwrap();

        let store = SweepStore::open(&path).unwrap();
        assert_eq!(
            (store.len(), store.stale_records(), store.skipped_lines()),
            (1, 4, 0)
        );

        let text = tmp_path("bin-stale-text");
        let binary2 = tmp_path("bin-stale-bin2");
        SweepStore::migrate(&path, &text, StoreFormat::Text).unwrap();
        let as_text = SweepStore::open(&text).unwrap();
        assert_eq!(
            (as_text.len(), as_text.stale_records()),
            (1, 4),
            "stale records survive binary -> text"
        );
        // Retention is *verbatim*: the old records' exact canon bytes,
        // tags, and versions appear in the migrated text store.
        let text_bytes = std::fs::read_to_string(&text).unwrap();
        assert!(text_bytes.contains(v4_canon));
        for (i, rec) in previous.iter().enumerate() {
            let line = text_bytes
                .lines()
                .find(|l| l.contains(&format!("v4-algo-{i}")))
                .expect("previous-engine record present");
            assert!(line.starts_with(char::from(rec.tag)));
            assert!(line.contains(&format!(" {} ", ENGINE_VERSION - 1)));
        }
        SweepStore::migrate(&text, &binary2, StoreFormat::Binary).unwrap();
        let back = SweepStore::open(&binary2).unwrap();
        assert_eq!(
            (back.len(), back.stale_records()),
            (1, 4),
            "and text -> binary again"
        );
        for p in [&path, &text, &binary2] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn disk_cache_disabled_by_env_value() {
        // `open` + `persist` path without env manipulation (env vars are
        // process-global; tests must not race each other over them).
        let path = tmp_path("disk-bundle");
        let _ = std::fs::remove_file(&path);
        let mut disk = DiskSweepCache::open(&path).unwrap();
        let _ = SweepRunner::serial().sweep_cached::<Maintenance>(grid(2), disk.cache());
        assert_eq!(disk.persist().unwrap(), 2);
        assert!(disk.status().contains("2 misses"));

        let disk2 = DiskSweepCache::open(&path).unwrap();
        let _ = SweepRunner::serial().sweep_cached::<Maintenance>(grid(2), disk2.cache());
        assert_eq!(disk2.cache().hits(), 2);
        assert_eq!(disk2.cache().misses(), 0);
        let _ = std::fs::remove_file(&path);
    }
}
