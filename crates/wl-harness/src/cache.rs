//! Disk persistence for [`SweepCache`]: a content-addressed, append-only
//! record store shared across experiment binaries and machines.
//!
//! Sweeps are pure functions of their specs (`docs/sweeps.md` spells out
//! the contract), so their results are cacheable *forever* — as long as
//! three identities line up:
//!
//! 1. **the spec** — keyed by [`ScenarioSpec::content_hash`] and
//!    confirmed byte-for-byte against a canonical serialization of the
//!    spec (a hash collision degrades to a miss, never a wrong result);
//! 2. **the algorithm** — the [`SyncAlgorithm::NAME`] string;
//! 3. **the engine** — [`ENGINE_VERSION`], bumped whenever simulator
//!    semantics, seed derivation, or the canonical encoding change.
//!    Records from another engine version are *stale* and ignored.
//!
//! [`SweepStore`] owns the file format: one human-greppable text record
//! per `(spec, algorithm)` pair, each line carrying its own checksum.
//! Scalar summaries are `R`-tagged; records whose outcome additionally
//! carries a [`SweepSeries`] payload are `S`-tagged (the v2 record kind,
//! introduced with `ENGINE_VERSION` 3).
//! Loading tolerates arbitrary corruption (truncated tails, mangled
//! lines, foreign files) by skipping what it cannot verify; saving
//! writes the whole store to a temp file and atomically renames it, so
//! readers never observe a half-written store. Records are written in
//! sorted key order, which makes store files *canonical*: merging shard
//! stores and then saving yields byte-for-byte the file an unsharded
//! run would have produced — CI diffs the two.
//!
//! Serialization uses the workspace's vendored `serde` (`Serialize`
//! half) through [`canon_string`]; the vendored shim's `Deserialize` is
//! compile-only by design, so loading goes through a small hand-rolled
//! parser over the same canonical grammar, pinned by round-trip tests.
//!
//! [`ScenarioSpec::content_hash`]: crate::ScenarioSpec::content_hash
//! [`SyncAlgorithm::NAME`]: crate::SyncAlgorithm::NAME

use crate::sweep::{SweepCache, SweepOutcome, SweepSeries};
use serde::ser::{
    SerializeMap, SerializeSeq, SerializeStruct, SerializeStructVariant, SerializeTuple,
    SerializeTupleStruct, SerializeTupleVariant,
};
use serde::{Serialize, Serializer};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use wl_sim::SimStats;

/// The engine-semantics version stamped into every persisted record.
///
/// Cached results are only valid while executions remain bit-for-bit
/// reproducible, so **bump this** whenever anything that feeds an
/// execution changes: simulator event ordering, RNG draw order in
/// assembly, [`derive_seed`](crate::derive_seed), the spec hash, the
/// canonical encoding, or the [`SweepOutcome`] fields. Stale records are
/// ignored at load time (never an error), so old stores degrade to cold
/// caches instead of poisoning new runs.
///
/// History: 3 added the optional [`SweepSeries`] payload (`S`-tagged
/// records) and the `series` field to the canonical [`SweepOutcome`]
/// encoding.
pub const ENGINE_VERSION: u32 = 3;

/// First line of every store file: format magic + *format* version
/// (which is about the file layout; [`ENGINE_VERSION`] travels per
/// record).
const HEADER: &str = "wlsweep 1";

// ---------------------------------------------------------------------------
// Canonical serialization (vendored-serde Serializer).
// ---------------------------------------------------------------------------

/// Serializes any [`serde::Serialize`] value into the canonical,
/// machine-independent text form the cache is keyed on.
///
/// Properties the store relies on:
///
/// * **deterministic & cross-machine stable** — no pointers, no hash
///   iteration order (the workspace's derived types are structs, enums,
///   tuples, and `Vec`s);
/// * **bit-exact floats** — `f64`/`f32` are emitted as the hex of their
///   IEEE bit patterns (`x3ff0000000000000`), so `-0.0`, `NaN` payloads,
///   and every last ULP survive the round trip;
/// * **whitespace-free** — records embed these strings in
///   space-separated lines; the string escape maps ` ` to `\s`.
#[must_use]
pub fn canon_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut canon = Canon { out: String::new() };
    value
        .serialize(&mut canon)
        .expect("canonical serialization is infallible");
    canon.out
}

/// Error type for [`Canon`] — required by the serde traits, never
/// actually produced.
#[derive(Debug)]
struct CanonError(String);

impl std::fmt::Display for CanonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "canonical serialization error: {}", self.0)
    }
}

impl std::error::Error for CanonError {}

impl serde::ser::Error for CanonError {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Self(msg.to_string())
    }
}

struct Canon {
    out: String,
}

impl Canon {
    fn push_escaped(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '\\' => self.out.push_str("\\\\"),
                '"' => self.out.push_str("\\\""),
                ' ' => self.out.push_str("\\s"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }
}

/// Compound-serializer helper: writes separators between elements.
struct Compound<'a> {
    canon: &'a mut Canon,
    first: bool,
    close: &'static str,
}

impl Compound<'_> {
    fn sep(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.canon.out.push(',');
        }
    }

    fn value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CanonError> {
        self.sep();
        value.serialize(&mut *self.canon)
    }

    fn field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), CanonError> {
        self.sep();
        self.canon.out.push_str(key);
        self.canon.out.push(':');
        value.serialize(&mut *self.canon)
    }

    fn finish(self) {
        self.canon.out.push_str(self.close);
    }
}

impl SerializeSeq for Compound<'_> {
    type Ok = ();
    type Error = CanonError;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CanonError> {
        self.value(value)
    }
    fn end(self) -> Result<(), CanonError> {
        self.finish();
        Ok(())
    }
}

impl SerializeTuple for Compound<'_> {
    type Ok = ();
    type Error = CanonError;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CanonError> {
        self.value(value)
    }
    fn end(self) -> Result<(), CanonError> {
        self.finish();
        Ok(())
    }
}

impl SerializeTupleStruct for Compound<'_> {
    type Ok = ();
    type Error = CanonError;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CanonError> {
        self.value(value)
    }
    fn end(self) -> Result<(), CanonError> {
        self.finish();
        Ok(())
    }
}

impl SerializeTupleVariant for Compound<'_> {
    type Ok = ();
    type Error = CanonError;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CanonError> {
        self.value(value)
    }
    fn end(self) -> Result<(), CanonError> {
        self.finish();
        Ok(())
    }
}

impl SerializeMap for Compound<'_> {
    type Ok = ();
    type Error = CanonError;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), CanonError> {
        self.sep();
        key.serialize(&mut *self.canon)?;
        self.canon.out.push_str("=>");
        Ok(())
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CanonError> {
        value.serialize(&mut *self.canon)
    }
    fn end(self) -> Result<(), CanonError> {
        self.finish();
        Ok(())
    }
}

impl SerializeStruct for Compound<'_> {
    type Ok = ();
    type Error = CanonError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), CanonError> {
        self.field(key, value)
    }
    fn end(self) -> Result<(), CanonError> {
        self.finish();
        Ok(())
    }
}

impl SerializeStructVariant for Compound<'_> {
    type Ok = ();
    type Error = CanonError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), CanonError> {
        self.field(key, value)
    }
    fn end(self) -> Result<(), CanonError> {
        self.finish();
        Ok(())
    }
}

impl<'a> Serializer for &'a mut Canon {
    type Ok = ();
    type Error = CanonError;
    type SerializeSeq = Compound<'a>;
    type SerializeTuple = Compound<'a>;
    type SerializeTupleStruct = Compound<'a>;
    type SerializeTupleVariant = Compound<'a>;
    type SerializeMap = Compound<'a>;
    type SerializeStruct = Compound<'a>;
    type SerializeStructVariant = Compound<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), CanonError> {
        self.out.push(if v { 'T' } else { 'F' });
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<(), CanonError> {
        self.serialize_i64(i64::from(v))
    }
    fn serialize_i16(self, v: i16) -> Result<(), CanonError> {
        self.serialize_i64(i64::from(v))
    }
    fn serialize_i32(self, v: i32) -> Result<(), CanonError> {
        self.serialize_i64(i64::from(v))
    }
    fn serialize_i64(self, v: i64) -> Result<(), CanonError> {
        write!(self.out, "{v}").expect("write to String");
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), CanonError> {
        self.serialize_u64(u64::from(v))
    }
    fn serialize_u16(self, v: u16) -> Result<(), CanonError> {
        self.serialize_u64(u64::from(v))
    }
    fn serialize_u32(self, v: u32) -> Result<(), CanonError> {
        self.serialize_u64(u64::from(v))
    }
    fn serialize_u64(self, v: u64) -> Result<(), CanonError> {
        write!(self.out, "{v}").expect("write to String");
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), CanonError> {
        write!(self.out, "y{:08x}", v.to_bits()).expect("write to String");
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<(), CanonError> {
        write!(self.out, "x{:016x}", v.to_bits()).expect("write to String");
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), CanonError> {
        self.push_escaped(&v.to_string());
        Ok(())
    }
    fn serialize_str(self, v: &str) -> Result<(), CanonError> {
        self.push_escaped(v);
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<(), CanonError> {
        self.out.push('b');
        for byte in v {
            write!(self.out, "{byte:02x}").expect("write to String");
        }
        Ok(())
    }
    fn serialize_none(self) -> Result<(), CanonError> {
        self.out.push('~');
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), CanonError> {
        self.out.push('+');
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), CanonError> {
        self.out.push_str("()");
        Ok(())
    }
    fn serialize_unit_struct(self, name: &'static str) -> Result<(), CanonError> {
        self.out.push_str(name);
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<(), CanonError> {
        self.out.push_str(name);
        self.out.push_str("::");
        self.out.push_str(variant);
        Ok(())
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<(), CanonError> {
        self.out.push_str(name);
        self.out.push('(');
        value.serialize(&mut *self)?;
        self.out.push(')');
        Ok(())
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), CanonError> {
        self.out.push_str(name);
        self.out.push_str("::");
        self.out.push_str(variant);
        self.out.push('(');
        value.serialize(&mut *self)?;
        self.out.push(')');
        Ok(())
    }
    fn serialize_seq(self, _len: Option<usize>) -> Result<Compound<'a>, CanonError> {
        self.out.push('[');
        Ok(Compound {
            canon: self,
            first: true,
            close: "]",
        })
    }
    fn serialize_tuple(self, _len: usize) -> Result<Compound<'a>, CanonError> {
        self.out.push('(');
        Ok(Compound {
            canon: self,
            first: true,
            close: ")",
        })
    }
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, CanonError> {
        self.out.push_str(name);
        self.out.push('(');
        Ok(Compound {
            canon: self,
            first: true,
            close: ")",
        })
    }
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, CanonError> {
        self.out.push_str(name);
        self.out.push_str("::");
        self.out.push_str(variant);
        self.out.push('(');
        Ok(Compound {
            canon: self,
            first: true,
            close: ")",
        })
    }
    fn serialize_map(self, _len: Option<usize>) -> Result<Compound<'a>, CanonError> {
        self.out.push('{');
        Ok(Compound {
            canon: self,
            first: true,
            close: "}",
        })
    }
    fn serialize_struct(self, name: &'static str, _len: usize) -> Result<Compound<'a>, CanonError> {
        self.out.push_str(name);
        self.out.push('{');
        Ok(Compound {
            canon: self,
            first: true,
            close: "}",
        })
    }
    fn serialize_struct_variant(
        self,
        name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, CanonError> {
        self.out.push_str(name);
        self.out.push_str("::");
        self.out.push_str(variant);
        self.out.push('{');
        Ok(Compound {
            canon: self,
            first: true,
            close: "}",
        })
    }
}

// ---------------------------------------------------------------------------
// The hand-rolled loader side: unescape + the SweepOutcome parser.
// ---------------------------------------------------------------------------

fn unescape(s: &str) -> Option<String> {
    let inner = s.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            '"' => out.push('"'),
            's' => out.push(' '),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            _ => return None,
        }
    }
    Some(out)
}

/// Strict cursor over a canonical string: every `eat` states exactly what
/// the generated encoding must contain next, so any drift between writer
/// and parser surfaces as `None` (→ a skipped record), never as a
/// misread value.
struct Cursor<'a> {
    s: &'a str,
}

impl<'a> Cursor<'a> {
    fn eat(&mut self, prefix: &str) -> Option<()> {
        self.s = self.s.strip_prefix(prefix)?;
        Some(())
    }

    fn take_while(&mut self, pred: impl Fn(char) -> bool) -> &'a str {
        let end = self
            .s
            .char_indices()
            .find(|&(_, c)| !pred(c))
            .map_or(self.s.len(), |(i, _)| i);
        let (head, tail) = self.s.split_at(end);
        self.s = tail;
        head
    }

    fn u64_dec(&mut self) -> Option<u64> {
        self.take_while(|c| c.is_ascii_digit()).parse().ok()
    }

    fn f64_bits(&mut self) -> Option<f64> {
        self.eat("x")?;
        let hex = self.take_while(|c| c.is_ascii_hexdigit());
        if hex.len() != 16 {
            return None;
        }
        Some(f64::from_bits(u64::from_str_radix(hex, 16).ok()?))
    }

    fn boolean(&mut self) -> Option<bool> {
        match self.take_while(|c| c == 'T' || c == 'F') {
            "T" => Some(true),
            "F" => Some(false),
            _ => None,
        }
    }

    /// A `[a,b,c]` sequence, elements parsed by `elem`.
    fn seq<T>(&mut self, mut elem: impl FnMut(&mut Self) -> Option<T>) -> Option<Vec<T>> {
        self.eat("[")?;
        let mut out = Vec::new();
        if self.eat("]").is_some() {
            return Some(out);
        }
        loop {
            out.push(elem(self)?);
            if self.eat("]").is_some() {
                return Some(out);
            }
            self.eat(",")?;
        }
    }

    fn f64_seq(&mut self) -> Option<Vec<f64>> {
        self.seq(Self::f64_bits)
    }

    fn u32_seq(&mut self) -> Option<Vec<u32>> {
        self.seq(|c| u32::try_from(c.u64_dec()?).ok())
    }
}

/// Parses the canonical encoding of a [`SweepSeries`] (the payload of
/// `S`-tagged records), mirroring `canon_string(&series)`.
fn parse_series(c: &mut Cursor<'_>) -> Option<SweepSeries> {
    c.eat("SweepSeries{round_times:")?;
    let round_times = c.f64_seq()?;
    c.eat(",round_skews:")?;
    let round_skews = c.f64_seq()?;
    c.eat(",skew_times:")?;
    let skew_times = c.f64_seq()?;
    c.eat(",skew_values:")?;
    let skew_values = c.f64_seq()?;
    c.eat(",corr_procs:")?;
    let corr_procs = c.u32_seq()?;
    c.eat(",corr_times:")?;
    let corr_times = c.f64_seq()?;
    c.eat(",corr_values:")?;
    let corr_values = c.f64_seq()?;
    c.eat("}")?;
    Some(SweepSeries {
        round_times,
        round_skews,
        skew_times,
        skew_values,
        corr_procs,
        corr_times,
        corr_values,
    })
}

/// Parses the canonical encoding of a [`SweepOutcome`] — the exact
/// mirror of what `canon_string(&outcome)` emits (pinned by the
/// `outcome_roundtrip` test). Returns `None` on any mismatch.
fn parse_outcome(s: &str) -> Option<SweepOutcome> {
    let mut c = Cursor { s };
    c.eat("SweepOutcome{index:")?;
    let index = c.u64_dec()?;
    c.eat(",seed:")?;
    let seed = c.u64_dec()?;
    c.eat(",steady_skew:")?;
    let steady_skew = c.f64_bits()?;
    c.eat(",max_skew:")?;
    let max_skew = c.f64_bits()?;
    c.eat(",agreement_holds:")?;
    let agreement_holds = c.boolean()?;
    c.eat(",max_abs_adjustment:")?;
    let max_abs_adjustment = c.f64_bits()?;
    c.eat(",mean_abs_adjustment:")?;
    let mean_abs_adjustment = c.f64_bits()?;
    c.eat(",adjustment_holds:")?;
    let adjustment_holds = c.boolean()?;
    c.eat(",stats:SimStats{events_delivered:")?;
    let events_delivered = c.u64_dec()?;
    c.eat(",messages_sent:")?;
    let messages_sent = c.u64_dec()?;
    c.eat(",timers_set:")?;
    let timers_set = c.u64_dec()?;
    c.eat(",timers_suppressed:")?;
    let timers_suppressed = c.u64_dec()?;
    c.eat("},series:")?;
    let series = if c.eat("~").is_some() {
        None
    } else {
        c.eat("+")?;
        Some(parse_series(&mut c)?)
    };
    c.eat("}")?;
    if !c.s.is_empty() {
        return None;
    }
    Some(SweepOutcome {
        index: usize::try_from(index).ok()?,
        seed,
        steady_skew,
        max_skew,
        agreement_holds,
        max_abs_adjustment,
        mean_abs_adjustment,
        adjustment_holds,
        stats: SimStats {
            events_delivered,
            messages_sent,
            timers_set,
            timers_suppressed,
        },
        series,
    })
}

// ---------------------------------------------------------------------------
// The record store.
// ---------------------------------------------------------------------------

/// The FNV-1a offset basis and prime — one definition for every FNV use
/// in the crate (line checksums here, cache slot keys in `sweep.rs`).
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a continued from an arbitrary running state.
pub(crate) fn fnv64_seeded(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a over raw bytes — the per-line checksum.
fn fnv64(bytes: &[u8]) -> u64 {
    fnv64_seeded(FNV_OFFSET, bytes)
}

type StoreKey = (u64, String);

#[derive(Debug, Clone)]
struct StoreRecord {
    spec_canon: String,
    outcome_canon: String,
    outcome: SweepOutcome,
}

/// Records are equal iff their canonical bytes are — `outcome` is just
/// the parsed view of `outcome_canon`.
impl PartialEq for StoreRecord {
    fn eq(&self, other: &Self) -> bool {
        self.spec_canon == other.spec_canon && self.outcome_canon == other.outcome_canon
    }
}

/// Why two stores refused to merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeConflict {
    /// The colliding spec content hash.
    pub content_hash: u64,
    /// The algorithm whose record collided.
    pub algo: String,
    /// Whether the specs or (worse) the outcomes disagreed.
    pub kind: MergeConflictKind,
}

/// The two ways records under one key can disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeConflictKind {
    /// Same key, different canonical specs: a genuine 64-bit hash
    /// collision between distinct scenarios. Harmless in-process (the
    /// cache degrades it to a miss) but unrepresentable in the one-slot
    /// store, so merging refuses.
    SpecMismatch,
    /// Same key, same spec, different outcomes: the two stores were
    /// written by executions that were *not* bit-identical — mixed
    /// engine builds or hardware-dependent math. This is the error the
    /// determinism contract exists to catch; do not pick a winner.
    OutcomeMismatch,
}

impl std::fmt::Display for MergeConflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match self.kind {
            MergeConflictKind::SpecMismatch => "distinct specs share a content hash",
            MergeConflictKind::OutcomeMismatch => "same spec, conflicting outcomes",
        };
        write!(
            f,
            "sweep store merge conflict under key {:016x}/{}: {what}",
            self.content_hash, self.algo
        )
    }
}

impl std::error::Error for MergeConflict {}

/// What [`SweepStore::merge_from`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Records the other store contributed that this one lacked.
    pub added: usize,
    /// Records present in both and confirmed byte-identical.
    pub agreed: usize,
}

/// A disk-persistent, content-addressed store of sweep records — the
/// serialization layer under [`SweepCache`].
///
/// See the [module docs](self) for the format and guarantees. Typical
/// shapes:
///
/// * **one process, warm restarts** — [`DiskSweepCache`] bundles a store
///   and a cache; experiment binaries use it via
///   [`DiskSweepCache::open_shared`].
/// * **N shards, one grid** — each shard opens its own store path, runs
///   [`SweepRunner::sweep_sharded_cached`], saves; a merge step folds
///   the shard stores together with [`SweepStore::merge_from`] and saves
///   the canonical union (`cargo run -p bench --bin sweep_shard`).
///
/// [`SweepRunner::sweep_sharded_cached`]: crate::SweepRunner::sweep_sharded_cached
#[derive(Debug, Default)]
pub struct SweepStore {
    path: Option<PathBuf>,
    records: BTreeMap<StoreKey, StoreRecord>,
    skipped: usize,
    stale: usize,
}

impl SweepStore {
    /// An empty, path-less store (useful as a merge accumulator; save it
    /// with [`SweepStore::save_to`]).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens the store at `path`, tolerating anything it finds there.
    ///
    /// A missing file is an empty store. A present file is scanned line
    /// by line: records that fail their checksum, fail to parse, or
    /// duplicate an earlier key are counted in
    /// [`skipped_lines`](SweepStore::skipped_lines); records from
    /// another [`ENGINE_VERSION`] are counted in
    /// [`stale_records`](SweepStore::stale_records); everything valid
    /// loads. A file whose header is foreign contributes nothing but
    /// skips. Truncation mid-record therefore costs exactly the
    /// truncated record.
    ///
    /// # Errors
    ///
    /// Only genuine I/O failures (permissions, hardware) — *content*
    /// never errors.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Self> {
        let path = path.into();
        let mut store = Self {
            path: Some(path.clone()),
            ..Self::default()
        };
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(store),
            Err(e) => return Err(e),
        };
        let mut lines = text.lines();
        if lines.next() != Some(HEADER) {
            store.skipped = text.lines().count();
            return Ok(store);
        }
        for line in lines {
            match parse_line(line) {
                ParsedLine::Record { key, record } => {
                    // First writer wins: the store is append-only, and an
                    // appended duplicate can only be a foreign artifact.
                    match store.records.entry(key) {
                        std::collections::btree_map::Entry::Vacant(v) => {
                            v.insert(*record);
                        }
                        std::collections::btree_map::Entry::Occupied(_) => store.skipped += 1,
                    }
                }
                ParsedLine::Stale => store.stale += 1,
                ParsedLine::Corrupt => store.skipped += 1,
            }
        }
        Ok(store)
    }

    /// Number of valid current-engine records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Lines the last [`open`](SweepStore::open) discarded as corrupt.
    #[must_use]
    pub fn skipped_lines(&self) -> usize {
        self.skipped
    }

    /// Records the last [`open`](SweepStore::open) ignored for carrying
    /// a different [`ENGINE_VERSION`].
    #[must_use]
    pub fn stale_records(&self) -> usize {
        self.stale
    }

    /// The path this store loads from and saves to, if it has one.
    #[must_use]
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Hydrates an in-memory [`SweepCache`] with every record — the
    /// read half of cross-process sharing.
    #[must_use]
    pub fn hydrate(&self) -> SweepCache {
        let cache = SweepCache::new();
        for ((hash, algo), record) in &self.records {
            cache.seed(
                *hash,
                algo.clone(),
                record.spec_canon.clone(),
                record.outcome.clone(),
            );
        }
        cache
    }

    /// Folds a cache's entries into the store (the write half), keyed by
    /// recomputing nothing: the cache already holds the canonical spec
    /// bytes. Outcome grid indices are normalized to zero so that *what*
    /// was computed, not *where in some grid* it sat, is what persists —
    /// this is what makes shard-store merges canonical.
    ///
    /// Returns how many records were added or replaced.
    pub fn absorb(&mut self, cache: &SweepCache) -> usize {
        let mut changed = 0;
        for (content_hash, algo, spec_canon, outcome) in cache.snapshot() {
            let mut normalized = outcome;
            normalized.index = 0;
            let outcome_canon = canon_string(&normalized);
            let key = (content_hash, algo);
            let record = StoreRecord {
                spec_canon,
                outcome_canon,
                outcome: normalized,
            };
            let slot = self.records.entry(key);
            match slot {
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(record);
                    changed += 1;
                }
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    if *o.get() != record {
                        o.insert(record);
                        changed += 1;
                    }
                }
            }
        }
        changed
    }

    /// Merges another store's records into this one, equality-confirmed:
    /// a key present in both must carry byte-identical spec *and*
    /// outcome, otherwise the merge refuses with a [`MergeConflict`]
    /// (and this store is left unchanged).
    ///
    /// # Errors
    ///
    /// See [`MergeConflictKind`] for the two refusal modes.
    pub fn merge_from(&mut self, other: &Self) -> Result<MergeStats, MergeConflict> {
        // Validate everything before mutating anything.
        for (key, theirs) in &other.records {
            if let Some(ours) = self.records.get(key) {
                if ours.spec_canon != theirs.spec_canon {
                    return Err(MergeConflict {
                        content_hash: key.0,
                        algo: key.1.clone(),
                        kind: MergeConflictKind::SpecMismatch,
                    });
                }
                if ours.outcome_canon != theirs.outcome_canon {
                    return Err(MergeConflict {
                        content_hash: key.0,
                        algo: key.1.clone(),
                        kind: MergeConflictKind::OutcomeMismatch,
                    });
                }
            }
        }
        let mut stats = MergeStats::default();
        for (key, theirs) in &other.records {
            if self.records.contains_key(key) {
                stats.agreed += 1;
            } else {
                self.records.insert(key.clone(), theirs.clone());
                stats.added += 1;
            }
        }
        Ok(stats)
    }

    /// Adopts every record of `other` that this store lacks, never
    /// touching records it already has — the conflict-silent sibling of
    /// [`SweepStore::merge_from`], for when "ours is fresher" is the
    /// right policy (e.g. folding in what another process wrote to the
    /// shared file while we were running). Returns how many records
    /// were adopted.
    pub fn adopt_missing_from(&mut self, other: &Self) -> usize {
        let mut adopted = 0;
        for (key, theirs) in &other.records {
            if !self.records.contains_key(key) {
                self.records.insert(key.clone(), theirs.clone());
                adopted += 1;
            }
        }
        adopted
    }

    /// Saves to the store's own path (see [`SweepStore::save_to`]).
    ///
    /// # Errors
    ///
    /// I/O failures, or [`io::ErrorKind::InvalidInput`] if the store was
    /// created path-less.
    pub fn save(&self) -> io::Result<()> {
        let path = self.path.as_ref().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "sweep store has no path")
        })?;
        self.save_to(path)
    }

    /// Writes the canonical store file: header plus one record line per
    /// key, in sorted key order — so any two stores with equal contents
    /// produce byte-identical files, regardless of insertion history.
    ///
    /// The write is atomic-by-rename: content goes to a sibling temp
    /// file (suffixed with this process id) which is then renamed over
    /// `path`. Concurrent savers last-write-win a *complete* file;
    /// readers never observe a torn store.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from create/write/rename.
    pub fn save_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        let mut content = String::with_capacity(64 + self.records.len() * 256);
        content.push_str(HEADER);
        content.push('\n');
        for ((hash, algo), record) in &self.records {
            content.push_str(&record_line(*hash, algo, record));
            content.push('\n');
        }
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, content)?;
        std::fs::rename(&tmp, path)
    }
}

fn record_line(hash: u64, algo: &str, record: &StoreRecord) -> String {
    // `R` = scalar summary; `S` = series-bearing (the v2 payload). The
    // tag duplicates what the outcome encoding says so a reader can
    // filter record kinds without parsing payloads; the parser
    // cross-checks the two.
    let tag = if record.outcome.series.is_some() {
        "S"
    } else {
        "R"
    };
    let prefix = format!(
        "{tag} {hash:016x} {ENGINE_VERSION} {} {} {}",
        canon_string(algo),
        record.spec_canon,
        record.outcome_canon,
    );
    let crc = fnv64(prefix.as_bytes());
    format!("{prefix} {crc:016x}")
}

enum ParsedLine {
    // Boxed: a parsed record (outcome + canon strings, possibly a whole
    // series payload) dwarfs the data-free variants.
    Record {
        key: StoreKey,
        record: Box<StoreRecord>,
    },
    Stale,
    Corrupt,
}

fn parse_line(line: &str) -> ParsedLine {
    let Some((prefix, crc_tok)) = line.rsplit_once(' ') else {
        return ParsedLine::Corrupt;
    };
    if u64::from_str_radix(crc_tok, 16) != Ok(fnv64(prefix.as_bytes())) {
        return ParsedLine::Corrupt;
    }
    let fields: Vec<&str> = prefix.split(' ').collect();
    let [tag, hash_tok, engine_tok, algo_tok, spec_tok, outcome_tok] = fields.as_slice() else {
        return ParsedLine::Corrupt;
    };
    if *tag != "R" && *tag != "S" {
        return ParsedLine::Corrupt;
    }
    let Ok(hash) = u64::from_str_radix(hash_tok, 16) else {
        return ParsedLine::Corrupt;
    };
    match engine_tok.parse::<u32>() {
        Ok(engine) if engine == ENGINE_VERSION => {}
        Ok(_) => return ParsedLine::Stale,
        Err(_) => return ParsedLine::Corrupt,
    }
    let Some(algo) = unescape(algo_tok) else {
        return ParsedLine::Corrupt;
    };
    let Some(outcome) = parse_outcome(outcome_tok) else {
        return ParsedLine::Corrupt;
    };
    if (*tag == "S") != outcome.series.is_some() {
        return ParsedLine::Corrupt;
    }
    ParsedLine::Record {
        key: (hash, algo),
        record: Box::new(StoreRecord {
            spec_canon: (*spec_tok).to_string(),
            outcome_canon: (*outcome_tok).to_string(),
            outcome,
        }),
    }
}

// ---------------------------------------------------------------------------
// The convenience bundle experiment binaries use.
// ---------------------------------------------------------------------------

/// A [`SweepStore`] + the [`SweepCache`] hydrated from it — the two
/// lines every experiment binary actually wants:
///
/// ```no_run
/// use wl_harness::{DiskSweepCache, Maintenance, SweepRunner};
/// # let grid = Vec::new();
/// let mut disk = DiskSweepCache::open_shared();
/// let outcomes = SweepRunner::new().sweep_cached::<Maintenance>(grid, disk.cache());
/// disk.persist().expect("save sweep cache");
/// ```
///
/// `open_shared` reads the `WL_SWEEP_CACHE_DIR` environment variable
/// (default `target/sweep-cache`; set it to `0` or `off` to disable
/// persistence) and *never fails*: an unreadable store degrades to an
/// in-memory cache with a warning on stderr, because a broken cache
/// must never break an experiment.
#[derive(Debug)]
pub struct DiskSweepCache {
    store: SweepStore,
    cache: SweepCache,
    enabled: bool,
}

impl DiskSweepCache {
    /// Opens the store at `path` and hydrates a cache from it.
    ///
    /// # Errors
    ///
    /// Genuine I/O failures from [`SweepStore::open`] only.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Self> {
        let store = SweepStore::open(path)?;
        let cache = store.hydrate();
        Ok(Self {
            store,
            cache,
            enabled: true,
        })
    }

    /// Opens the shared store under `WL_SWEEP_CACHE_DIR` (see the type
    /// docs). Infallible by design.
    #[must_use]
    pub fn open_shared() -> Self {
        let dir = std::env::var("WL_SWEEP_CACHE_DIR").unwrap_or_default();
        match dir.as_str() {
            "0" | "off" => Self {
                store: SweepStore::new(),
                cache: SweepCache::new(),
                enabled: false,
            },
            "" => Self::open_or_warn(Path::new("target/sweep-cache").join("sweeps.wls")),
            dir => Self::open_or_warn(Path::new(dir).join("sweeps.wls")),
        }
    }

    fn open_or_warn(path: PathBuf) -> Self {
        match Self::open(path.clone()) {
            Ok(disk) => disk,
            Err(e) => {
                eprintln!(
                    "warning: sweep cache at {} unavailable ({e}); running without persistence",
                    path.display()
                );
                Self {
                    store: SweepStore::new(),
                    cache: SweepCache::new(),
                    enabled: false,
                }
            }
        }
    }

    /// The cache to hand to [`SweepRunner::sweep_cached`].
    ///
    /// [`SweepRunner::sweep_cached`]: crate::SweepRunner::sweep_cached
    #[must_use]
    pub fn cache(&self) -> &SweepCache {
        &self.cache
    }

    /// The underlying store (for stats and inspection).
    #[must_use]
    pub fn store(&self) -> &SweepStore {
        &self.store
    }

    /// Absorbs the cache into the store and saves it (no-op when
    /// persistence is disabled). Returns how many records were newly
    /// written.
    ///
    /// Before saving, the shared file is re-read and any records other
    /// processes wrote since we opened it are adopted — concurrent
    /// experiment binaries sharing `WL_SWEEP_CACHE_DIR` extend each
    /// other's stores instead of overwriting them (the save itself is
    /// atomic-by-rename, so the residual race is a benign
    /// lose-the-interleaved-write, not a torn file).
    ///
    /// # Errors
    ///
    /// Propagates save I/O failures.
    pub fn persist(&mut self) -> io::Result<usize> {
        if !self.enabled {
            return Ok(0);
        }
        let added = self.store.absorb(&self.cache);
        if let Some(path) = self.store.path().map(std::path::Path::to_path_buf) {
            if let Ok(on_disk) = SweepStore::open(path) {
                self.store.adopt_missing_from(&on_disk);
            }
        }
        self.store.save()?;
        Ok(added)
    }

    /// One status line for experiment binaries to print: hit/miss
    /// counts and where (whether) the store lives.
    #[must_use]
    pub fn status(&self) -> String {
        let target = match (self.enabled, self.store.path()) {
            (true, Some(p)) => format!("store {}", p.display()),
            _ => "persistence off".to_string(),
        };
        format!(
            "sweep cache: {} hits, {} misses, {} records loaded ({target})",
            self.cache.hits(),
            self.cache.misses(),
            self.store.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioSpec;
    use crate::sweep::{derive_seed, SweepRunner};
    use crate::Maintenance;
    use wl_core::Params;
    use wl_time::RealTime;

    fn grid(count: usize) -> Vec<ScenarioSpec> {
        let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap();
        (0..count)
            .map(|i| {
                ScenarioSpec::new(params.clone())
                    .seed(derive_seed(0xCAFE, i as u64))
                    .t_end(RealTime::from_secs(2.0))
            })
            .collect()
    }

    fn tmp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("wl-cache-{}-{name}.wls", std::process::id()))
    }

    fn outcome_fixture() -> SweepOutcome {
        SweepOutcome {
            index: 3,
            seed: 0xDEAD_BEEF,
            steady_skew: 1.25e-3,
            max_skew: -0.0,
            agreement_holds: true,
            max_abs_adjustment: f64::NAN,
            mean_abs_adjustment: 7.5e-4,
            adjustment_holds: false,
            stats: wl_sim::SimStats {
                events_delivered: 1,
                messages_sent: 2,
                timers_set: 3,
                timers_suppressed: 4,
            },
            series: None,
        }
    }

    fn series_fixture() -> SweepSeries {
        SweepSeries {
            round_times: vec![1.0, 2.0],
            round_skews: vec![0.5, -0.0],
            skew_times: vec![0.0, 0.5, 1.0],
            skew_values: vec![1.0, f64::NAN, 0.25],
            corr_procs: vec![0, 3],
            corr_times: vec![1.0, 1.5],
            corr_values: vec![-0.125, 2.5e-3],
        }
    }

    #[test]
    fn canon_encoding_is_pinned() {
        // The format contract: change this string only together with
        // ENGINE_VERSION.
        assert_eq!(canon_string(&true), "T");
        assert_eq!(canon_string(&1.0f64), "x3ff0000000000000");
        assert_eq!(canon_string(&Some(7u64)), "+7");
        assert_eq!(canon_string(&Option::<u64>::None), "~");
        assert_eq!(canon_string("a b\"c"), "\"a\\sb\\\"c\"");
        assert_eq!(
            canon_string(&crate::DelayKind::AdversarialSplit),
            "DelayKind::AdversarialSplit"
        );
        assert_eq!(
            canon_string(&wl_time::RealTime::from_secs(2.0)),
            "RealTime(x4000000000000000)"
        );
        let spec = grid(1).remove(0);
        let canon = canon_string(&spec.clone());
        assert!(canon.starts_with("ScenarioSpec{params:Params{n:4,f:1,"));
        assert!(
            !canon.contains(' '),
            "canonical encoding must be space-free"
        );
        assert_eq!(canon, canon_string(&spec), "encoding is deterministic");
    }

    #[test]
    fn outcome_roundtrip() {
        let outcome = outcome_fixture();
        let encoded = canon_string(&outcome);
        let decoded = parse_outcome(&encoded).expect("parses back");
        assert!(decoded.bit_identical(&outcome), "NaN and -0.0 must survive");
        // Any tampering is rejected, not misread.
        assert!(parse_outcome(&encoded[1..]).is_none());
        assert!(parse_outcome(&format!("{encoded}x")).is_none());
    }

    #[test]
    fn series_outcome_roundtrip() {
        let mut outcome = outcome_fixture();
        outcome.series = Some(series_fixture());
        let encoded = canon_string(&outcome);
        assert!(
            encoded.contains(",series:+SweepSeries{round_times:[x3ff0000000000000,"),
            "series payload is inlined in the outcome encoding: {encoded}"
        );
        assert!(!encoded.contains(' '), "series encoding must be space-free");
        let decoded = parse_outcome(&encoded).expect("series record parses back");
        assert!(
            decoded.bit_identical(&outcome),
            "every series element must survive bit-for-bit (incl. NaN, -0.0)"
        );
        // Truncating inside the series is rejected, not misread.
        assert!(parse_outcome(&encoded[..encoded.len() - 3]).is_none());
        // Empty series vectors round-trip too.
        outcome.series = Some(SweepSeries {
            round_times: vec![],
            round_skews: vec![],
            skew_times: vec![],
            skew_values: vec![],
            corr_procs: vec![],
            corr_times: vec![],
            corr_values: vec![],
        });
        let encoded = canon_string(&outcome);
        let decoded = parse_outcome(&encoded).expect("empty series parses back");
        assert!(decoded.bit_identical(&outcome));
    }

    #[test]
    fn series_records_tagged_and_cross_checked() {
        // A store holding one scalar and one series record writes `R` and
        // `S` tags respectively; forging the tag of either line fails the
        // cross-check (after re-checksumming, so only the tag is at
        // fault).
        let path = tmp_path("series-tags");
        let _ = std::fs::remove_file(&path);
        let cache = SweepCache::new();
        let g = grid(2);
        let _ = SweepRunner::serial().sweep_cached::<Maintenance>(vec![g[0].clone()], &cache);
        let _ =
            SweepRunner::serial().sweep_cached_series::<Maintenance>(vec![g[1].clone()], &cache);
        let mut store = SweepStore::open(&path).unwrap();
        store.absorb(&cache);
        store.save().unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let tags: Vec<char> = text
            .lines()
            .skip(1)
            .map(|l| l.chars().next().unwrap())
            .collect();
        let mut sorted = tags.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec!['R', 'S'], "one scalar + one series record");

        let reopened = SweepStore::open(&path).unwrap();
        assert_eq!(reopened.len(), 2);
        let hydrated = reopened.hydrate();
        let warm =
            SweepRunner::serial().sweep_cached_series::<Maintenance>(vec![g[1].clone()], &hydrated);
        assert_eq!(hydrated.hits(), 1, "series record serves a series request");
        assert!(warm[0].series.is_some());

        // Forge each tag: the line re-checksums fine but the payload
        // disagrees with the tag, so the loader must skip it.
        let forged: String = std::iter::once(text.lines().next().unwrap().to_string())
            .chain(text.lines().skip(1).map(|line| {
                let (prefix, _) = line.rsplit_once(' ').unwrap();
                let flipped = if let Some(rest) = prefix.strip_prefix("R ") {
                    format!("S {rest}")
                } else {
                    format!("R {}", prefix.strip_prefix("S ").unwrap())
                };
                let crc = fnv64(flipped.as_bytes());
                format!("{flipped} {crc:016x}")
            }))
            .collect::<Vec<_>>()
            .join("\n")
            + "\n";
        std::fs::write(&path, forged).unwrap();
        let reopened = SweepStore::open(&path).unwrap();
        assert_eq!(reopened.len(), 0);
        assert_eq!(reopened.skipped_lines(), 2, "both forged tags rejected");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unescape_rejects_malformed() {
        assert_eq!(unescape("\"a\\sb\"").as_deref(), Some("a b"));
        assert!(unescape("no-quotes").is_none());
        assert!(unescape("\"dangling\\\"").is_none());
        assert!(unescape("\"bad\\q\"").is_none());
    }

    #[test]
    fn store_roundtrip_and_rehydration() {
        let path = tmp_path("roundtrip");
        let _ = std::fs::remove_file(&path);

        let cache = SweepCache::new();
        let outcomes = SweepRunner::serial().sweep_cached::<Maintenance>(grid(3), &cache);
        let mut store = SweepStore::open(&path).unwrap();
        assert!(store.is_empty());
        assert_eq!(store.absorb(&cache), 3);
        store.save().unwrap();

        // Re-absorbing identical content changes nothing.
        assert_eq!(store.absorb(&cache), 0);

        let reopened = SweepStore::open(&path).unwrap();
        assert_eq!(reopened.len(), 3);
        assert_eq!(reopened.skipped_lines(), 0);
        assert_eq!(reopened.stale_records(), 0);

        // The hydrated cache serves the whole grid without a single miss.
        let warm = reopened.hydrate();
        let served = SweepRunner::serial().sweep_cached::<Maintenance>(grid(3), &warm);
        assert_eq!(warm.hits(), 3);
        assert_eq!(warm.misses(), 0);
        for (a, b) in served.iter().zip(&outcomes) {
            assert!(a.bit_identical(b));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_store_loads_as_empty() {
        let path = tmp_path("truncated");
        let cache = SweepCache::new();
        let _ = SweepRunner::serial().sweep_cached::<Maintenance>(grid(1), &cache);
        let mut store = SweepStore::open(&path).unwrap();
        store.absorb(&cache);
        store.save().unwrap();

        let full = std::fs::read_to_string(&path).unwrap();
        // Cut mid-record: the single record line loses its tail (and its
        // checksum with it).
        let cut = full.len() - 10;
        std::fs::write(&path, &full[..cut]).unwrap();

        let reopened = SweepStore::open(&path).unwrap();
        assert!(reopened.is_empty());
        assert_eq!(reopened.skipped_lines(), 1);

        // Truncating into the *header* orphans every line.
        std::fs::write(&path, &full[3..]).unwrap();
        let reopened = SweepStore::open(&path).unwrap();
        assert!(reopened.is_empty());
        assert!(reopened.skipped_lines() > 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_lines_are_skipped_not_fatal() {
        let path = tmp_path("corrupt");
        let cache = SweepCache::new();
        let _ = SweepRunner::serial().sweep_cached::<Maintenance>(grid(2), &cache);
        let mut store = SweepStore::open(&path).unwrap();
        store.absorb(&cache);
        store.save().unwrap();

        let mut text = std::fs::read_to_string(&path).unwrap();
        // Flip a byte inside the first record line's spec blob.
        let lines: Vec<&str> = text.lines().collect();
        let vandalized = lines[1].replacen("Params", "Psrams", 1);
        text = format!("{}\n{}\n{}\ngarbage line\n", lines[0], vandalized, lines[2]);
        std::fs::write(&path, text).unwrap();

        let reopened = SweepStore::open(&path).unwrap();
        assert_eq!(reopened.len(), 1, "the intact record survives");
        assert_eq!(reopened.skipped_lines(), 2, "vandalized + garbage");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stale_engine_records_are_ignored() {
        let path = tmp_path("stale");
        let cache = SweepCache::new();
        let _ = SweepRunner::serial().sweep_cached::<Maintenance>(grid(2), &cache);
        let mut store = SweepStore::open(&path).unwrap();
        store.absorb(&cache);
        store.save().unwrap();

        // Rewrite one record as if an older engine had produced it —
        // with a *valid* checksum, so only the version gate rejects it.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        let old = lines[1].clone();
        let (prefix, _) = old.rsplit_once(' ').unwrap();
        let downgraded_prefix = prefix.replacen(
            &format!(" {ENGINE_VERSION} "),
            &format!(" {} ", ENGINE_VERSION - 1),
            1,
        );
        let crc = fnv64(downgraded_prefix.as_bytes());
        lines[1] = format!("{downgraded_prefix} {crc:016x}");
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();

        let reopened = SweepStore::open(&path).unwrap();
        assert_eq!(reopened.len(), 1);
        assert_eq!(reopened.stale_records(), 1);
        assert_eq!(reopened.skipped_lines(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn merge_confirms_equality_and_detects_conflicts() {
        let a_cache = SweepCache::new();
        let b_cache = SweepCache::new();
        let _ = SweepRunner::serial().sweep_cached::<Maintenance>(grid(3), &a_cache);
        let _ = SweepRunner::serial().sweep_cached::<Maintenance>(grid(2), &b_cache);

        let mut a = SweepStore::new();
        a.absorb(&a_cache);
        let mut b = SweepStore::new();
        b.absorb(&b_cache);

        // b ⊂ a: everything agrees, nothing added.
        let stats = a.merge_from(&b).unwrap();
        assert_eq!(
            stats,
            MergeStats {
                added: 0,
                agreed: 2
            }
        );

        // Tamper with one of b's outcomes: the merge must refuse.
        let key = b.records.keys().next().unwrap().clone();
        let record = b.records.get_mut(&key).unwrap();
        record.outcome_canon = record.outcome_canon.replacen("seed:", "seed:1", 1);
        let err = a.merge_from(&b).unwrap_err();
        assert_eq!(err.kind, MergeConflictKind::OutcomeMismatch);
        assert_eq!(a.len(), 3, "failed merge left the target untouched");
    }

    #[test]
    fn save_is_canonical_regardless_of_insertion_order() {
        let cache = SweepCache::new();
        let _ = SweepRunner::serial().sweep_cached::<Maintenance>(grid(4), &cache);
        let shard_a = SweepCache::new();
        let shard_b = SweepCache::new();
        let _ = SweepRunner::serial().sweep_sharded_cached::<Maintenance>(
            grid(4),
            crate::Shard::new(0, 2),
            &shard_a,
        );
        let _ = SweepRunner::serial().sweep_sharded_cached::<Maintenance>(
            grid(4),
            crate::Shard::new(1, 2),
            &shard_b,
        );

        let p_full = tmp_path("canon-full");
        let p_merged = tmp_path("canon-merged");
        let mut full = SweepStore::open(&p_full).unwrap();
        full.absorb(&cache);
        full.save().unwrap();

        // Merge b into a (reverse of creation order on purpose).
        let mut sa = SweepStore::new();
        sa.absorb(&shard_b);
        let mut sb = SweepStore::new();
        sb.absorb(&shard_a);
        sa.merge_from(&sb).unwrap();
        sa.save_to(&p_merged).unwrap();

        let full_bytes = std::fs::read(&p_full).unwrap();
        let merged_bytes = std::fs::read(&p_merged).unwrap();
        assert_eq!(
            full_bytes, merged_bytes,
            "2-shard merged store must be byte-identical to the unsharded store"
        );
        let _ = std::fs::remove_file(&p_full);
        let _ = std::fs::remove_file(&p_merged);
    }

    #[test]
    fn interleaved_persists_union_instead_of_clobbering() {
        // Two processes share one store file: both open it empty, run
        // disjoint grids, and persist one after the other. The second
        // persist must adopt the first's records, not overwrite them.
        let path = tmp_path("interleaved");
        let _ = std::fs::remove_file(&path);
        let mut a = DiskSweepCache::open(&path).unwrap();
        let mut b = DiskSweepCache::open(&path).unwrap();
        let _ = SweepRunner::serial().sweep_cached::<Maintenance>(grid(2), a.cache());
        let grid_b: Vec<ScenarioSpec> = grid(2)
            .into_iter()
            .enumerate()
            .map(|(i, s)| s.seed(derive_seed(0xB0B, i as u64)))
            .collect();
        let _ = SweepRunner::serial().sweep_cached::<Maintenance>(grid_b, b.cache());
        a.persist().unwrap();
        b.persist().unwrap();
        let merged = SweepStore::open(&path).unwrap();
        assert_eq!(merged.len(), 4, "both processes' records survive");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn disk_cache_disabled_by_env_value() {
        // `open` + `persist` path without env manipulation (env vars are
        // process-global; tests must not race each other over them).
        let path = tmp_path("disk-bundle");
        let _ = std::fs::remove_file(&path);
        let mut disk = DiskSweepCache::open(&path).unwrap();
        let _ = SweepRunner::serial().sweep_cached::<Maintenance>(grid(2), disk.cache());
        assert_eq!(disk.persist().unwrap(), 2);
        assert!(disk.status().contains("2 misses"));

        let disk2 = DiskSweepCache::open(&path).unwrap();
        let _ = SweepRunner::serial().sweep_cached::<Maintenance>(grid(2), disk2.cache());
        assert_eq!(disk2.cache().hits(), 2);
        assert_eq!(disk2.cache().misses(), 0);
        let _ = std::fs::remove_file(&path);
    }
}
