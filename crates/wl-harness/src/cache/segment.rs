//! Byte-level framing of the **v3 binary segment store** — the reader
//! and writer under [`SweepStore`]'s binary format.
//!
//! This module knows nothing about sweeps: it frames opaque canonical
//! strings into length-prefixed, checksummed records, packs records
//! into fixed-capacity segments, and concatenates segments into a
//! container file. The normative byte-level specification — authoritative
//! over this implementation, and detailed enough to reimplement the
//! reader independently — is `docs/store-format.md`; the layout in
//! brief:
//!
//! ```text
//! file    := file-header segment*
//! segment := segment-header record-block
//! record  := body-len:u32 body          (body self-checksummed)
//! ```
//!
//! * **Records** carry the same six fields a v1/v2 text line does (tag,
//!   content hash, engine version, algorithm, canonical spec, canonical
//!   outcome) — see [`EncodedRecord`] — with the two canonical-string
//!   payloads individually [`wlz`]-compressed when that shrinks them.
//! * **Segments** are capacity-bounded: a writer starts a new segment
//!   when the next record would push the current record-block past the
//!   configured capacity (a single oversized record gets a segment of
//!   its own). Each segment header states its record count and block
//!   length and checksums the whole block, so any segment is verifiable
//!   — and skippable — without touching its neighbours.
//! * **Append-friendly**: the file header does not state a segment
//!   count; readers scan segments to EOF. A checkpoint can therefore
//!   extend a store by appending one segment instead of rewriting the
//!   file — and a crash mid-append costs exactly the torn tail, which
//!   the reader recovers record-by-record.
//!
//! [`SweepStore`]: crate::cache::SweepStore

use crate::cache::{fnv64_seeded, FNV_OFFSET};

/// First four bytes of every binary store file.
pub const FILE_MAGIC: [u8; 4] = *b"WLSB";

/// The binary *file-format* version (independent of the per-record
/// engine version), fifth byte of the file header.
pub const FILE_FORMAT_VERSION: u8 = 1;

/// Byte length of the file header: magic (4), format version (1),
/// reserved zeros (3), segment capacity (`u32` LE), reserved zeros (4).
pub const FILE_HEADER_LEN: usize = 16;

/// First four bytes of every segment header.
pub const SEGMENT_MAGIC: [u8; 4] = *b"WSEG";

/// Byte length of a segment header: magic (4), ordinal (`u32` LE),
/// record count (`u32` LE), record-block length (`u32` LE), FNV-1a of
/// the record block (`u64` LE).
pub const SEGMENT_HEADER_LEN: usize = 24;

/// Default capacity of one segment's record block, in bytes. Part of a
/// file's canonical identity (it is written into the file header and
/// governs where segment boundaries fall), so two stores compare
/// byte-identical only when written at the same capacity.
pub const DEFAULT_SEGMENT_CAPACITY: u32 = 256 * 1024;

/// The `R` record tag: a scalar-summary record of a non-adversarial
/// spec.
pub const TAG_SCALAR: u8 = b'R';

/// The `S` record tag: an outcome whose encoding carries a series
/// payload (non-adversarial spec).
pub const TAG_SERIES: u8 = b'S';

/// The `A` record tag: a scalar-summary record of an *adversarial* spec
/// (one whose canonical form carries an `adversary:+…` block).
pub const TAG_ADV_SCALAR: u8 = b'A';

/// The `B` record tag: a series-bearing record of an adversarial spec.
pub const TAG_ADV_SERIES: u8 = b'B';

/// Whether records under `tag` carry a series payload.
#[must_use]
pub fn tag_has_series(tag: u8) -> bool {
    tag == TAG_SERIES || tag == TAG_ADV_SERIES
}

/// Whether records under `tag` describe an adversarial spec.
#[must_use]
pub fn tag_is_adversarial(tag: u8) -> bool {
    tag == TAG_ADV_SCALAR || tag == TAG_ADV_SERIES
}

/// The record tag for a `(series-bearing, adversarial)` combination —
/// the single choice point both store writers and the service share.
#[must_use]
pub fn record_tag(series: bool, adversarial: bool) -> u8 {
    match (series, adversarial) {
        (false, false) => TAG_SCALAR,
        (true, false) => TAG_SERIES,
        (false, true) => TAG_ADV_SCALAR,
        (true, true) => TAG_ADV_SERIES,
    }
}

fn fnv64(bytes: &[u8]) -> u64 {
    fnv64_seeded(FNV_OFFSET, bytes)
}

/// One store record at the *format* level: the six fields shared by the
/// text line formats (v1 `R`, v2 `S`) and the v3 binary record, with
/// the spec and outcome as opaque canonical strings.
///
/// This is the unit both stores read and write — and the unit in which
/// stale-engine records are retained across saves and carried through
/// text↔binary migration without their (possibly foreign-grammar)
/// outcome payloads ever being parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedRecord {
    /// Record kind: [`TAG_SCALAR`], [`TAG_SERIES`], [`TAG_ADV_SCALAR`],
    /// or [`TAG_ADV_SERIES`].
    pub tag: u8,
    /// The spec's content hash (the record key, with `algo`).
    pub content_hash: u64,
    /// The engine-semantics version that produced this record.
    pub engine_version: u32,
    /// The algorithm name, unescaped.
    pub algo: String,
    /// Canonical serialization of the spec.
    pub spec_canon: String,
    /// Canonical serialization of the outcome.
    pub outcome_canon: String,
}

/// Payload encoding id: raw bytes, untransformed.
pub const ENC_RAW: u8 = 0;
/// Payload encoding id: a [`wlz::compress`] stream.
pub const ENC_LZ: u8 = 1;
/// Payload encoding id: [`wlz::hex_pack`] then [`wlz::compress`] — the
/// winner on canonical text, whose bulk is 16-digit hex float
/// encodings that nibble-packing halves before LZ sees them.
pub const ENC_HEX_LZ: u8 = 2;

/// Appends `payload` to `out` in the compression framing: one encoding
/// byte, raw length, encoded length, encoded bytes — and, for
/// [`ENC_HEX_LZ`] only, the intermediate hex-packed length between the
/// two (each codec layer is decoded against its exact expected length,
/// so truncation and padding are detected at every layer). The writer
/// tries every encoding and keeps the smallest *total framing* (ties
/// break toward the lowest id), so the choice is deterministic and the
/// reader never guesses — it just dispatches on the byte.
fn push_payload(out: &mut Vec<u8>, payload: &[u8]) {
    let len32 = |n: usize| u32::try_from(n).expect("payload < 4 GiB").to_le_bytes();
    let lz = wlz::compress(payload);
    let hex_packed = wlz::hex_pack(payload);
    let hex_lz = wlz::compress(&hex_packed);
    // ENC_HEX_LZ carries 4 extra framing bytes; account for them.
    let (enc, encoded): (u8, &[u8]) =
        if payload.len() <= lz.len() && payload.len() <= hex_lz.len() + 4 {
            (ENC_RAW, payload)
        } else if lz.len() <= hex_lz.len() + 4 {
            (ENC_LZ, &lz)
        } else {
            (ENC_HEX_LZ, &hex_lz)
        };
    out.push(enc);
    out.extend_from_slice(&len32(payload.len()));
    if enc == ENC_HEX_LZ {
        out.extend_from_slice(&len32(hex_packed.len()));
    }
    out.extend_from_slice(&len32(encoded.len()));
    out.extend_from_slice(encoded);
}

/// Cursor helpers over a record body.
struct Take<'a>(&'a [u8]);

impl<'a> Take<'a> {
    fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.0.len() < n {
            return None;
        }
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Some(head)
    }
    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.bytes(2)?.try_into().ok()?))
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.bytes(4)?.try_into().ok()?))
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.bytes(8)?.try_into().ok()?))
    }
    fn payload(&mut self) -> Option<String> {
        let enc = *self.bytes(1)?.first()?;
        let raw_len = self.u32()? as usize;
        let raw = match enc {
            ENC_RAW => {
                let enc_len = self.u32()? as usize;
                if enc_len != raw_len {
                    return None;
                }
                self.bytes(enc_len)?.to_vec()
            }
            ENC_LZ => {
                let enc_len = self.u32()? as usize;
                wlz::decompress(self.bytes(enc_len)?, raw_len)?
            }
            ENC_HEX_LZ => {
                let mid_len = self.u32()? as usize;
                let enc_len = self.u32()? as usize;
                let packed = wlz::decompress(self.bytes(enc_len)?, mid_len)?;
                let raw = wlz::hex_unpack(&packed)?;
                if raw.len() != raw_len {
                    return None;
                }
                raw
            }
            _ => return None,
        };
        String::from_utf8(raw).ok()
    }
}

impl EncodedRecord {
    /// Whether `tag` is one of the known record tags.
    #[must_use]
    pub fn known_tag(tag: u8) -> bool {
        tag == TAG_SCALAR || tag == TAG_SERIES || tag == TAG_ADV_SCALAR || tag == TAG_ADV_SERIES
    }

    /// Serializes this record: `u32` LE body length, then the
    /// self-checksummed body (see `docs/store-format.md` § "v3 record").
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(64 + self.outcome_canon.len() / 4);
        body.push(self.tag);
        body.extend_from_slice(&self.content_hash.to_le_bytes());
        body.extend_from_slice(&self.engine_version.to_le_bytes());
        let algo = self.algo.as_bytes();
        body.extend_from_slice(
            &u16::try_from(algo.len())
                .expect("algorithm names are short")
                .to_le_bytes(),
        );
        body.extend_from_slice(algo);
        push_payload(&mut body, self.spec_canon.as_bytes());
        push_payload(&mut body, self.outcome_canon.as_bytes());
        let crc = fnv64(&body);
        body.extend_from_slice(&crc.to_le_bytes());

        let mut out = Vec::with_capacity(4 + body.len());
        out.extend_from_slice(
            &u32::try_from(body.len())
                .expect("record < 4 GiB")
                .to_le_bytes(),
        );
        out.extend_from_slice(&body);
        out
    }

    /// Parses one record from the front of `data`, returning it and the
    /// number of bytes consumed. `None` on any malformation — a length
    /// running past `data`, a checksum mismatch, an unknown tag, a
    /// compression framing violation, or non-UTF-8 text.
    #[must_use]
    pub fn decode(data: &[u8]) -> Option<(Self, usize)> {
        let mut head = Take(data);
        let body_len = head.u32()? as usize;
        let body = head.bytes(body_len)?;
        if body_len < 8 {
            return None;
        }
        let (checked, crc_bytes) = body.split_at(body_len - 8);
        let crc = u64::from_le_bytes(crc_bytes.try_into().ok()?);
        if crc != fnv64(checked) {
            return None;
        }
        let mut c = Take(checked);
        let tag = *c.bytes(1)?.first()?;
        if !Self::known_tag(tag) {
            return None;
        }
        let content_hash = c.u64()?;
        let engine_version = c.u32()?;
        let algo_len = c.u16()? as usize;
        let algo = String::from_utf8(c.bytes(algo_len)?.to_vec()).ok()?;
        let spec_canon = c.payload()?;
        let outcome_canon = c.payload()?;
        if !c.0.is_empty() {
            return None;
        }
        Some((
            Self {
                tag,
                content_hash,
                engine_version,
                algo,
                spec_canon,
                outcome_canon,
            },
            4 + body_len,
        ))
    }
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

/// Packs [`EncodedRecord`]s into capacity-bounded segments.
///
/// Use [`write_file`] for a whole store file; use a bare writer when
/// producing *appendable* segment bytes (a checkpoint extending an
/// existing file):
///
/// ```
/// use wl_harness::cache::segment::{EncodedRecord, SegmentReader, SegmentWriter, TAG_SCALAR};
///
/// let rec = EncodedRecord {
///     tag: TAG_SCALAR,
///     content_hash: 7,
///     engine_version: 3,
///     algo: "demo".into(),
///     spec_canon: "Spec{x:1}".into(),
///     outcome_canon: "Outcome{y:2}".into(),
/// };
///
/// // A full file...
/// let mut file = wl_harness::cache::segment::write_file([&rec], 1024);
/// // ...extended by one appended checkpoint segment:
/// let mut w = SegmentWriter::new(1024, 1);
/// w.push(&rec.encode());
/// file.extend_from_slice(&w.finish());
///
/// let mut reader = SegmentReader::new(&file).expect("valid header");
/// assert_eq!(reader.by_ref().count(), 2);
/// assert_eq!((reader.segments(), reader.damaged()), (2, 0));
/// ```
#[derive(Debug)]
pub struct SegmentWriter {
    capacity: u32,
    next_ordinal: u32,
    out: Vec<u8>,
    block: Vec<u8>,
    block_records: u32,
}

impl SegmentWriter {
    /// A writer producing segments `first_ordinal, first_ordinal+1, …`
    /// with the given record-block capacity.
    #[must_use]
    pub fn new(capacity: u32, first_ordinal: u32) -> Self {
        Self {
            capacity,
            next_ordinal: first_ordinal,
            out: Vec::new(),
            block: Vec::new(),
            block_records: 0,
        }
    }

    /// Adds one encoded record (the bytes from [`EncodedRecord::encode`]),
    /// sealing the current segment first if the record would overflow it.
    pub fn push(&mut self, encoded: &[u8]) {
        if !self.block.is_empty() && self.block.len() + encoded.len() > self.capacity as usize {
            self.seal();
        }
        self.block.extend_from_slice(encoded);
        self.block_records += 1;
    }

    fn seal(&mut self) {
        if self.block.is_empty() {
            return;
        }
        self.out.extend_from_slice(&SEGMENT_MAGIC);
        self.out.extend_from_slice(&self.next_ordinal.to_le_bytes());
        self.out
            .extend_from_slice(&self.block_records.to_le_bytes());
        self.out.extend_from_slice(
            &u32::try_from(self.block.len())
                .expect("segment < 4 GiB")
                .to_le_bytes(),
        );
        self.out
            .extend_from_slice(&fnv64(&self.block).to_le_bytes());
        self.out.append(&mut self.block);
        self.block_records = 0;
        self.next_ordinal += 1;
    }

    /// Seals the pending segment and returns the segment bytes (no file
    /// header — callers append these to an existing file or prepend
    /// [`FILE_MAGIC`]'s header themselves via [`write_file`]).
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.into_parts().0
    }

    /// [`finish`](SegmentWriter::finish), also returning the ordinal the
    /// *next* appended segment should carry — what an incremental
    /// checkpointer needs to keep extending the same file.
    #[must_use]
    pub fn into_parts(mut self) -> (Vec<u8>, u32) {
        self.seal();
        (self.out, self.next_ordinal)
    }
}

/// Serializes a complete binary store file: the 16-byte file header
/// followed by the records packed into capacity-bounded segments in
/// iteration order. The output is a pure function of the record
/// sequence and the capacity — the canonicality the store's
/// byte-comparison contract rests on.
#[must_use]
pub fn write_file<'a>(
    records: impl IntoIterator<Item = &'a EncodedRecord>,
    capacity: u32,
) -> Vec<u8> {
    write_file_with_ordinal(records, capacity).0
}

/// [`write_file`], also returning the ordinal an appended segment
/// should carry (i.e. how many segments were written) — so a saver
/// that intends to append later does not have to re-read its own
/// output to learn it.
#[must_use]
pub fn write_file_with_ordinal<'a>(
    records: impl IntoIterator<Item = &'a EncodedRecord>,
    capacity: u32,
) -> (Vec<u8>, u32) {
    let mut out = Vec::with_capacity(FILE_HEADER_LEN + 1024);
    out.extend_from_slice(&FILE_MAGIC);
    out.push(FILE_FORMAT_VERSION);
    out.extend_from_slice(&[0u8; 3]);
    out.extend_from_slice(&capacity.to_le_bytes());
    out.extend_from_slice(&[0u8; 4]);
    let mut writer = SegmentWriter::new(capacity, 0);
    for record in records {
        writer.push(&record.encode());
    }
    let (segments, next_ordinal) = writer.into_parts();
    out.extend_from_slice(&segments);
    (out, next_ordinal)
}

// ---------------------------------------------------------------------------
// Reader.
// ---------------------------------------------------------------------------

/// Streaming, corruption-tolerant reader over a binary store file.
///
/// Yields every record that survives verification, in file order, and
/// counts what it had to discard ([`damaged`](SegmentReader::damaged)):
/// a record failing its checksum or parse costs that record; a torn
/// tail costs the records after the tear; a vandalized segment header
/// costs its segment (the reader resyncs on the next [`SEGMENT_MAGIC`]).
/// Construction fails only when the 16-byte file header is absent or
/// foreign — the file is then *not a binary store* at all.
///
/// ```
/// use wl_harness::cache::segment::{write_file, EncodedRecord, SegmentReader, TAG_SERIES};
///
/// let rec = EncodedRecord {
///     tag: TAG_SERIES,
///     content_hash: 0xFEED,
///     engine_version: 3,
///     algo: "wl-maintenance".into(),
///     spec_canon: "Spec{n:4}".into(),
///     outcome_canon: "Outcome{series:+…}".into(),
/// };
/// let file = write_file([&rec, &rec], 64); // tiny capacity: 2 segments
///
/// let mut reader = SegmentReader::new(&file).expect("valid header");
/// let records: Vec<EncodedRecord> = reader.by_ref().collect();
/// assert_eq!(records.len(), 2);
/// assert_eq!(records[0], rec);
/// assert_eq!(reader.segments(), 2);
/// assert_eq!(reader.damaged(), 0);
/// assert_eq!(reader.next_ordinal(), 2); // where an append would continue
/// ```
#[derive(Debug)]
pub struct SegmentReader<'a> {
    rest: &'a [u8],
    block: &'a [u8],
    block_left: u32,
    capacity: u32,
    segments: usize,
    damaged: usize,
    next_ordinal: u32,
}

impl<'a> SegmentReader<'a> {
    /// Validates the file header and positions the reader at the first
    /// segment. `None` means "not a v3 binary store" (wrong magic,
    /// unknown format version, or a file shorter than the header) — the
    /// caller should try the text format instead.
    #[must_use]
    pub fn new(data: &'a [u8]) -> Option<Self> {
        if data.len() < FILE_HEADER_LEN || data[..4] != FILE_MAGIC || data[4] != FILE_FORMAT_VERSION
        {
            return None;
        }
        let capacity = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
        Some(Self {
            rest: &data[FILE_HEADER_LEN..],
            block: &[],
            block_left: 0,
            capacity,
            segments: 0,
            damaged: 0,
            next_ordinal: 0,
        })
    }

    /// The segment capacity stated in the file header.
    #[must_use]
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Segments encountered so far (including damaged ones).
    #[must_use]
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// Units discarded so far: individual records that failed
    /// verification, plus one per segment whose header was unreadable.
    #[must_use]
    pub fn damaged(&self) -> usize {
        self.damaged
    }

    /// One past the highest segment ordinal seen — the ordinal an
    /// appended segment should carry.
    #[must_use]
    pub fn next_ordinal(&self) -> u32 {
        self.next_ordinal
    }

    /// Enters the next segment, handling header damage and torn tails.
    /// Returns `false` at end of file.
    fn advance_segment(&mut self) -> bool {
        loop {
            if self.rest.is_empty() {
                return false;
            }
            if self.rest.len() < SEGMENT_HEADER_LEN || self.rest[..4] != SEGMENT_MAGIC {
                // Damaged or torn segment header: drop it and resync on
                // the next segment magic, if any.
                self.damaged += 1;
                self.segments += 1;
                match find_magic(&self.rest[1..]) {
                    Some(i) => self.rest = &self.rest[1 + i..],
                    None => {
                        self.rest = &[];
                        return false;
                    }
                }
                continue;
            }
            let header = &self.rest[..SEGMENT_HEADER_LEN];
            let ordinal = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
            let count = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
            let block_len =
                u32::from_le_bytes(header[12..16].try_into().expect("4 bytes")) as usize;
            self.segments += 1;
            self.next_ordinal = self.next_ordinal.max(ordinal.saturating_add(1));
            let body = &self.rest[SEGMENT_HEADER_LEN..];
            if body.len() < block_len {
                // Torn tail (crash mid-append): salvage the prefix
                // record-by-record; the per-record checksums decide how
                // far is trustworthy.
                self.block = body;
                self.block_left = count;
                self.rest = &[];
            } else {
                let (block, rest) = body.split_at(block_len);
                self.rest = rest;
                self.block = block;
                self.block_left = count;
                // The block checksum (header bytes 16..24) lets other
                // implementations verify a segment wholesale; this
                // reader salvages records one by one regardless, so the
                // per-record checksums decide what survives.
            }
            return true;
        }
    }
}

fn find_magic(hay: &[u8]) -> Option<usize> {
    hay.windows(SEGMENT_MAGIC.len())
        .position(|w| w == SEGMENT_MAGIC)
}

impl Iterator for SegmentReader<'_> {
    type Item = EncodedRecord;

    fn next(&mut self) -> Option<EncodedRecord> {
        loop {
            if self.block_left == 0 || self.block.is_empty() {
                // Leftover bytes with no records promised — or promised
                // records with no bytes left — are damage.
                if self.block_left > 0 {
                    self.damaged += self.block_left as usize;
                } else if !self.block.is_empty() {
                    self.damaged += 1;
                }
                self.block = &[];
                self.block_left = 0;
                if !self.advance_segment() {
                    return None;
                }
                continue;
            }
            self.block_left -= 1;
            match EncodedRecord::decode(self.block) {
                Some((record, used)) => {
                    self.block = &self.block[used..];
                    return Some(record);
                }
                None => {
                    // Unrecoverable within this block: the length prefix
                    // itself may be damaged, so everything after the bad
                    // record is unaddressable. Cost: the bad record plus
                    // whatever the header still promised.
                    self.damaged += 1 + self.block_left as usize;
                    self.block = &[];
                    self.block_left = 0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: u64, series: bool) -> EncodedRecord {
        EncodedRecord {
            tag: if series { TAG_SERIES } else { TAG_SCALAR },
            content_hash: i.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            engine_version: 3,
            algo: format!("algo-{}", i % 3),
            spec_canon: format!("Spec{{n:{i},rho:x3ff0000000000000}}").repeat(3),
            outcome_canon: format!("Outcome{{v:x400921fb54442d18,k:{i}}}")
                .repeat(1 + (i as usize % 4)),
        }
    }

    fn read_all(data: &[u8]) -> (Vec<EncodedRecord>, usize, usize) {
        let mut r = SegmentReader::new(data).expect("valid header");
        let records: Vec<_> = r.by_ref().collect();
        (records, r.segments(), r.damaged())
    }

    #[test]
    fn record_roundtrip_and_tamper_rejection() {
        let original = rec(5, true);
        let bytes = original.encode();
        let (decoded, used) = EncodedRecord::decode(&bytes).expect("decodes");
        assert_eq!(used, bytes.len());
        assert_eq!(decoded, original);
        // Every single-byte flip is rejected, never misread.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            if let Some((tampered, _)) = EncodedRecord::decode(&bad) {
                assert_ne!(tampered, original, "flip at byte {i} went unnoticed");
                // The only survivable flips are in the length prefix in a
                // way that still frames a valid checksummed body — which
                // cannot happen because the checksum covers the body the
                // length delimits.
                panic!("flip at byte {i} produced a decodable record");
            }
        }
        // Truncation is rejected.
        assert!(EncodedRecord::decode(&bytes[..bytes.len() - 1]).is_none());
    }

    #[test]
    fn incompressible_payloads_are_stored_raw() {
        // A short, high-entropy payload: wlz gains nothing, so the
        // framing must fall back to raw bytes (enc_len == raw_len).
        let r = EncodedRecord {
            tag: TAG_SCALAR,
            content_hash: 1,
            engine_version: 3,
            algo: "a".into(),
            spec_canon: "zq9!k".into(),
            outcome_canon: "x".into(),
        };
        let bytes = r.encode();
        let (decoded, _) = EncodedRecord::decode(&bytes).expect("decodes");
        assert_eq!(decoded, r);
    }

    #[test]
    fn file_roundtrip_across_capacities() {
        let records: Vec<EncodedRecord> = (0..20).map(|i| rec(i, i % 2 == 0)).collect();
        for capacity in [64, 1024, DEFAULT_SEGMENT_CAPACITY] {
            let file = write_file(&records, capacity);
            let mut reader = SegmentReader::new(&file).expect("valid header");
            assert_eq!(reader.capacity(), capacity);
            let out: Vec<_> = reader.by_ref().collect();
            assert_eq!(out, records, "capacity {capacity}");
            assert_eq!(reader.damaged(), 0);
            // Tiny capacities force many segments; huge ones, few.
            if capacity == 64 {
                assert!(
                    reader.segments() >= records.len(),
                    "oversized records sit alone"
                );
            }
            if capacity == DEFAULT_SEGMENT_CAPACITY {
                assert_eq!(reader.segments(), 1);
            }
        }
    }

    #[test]
    fn write_is_deterministic_and_append_matches_rewrite_contents() {
        let records: Vec<EncodedRecord> = (0..8).map(|i| rec(i, false)).collect();
        assert_eq!(write_file(&records, 512), write_file(&records, 512));

        // Append path: first 5 written as a file, last 3 appended.
        let mut file = write_file(records.iter().take(5), 512);
        let first = {
            let mut r = SegmentReader::new(&file).expect("header");
            r.by_ref().for_each(drop);
            r.next_ordinal()
        };
        let mut w = SegmentWriter::new(512, first);
        for r in records.iter().skip(5) {
            w.push(&r.encode());
        }
        file.extend_from_slice(&w.finish());
        let (out, _, damaged) = read_all(&file);
        assert_eq!(out, records);
        assert_eq!(damaged, 0);
    }

    #[test]
    fn torn_tail_costs_exactly_the_unreadable_records() {
        let records: Vec<EncodedRecord> = (0..6).map(|i| rec(i, true)).collect();
        let file = write_file(&records, 128); // one record per segment
                                              // Cut mid-way through the final record's bytes.
        let cut = file.len() - 10;
        let (out, _, damaged) = read_all(&file[..cut]);
        assert_eq!(out, records[..5], "only the torn record is lost");
        assert_eq!(damaged, 1);

        // Cut inside the final segment *header*: same cost, detected as
        // a damaged segment instead of a damaged record.
        let last_seg_start = file.len() - (records[5].encode().len() + SEGMENT_HEADER_LEN);
        let (out, _, damaged) = read_all(&file[..last_seg_start + 7]);
        assert_eq!(out, records[..5]);
        assert_eq!(damaged, 1);

        // Cut exactly at a segment boundary: nothing damaged at all.
        let (out, _, damaged) = read_all(&file[..last_seg_start]);
        assert_eq!(out, records[..5]);
        assert_eq!(damaged, 0);
    }

    #[test]
    fn vandalized_segment_resyncs_on_next_magic() {
        let records: Vec<EncodedRecord> = (0..4).map(|i| rec(i, false)).collect();
        let mut file = write_file(&records, 128); // one record per segment
                                                  // Vandalize segment 1's magic (segment 0 starts at FILE_HEADER_LEN).
        let seg_len = SEGMENT_HEADER_LEN + records[0].encode().len();
        // Records differ in length; find segment 1 by scanning.
        let seg1 = FILE_HEADER_LEN + seg_len;
        assert_eq!(&file[seg1..seg1 + 4], SEGMENT_MAGIC.as_slice());
        file[seg1] = b'X';
        let (out, _, damaged) = read_all(&file);
        assert_eq!(out.len(), 3, "segments 0, 2, 3 survive");
        assert_eq!(out[0], records[0]);
        assert_eq!(out[1], records[2]);
        assert!(damaged >= 1);
    }

    #[test]
    fn corrupt_record_inside_block_costs_the_block_tail() {
        let records: Vec<EncodedRecord> = (0..4).map(|i| rec(i, false)).collect();
        let mut file = write_file(&records, DEFAULT_SEGMENT_CAPACITY); // one segment
                                                                       // Flip a byte in record 1's body (after record 0).
        let r0 = records[0].encode().len();
        let hit = FILE_HEADER_LEN + SEGMENT_HEADER_LEN + r0 + 10;
        file[hit] ^= 0xFF;
        let (out, segments, damaged) = read_all(&file);
        assert_eq!(segments, 1);
        assert_eq!(out, records[..1], "the prefix before the damage survives");
        assert_eq!(damaged, 3, "the bad record plus the unaddressable tail");
    }

    #[test]
    fn foreign_files_are_not_binary_stores() {
        assert!(SegmentReader::new(b"").is_none());
        assert!(SegmentReader::new(b"wlsweep 1\n").is_none());
        assert!(SegmentReader::new(&[0u8; 64]).is_none());
        // Right magic, wrong format version.
        let mut file = write_file(std::iter::empty(), 1024);
        file[4] = 99;
        assert!(SegmentReader::new(&file).is_none());
    }
}
