//! Byte-level framing of the **v3 binary segment store** — the reader
//! and writer under [`SweepStore`]'s binary format.
//!
//! This module knows nothing about sweeps: it frames opaque canonical
//! strings into length-prefixed, checksummed records, packs records
//! into fixed-capacity segments, and concatenates segments into a
//! container file. The normative byte-level specification — authoritative
//! over this implementation, and detailed enough to reimplement the
//! reader independently — is `docs/store-format.md`; the layout in
//! brief:
//!
//! ```text
//! file    := file-header segment*
//! segment := plain-segment | packed-segment
//! plain   := "WSEG" segment-header record-block
//! packed  := "WSGZ" packed-header wlz(hex_pack(columnar-block))
//! record  := body-len:u32 body          (body self-checksummed)
//! ```
//!
//! * **Records** carry the same six fields a v1/v2 text line does (tag,
//!   content hash, engine version, algorithm, canonical spec, canonical
//!   outcome) — see [`EncodedRecord`] — with the two canonical-string
//!   payloads individually [`wlz`]-compressed when that shrinks them.
//! * **Segments** are capacity-bounded: a writer starts a new segment
//!   when the next record would push the current record-block past the
//!   configured capacity (a single oversized record gets a segment of
//!   its own). Each segment header states its record count and block
//!   length and checksums the whole block, so any segment is verifiable
//!   — and skippable — without touching its neighbours.
//! * **Packed segments** close the gap per-payload compression cannot
//!   see: across a block of records the canonical spec strings are
//!   near-identical, so the writer also encodes each sealed block
//!   **columnar** — all tags, then all content hashes, then all spec
//!   canons back to back, and so on (see [`encode_packed_block`]) —
//!   with no per-record checksums or compression framing (the segment
//!   checksum covers the whole block), compresses that block wholesale
//!   ([`wlz::hex_pack`] then [`wlz::compress`]), and keeps whichever
//!   framing is smaller — deterministically, ties to plain. Grouping
//!   like fields puts each canon right after its near-twin from the
//!   previous record, which is exactly the redundancy an LZ window
//!   exploits; on sketch-record stores this is what turns ~1 KB/point
//!   into ~100 B/point, while on series-heavy blocks the plain framing
//!   usually stays smaller and nothing changes.
//! * **Append-friendly**: the file header does not state a segment
//!   count; readers scan segments to EOF. A checkpoint can therefore
//!   extend a store by appending one segment instead of rewriting the
//!   file — and a crash mid-append costs exactly the torn tail, which
//!   the reader recovers record-by-record.
//!
//! [`SweepStore`]: crate::cache::SweepStore

use crate::cache::{fnv64_seeded, FNV_OFFSET};

/// First four bytes of every binary store file.
pub const FILE_MAGIC: [u8; 4] = *b"WLSB";

/// The binary *file-format* version (independent of the per-record
/// engine version), fifth byte of the file header. Version 2 added
/// packed (block-compressed) segments; the reader accepts version-1
/// files unchanged, since every version-1 byte sequence is also a
/// valid version-2 one.
pub const FILE_FORMAT_VERSION: u8 = 2;

/// The previous file-format version, still accepted by the reader.
pub const FILE_FORMAT_V1: u8 = 1;

/// Byte length of the file header: magic (4), format version (1),
/// reserved zeros (3), segment capacity (`u32` LE), reserved zeros (4).
pub const FILE_HEADER_LEN: usize = 16;

/// First four bytes of every *plain* (uncompressed) segment header.
pub const SEGMENT_MAGIC: [u8; 4] = *b"WSEG";

/// Byte length of a plain segment header: magic (4), ordinal (`u32`
/// LE), record count (`u32` LE), record-block length (`u32` LE),
/// FNV-1a of the record block (`u64` LE).
pub const SEGMENT_HEADER_LEN: usize = 24;

/// First four bytes of every *packed* (block-compressed) segment
/// header.
pub const SEGMENT_MAGIC_PACKED: [u8; 4] = *b"WSGZ";

/// Byte length of a packed segment header: magic (4), ordinal (`u32`
/// LE), record count (`u32` LE), stored block length (`u32` LE),
/// hex-packed intermediate length (`u32` LE), raw block length (`u32`
/// LE), FNV-1a of the *stored* (compressed) block (`u64` LE) — so a
/// packed segment verifies without decompressing, and each codec layer
/// decodes against its exact expected length.
pub const PACKED_SEGMENT_HEADER_LEN: usize = 32;

/// Default capacity of one segment's record block, in bytes. Part of a
/// file's canonical identity (it is written into the file header and
/// governs where segment boundaries fall), so two stores compare
/// byte-identical only when written at the same capacity.
pub const DEFAULT_SEGMENT_CAPACITY: u32 = 256 * 1024;

/// The `R` record tag: a scalar-summary record of a non-adversarial
/// spec.
pub const TAG_SCALAR: u8 = b'R';

/// The `S` record tag: an outcome whose encoding carries a series
/// payload (non-adversarial spec).
pub const TAG_SERIES: u8 = b'S';

/// The `A` record tag: a scalar-summary record of an *adversarial* spec
/// (one whose canonical form carries an `adversary:+…` block).
pub const TAG_ADV_SCALAR: u8 = b'A';

/// The `B` record tag: a series-bearing record of an adversarial spec.
pub const TAG_ADV_SERIES: u8 = b'B';

/// The `K` record tag: a scalar-plus-sketch record of a non-adversarial
/// spec (~100-byte streaming aggregate; see `wl_harness::sketch`).
pub const TAG_SKETCH: u8 = b'K';

/// The `L` record tag: a scalar-plus-sketch record of an adversarial
/// spec.
pub const TAG_ADV_SKETCH: u8 = b'L';

/// What a record carries beyond its scalar summary — the three payload
/// richness levels of the store's upgrade lattice
/// (scalar ⊑ sketch ⊑ series).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PayloadKind {
    /// Scalar summary only (`R`/`A`).
    Scalar,
    /// Scalar plus a mergeable skew sketch (`K`/`L`).
    Sketch,
    /// Scalar plus the full per-run series (`S`/`B`); the series
    /// subsumes the sketch, which is a pure derivation of it.
    Series,
}

/// Whether records under `tag` carry a series payload.
#[must_use]
pub fn tag_has_series(tag: u8) -> bool {
    tag == TAG_SERIES || tag == TAG_ADV_SERIES
}

/// Whether records under `tag` carry a sketch payload (exactly the
/// `K`/`L` tags — series tags answer `false` here even though a sketch
/// is derivable from their payload).
#[must_use]
pub fn tag_has_sketch(tag: u8) -> bool {
    tag == TAG_SKETCH || tag == TAG_ADV_SKETCH
}

/// Whether records under `tag` describe an adversarial spec.
#[must_use]
pub fn tag_is_adversarial(tag: u8) -> bool {
    tag == TAG_ADV_SCALAR || tag == TAG_ADV_SERIES || tag == TAG_ADV_SKETCH
}

/// The payload richness level encoded by `tag`.
#[must_use]
pub fn tag_payload_kind(tag: u8) -> PayloadKind {
    if tag_has_series(tag) {
        PayloadKind::Series
    } else if tag_has_sketch(tag) {
        PayloadKind::Sketch
    } else {
        PayloadKind::Scalar
    }
}

/// The record tag for a `(payload kind, adversarial)` combination —
/// the single choice point both store writers and the service share.
#[must_use]
pub fn record_tag(kind: PayloadKind, adversarial: bool) -> u8 {
    match (kind, adversarial) {
        (PayloadKind::Scalar, false) => TAG_SCALAR,
        (PayloadKind::Series, false) => TAG_SERIES,
        (PayloadKind::Sketch, false) => TAG_SKETCH,
        (PayloadKind::Scalar, true) => TAG_ADV_SCALAR,
        (PayloadKind::Series, true) => TAG_ADV_SERIES,
        (PayloadKind::Sketch, true) => TAG_ADV_SKETCH,
    }
}

fn fnv64(bytes: &[u8]) -> u64 {
    fnv64_seeded(FNV_OFFSET, bytes)
}

/// One store record at the *format* level: the six fields shared by the
/// text line formats (v1 `R`, v2 `S`) and the v3 binary record, with
/// the spec and outcome as opaque canonical strings.
///
/// This is the unit both stores read and write — and the unit in which
/// stale-engine records are retained across saves and carried through
/// text↔binary migration without their (possibly foreign-grammar)
/// outcome payloads ever being parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedRecord {
    /// Record kind: [`TAG_SCALAR`], [`TAG_SERIES`], [`TAG_ADV_SCALAR`],
    /// [`TAG_ADV_SERIES`], [`TAG_SKETCH`], or [`TAG_ADV_SKETCH`].
    pub tag: u8,
    /// The spec's content hash (the record key, with `algo`).
    pub content_hash: u64,
    /// The engine-semantics version that produced this record.
    pub engine_version: u32,
    /// The algorithm name, unescaped.
    pub algo: String,
    /// Canonical serialization of the spec.
    pub spec_canon: String,
    /// Canonical serialization of the outcome.
    pub outcome_canon: String,
}

/// Payload encoding id: raw bytes, untransformed.
pub const ENC_RAW: u8 = 0;
/// Payload encoding id: a [`wlz::compress`] stream.
pub const ENC_LZ: u8 = 1;
/// Payload encoding id: [`wlz::hex_pack`] then [`wlz::compress`] — the
/// winner on canonical text, whose bulk is 16-digit hex float
/// encodings that nibble-packing halves before LZ sees them.
pub const ENC_HEX_LZ: u8 = 2;

/// Appends `payload` to `out` in the compression framing: one encoding
/// byte, raw length, encoded length, encoded bytes — and, for
/// [`ENC_HEX_LZ`] only, the intermediate hex-packed length between the
/// two (each codec layer is decoded against its exact expected length,
/// so truncation and padding are detected at every layer). The writer
/// tries every encoding and keeps the smallest *total framing* (ties
/// break toward the lowest id), so the choice is deterministic and the
/// reader never guesses — it just dispatches on the byte.
fn push_payload(out: &mut Vec<u8>, payload: &[u8]) {
    let len32 = |n: usize| u32::try_from(n).expect("payload < 4 GiB").to_le_bytes();
    let lz = wlz::compress(payload);
    let hex_packed = wlz::hex_pack(payload);
    let hex_lz = wlz::compress(&hex_packed);
    // ENC_HEX_LZ carries 4 extra framing bytes; account for them.
    let (enc, encoded): (u8, &[u8]) =
        if payload.len() <= lz.len() && payload.len() <= hex_lz.len() + 4 {
            (ENC_RAW, payload)
        } else if lz.len() <= hex_lz.len() + 4 {
            (ENC_LZ, &lz)
        } else {
            (ENC_HEX_LZ, &hex_lz)
        };
    out.push(enc);
    out.extend_from_slice(&len32(payload.len()));
    if enc == ENC_HEX_LZ {
        out.extend_from_slice(&len32(hex_packed.len()));
    }
    out.extend_from_slice(&len32(encoded.len()));
    out.extend_from_slice(encoded);
}

/// Cursor helpers over a record body.
struct Take<'a>(&'a [u8]);

impl<'a> Take<'a> {
    fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.0.len() < n {
            return None;
        }
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Some(head)
    }
    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.bytes(2)?.try_into().ok()?))
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.bytes(4)?.try_into().ok()?))
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.bytes(8)?.try_into().ok()?))
    }
    fn payload(&mut self) -> Option<String> {
        let enc = *self.bytes(1)?.first()?;
        let raw_len = self.u32()? as usize;
        let raw = match enc {
            ENC_RAW => {
                let enc_len = self.u32()? as usize;
                if enc_len != raw_len {
                    return None;
                }
                self.bytes(enc_len)?.to_vec()
            }
            ENC_LZ => {
                let enc_len = self.u32()? as usize;
                wlz::decompress(self.bytes(enc_len)?, raw_len)?
            }
            ENC_HEX_LZ => {
                let mid_len = self.u32()? as usize;
                let enc_len = self.u32()? as usize;
                let packed = wlz::decompress(self.bytes(enc_len)?, mid_len)?;
                let raw = wlz::hex_unpack(&packed)?;
                if raw.len() != raw_len {
                    return None;
                }
                raw
            }
            _ => return None,
        };
        String::from_utf8(raw).ok()
    }
}

impl EncodedRecord {
    /// Whether `tag` is one of the known record tags.
    #[must_use]
    pub fn known_tag(tag: u8) -> bool {
        tag == TAG_SCALAR
            || tag == TAG_SERIES
            || tag == TAG_ADV_SCALAR
            || tag == TAG_ADV_SERIES
            || tag == TAG_SKETCH
            || tag == TAG_ADV_SKETCH
    }

    /// Serializes this record: `u32` LE body length, then the
    /// self-checksummed body (see `docs/store-format.md` § "v3 record").
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(64 + self.outcome_canon.len() / 4);
        body.push(self.tag);
        body.extend_from_slice(&self.content_hash.to_le_bytes());
        body.extend_from_slice(&self.engine_version.to_le_bytes());
        let algo = self.algo.as_bytes();
        body.extend_from_slice(
            &u16::try_from(algo.len())
                .expect("algorithm names are short")
                .to_le_bytes(),
        );
        body.extend_from_slice(algo);
        push_payload(&mut body, self.spec_canon.as_bytes());
        push_payload(&mut body, self.outcome_canon.as_bytes());
        let crc = fnv64(&body);
        body.extend_from_slice(&crc.to_le_bytes());

        let mut out = Vec::with_capacity(4 + body.len());
        out.extend_from_slice(
            &u32::try_from(body.len())
                .expect("record < 4 GiB")
                .to_le_bytes(),
        );
        out.extend_from_slice(&body);
        out
    }

    /// Parses one record from the front of `data`, returning it and the
    /// number of bytes consumed. `None` on any malformation — a length
    /// running past `data`, a checksum mismatch, an unknown tag, a
    /// compression framing violation, or non-UTF-8 text.
    #[must_use]
    pub fn decode(data: &[u8]) -> Option<(Self, usize)> {
        let mut head = Take(data);
        let body_len = head.u32()? as usize;
        let body = head.bytes(body_len)?;
        if body_len < 8 {
            return None;
        }
        let (checked, crc_bytes) = body.split_at(body_len - 8);
        let crc = u64::from_le_bytes(crc_bytes.try_into().ok()?);
        if crc != fnv64(checked) {
            return None;
        }
        let mut c = Take(checked);
        let tag = *c.bytes(1)?.first()?;
        if !Self::known_tag(tag) {
            return None;
        }
        let content_hash = c.u64()?;
        let engine_version = c.u32()?;
        let algo_len = c.u16()? as usize;
        let algo = String::from_utf8(c.bytes(algo_len)?.to_vec()).ok()?;
        let spec_canon = c.payload()?;
        let outcome_canon = c.payload()?;
        if !c.0.is_empty() {
            return None;
        }
        Some((
            Self {
                tag,
                content_hash,
                engine_version,
                algo,
                spec_canon,
                outcome_canon,
            },
            4 + body_len,
        ))
    }
}

/// Serializes a record sequence as the **columnar block** a packed
/// segment compresses: all tags, then all content hashes (`u64` LE),
/// all engine versions (`u32` LE), all algorithm lengths (`u16` LE),
/// all algorithm names, all spec-canon lengths (`u32` LE), all spec
/// canons, all outcome-canon lengths (`u32` LE), all outcome canons.
///
/// No per-record checksums and no compression framing — the packed
/// segment header checksums (and compresses) the block wholesale, and
/// interleaved integrity bytes would only be incompressible noise.
/// Grouping like fields is what makes the block compress: each
/// canonical string sits directly after its near-identical predecessor,
/// well inside the LZ window.
#[must_use]
pub fn encode_packed_block(records: &[EncodedRecord]) -> Vec<u8> {
    let len32 = |n: usize| u32::try_from(n).expect("payload < 4 GiB").to_le_bytes();
    let mut out = Vec::new();
    for r in records {
        out.push(r.tag);
    }
    for r in records {
        out.extend_from_slice(&r.content_hash.to_le_bytes());
    }
    for r in records {
        out.extend_from_slice(&r.engine_version.to_le_bytes());
    }
    for r in records {
        out.extend_from_slice(
            &u16::try_from(r.algo.len())
                .expect("algorithm names are short")
                .to_le_bytes(),
        );
    }
    for r in records {
        out.extend_from_slice(r.algo.as_bytes());
    }
    for r in records {
        out.extend_from_slice(&len32(r.spec_canon.len()));
    }
    for r in records {
        out.extend_from_slice(r.spec_canon.as_bytes());
    }
    for r in records {
        out.extend_from_slice(&len32(r.outcome_canon.len()));
    }
    for r in records {
        out.extend_from_slice(r.outcome_canon.as_bytes());
    }
    out
}

/// Parses a columnar block (see [`encode_packed_block`]) holding
/// exactly `count` records. `None` on any malformation — an unknown
/// tag, non-UTF-8 text, a length column overrunning the block, or
/// trailing bytes. Only called on a block that already passed the
/// packed segment's checksum and exact-length decompression, so a
/// `None` here means a corrupted record count (or a writer bug); the
/// caller discards the whole segment either way.
#[must_use]
pub fn decode_packed_block(data: &[u8], count: usize) -> Option<Vec<EncodedRecord>> {
    let mut c = Take(data);
    let tags = c.bytes(count)?.to_vec();
    if !tags.iter().all(|&t| EncodedRecord::known_tag(t)) {
        return None;
    }
    let hashes: Vec<u64> = (0..count).map(|_| c.u64()).collect::<Option<_>>()?;
    let versions: Vec<u32> = (0..count).map(|_| c.u32()).collect::<Option<_>>()?;
    let algo_lens: Vec<usize> = (0..count)
        .map(|_| c.u16().map(usize::from))
        .collect::<Option<_>>()?;
    let take_strings = |c: &mut Take<'_>, lens: &[usize]| -> Option<Vec<String>> {
        lens.iter()
            .map(|&n| String::from_utf8(c.bytes(n)?.to_vec()).ok())
            .collect()
    };
    let algos = take_strings(&mut c, &algo_lens)?;
    let spec_lens: Vec<usize> = (0..count)
        .map(|_| c.u32().map(|n| n as usize))
        .collect::<Option<_>>()?;
    let specs = take_strings(&mut c, &spec_lens)?;
    let outcome_lens: Vec<usize> = (0..count)
        .map(|_| c.u32().map(|n| n as usize))
        .collect::<Option<_>>()?;
    let outcomes = take_strings(&mut c, &outcome_lens)?;
    if !c.0.is_empty() {
        return None;
    }
    Some(
        zip6(tags, hashes, versions, algos, specs, outcomes)
            .map(
                |(tag, content_hash, engine_version, algo, spec_canon, outcome_canon)| {
                    EncodedRecord {
                        tag,
                        content_hash,
                        engine_version,
                        algo,
                        spec_canon,
                        outcome_canon,
                    }
                },
            )
            .collect(),
    )
}

/// Six-way zip (the standard library stops at two).
#[allow(clippy::type_complexity)]
fn zip6(
    tags: Vec<u8>,
    hashes: Vec<u64>,
    versions: Vec<u32>,
    algos: Vec<String>,
    specs: Vec<String>,
    outcomes: Vec<String>,
) -> impl Iterator<Item = (u8, u64, u32, String, String, String)> {
    tags.into_iter()
        .zip(hashes)
        .zip(versions)
        .zip(algos)
        .zip(specs)
        .zip(outcomes)
        .map(|(((((t, h), v), a), s), o)| (t, h, v, a, s, o))
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

/// Packs [`EncodedRecord`]s into capacity-bounded segments.
///
/// Use [`write_file`] for a whole store file; use a bare writer when
/// producing *appendable* segment bytes (a checkpoint extending an
/// existing file):
///
/// ```
/// use wl_harness::cache::segment::{EncodedRecord, SegmentReader, SegmentWriter, TAG_SCALAR};
///
/// let rec = EncodedRecord {
///     tag: TAG_SCALAR,
///     content_hash: 7,
///     engine_version: 3,
///     algo: "demo".into(),
///     spec_canon: "Spec{x:1}".into(),
///     outcome_canon: "Outcome{y:2}".into(),
/// };
///
/// // A full file...
/// let mut file = wl_harness::cache::segment::write_file([&rec], 1024);
/// // ...extended by one appended checkpoint segment:
/// let mut w = SegmentWriter::new(1024, 1);
/// w.push(&rec);
/// file.extend_from_slice(&w.finish());
///
/// let mut reader = SegmentReader::new(&file).expect("valid header");
/// assert_eq!(reader.by_ref().count(), 2);
/// assert_eq!((reader.segments(), reader.damaged()), (2, 0));
/// ```
#[derive(Debug)]
pub struct SegmentWriter {
    capacity: u32,
    next_ordinal: u32,
    out: Vec<u8>,
    block: Vec<u8>,
    pending: Vec<EncodedRecord>,
    block_records: u32,
}

impl SegmentWriter {
    /// A writer producing segments `first_ordinal, first_ordinal+1, …`
    /// with the given record-block capacity.
    #[must_use]
    pub fn new(capacity: u32, first_ordinal: u32) -> Self {
        Self {
            capacity,
            next_ordinal: first_ordinal,
            out: Vec::new(),
            block: Vec::new(),
            pending: Vec::new(),
            block_records: 0,
        }
    }

    /// Adds one record, sealing the current segment first if the record
    /// would overflow it. Capacity (and hence where segment boundaries
    /// fall) is accounted in the *plain* encoding, whether or not the
    /// sealed segment ends up packed — so boundary placement never
    /// depends on compression ratios.
    pub fn push(&mut self, record: &EncodedRecord) {
        let encoded = record.encode();
        if !self.block.is_empty() && self.block.len() + encoded.len() > self.capacity as usize {
            self.seal();
        }
        self.block.extend_from_slice(&encoded);
        self.pending.push(record.clone());
        self.block_records += 1;
    }

    fn seal(&mut self) {
        if self.block.is_empty() {
            return;
        }
        // Candidate framings for the same records: plain (per-payload
        // compression, 24-byte header) vs packed (columnar block, whole
        // block hex-packed + LZ'd, 32-byte header). Keep the smaller;
        // ties go to plain. Both sides are pure functions of the record
        // sequence, so the choice — and the file — stays deterministic.
        let raw_block = encode_packed_block(&self.pending);
        let mid = wlz::hex_pack(&raw_block);
        let stored = wlz::compress(&mid);
        if PACKED_SEGMENT_HEADER_LEN + stored.len() < SEGMENT_HEADER_LEN + self.block.len() {
            let len32 = |n: usize| u32::try_from(n).expect("segment < 4 GiB").to_le_bytes();
            self.out.extend_from_slice(&SEGMENT_MAGIC_PACKED);
            self.out.extend_from_slice(&self.next_ordinal.to_le_bytes());
            self.out
                .extend_from_slice(&self.block_records.to_le_bytes());
            self.out.extend_from_slice(&len32(stored.len()));
            self.out.extend_from_slice(&len32(mid.len()));
            self.out.extend_from_slice(&len32(raw_block.len()));
            self.out.extend_from_slice(&fnv64(&stored).to_le_bytes());
            self.out.extend_from_slice(&stored);
            self.block.clear();
        } else {
            self.out.extend_from_slice(&SEGMENT_MAGIC);
            self.out.extend_from_slice(&self.next_ordinal.to_le_bytes());
            self.out
                .extend_from_slice(&self.block_records.to_le_bytes());
            self.out.extend_from_slice(
                &u32::try_from(self.block.len())
                    .expect("segment < 4 GiB")
                    .to_le_bytes(),
            );
            self.out
                .extend_from_slice(&fnv64(&self.block).to_le_bytes());
            self.out.append(&mut self.block);
        }
        self.pending.clear();
        self.block_records = 0;
        self.next_ordinal += 1;
    }

    /// Seals the pending segment and returns the segment bytes (no file
    /// header — callers append these to an existing file or prepend
    /// [`FILE_MAGIC`]'s header themselves via [`write_file`]).
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.into_parts().0
    }

    /// [`finish`](SegmentWriter::finish), also returning the ordinal the
    /// *next* appended segment should carry — what an incremental
    /// checkpointer needs to keep extending the same file.
    #[must_use]
    pub fn into_parts(mut self) -> (Vec<u8>, u32) {
        self.seal();
        (self.out, self.next_ordinal)
    }
}

/// Serializes a complete binary store file: the 16-byte file header
/// followed by the records packed into capacity-bounded segments in
/// iteration order. The output is a pure function of the record
/// sequence and the capacity — the canonicality the store's
/// byte-comparison contract rests on.
#[must_use]
pub fn write_file<'a>(
    records: impl IntoIterator<Item = &'a EncodedRecord>,
    capacity: u32,
) -> Vec<u8> {
    write_file_with_ordinal(records, capacity).0
}

/// [`write_file`], also returning the ordinal an appended segment
/// should carry (i.e. how many segments were written) — so a saver
/// that intends to append later does not have to re-read its own
/// output to learn it.
#[must_use]
pub fn write_file_with_ordinal<'a>(
    records: impl IntoIterator<Item = &'a EncodedRecord>,
    capacity: u32,
) -> (Vec<u8>, u32) {
    let mut out = Vec::with_capacity(FILE_HEADER_LEN + 1024);
    out.extend_from_slice(&FILE_MAGIC);
    out.push(FILE_FORMAT_VERSION);
    out.extend_from_slice(&[0u8; 3]);
    out.extend_from_slice(&capacity.to_le_bytes());
    out.extend_from_slice(&[0u8; 4]);
    let mut writer = SegmentWriter::new(capacity, 0);
    for record in records {
        writer.push(record);
    }
    let (segments, next_ordinal) = writer.into_parts();
    out.extend_from_slice(&segments);
    (out, next_ordinal)
}

// ---------------------------------------------------------------------------
// Reader.
// ---------------------------------------------------------------------------

/// Streaming, corruption-tolerant reader over a binary store file.
///
/// Yields every record that survives verification, in file order, and
/// counts what it had to discard ([`damaged`](SegmentReader::damaged)):
/// a record failing its checksum or parse costs that record; a torn
/// tail costs the records after the tear; a vandalized segment header
/// costs its segment (the reader resyncs on the next [`SEGMENT_MAGIC`]).
/// Construction fails only when the 16-byte file header is absent or
/// foreign — the file is then *not a binary store* at all.
///
/// ```
/// use wl_harness::cache::segment::{write_file, EncodedRecord, SegmentReader, TAG_SERIES};
///
/// let rec = EncodedRecord {
///     tag: TAG_SERIES,
///     content_hash: 0xFEED,
///     engine_version: 3,
///     algo: "wl-maintenance".into(),
///     spec_canon: "Spec{n:4}".into(),
///     outcome_canon: "Outcome{series:+…}".into(),
/// };
/// let file = write_file([&rec, &rec], 64); // tiny capacity: 2 segments
///
/// let mut reader = SegmentReader::new(&file).expect("valid header");
/// let records: Vec<EncodedRecord> = reader.by_ref().collect();
/// assert_eq!(records.len(), 2);
/// assert_eq!(records[0], rec);
/// assert_eq!(reader.segments(), 2);
/// assert_eq!(reader.damaged(), 0);
/// assert_eq!(reader.next_ordinal(), 2); // where an append would continue
/// ```
#[derive(Debug)]
pub struct SegmentReader<'a> {
    rest: &'a [u8],
    block: &'a [u8],
    block_pos: usize,
    block_left: u32,
    unpacked: std::collections::VecDeque<EncodedRecord>,
    capacity: u32,
    segments: usize,
    damaged: usize,
    next_ordinal: u32,
}

impl<'a> SegmentReader<'a> {
    /// Validates the file header and positions the reader at the first
    /// segment. `None` means "not a v3 binary store" (wrong magic,
    /// unknown format version, or a file shorter than the header) — the
    /// caller should try the text format instead. Both file-format
    /// versions load: 1 (plain segments only) and 2 (packed segments
    /// permitted).
    #[must_use]
    pub fn new(data: &'a [u8]) -> Option<Self> {
        if data.len() < FILE_HEADER_LEN
            || data[..4] != FILE_MAGIC
            || !(data[4] == FILE_FORMAT_VERSION || data[4] == FILE_FORMAT_V1)
        {
            return None;
        }
        let capacity = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
        Some(Self {
            rest: &data[FILE_HEADER_LEN..],
            block: &[],
            block_pos: 0,
            block_left: 0,
            unpacked: std::collections::VecDeque::new(),
            capacity,
            segments: 0,
            damaged: 0,
            next_ordinal: 0,
        })
    }

    /// The segment capacity stated in the file header.
    #[must_use]
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Segments encountered so far (including damaged ones).
    #[must_use]
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// Units discarded so far: individual records that failed
    /// verification, plus one per segment whose header was unreadable.
    #[must_use]
    pub fn damaged(&self) -> usize {
        self.damaged
    }

    /// One past the highest segment ordinal seen — the ordinal an
    /// appended segment should carry.
    #[must_use]
    pub fn next_ordinal(&self) -> u32 {
        self.next_ordinal
    }

    /// Enters the next segment, handling header damage and torn tails.
    /// Returns `false` at end of file.
    fn advance_segment(&mut self) -> bool {
        loop {
            if self.rest.is_empty() {
                return false;
            }
            let packed = self.rest.len() >= 4 && self.rest[..4] == SEGMENT_MAGIC_PACKED;
            let header_len = if packed {
                PACKED_SEGMENT_HEADER_LEN
            } else {
                SEGMENT_HEADER_LEN
            };
            if self.rest.len() < header_len || (!packed && self.rest[..4] != SEGMENT_MAGIC) {
                // Damaged or torn segment header: drop it and resync on
                // the next segment magic, if any.
                self.damaged += 1;
                self.segments += 1;
                match find_magic(&self.rest[1..]) {
                    Some(i) => self.rest = &self.rest[1 + i..],
                    None => {
                        self.rest = &[];
                        return false;
                    }
                }
                continue;
            }
            let header = &self.rest[..header_len];
            let ordinal = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
            let count = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
            let block_len =
                u32::from_le_bytes(header[12..16].try_into().expect("4 bytes")) as usize;
            self.segments += 1;
            self.next_ordinal = self.next_ordinal.max(ordinal.saturating_add(1));
            let body = &self.rest[header_len..];
            if packed {
                let mid_len =
                    u32::from_le_bytes(header[16..20].try_into().expect("4 bytes")) as usize;
                let raw_len =
                    u32::from_le_bytes(header[20..24].try_into().expect("4 bytes")) as usize;
                let crc = u64::from_le_bytes(header[24..32].try_into().expect("8 bytes"));
                if body.len() < block_len {
                    // A torn packed tail is all-or-nothing: partial
                    // compressed bytes cannot be salvaged record by
                    // record, so the whole promised count is lost.
                    self.damaged += count.max(1) as usize;
                    self.rest = &[];
                    continue;
                }
                let (stored, rest) = body.split_at(block_len);
                self.rest = rest;
                if crc != fnv64(stored) {
                    self.damaged += count.max(1) as usize;
                    continue;
                }
                // Checksum verified: decompress each codec layer against
                // its exact expected length, then parse the columnar
                // block into whole records. Any failure past this point
                // means the header's lengths or count lied — all-or-
                // nothing, like the torn case.
                let records = wlz::decompress(stored, mid_len)
                    .and_then(|mid| wlz::hex_unpack(&mid))
                    .filter(|raw| raw.len() == raw_len)
                    .and_then(|raw| decode_packed_block(&raw, count as usize));
                match records {
                    Some(records) => {
                        self.unpacked = records.into();
                        return true;
                    }
                    None => {
                        self.damaged += count.max(1) as usize;
                        continue;
                    }
                }
            }
            if body.len() < block_len {
                // Torn tail (crash mid-append): salvage the prefix
                // record-by-record; the per-record checksums decide how
                // far is trustworthy.
                self.block = body;
                self.block_pos = 0;
                self.block_left = count;
                self.rest = &[];
            } else {
                let (block, rest) = body.split_at(block_len);
                self.rest = rest;
                self.block = block;
                self.block_pos = 0;
                self.block_left = count;
                // The block checksum (header bytes 16..24) lets other
                // implementations verify a segment wholesale; this
                // reader salvages records one by one regardless, so the
                // per-record checksums decide what survives.
            }
            return true;
        }
    }
}

fn find_magic(hay: &[u8]) -> Option<usize> {
    hay.windows(SEGMENT_MAGIC.len())
        .position(|w| w == SEGMENT_MAGIC || w == SEGMENT_MAGIC_PACKED)
}

impl Iterator for SegmentReader<'_> {
    type Item = EncodedRecord;

    fn next(&mut self) -> Option<EncodedRecord> {
        loop {
            // A packed segment decodes wholesale into this queue.
            if let Some(record) = self.unpacked.pop_front() {
                return Some(record);
            }
            let remaining = self.block.len() - self.block_pos;
            if self.block_left == 0 || remaining == 0 {
                // Leftover bytes with no records promised — or promised
                // records with no bytes left — are damage.
                if self.block_left > 0 {
                    self.damaged += self.block_left as usize;
                } else if remaining > 0 {
                    self.damaged += 1;
                }
                self.block = &[];
                self.block_pos = 0;
                self.block_left = 0;
                if !self.advance_segment() {
                    return None;
                }
                continue;
            }
            self.block_left -= 1;
            match EncodedRecord::decode(&self.block[self.block_pos..]) {
                Some((record, used)) => {
                    self.block_pos += used;
                    return Some(record);
                }
                None => {
                    // Unrecoverable within this block: the length prefix
                    // itself may be damaged, so everything after the bad
                    // record is unaddressable. Cost: the bad record plus
                    // whatever the header still promised.
                    self.damaged += 1 + self.block_left as usize;
                    self.block = &[];
                    self.block_pos = 0;
                    self.block_left = 0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: u64, series: bool) -> EncodedRecord {
        EncodedRecord {
            tag: if series { TAG_SERIES } else { TAG_SCALAR },
            content_hash: i.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            engine_version: 3,
            algo: format!("algo-{}", i % 3),
            spec_canon: format!("Spec{{n:{i},rho:x3ff0000000000000}}").repeat(3),
            outcome_canon: format!("Outcome{{v:x400921fb54442d18,k:{i}}}")
                .repeat(1 + (i as usize % 4)),
        }
    }

    /// Pseudo-random text the codecs cannot shrink (a 32-symbol
    /// alphabet with no lowercase hex), so segments holding it stay
    /// *plain* — what the byte-offset damage tests below rely on.
    fn noise(seed: u64, len: usize) -> String {
        const ALPHABET: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ!#%-_+";
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                ALPHABET[(x >> 58) as usize & 31] as char
            })
            .collect()
    }

    fn noisy_rec(i: u64, series: bool) -> EncodedRecord {
        EncodedRecord {
            tag: if series { TAG_SERIES } else { TAG_SCALAR },
            content_hash: i.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            engine_version: 3,
            algo: format!("algo-{}", i % 3),
            spec_canon: noise(2 * i + 1, 260),
            outcome_canon: noise(2 * i + 2, 200 + 30 * (i as usize % 4)),
        }
    }

    fn read_all(data: &[u8]) -> (Vec<EncodedRecord>, usize, usize) {
        let mut r = SegmentReader::new(data).expect("valid header");
        let records: Vec<_> = r.by_ref().collect();
        (records, r.segments(), r.damaged())
    }

    #[test]
    fn record_roundtrip_and_tamper_rejection() {
        let original = rec(5, true);
        let bytes = original.encode();
        let (decoded, used) = EncodedRecord::decode(&bytes).expect("decodes");
        assert_eq!(used, bytes.len());
        assert_eq!(decoded, original);
        // Every single-byte flip is rejected, never misread.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            if let Some((tampered, _)) = EncodedRecord::decode(&bad) {
                assert_ne!(tampered, original, "flip at byte {i} went unnoticed");
                // The only survivable flips are in the length prefix in a
                // way that still frames a valid checksummed body — which
                // cannot happen because the checksum covers the body the
                // length delimits.
                panic!("flip at byte {i} produced a decodable record");
            }
        }
        // Truncation is rejected.
        assert!(EncodedRecord::decode(&bytes[..bytes.len() - 1]).is_none());
    }

    #[test]
    fn incompressible_payloads_are_stored_raw() {
        // A short, high-entropy payload: wlz gains nothing, so the
        // framing must fall back to raw bytes (enc_len == raw_len).
        let r = EncodedRecord {
            tag: TAG_SCALAR,
            content_hash: 1,
            engine_version: 3,
            algo: "a".into(),
            spec_canon: "zq9!k".into(),
            outcome_canon: "x".into(),
        };
        let bytes = r.encode();
        let (decoded, _) = EncodedRecord::decode(&bytes).expect("decodes");
        assert_eq!(decoded, r);
    }

    #[test]
    fn file_roundtrip_across_capacities() {
        let records: Vec<EncodedRecord> = (0..20).map(|i| rec(i, i % 2 == 0)).collect();
        for capacity in [64, 1024, DEFAULT_SEGMENT_CAPACITY] {
            let file = write_file(&records, capacity);
            let mut reader = SegmentReader::new(&file).expect("valid header");
            assert_eq!(reader.capacity(), capacity);
            let out: Vec<_> = reader.by_ref().collect();
            assert_eq!(out, records, "capacity {capacity}");
            assert_eq!(reader.damaged(), 0);
            // Tiny capacities force many segments; huge ones, few.
            if capacity == 64 {
                assert!(
                    reader.segments() >= records.len(),
                    "oversized records sit alone"
                );
            }
            if capacity == DEFAULT_SEGMENT_CAPACITY {
                assert_eq!(reader.segments(), 1);
            }
        }
    }

    #[test]
    fn write_is_deterministic_and_append_matches_rewrite_contents() {
        let records: Vec<EncodedRecord> = (0..8).map(|i| rec(i, false)).collect();
        assert_eq!(write_file(&records, 512), write_file(&records, 512));

        // Append path: first 5 written as a file, last 3 appended.
        let mut file = write_file(records.iter().take(5), 512);
        let first = {
            let mut r = SegmentReader::new(&file).expect("header");
            r.by_ref().for_each(drop);
            r.next_ordinal()
        };
        let mut w = SegmentWriter::new(512, first);
        for r in records.iter().skip(5) {
            w.push(r);
        }
        file.extend_from_slice(&w.finish());
        let (out, _, damaged) = read_all(&file);
        assert_eq!(out, records);
        assert_eq!(damaged, 0);
    }

    #[test]
    fn torn_tail_costs_exactly_the_unreadable_records() {
        let records: Vec<EncodedRecord> = (0..6).map(|i| noisy_rec(i, true)).collect();
        let file = write_file(&records, 128); // one record per segment
        assert!(
            !file
                .windows(4)
                .any(|w| w == SEGMENT_MAGIC_PACKED.as_slice()),
            "noise records must produce plain segments"
        );
        // Cut mid-way through the final record's bytes.
        let cut = file.len() - 10;
        let (out, _, damaged) = read_all(&file[..cut]);
        assert_eq!(out, records[..5], "only the torn record is lost");
        assert_eq!(damaged, 1);

        // Cut inside the final segment *header*: same cost, detected as
        // a damaged segment instead of a damaged record.
        let last_seg_start = file.len() - (records[5].encode().len() + SEGMENT_HEADER_LEN);
        let (out, _, damaged) = read_all(&file[..last_seg_start + 7]);
        assert_eq!(out, records[..5]);
        assert_eq!(damaged, 1);

        // Cut exactly at a segment boundary: nothing damaged at all.
        let (out, _, damaged) = read_all(&file[..last_seg_start]);
        assert_eq!(out, records[..5]);
        assert_eq!(damaged, 0);
    }

    #[test]
    fn vandalized_segment_resyncs_on_next_magic() {
        let records: Vec<EncodedRecord> = (0..4).map(|i| noisy_rec(i, false)).collect();
        let mut file = write_file(&records, 128); // one record per segment
                                                  // Vandalize segment 1's magic (segment 0 starts at FILE_HEADER_LEN).
        let seg_len = SEGMENT_HEADER_LEN + records[0].encode().len();
        // Records differ in length; find segment 1 by scanning.
        let seg1 = FILE_HEADER_LEN + seg_len;
        assert_eq!(&file[seg1..seg1 + 4], SEGMENT_MAGIC.as_slice());
        file[seg1] = b'X';
        let (out, _, damaged) = read_all(&file);
        assert_eq!(out.len(), 3, "segments 0, 2, 3 survive");
        assert_eq!(out[0], records[0]);
        assert_eq!(out[1], records[2]);
        assert!(damaged >= 1);
    }

    #[test]
    fn corrupt_record_inside_block_costs_the_block_tail() {
        let records: Vec<EncodedRecord> = (0..4).map(|i| noisy_rec(i, false)).collect();
        let mut file = write_file(&records, DEFAULT_SEGMENT_CAPACITY); // one segment
                                                                       // Flip a byte in record 1's body (after record 0).
        let r0 = records[0].encode().len();
        let hit = FILE_HEADER_LEN + SEGMENT_HEADER_LEN + r0 + 10;
        file[hit] ^= 0xFF;
        let (out, segments, damaged) = read_all(&file);
        assert_eq!(segments, 1);
        assert_eq!(out, records[..1], "the prefix before the damage survives");
        assert_eq!(damaged, 3, "the bad record plus the unaddressable tail");
    }

    #[test]
    fn packed_segments_shrink_redundant_blocks_and_roundtrip() {
        // Records whose canonical strings are near-identical — the
        // shape of a real sweep store, where only seeds and a few
        // floats differ per point. The block-level compressor must
        // collapse the cross-record repeats per-payload compression
        // cannot reach.
        let records: Vec<EncodedRecord> = (0..64)
            .map(|i| {
                let mut r = rec(0, false);
                r.content_hash = i;
                r.spec_canon = format!(
                    "Spec{{n:4,f:1,rho:x3eb0c6f7a0b5ed8d,delta:x3f847ae147ae147b,\
                     eps:x3f50624dd2f1a9fc,seed:{i},delay:DelayKind::Constant}}"
                );
                r.outcome_canon = format!(
                    "Outcome{{index:{i},steady_skew:x3f50624dd2f1a9fc,\
                     max_skew:x3f5062{i:02}d2f1aa01,agreement_holds:+}}"
                );
                r
            })
            .collect();
        let file = write_file(&records, DEFAULT_SEGMENT_CAPACITY);
        assert!(
            file.windows(4)
                .any(|w| w == SEGMENT_MAGIC_PACKED.as_slice()),
            "a redundant block must come out packed"
        );
        let plain_total: usize = records.iter().map(|r| r.encode().len()).sum();
        assert!(
            file.len() * 4 < plain_total,
            "expected ≥4× over per-record framing, got {plain_total} -> {}",
            file.len()
        );
        let (out, segments, damaged) = read_all(&file);
        assert_eq!(out, records);
        assert_eq!((segments, damaged), (1, 0));
        // Same records, same capacity, same bytes: packing is part of
        // the canonical write, not a mood.
        assert_eq!(file, write_file(&records, DEFAULT_SEGMENT_CAPACITY));
    }

    #[test]
    fn torn_or_corrupt_packed_segment_is_all_or_nothing() {
        let batch_a: Vec<EncodedRecord> = (0..8).map(|i| rec(i % 2, false)).collect();
        let batch_b: Vec<EncodedRecord> = (10..18).map(|i| rec(i % 2, true)).collect();
        // Two packed segments: batch_a fills one, batch_b appends one.
        let mut file = write_file(&batch_a, DEFAULT_SEGMENT_CAPACITY);
        let seg_a_len = file.len();
        let mut w = SegmentWriter::new(DEFAULT_SEGMENT_CAPACITY, 1);
        for r in &batch_b {
            w.push(r);
        }
        file.extend_from_slice(&w.finish());
        assert_eq!(&file[FILE_HEADER_LEN..FILE_HEADER_LEN + 4], b"WSGZ");
        let (out, _, damaged) = read_all(&file);
        assert_eq!(out.len(), 16);
        assert_eq!(damaged, 0);

        // A torn packed tail cannot be salvaged record-by-record: the
        // whole promised count is damage, the prefix segment survives.
        let (out, _, damaged) = read_all(&file[..file.len() - 5]);
        assert_eq!(out, batch_a);
        assert_eq!(damaged, batch_b.len());

        // A flipped byte inside the stored block fails the segment
        // checksum wholesale — and the reader still reaches the next
        // segment afterwards.
        let mut vandal = file.clone();
        vandal[seg_a_len - 10] ^= 0xFF;
        let (out, segments, damaged) = read_all(&vandal);
        assert_eq!(out, batch_b, "the later segment survives");
        assert_eq!((segments, damaged), (2, batch_a.len()));
    }

    #[test]
    fn version1_headers_still_load() {
        // A file written before packed segments existed: header version
        // 1, plain segments only. The current reader must accept it —
        // stores in the wild (CI caches, checked-in fixtures) predate
        // the bump.
        let records: Vec<EncodedRecord> = (0..4).map(|i| noisy_rec(i, false)).collect();
        let mut file = write_file(&records, 512);
        assert_eq!(file[4], FILE_FORMAT_VERSION);
        file[4] = FILE_FORMAT_V1;
        let (out, _, damaged) = read_all(&file);
        assert_eq!(out, records);
        assert_eq!(damaged, 0);
    }

    #[test]
    fn foreign_files_are_not_binary_stores() {
        assert!(SegmentReader::new(b"").is_none());
        assert!(SegmentReader::new(b"wlsweep 1\n").is_none());
        assert!(SegmentReader::new(&[0u8; 64]).is_none());
        // Right magic, wrong format version.
        let mut file = write_file(std::iter::empty(), 1024);
        file[4] = 99;
        assert!(SegmentReader::new(&file).is_none());
    }
}
