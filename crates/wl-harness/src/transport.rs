//! Pluggable worker transports: *how* a fleet of frontier workers is
//! launched, watched, and harvested — factored out of the driver so the
//! same monitor loop drives local subprocesses, a shared "drop box"
//! directory, or a service-backed fleet.
//!
//! PR 4's [`drive`](crate::drive) hard-wires one topology: local
//! subprocesses, one static `k/N` shard each. This module splits that
//! into two halves:
//!
//! * [`WorkerTransport`] — the topology: where the frontier directory
//!   lives, where a worker's store lands, how a worker process is
//!   invoked, and which stores exist at harvest time. Three backends
//!   ship:
//!   * [`SubprocessTransport`] — PR 4's topology over the frontier:
//!     local subprocesses, stores in the drive directory.
//!   * [`DropBoxTransport`] — everything shared lives under one *drop
//!     box* directory (`frontier/` + `stores/`) that remote machines can
//!     mount or rsync; harvest scans `stores/*.wls`, so deposits from
//!     workers this driver never spawned merge in too.
//!   * [`ServiceTransport`] — subprocess topology plus a
//!     `WL_SWEEP_SERVICE` environment injection, so every worker
//!     resolves points *local store → shared service → simulate* and
//!     pushes fresh results back per chunk (the service's batch
//!     endpoints make that one frame each way per chunk).
//! * [`drive_frontier`] — the monitor loop, transport-agnostic: spawn
//!   `cfg.workers` processes, restart crashed ones under a per-slot
//!   budget, `SIGKILL` stalled ones, requeue orphaned frontier claims so
//!   live workers steal dead workers' chunks, and — once every chunk is
//!   `.done` — merge whatever [`WorkerTransport::stores`] reports into
//!   one canonical output store.
//!
//! Work stealing changes the failure calculus from [`drive`](crate::drive): a worker
//! that exhausts its restart budget *retires its slot* but does not fail
//! the drive — its chunks are requeued and the survivors absorb them.
//! The drive fails only when every slot is retired and the frontier is
//! still incomplete.
//!
//! The contract is the driver's, re-proven per transport by
//! `tests/transport_conformance.rs`: the merged store is byte-identical
//! to a 1-process run over the same grid, for any transport, worker
//! count, chunk interleaving, or mid-sweep kill schedule.

use crate::cache::{MergeConflict, StoreFormat, SweepStore};
use crate::driver::{beat_sig, spawn_worker, BeatSig};
use crate::frontier::{Frontier, FrontierError, FrontierSpec};
use crate::spec::ScenarioSpec;
use crate::sweep::SweepAlgorithm;
use std::io;
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Configuration.
// ---------------------------------------------------------------------------

/// Configuration of a [`drive_frontier`] run (the parent side).
#[derive(Debug, Clone)]
pub struct FrontierDriverConfig {
    /// Worker subprocesses to keep alive.
    pub workers: u32,
    /// Driver working directory: worker logs (and, transport permitting,
    /// the frontier and worker stores) live here. Created if missing.
    pub dir: PathBuf,
    /// Path of the merged output store.
    pub out: PathBuf,
    /// Grid points per frontier chunk (the work-stealing granule; see
    /// [`FrontierSpec::chunk`]).
    pub chunk: usize,
    /// Restart budget **per worker slot**: a slot's worker may crash (or
    /// stall) at most this many times before the slot retires. Retiring
    /// a slot is not fatal while other slots survive — work stealing
    /// reassigns its chunks.
    pub max_restarts: u32,
    /// Monitor poll interval.
    pub poll: Duration,
    /// If set, a worker whose heartbeat (store mtime/size, log size) has
    /// not changed for this long is `SIGKILL`ed and restarted, consuming
    /// one restart. `None` trusts workers to either exit or make
    /// progress.
    pub stall_timeout: Option<Duration>,
    /// Frontier claims whose heartbeat is older than this are requeued
    /// by the monitor loop, making a dead worker's chunks stealable.
    pub steal_timeout: Duration,
    /// Format of the merged output store (worker stores keep whatever
    /// format their workers wrote; the merge auto-detects per file).
    pub format: StoreFormat,
}

impl FrontierDriverConfig {
    /// A config with the defaults the `sweep_drive` bin uses: 2 restarts
    /// per slot, 50 ms poll, no stall timeout, 2 s steal timeout.
    #[must_use]
    pub fn new(workers: u32, dir: impl Into<PathBuf>, out: impl Into<PathBuf>) -> Self {
        Self {
            workers,
            dir: dir.into(),
            out: out.into(),
            chunk: 4,
            max_restarts: 2,
            poll: Duration::from_millis(50),
            stall_timeout: None,
            steal_timeout: Duration::from_secs(2),
            format: StoreFormat::default(),
        }
    }

    /// The log file worker slot `slot`'s stdout/stderr are appended to
    /// (across restarts, so the crash story reads in one place).
    #[must_use]
    pub fn worker_log(&self, slot: u32) -> PathBuf {
        self.dir.join(format!("worker-{slot}.log"))
    }
}

/// Everything a transport needs to build one worker invocation.
#[derive(Debug, Clone)]
pub struct WorkerLaunch {
    /// Stable worker slot (0-based).
    pub slot: u32,
    /// Launch attempt for this slot (0 = initial; restarts count up), so
    /// fault injection can be confined to first launches.
    pub attempt: u32,
    /// The claim identity this launch must use (`w<slot>-a<attempt>`) —
    /// unique per launch, so a restarted worker's fresh claims are
    /// distinguishable from its orphaned ones in a post-mortem.
    pub worker: String,
    /// The frontier directory the worker must open.
    pub frontier: PathBuf,
    /// The store the worker must checkpoint into. Stable per *slot*
    /// (not per attempt): a restarted worker hydrates its predecessor's
    /// checkpoints and pays only for what never saved.
    pub store: PathBuf,
}

// ---------------------------------------------------------------------------
// The transport trait and its three backends.
// ---------------------------------------------------------------------------

/// The topology half of a frontier drive: where shared state lives, how
/// workers launch, and which stores exist at harvest. Implementations
/// must keep [`WorkerLaunch::store`] stable per slot and must report
/// every store that might hold records in [`stores`](Self::stores) —
/// the merge is equality-confirmed, so over-reporting is safe and
/// under-reporting loses work.
pub trait WorkerTransport {
    /// Transport name, for logs and reports.
    fn name(&self) -> &'static str;

    /// The directory the frontier lives in (created by
    /// [`drive_frontier`]; workers open it). Must be shared with every
    /// worker the transport reaches.
    fn frontier_dir(&self, cfg: &FrontierDriverConfig) -> PathBuf;

    /// The store path assigned to worker slot `slot`.
    fn worker_store(&self, cfg: &FrontierDriverConfig, slot: u32) -> PathBuf;

    /// Builds the invocation for one worker launch — typically "this
    /// very binary with `--frontier-worker`". The driver owns
    /// stdout/stderr (both append to [`FrontierDriverConfig::worker_log`]).
    fn command(&mut self, cfg: &FrontierDriverConfig, launch: &WorkerLaunch) -> Command;

    /// Every store to merge once the frontier is complete. The default
    /// enumerates the per-slot stores; transports with shared deposit
    /// directories scan them instead.
    ///
    /// # Errors
    ///
    /// Directory enumeration failures.
    fn stores(&self, cfg: &FrontierDriverConfig) -> io::Result<Vec<PathBuf>> {
        Ok((0..cfg.workers)
            .map(|slot| self.worker_store(cfg, slot))
            .collect())
    }
}

/// The local topology: frontier and per-slot stores in the drive
/// directory, workers as local subprocesses.
pub struct SubprocessTransport<F: FnMut(&WorkerLaunch) -> Command> {
    command_for: F,
}

impl<F: FnMut(&WorkerLaunch) -> Command> SubprocessTransport<F> {
    /// A subprocess transport launching workers via `command_for`.
    pub fn new(command_for: F) -> Self {
        Self { command_for }
    }
}

impl<F: FnMut(&WorkerLaunch) -> Command> WorkerTransport for SubprocessTransport<F> {
    fn name(&self) -> &'static str {
        "subprocess"
    }

    fn frontier_dir(&self, cfg: &FrontierDriverConfig) -> PathBuf {
        cfg.dir.join("frontier")
    }

    fn worker_store(&self, cfg: &FrontierDriverConfig, slot: u32) -> PathBuf {
        cfg.dir.join(format!("worker-{slot}.wls"))
    }

    fn command(&mut self, _cfg: &FrontierDriverConfig, launch: &WorkerLaunch) -> Command {
        (self.command_for)(launch)
    }
}

/// The shared-directory topology: one *drop box* root holds the frontier
/// (`<root>/frontier`) and every worker's deposited store
/// (`<root>/stores/w<slot>.wls`). Point the root at a shared mount and
/// machines this driver never spawned can join the sweep: they open the
/// same frontier, deposit `*.wls` files into `stores/`, and the harvest
/// scan merges their records exactly like a local worker's.
pub struct DropBoxTransport<F: FnMut(&WorkerLaunch) -> Command> {
    root: Option<PathBuf>,
    command_for: F,
}

impl<F: FnMut(&WorkerLaunch) -> Command> DropBoxTransport<F> {
    /// A drop-box transport rooted at `<drive dir>/dropbox`.
    pub fn new(command_for: F) -> Self {
        Self {
            root: None,
            command_for,
        }
    }

    /// A drop-box transport rooted at `root` (a shared mount, say).
    pub fn rooted(root: impl Into<PathBuf>, command_for: F) -> Self {
        Self {
            root: Some(root.into()),
            command_for,
        }
    }

    fn root(&self, cfg: &FrontierDriverConfig) -> PathBuf {
        self.root.clone().unwrap_or_else(|| cfg.dir.join("dropbox"))
    }
}

impl<F: FnMut(&WorkerLaunch) -> Command> WorkerTransport for DropBoxTransport<F> {
    fn name(&self) -> &'static str {
        "dropbox"
    }

    fn frontier_dir(&self, cfg: &FrontierDriverConfig) -> PathBuf {
        self.root(cfg).join("frontier")
    }

    fn worker_store(&self, cfg: &FrontierDriverConfig, slot: u32) -> PathBuf {
        self.root(cfg).join("stores").join(format!("w{slot}.wls"))
    }

    fn command(&mut self, _cfg: &FrontierDriverConfig, launch: &WorkerLaunch) -> Command {
        (self.command_for)(launch)
    }

    /// Scans `<root>/stores/*.wls` — *every* deposit merges, including
    /// stores from workers this driver never launched.
    fn stores(&self, cfg: &FrontierDriverConfig) -> io::Result<Vec<PathBuf>> {
        let dir = self.root(cfg).join("stores");
        let mut stores = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "wls") {
                stores.push(path);
            }
        }
        stores.sort();
        Ok(stores)
    }
}

/// The service topology: subprocess layout plus `WL_SWEEP_SERVICE`
/// injected into every worker's environment, so workers resolve each
/// claimed chunk against the shared [`serve`](crate::serve) instance
/// (one batch claim per chunk) and push simulated results back (one
/// batch put per chunk). The service instance itself is external — a
/// running `sweep_serve` the caller points this transport at.
pub struct ServiceTransport<F: FnMut(&WorkerLaunch) -> Command> {
    addr: String,
    command_for: F,
}

impl<F: FnMut(&WorkerLaunch) -> Command> ServiceTransport<F> {
    /// A service transport against the service at `addr`
    /// (`unix:<path>` or `tcp:<host>:<port>`, as in `WL_SWEEP_SERVICE`).
    pub fn new(addr: impl Into<String>, command_for: F) -> Self {
        Self {
            addr: addr.into(),
            command_for,
        }
    }
}

impl<F: FnMut(&WorkerLaunch) -> Command> WorkerTransport for ServiceTransport<F> {
    fn name(&self) -> &'static str {
        "service"
    }

    fn frontier_dir(&self, cfg: &FrontierDriverConfig) -> PathBuf {
        cfg.dir.join("frontier")
    }

    fn worker_store(&self, cfg: &FrontierDriverConfig, slot: u32) -> PathBuf {
        cfg.dir.join(format!("worker-{slot}.wls"))
    }

    fn command(&mut self, _cfg: &FrontierDriverConfig, launch: &WorkerLaunch) -> Command {
        let mut cmd = (self.command_for)(launch);
        cmd.env("WL_SWEEP_SERVICE", &self.addr);
        cmd
    }
}

// ---------------------------------------------------------------------------
// The transport-agnostic drive.
// ---------------------------------------------------------------------------

/// What a completed [`drive_frontier`] did.
#[derive(Debug, Clone, Copy, Default)]
pub struct FrontierDriveReport {
    /// Records in the merged output store.
    pub merged_records: usize,
    /// Worker restarts across all slots (crashes + stall kills).
    pub restarts: u32,
    /// How many of those restarts were stall kills.
    pub stall_kills: u32,
    /// Worker slots that exhausted their restart budget and retired
    /// (their chunks were stolen by surviving slots).
    pub retired: u32,
    /// Orphaned frontier claims the monitor requeued.
    pub requeued: usize,
    /// Stores merged at harvest (≥ worker count for drop-box deposits).
    pub stores_merged: usize,
    /// Corrupt lines skipped while loading stores for the merge.
    pub skipped_lines: usize,
    /// Stale-engine records ignored while loading stores.
    pub stale_records: usize,
    /// Binary-store records superseded by later checkpoint segments.
    pub superseded_records: usize,
}

/// Why a [`drive_frontier`] failed.
#[derive(Debug)]
pub enum FrontierDriveError {
    /// Spawning, polling, or store I/O failed.
    Io(io::Error),
    /// The frontier directory could not be initialized — most
    /// importantly [`FrontierError::Mismatch`]: the directory holds a
    /// *different sweep's* frontier and the drive refuses to touch it.
    Frontier(FrontierError),
    /// Every worker slot retired (restart budgets exhausted) with the
    /// frontier still incomplete — there is nobody left to steal the
    /// remaining chunks.
    WorkersExhausted {
        /// Chunks still not `.done` when the last slot retired.
        chunks_left: usize,
        /// The drive directory, where the worker logs tell the story.
        dir: PathBuf,
    },
    /// Two stores disagreed at harvest — the determinism contract was
    /// broken (mixed engine builds, foreign stores in the deposit dir).
    Merge(MergeConflict),
}

impl std::fmt::Display for FrontierDriveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "frontier driver I/O failure: {e}"),
            Self::Frontier(e) => write!(f, "{e}"),
            Self::WorkersExhausted { chunks_left, dir } => write!(
                f,
                "every worker slot exhausted its restart budget with {chunks_left} chunk(s) \
                 unfinished (see worker logs under {})",
                dir.display()
            ),
            Self::Merge(c) => write!(f, "store merge failed: {c}"),
        }
    }
}

impl std::error::Error for FrontierDriveError {}

impl From<io::Error> for FrontierDriveError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<FrontierError> for FrontierDriveError {
    fn from(e: FrontierError) -> Self {
        match e {
            FrontierError::Io(e) => Self::Io(e),
            e => Self::Frontier(e),
        }
    }
}

struct Slot {
    slot: u32,
    store: PathBuf,
    log: PathBuf,
    child: Child,
    /// Launches so far (1 = initial).
    attempts: u32,
    last_beat: Instant,
    sig: BeatSig,
    /// Exited 0 (frontier was complete when it looked).
    done: bool,
    /// Restart budget exhausted; nobody mans this slot anymore.
    retired: bool,
}

impl Slot {
    fn live(&self) -> bool {
        !self.done && !self.retired
    }
}

/// Initializes the frontier for `grid` (refusing a foreign one), runs
/// `cfg.workers` worker processes over `transport`, keeps them alive
/// (restart on crash under a per-slot budget, optional stall kill,
/// orphan-claim requeue so survivors steal dead workers' chunks), and —
/// once every chunk is `.done` — merges the transport's stores into
/// [`FrontierDriverConfig::out`].
///
/// On success the merged store is canonical: byte-identical to what a
/// 1-process run over the same grid saves, whatever the transport,
/// worker count, or kill schedule (`tests/transport_conformance.rs`).
///
/// # Errors
///
/// [`FrontierDriveError::Frontier`] when the frontier directory belongs
/// to a different sweep, [`FrontierDriveError::WorkersExhausted`] when
/// every slot retires with chunks unfinished,
/// [`FrontierDriveError::Merge`] when stores disagree at harvest,
/// [`FrontierDriveError::Io`] for spawn/poll/store failures.
///
/// # Panics
///
/// Panics if `cfg.workers == 0` or `cfg.chunk == 0`.
pub fn drive_frontier<A: SweepAlgorithm>(
    cfg: &FrontierDriverConfig,
    grid: &[ScenarioSpec],
    transport: &mut impl WorkerTransport,
) -> Result<FrontierDriveReport, FrontierDriveError> {
    assert!(
        cfg.workers >= 1,
        "frontier driver needs at least one worker"
    );
    std::fs::create_dir_all(&cfg.dir)?;
    let frontier_dir = transport.frontier_dir(cfg);
    let frontier = Frontier::init(&frontier_dir, FrontierSpec::for_grid::<A>(grid, cfg.chunk))?;
    let mut report = FrontierDriveReport::default();

    let mut slots: Vec<Slot> = Vec::with_capacity(cfg.workers as usize);
    for slot in 0..cfg.workers {
        let store = transport.worker_store(cfg, slot);
        if let Some(parent) = store.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let log = cfg.worker_log(slot);
        let launch = launch_for(slot, 0, &frontier_dir, &store);
        let child = match spawn_worker(transport.command(cfg, &launch), &log) {
            Ok(child) => child,
            Err(e) => {
                kill_live(&mut slots);
                return Err(e.into());
            }
        };
        slots.push(Slot {
            slot,
            store,
            log,
            child,
            attempts: 1,
            last_beat: Instant::now(),
            sig: (None, 0),
            done: false,
            retired: false,
        });
    }

    let result = monitor(cfg, &frontier, &mut slots, transport, &mut report);
    kill_live(&mut slots);
    result?;

    let mut merged = SweepStore::new();
    merged.set_format(cfg.format);
    for path in transport.stores(cfg)? {
        let store = SweepStore::open(&path)?;
        report.skipped_lines += store.skipped_lines();
        report.stale_records += store.stale_records();
        report.superseded_records += store.superseded_records();
        merged
            .merge_from(&store)
            .map_err(FrontierDriveError::Merge)?;
        report.stores_merged += 1;
    }
    merged.save_to(&cfg.out)?;
    report.merged_records = merged.len();
    Ok(report)
}

fn launch_for(slot: u32, attempt: u32, frontier: &Path, store: &Path) -> WorkerLaunch {
    WorkerLaunch {
        slot,
        attempt,
        worker: format!("w{slot}-a{attempt}"),
        frontier: frontier.into(),
        store: store.into(),
    }
}

fn kill_live(slots: &mut [Slot]) {
    for slot in slots {
        if slot.live() {
            let _ = slot.child.kill();
            let _ = slot.child.wait();
        }
    }
}

fn monitor(
    cfg: &FrontierDriverConfig,
    frontier: &Frontier,
    slots: &mut [Slot],
    transport: &mut impl WorkerTransport,
    report: &mut FrontierDriveReport,
) -> Result<(), FrontierDriveError> {
    let frontier_dir = frontier.dir().to_path_buf();
    loop {
        // Completion first: `.done` files are only ever created, so a
        // complete frontier stays complete — even if the very last
        // worker crashed between its final rename and its exit(0).
        if frontier.is_complete()? {
            return Ok(());
        }
        let mut any_live = false;
        for slot in slots.iter_mut() {
            if !slot.live() {
                continue;
            }
            if let Some(status) = slot.child.try_wait()? {
                if status.success() {
                    slot.done = true;
                    continue;
                }
                restart(cfg, slot, &frontier_dir, transport, report)?;
            } else {
                // Still running: refresh the heartbeat, stall-kill if
                // asked.
                let sig = beat_sig(&slot.store, &slot.log);
                if sig != slot.sig {
                    slot.sig = sig;
                    slot.last_beat = Instant::now();
                } else if let Some(stall) = cfg.stall_timeout {
                    if slot.last_beat.elapsed() >= stall {
                        let _ = slot.child.kill(); // SIGKILL on unix
                        let _ = slot.child.wait();
                        report.stall_kills += 1;
                        restart(cfg, slot, &frontier_dir, transport, report)?;
                    }
                }
            }
            any_live = any_live || slot.live();
        }
        // A dead worker's claims go stale and get requeued here, so the
        // survivors steal its chunks instead of waiting for its restart.
        report.requeued += frontier.requeue_stale(cfg.steal_timeout)?;
        if !any_live {
            // Nobody left. A worker exits 0 only on a complete frontier,
            // so reaching here with `done` slots still demands the
            // completion re-check (a straggler's rename may have landed
            // after our scan above).
            if frontier.is_complete()? {
                return Ok(());
            }
            if slots.iter().all(|s| s.retired) {
                let status = frontier.status()?;
                return Err(FrontierDriveError::WorkersExhausted {
                    chunks_left: frontier.chunks() - status.done,
                    dir: cfg.dir.clone(),
                });
            }
        }
        std::thread::sleep(cfg.poll);
    }
}

fn restart(
    cfg: &FrontierDriverConfig,
    slot: &mut Slot,
    frontier_dir: &Path,
    transport: &mut impl WorkerTransport,
    report: &mut FrontierDriveReport,
) -> Result<(), FrontierDriveError> {
    if slot.attempts > cfg.max_restarts {
        // Budget spent: retire the slot. Not fatal — the frontier
        // requeues its claims and surviving slots steal them; the drive
        // fails only when *every* slot has retired (see `monitor`).
        slot.retired = true;
        report.retired += 1;
        return Ok(());
    }
    report.restarts += 1;
    let attempt = slot.attempts; // 1-based: first restart passes attempt=1
    let launch = launch_for(slot.slot, attempt, frontier_dir, &slot.store);
    slot.child = spawn_worker(transport.command(cfg, &launch), &slot.log)?;
    slot.attempts += 1;
    slot.sig = beat_sig(&slot.store, &slot.log);
    slot.last_beat = Instant::now();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(dir: &Path) -> FrontierDriverConfig {
        FrontierDriverConfig::new(2, dir, dir.join("merged.wls"))
    }

    #[test]
    fn transports_lay_out_their_directories() {
        let dir = std::env::temp_dir().join("wl-transport-layout");
        let cfg = cfg(&dir);
        let noop = |_: &WorkerLaunch| Command::new("true");

        let sub = SubprocessTransport::new(noop);
        assert_eq!(sub.name(), "subprocess");
        assert_eq!(sub.frontier_dir(&cfg), dir.join("frontier"));
        assert_eq!(sub.worker_store(&cfg, 1), dir.join("worker-1.wls"));
        assert_eq!(sub.stores(&cfg).unwrap().len(), 2);

        let boxed = DropBoxTransport::new(noop);
        assert_eq!(boxed.name(), "dropbox");
        assert_eq!(boxed.frontier_dir(&cfg), dir.join("dropbox/frontier"));
        assert_eq!(
            boxed.worker_store(&cfg, 0),
            dir.join("dropbox/stores/w0.wls")
        );
        let rooted = DropBoxTransport::rooted("/mnt/shared", noop);
        assert_eq!(rooted.frontier_dir(&cfg), Path::new("/mnt/shared/frontier"));

        let mut svc = ServiceTransport::new("unix:/tmp/x.sock", noop);
        assert_eq!(svc.name(), "service");
        let launch = launch_for(0, 0, &dir.join("frontier"), &dir.join("worker-0.wls"));
        assert_eq!(launch.worker, "w0-a0");
        let cmd = svc.command(&cfg, &launch);
        assert!(cmd
            .get_envs()
            .any(|(k, v)| k == "WL_SWEEP_SERVICE" && v.is_some_and(|v| v == "unix:/tmp/x.sock")));
    }

    #[test]
    fn dropbox_harvest_scans_foreign_deposits() {
        let dir = std::env::temp_dir().join(format!("wl-transport-scan-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = cfg(&dir);
        let boxed = DropBoxTransport::new(|_: &WorkerLaunch| Command::new("true"));
        let stores = dir.join("dropbox/stores");
        std::fs::create_dir_all(&stores).unwrap();
        std::fs::write(stores.join("w0.wls"), b"").unwrap();
        std::fs::write(stores.join("remote-deposit.wls"), b"").unwrap();
        std::fs::write(stores.join("notes.txt"), b"").unwrap();
        let found = boxed.stores(&cfg).unwrap();
        assert_eq!(found.len(), 2, "only .wls files harvest: {found:?}");
        assert!(found.iter().any(|p| p.ends_with("remote-deposit.wls")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The stale-frontier rejection path, at the driver level: a
    /// frontier directory left over from a *different* grid makes the
    /// drive fail up front with the mismatch — no worker is ever
    /// spawned, nothing hangs.
    #[test]
    fn foreign_frontier_fails_the_drive_before_any_spawn() {
        use crate::frontier::{Frontier, FrontierError, FrontierSpec};
        use crate::{DelayKind, Maintenance, ScenarioSpec};
        use wl_core::Params;
        use wl_time::RealTime;

        let grid_of = |n: usize| -> Vec<ScenarioSpec> {
            let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap();
            (0..n)
                .map(|i| {
                    ScenarioSpec::new(params.clone())
                        .seed(i as u64)
                        .delay(DelayKind::Constant)
                        .t_end(RealTime::from_secs(1.5))
                })
                .collect()
        };
        let dir = std::env::temp_dir().join(format!("wl-transport-stale-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = cfg(&dir);

        // An earlier sweep left its frontier behind...
        Frontier::init(
            dir.join("frontier"),
            FrontierSpec::for_grid::<Maintenance>(&grid_of(6), cfg.chunk),
        )
        .unwrap();

        // ...and a drive over a different grid must refuse it, before
        // launching anything (the closure panics if consulted).
        let mut transport = SubprocessTransport::new(|_: &WorkerLaunch| -> Command {
            panic!("no worker may be spawned against a foreign frontier")
        });
        let err = drive_frontier::<Maintenance>(&cfg, &grid_of(4), &mut transport)
            .expect_err("foreign frontier must be refused");
        match err {
            FrontierDriveError::Frontier(FrontierError::Mismatch { field, .. }) => {
                assert_eq!(field, "grid_len");
            }
            other => panic!("expected a frontier mismatch, got {other}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
