//! Mergeable streaming skew sketches — the ~100-byte record kind that
//! makes million-scenario Monte Carlo affordable.
//!
//! A [`crate::SweepSeries`] costs 100 KB–1 MB per grid point; at the
//! ROADMAP's 10⁶-scenario target that is ~100 GB of store and an
//! analysis that does not fit in RAM. A [`SkewSketch`] keeps what the
//! paper's distributional claims actually need — sample count, exact
//! mean, max, and p50/p95/p99 skew — in a few dozen integers, and it
//! *merges*: the sketch of a union of sample streams is the
//! element-wise sum of the per-stream sketches, so shard stores fold
//! into fleet-level statistics without ever materializing a series.
//!
//! Everything here is integer-exact and byte-pinnable, deliberately
//! unlike t-digests or sampling sketches:
//!
//! * **Counts and histogram bins are integers.** Merge is integer
//!   addition — associative, commutative, with the empty sketch as
//!   identity, so `fold(all)` and `merge(fold(shard_k))` are
//!   byte-identical for *any* sharding (pinned by
//!   `tests/sketch_merge_algebra.rs`).
//! * **The mean is an exact integer tick sum.** Samples quantize to
//!   2⁻⁴⁰-second ticks (sub-picosecond resolution) and accumulate in a
//!   128-bit integer, so summation order cannot perturb a single bit.
//! * **Quantiles come from fixed bins, not interpolation.** The bin of
//!   a positive sample is its f64 bit pattern shifted right 49 places —
//!   the 11 exponent bits and the top 3 mantissa bits. That is a fixed
//!   log-linear grid (8 bins per power of two, ≤ 9.1 % relative
//!   width — a compact record beats a finer grid at fleet scale)
//!   computed with *no* floating-point arithmetic, monotone in
//!   the sample, whose bin edges are exact binary numbers. A reported
//!   quantile is always a bin's lower edge, never an average of
//!   samples.
//!
//! Sketches enter the store as the `K`/`L` record kinds (see
//! `docs/store-format.md`) and are produced per grid point by
//! [`SketchObserver`] folding the exact skew sample stream that series
//! capture records — so a sketch is a pure derivation of the series
//! ([`SkewSketch::of_series`]), which is what lets a series record
//! satisfy a sketch-needing lookup and lets the store upgrade
//! sketch records to series records without losing information.

use crate::sweep::SweepSeries;

/// Quantization grid of the exact mean accumulator: 2⁴⁰ ticks per
/// second (one tick ≈ 0.91 ps). Chosen as a power of two so the
/// tick size is exactly representable and `x * TICKS_PER_SEC` is a
/// pure exponent shift for binary values.
pub const TICKS_PER_SEC: f64 = 1_099_511_627_776.0; // 2^40

/// Number of histogram bins per power of two (2³ — the top three
/// mantissa bits of the sample select the sub-bin). Eight per octave
/// keeps every occupied-bin list short enough that a sketch record
/// stays near 100 bytes once block-compressed, at ≤ 9.1 % relative bin
/// width — quantiles read from bin edges are at worst one bin low.
pub const BINS_PER_OCTAVE: u32 = 8;

/// Exclusive upper bound of the bin-index space: 11 exponent bits ×
/// 8 sub-bins. The +∞ bin (16376) is the overflow bin; NaN patterns
/// above it are never emitted ([`SkewSketch::observe`] routes
/// non-finite-ordered samples to [`SkewSketch::low`]).
pub const BIN_LIMIT: u32 = 2048 * BINS_PER_OCTAVE;

/// The fixed bin of a positive sample: its IEEE-754 bit pattern shifted
/// right 49 — exponent and top-3-mantissa, a monotone log-linear grid.
#[must_use]
fn bin_of(v: f64) -> u32 {
    debug_assert!(v > 0.0);
    (v.to_bits() >> 49) as u32
}

/// The exact lower edge of bin `idx` — the inverse of `bin_of` on
/// bin boundaries. Edges are exact binary numbers, so printing or
/// comparing them is deterministic.
#[must_use]
pub fn bin_lower_edge(idx: u32) -> f64 {
    f64::from_bits(u64::from(idx) << 49)
}

/// A deterministic, mergeable sketch of a skew sample stream.
///
/// All fields are public because the store serializes them canonically
/// (field order is part of the record grammar in `cache.rs` —
/// `parse_sketch` mirrors the declaration order below; keep them in
/// sync). The struct maintains these invariants, which the store
/// parser re-checks on load ([`SkewSketch::well_formed`]):
///
/// * `bin_idx` is strictly increasing, parallel to `bin_count`, with
///   every count nonzero and every index below [`BIN_LIMIT`];
/// * `count == low + Σ bin_count`.
///
/// # Examples
///
/// ```
/// use wl_harness::sketch::SkewSketch;
///
/// let mut all = SkewSketch::new();
/// let (mut a, mut b) = (SkewSketch::new(), SkewSketch::new());
/// for (i, v) in [1e-4, 3e-4, 2e-4, 9e-5].iter().enumerate() {
///     all.observe(*v);
///     if i % 2 == 0 { a.observe(*v) } else { b.observe(*v) }
/// }
/// a.merge(&b);
/// assert!(a.bit_identical(&all)); // merge == fold, byte for byte
/// assert_eq!(all.count, 4);
/// assert!((all.mean() - 1.725e-4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct SkewSketch {
    /// Total samples folded (including the `low` ones).
    pub count: u64,
    /// Samples that fall below every bin: non-positive values (a skew
    /// of exactly 0 included) and NaN. Ranked below all bins by the
    /// quantile walk.
    pub low: u64,
    /// High 64 bits of the two's-complement 128-bit tick sum.
    pub sum_hi: u64,
    /// Low 64 bits of the 128-bit tick sum.
    pub sum_lo: u64,
    /// Largest sample under IEEE total order (`-inf` when empty).
    pub max: f64,
    /// Sparse histogram: strictly increasing bin indices (see
    /// [`bin_lower_edge`] for the grid).
    pub bin_idx: Vec<u32>,
    /// Occupancy of each bin in `bin_idx`, parallel, all nonzero.
    pub bin_count: Vec<u64>,
}

impl Default for SkewSketch {
    fn default() -> Self {
        Self::new()
    }
}

/// Canonical serialization with **delta-encoded** bin indices: the
/// first `bin_idx` element is emitted verbatim, every later one as the
/// gap to its predecessor. Occupied bins cluster tightly (a typical
/// skew distribution spans a handful of octaves), so the gaps are
/// small integers regardless of where on the bin grid the mass sits —
/// shorter digit strings in the canon and far better match locality
/// for the packed-segment compressor. The store parser reverses the
/// differencing before the [`well_formed`](SkewSketch::well_formed)
/// check, which still rejects any non-increasing reconstruction.
impl serde::Serialize for SkewSketch {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let deltas: Vec<u32> = self
            .bin_idx
            .iter()
            .scan(0u32, |prev, &idx| {
                let gap = idx - *prev;
                *prev = idx;
                Some(gap)
            })
            .collect();
        let mut st = serializer.serialize_struct("SkewSketch", 7)?;
        st.serialize_field("count", &self.count)?;
        st.serialize_field("low", &self.low)?;
        st.serialize_field("sum_hi", &self.sum_hi)?;
        st.serialize_field("sum_lo", &self.sum_lo)?;
        st.serialize_field("max", &self.max)?;
        st.serialize_field("bin_idx", &deltas)?;
        st.serialize_field("bin_count", &self.bin_count)?;
        st.end()
    }
}

/// A sample's contribution to the exact mean: ticks of 2⁻⁴⁰ s,
/// round-half-away-from-zero, saturating at the `i64` range (±inf
/// saturate; NaN contributes 0 — all deterministic `as` casts).
fn quantize_ticks(v: f64) -> i64 {
    (v * TICKS_PER_SEC).round() as i64
}

impl SkewSketch {
    /// The empty sketch — the identity of [`merge`](SkewSketch::merge).
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            low: 0,
            sum_hi: 0,
            sum_lo: 0,
            max: f64::NEG_INFINITY,
            bin_idx: Vec::new(),
            bin_count: Vec::new(),
        }
    }

    /// Folds the skew sample stream of a captured series — the exact
    /// `skew_values` samples a series record stores — into a sketch.
    /// This is *the* definition of a grid point's sketch: a sketch
    /// record and a series record of the same spec are consistent iff
    /// `of_series(series)` is bit-identical to the sketch, which is
    /// what the store's upgrade lattice checks.
    #[must_use]
    pub fn of_series(series: &SweepSeries) -> Self {
        let mut observer = SketchObserver::new();
        for &v in &series.skew_values {
            observer.observe(v);
        }
        observer.finish()
    }

    /// The 128-bit tick sum, reassembled.
    #[must_use]
    fn sum_ticks(&self) -> i128 {
        (i128::from(self.sum_hi as i64) << 64) | i128::from(self.sum_lo)
    }

    fn set_sum_ticks(&mut self, s: i128) {
        self.sum_hi = (s >> 64) as u64;
        self.sum_lo = s as u64;
    }

    fn bump(&mut self, idx: u32, n: u64) {
        match self.bin_idx.binary_search(&idx) {
            Ok(i) => self.bin_count[i] += n,
            Err(i) => {
                self.bin_idx.insert(i, idx);
                self.bin_count.insert(i, n);
            }
        }
    }

    /// Adds one sample.
    pub fn observe(&mut self, v: f64) {
        self.count += 1;
        self.set_sum_ticks(self.sum_ticks() + i128::from(quantize_ticks(v)));
        if v.total_cmp(&self.max).is_gt() && !v.is_nan() {
            self.max = v;
        }
        if v > 0.0 {
            self.bump(bin_of(v), 1);
        } else {
            self.low += 1;
        }
    }

    /// Adds every sample of `other`: counts, tick sums, and bins add;
    /// `max` takes the larger under total order. Associative and
    /// commutative with [`SkewSketch::new`] as identity, bit-for-bit
    /// (the merge-algebra proptests pin this).
    pub fn merge(&mut self, other: &Self) {
        self.count += other.count;
        self.low += other.low;
        self.set_sum_ticks(self.sum_ticks() + other.sum_ticks());
        if other.max.total_cmp(&self.max).is_gt() {
            self.max = other.max;
        }
        for (&idx, &n) in other.bin_idx.iter().zip(&other.bin_count) {
            self.bump(idx, n);
        }
    }

    /// The exact mean of the quantized samples (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        (self.sum_ticks() as f64) / TICKS_PER_SEC / (self.count as f64)
    }

    /// The `num/den` quantile as the lower edge of the bin holding the
    /// rank-`⌈q·count⌉` sample (0 when that rank falls among the `low`
    /// samples, or the sketch is empty). Deterministic: a pure integer
    /// walk over the bins.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    #[must_use]
    pub fn quantile(&self, num: u64, den: u64) -> f64 {
        assert!(den > 0, "quantile denominator must be nonzero");
        if self.count == 0 {
            return 0.0;
        }
        let rank_wide = (u128::from(self.count) * u128::from(num)).div_ceil(u128::from(den));
        let Ok(rank) = u64::try_from(rank_wide) else {
            return self.max;
        };
        if rank <= self.low {
            return 0.0;
        }
        let mut seen = self.low;
        for (&idx, &n) in self.bin_idx.iter().zip(&self.bin_count) {
            seen += n;
            if seen >= rank {
                return bin_lower_edge(idx);
            }
        }
        // Unreachable for a well-formed sketch (count == low + Σ bins);
        // degrade gracefully rather than panic on a hostile one.
        self.max
    }

    /// Median skew (lower bin edge).
    #[must_use]
    pub fn p50(&self) -> f64 {
        self.quantile(1, 2)
    }

    /// 95th-percentile skew (lower bin edge).
    #[must_use]
    pub fn p95(&self) -> f64 {
        self.quantile(19, 20)
    }

    /// 99th-percentile skew (lower bin edge).
    #[must_use]
    pub fn p99(&self) -> f64 {
        self.quantile(99, 100)
    }

    /// Bit-level equality — floats by IEEE bit pattern, the same
    /// currency as [`crate::SweepOutcome::bit_identical`].
    #[must_use]
    pub fn bit_identical(&self, other: &Self) -> bool {
        self.count == other.count
            && self.low == other.low
            && self.sum_hi == other.sum_hi
            && self.sum_lo == other.sum_lo
            && self.max.to_bits() == other.max.to_bits()
            && self.bin_idx == other.bin_idx
            && self.bin_count == other.bin_count
    }

    /// Structural validity — what the store parser enforces beyond the
    /// grammar, so a corrupted or hand-tampered record cannot smuggle
    /// an inconsistent histogram into a merge.
    #[must_use]
    pub fn well_formed(&self) -> bool {
        self.bin_idx.len() == self.bin_count.len()
            && self.bin_idx.windows(2).all(|w| w[0] < w[1])
            && self.bin_idx.iter().all(|&i| i < BIN_LIMIT)
            && self.bin_count.iter().all(|&n| n > 0)
            && self
                .bin_count
                .iter()
                .try_fold(self.low, |acc, &n| acc.checked_add(n))
                == Some(self.count)
    }
}

/// The per-point streaming observer: feed it skew samples, take the
/// [`SkewSketch`]. A thin stateful wrapper so sweep bodies and tests
/// fold through one named type rather than bare method calls.
#[derive(Debug, Default)]
pub struct SketchObserver {
    sketch: SkewSketch,
}

impl SketchObserver {
    /// A fresh observer over the empty sketch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one skew sample.
    pub fn observe(&mut self, skew: f64) {
        self.sketch.observe(skew);
    }

    /// Consumes the observer, yielding the folded sketch.
    #[must_use]
    pub fn finish(self) -> SkewSketch {
        self.sketch
    }
}

// ---------------------------------------------------------------------------
// Fleet-level reporting over a whole store (the `sweep_stats` bin).
// ---------------------------------------------------------------------------

/// Streams every live record of a store into one fleet-level report:
/// per algorithm family, the merged skew-sample sketch (count, exact
/// mean, quantiles, max), the per-point `max_skew` maximum, and the
/// margin to Theorem 16's γ bound. Series records contribute their
/// derived sketch; scalar-only records contribute only their point
/// maximum. The output is a pure function of the store contents
/// (records iterate in canonical key order), so golden tests pin it
/// character-for-character.
#[must_use]
pub fn store_report(store: &crate::cache::SweepStore) -> String {
    use std::collections::BTreeMap;
    use std::fmt::Write as _;

    #[derive(Default)]
    struct Family {
        points: usize,
        sketched: usize,
        derived: usize,
        scalar_only: usize,
        sketch: SkewSketch,
        point_max: f64,
        gamma: Option<f64>,
    }

    let mut families: BTreeMap<String, Family> = BTreeMap::new();
    let mut total = 0usize;
    for (_hash, algo, spec_canon, outcome) in store.iter_records() {
        total += 1;
        let fam = families.entry(algo.to_string()).or_default();
        fam.points += 1;
        if fam.points == 1 {
            fam.point_max = f64::NEG_INFINITY;
        }
        if outcome.max_skew.total_cmp(&fam.point_max).is_gt() {
            fam.point_max = outcome.max_skew;
        }
        if let Some(g) = gamma_of_spec(spec_canon) {
            fam.gamma = Some(fam.gamma.map_or(g, |cur| cur.min(g)));
        }
        if let Some(sketch) = &outcome.sketch {
            fam.sketch.merge(sketch);
            fam.sketched += 1;
        } else if let Some(series) = &outcome.series {
            fam.sketch.merge(&SkewSketch::of_series(series));
            fam.derived += 1;
        } else {
            fam.scalar_only += 1;
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "sweep_stats: {total} record(s), {} family(ies)",
        families.len()
    );
    for (algo, fam) in &families {
        let _ = writeln!(
            out,
            "family {algo}: {} point(s) ({} sketched, {} series-derived, {} scalar-only)",
            fam.points, fam.sketched, fam.derived, fam.scalar_only
        );
        if fam.sketch.count > 0 {
            let _ = writeln!(
                out,
                "  skew samples {}: mean {:e} s, p50 {:e} s, p95 {:e} s, p99 {:e} s, max {:e} s",
                fam.sketch.count,
                fam.sketch.mean(),
                fam.sketch.p50(),
                fam.sketch.p95(),
                fam.sketch.p99(),
                fam.sketch.max,
            );
        }
        let _ = writeln!(out, "  point max_skew {:e} s", fam.point_max);
        match fam.gamma {
            Some(g) => {
                let _ = writeln!(
                    out,
                    "  gamma bound {:e} s, max/gamma {:.3}%",
                    g,
                    100.0 * fam.point_max / g
                );
            }
            None => {
                let _ = writeln!(out, "  gamma bound unavailable (no Params in spec canon)");
            }
        }
    }
    out
}

/// Theorem 16's γ for the `Params` block of a canonical spec string —
/// the four fields γ reads (ρ, δ, ε, β) are recovered from their
/// pinned `x`-hex encodings without a full spec parser; the remaining
/// fields are immaterial to the bound and filled with placeholders.
fn gamma_of_spec(spec_canon: &str) -> Option<f64> {
    let params = spec_canon.split_once("Params{")?.1;
    let field = |name: &str| -> Option<f64> {
        let pat = format!("{name}:x");
        let at = params.find(&pat)? + pat.len();
        let hex = params.get(at..at + 16)?;
        Some(f64::from_bits(u64::from_str_radix(hex, 16).ok()?))
    };
    let p = wl_core::Params {
        n: 4,
        f: 1,
        rho: field("rho")?,
        delta: field("delta")?,
        eps: field("eps")?,
        beta: field("beta")?,
        p_round: 1.0,
        t0: 1.0,
        avg: wl_core::AveragingFn::Midpoint,
        sigma: 0.0,
        exchanges: 1,
    };
    Some(wl_core::theory::gamma(&p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sketch_is_merge_identity() {
        let mut s = SkewSketch::new();
        s.observe(1e-4);
        s.observe(2.5e-3);
        let mut left = SkewSketch::new();
        left.merge(&s);
        assert!(left.bit_identical(&s));
        let mut right = s.clone();
        right.merge(&SkewSketch::new());
        assert!(right.bit_identical(&s));
        assert!(SkewSketch::new().well_formed());
    }

    #[test]
    fn bins_are_monotone_with_exact_edges() {
        let values = [1e-9, 3.7e-6, 1e-4, 1.03e-4, 0.25, 1.0, 1e6];
        let mut last = 0;
        for v in values {
            let idx = bin_of(v);
            assert!(idx >= last, "bins must be monotone in the sample");
            last = idx;
            let edge = bin_lower_edge(idx);
            assert!(edge <= v, "{v} below its own bin edge {edge}");
            assert!(bin_lower_edge(idx + 1) > v, "{v} beyond its bin");
        }
        // +inf lands in the overflow bin, still inside the index space.
        assert!(bin_of(f64::INFINITY) < BIN_LIMIT);
        assert_eq!(bin_lower_edge(bin_of(f64::INFINITY)), f64::INFINITY);
    }

    #[test]
    fn quantiles_walk_the_histogram() {
        let mut s = SkewSketch::new();
        // 90 small samples, 10 large: p50 small, p95/p99 large.
        for _ in 0..90 {
            s.observe(1e-5);
        }
        for _ in 0..10 {
            s.observe(1e-2);
        }
        assert_eq!(s.count, 100);
        assert!(s.p50() <= 1e-5 && s.p50() > 0.5e-5);
        assert!(s.p95() <= 1e-2 && s.p95() > 0.5e-2);
        assert_eq!(s.p99(), s.p95());
        assert_eq!(s.max, 1e-2);
        // Quantile edges are at most one bin (≤ 9.1 % relative) low.
        assert!(s.p50() >= 1e-5 * (1.0 - 1.0 / 8.0) * 0.999);
    }

    #[test]
    fn nonpositive_and_nan_samples_rank_low() {
        let mut s = SkewSketch::new();
        s.observe(0.0);
        s.observe(-1.0);
        s.observe(f64::NAN);
        s.observe(2e-4);
        assert_eq!(s.low, 3);
        assert_eq!(s.count, 4);
        assert!(s.well_formed());
        assert_eq!(s.p50(), 0.0); // rank 2 falls among the low samples
        assert_eq!(s.p99(), bin_lower_edge(bin_of(2e-4)));
        assert_eq!(s.max, 2e-4); // NaN never becomes the max
    }

    #[test]
    fn mean_is_exact_in_ticks() {
        let mut s = SkewSketch::new();
        s.observe(1.0);
        s.observe(3.0);
        assert!((s.mean() - 2.0).abs() < 1e-12);
        // Tick sum is an exact integer: 2^40 + 3·2^40.
        assert_eq!(s.sum_ticks(), 4 * 1_099_511_627_776i128);
    }

    #[test]
    fn of_series_folds_skew_values_only() {
        let series = SweepSeries {
            round_times: vec![9.0],
            round_skews: vec![9.0],
            skew_times: vec![0.0, 1.0, 2.0],
            skew_values: vec![1e-4, 2e-4, 3e-4],
            corr_procs: vec![],
            corr_times: vec![],
            corr_values: vec![],
        };
        let s = SkewSketch::of_series(&series);
        assert_eq!(s.count, 3);
        assert_eq!(s.max, 3e-4);
        let mut manual = SketchObserver::new();
        for v in [1e-4, 2e-4, 3e-4] {
            manual.observe(v);
        }
        assert!(s.bit_identical(&manual.finish()));
    }

    #[test]
    fn well_formed_rejects_tampered_histograms() {
        let mut s = SkewSketch::new();
        s.observe(1e-4);
        s.observe(5e-4);
        assert!(s.well_formed());
        let mut bad = s.clone();
        bad.count += 1; // count no longer matches low + bins
        assert!(!bad.well_formed());
        let mut bad = s.clone();
        bad.bin_idx.reverse(); // indices no longer increasing
        assert!(!bad.well_formed());
        let mut bad = s.clone();
        bad.bin_count[0] = 0; // empty bin encoded explicitly
        bad.count -= 1;
        assert!(!bad.well_formed());
        let mut bad = s;
        bad.bin_idx[0] = BIN_LIMIT; // index beyond the bin space
        assert!(!bad.well_formed());
    }

    #[test]
    fn gamma_recovers_from_spec_canon() {
        let params = wl_core::Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap();
        let spec = crate::ScenarioSpec::new(params.clone());
        let canon = crate::cache::canon_string(&spec.canonical());
        let g = gamma_of_spec(&canon).expect("Params block parses");
        assert_eq!(g.to_bits(), wl_core::theory::gamma(&params).to_bits());
        assert_eq!(gamma_of_spec("no params here"), None);
    }
}
