//! Shared measurement helpers: run a [`BuiltScenario`] to completion and
//! extract the standard quantities, generically over the message type —
//! the same code summarizes Welch–Lynch runs and baseline runs.
//!
//! These used to live in the `bench` crate (Welch–Lynch only) and were
//! re-implemented ad hoc inside experiment binaries for the baselines.

use crate::algo::SyncAlgorithm;
use crate::assemble::{BuiltScenario, EnumScenario, MonoScenario};
use crate::spec::ScenarioSpec;
use crate::sweep::SweepSeries;
use wl_analysis::adjustment::{check_adjustments, AdjustmentReport};
use wl_analysis::agreement::{check_agreement, AgreementReport};
use wl_analysis::convergence::{round_series, RoundSeries};
use wl_analysis::skew::SkewSeries;
use wl_analysis::ExecutionView;
use wl_clock::drift::FleetClock;
use wl_core::Params;
use wl_sim::faults::FaultPlan;
use wl_sim::{Automaton, CorrectionHistory, EventQueue, SimStats};
use wl_time::{RealDur, RealTime};

/// Everything the experiments usually need from one run.
#[derive(Debug)]
pub struct RunSummary {
    /// Agreement check from two rounds in to the end.
    pub agreement: AgreementReport,
    /// Adjustment check (first adjustment skipped as warm-up).
    pub adjustments: AdjustmentReport,
    /// Skew at each resynchronization wave.
    pub rounds: RoundSeries,
    /// Raw simulator counters (events delivered, timers suppressed, …).
    pub stats: SimStats,
}

/// Runs a built scenario for `t_end` simulated seconds and summarizes it
/// against the Welch–Lynch theorem suite.
#[must_use]
pub fn run_summary<M: Clone + std::fmt::Debug + Send + 'static, Q: EventQueue<M>>(
    built: BuiltScenario<M, Q>,
    t_end: f64,
) -> RunSummary {
    run_capture_impl(built, t_end, false).0
}

/// [`run_summary`] over a [`MonoScenario`] (the monomorphized fast path):
/// drives the sim, then feeds the streamed counters and correction
/// histories through the identical analysis body. Results are
/// bit-identical to the boxed path's.
#[must_use]
pub fn run_summary_mono<A>(built: MonoScenario<A>, t_end: f64) -> RunSummary
where
    A: SyncAlgorithm + Automaton<Msg = <A as SyncAlgorithm>::Msg>,
{
    run_capture_mono_impl(built, t_end, false).0
}

/// [`run_summary`] plus a [`SweepSeries`] captured from the same
/// execution: the per-round skew series, a dense event-aware skew
/// sampling, and the nonfaulty correction series (see [`SweepSeries`]
/// for the exact contents).
///
/// The capture is a post-hoc, read-only pass over the correction
/// histories the standard observers already record — deliberately *not*
/// a [`wl_sim::SkewProbe`] streamed during the run, because the
/// event-adjacent samples (immediately before/after each correction,
/// where the skew is extremal) need the completed history. That also
/// keeps the captured series identical on the boxed and monomorphized
/// run paths by construction, and leaves the scalar summary bit-for-bit
/// what [`run_summary`] returns.
#[must_use]
pub fn run_capture<M: Clone + std::fmt::Debug + Send + 'static, Q: EventQueue<M>>(
    built: BuiltScenario<M, Q>,
    t_end: f64,
) -> (RunSummary, SweepSeries) {
    let (summary, series) = run_capture_impl(built, t_end, true);
    (summary, series.expect("capture requested"))
}

/// [`run_capture`] over a [`MonoScenario`] — same series, same
/// bit-identity guarantees, on the fast path.
#[must_use]
pub fn run_capture_mono<A>(built: MonoScenario<A>, t_end: f64) -> (RunSummary, SweepSeries)
where
    A: SyncAlgorithm + Automaton<Msg = <A as SyncAlgorithm>::Msg>,
{
    let (summary, series) = run_capture_mono_impl(built, t_end, true);
    (summary, series.expect("capture requested"))
}

/// [`run_summary`] over an [`EnumScenario`] (the enum-dispatched faulted
/// fast path): drives the sim, then feeds the streamed counters and
/// correction histories through the identical analysis body. Results
/// are bit-identical to the boxed path's.
#[must_use]
pub fn run_summary_enum<A: SyncAlgorithm, Q: EventQueue<A::Msg>>(
    built: EnumScenario<A, Q>,
    t_end: f64,
) -> RunSummary {
    run_capture_enum_impl(built, t_end, false).0
}

/// [`run_capture`] over an [`EnumScenario`] — same series, same
/// bit-identity guarantees, on the enum fast path.
#[must_use]
pub fn run_capture_enum<A: SyncAlgorithm, Q: EventQueue<A::Msg>>(
    built: EnumScenario<A, Q>,
    t_end: f64,
) -> (RunSummary, SweepSeries) {
    let (summary, series) = run_capture_enum_impl(built, t_end, true);
    (summary, series.expect("capture requested"))
}

fn run_capture_impl<M: Clone + std::fmt::Debug + Send + 'static, Q: EventQueue<M>>(
    built: BuiltScenario<M, Q>,
    t_end: f64,
    capture: bool,
) -> (RunSummary, Option<SweepSeries>) {
    let params = built.params.clone();
    let plan = built.plan.clone();
    let mut sim = built.sim;
    let outcome = sim.run();
    summarize(
        sim.clocks(),
        &outcome.corr,
        outcome.stats,
        &params,
        &plan,
        t_end,
        capture,
    )
}

fn run_capture_mono_impl<A>(
    built: MonoScenario<A>,
    t_end: f64,
    capture: bool,
) -> (RunSummary, Option<SweepSeries>)
where
    A: SyncAlgorithm + Automaton<Msg = <A as SyncAlgorithm>::Msg>,
{
    let mut sim = built.sim;
    sim.drive();
    let (counters, corr) = sim.observer();
    let stats = counters.stats();
    summarize(
        sim.clocks(),
        corr.histories(),
        stats,
        &built.params,
        &built.plan,
        t_end,
        capture,
    )
}

fn run_capture_enum_impl<A: SyncAlgorithm, Q: EventQueue<A::Msg>>(
    built: EnumScenario<A, Q>,
    t_end: f64,
    capture: bool,
) -> (RunSummary, Option<SweepSeries>) {
    let mut sim = built.sim;
    sim.drive();
    let (counters, corr) = sim.observer();
    let stats = counters.stats();
    summarize(
        sim.clocks(),
        corr.histories(),
        stats,
        &built.params,
        &built.plan,
        t_end,
        capture,
    )
}

/// Runs `spec` with a monomorphized fleet and **no observer at all**
/// ([`wl_sim::NullObserver`]) and returns the engine's own delivered-event
/// count — the raw Monte Carlo throughput floor, with every measurement
/// cost removed. `None` if the spec does not qualify for the fast path
/// (see [`crate::assemble_mono`]).
#[must_use]
pub fn drive_unobserved<A>(spec: &ScenarioSpec) -> Option<u64>
where
    A: SyncAlgorithm + Automaton<Msg = <A as SyncAlgorithm>::Msg>,
{
    let mut sim = crate::assemble::assemble_mono_null::<A>(spec)?;
    sim.drive();
    Some(sim.events_delivered())
}

/// The one analysis body behind [`run_summary`], [`run_summary_mono`],
/// and the capture variants: given whatever ran (clocks + correction
/// histories + counters), apply the theorem suite — and optionally
/// sample the series payload from the same view. Keeping this single
/// keeps the run paths from diverging.
fn summarize(
    clocks: &[FleetClock],
    corr: &[CorrectionHistory],
    stats: SimStats,
    params: &Params,
    plan: &FaultPlan,
    t_end: f64,
    capture: bool,
) -> (RunSummary, Option<SweepSeries>) {
    let view = ExecutionView::with_plan(clocks, corr, plan);
    let from = RealTime::from_secs(params.t0 + 2.0 * params.p_round);
    let agreement = check_agreement(
        &view,
        params,
        from,
        RealTime::from_secs(t_end * 0.98),
        RealDur::from_secs(params.p_round / 7.0),
    );
    let adjustments = check_adjustments(&view, params, 1);
    let rounds = round_series(&view, RealDur::from_secs(params.p_round / 4.0));
    let series = capture.then(|| capture_series(&view, params, t_end, &rounds));
    (
        RunSummary {
            agreement,
            adjustments,
            rounds,
            stats,
        },
        series,
    )
}

/// Builds the [`SweepSeries`] payload from a completed execution. The
/// uniform sampling step is `P/10`, floored so even very long horizons
/// stay at ≤ ~4000 grid samples (event-adjacent samples make window
/// maxima exact regardless of grid density, so the floor costs nothing).
fn capture_series(
    view: &ExecutionView<'_, FleetClock>,
    params: &Params,
    t_end: f64,
    rounds: &RoundSeries,
) -> SweepSeries {
    let step = (params.p_round / 10.0).max(t_end / 4000.0);
    let skew = SkewSeries::sample_with_events(
        view,
        RealTime::ZERO,
        RealTime::from_secs(t_end * 0.99),
        RealDur::from_secs(step),
    );
    let mut corr_changes: Vec<(u32, f64, f64)> = Vec::new();
    for p in view.nonfaulty() {
        for &(t, c) in view.corr[p].entries() {
            let t = t.as_secs();
            if t.is_finite() {
                corr_changes.push((p as u32, t, c));
            }
        }
    }
    corr_changes.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    SweepSeries {
        round_times: rounds.times.iter().map(|t| t.as_secs()).collect(),
        round_skews: rounds.skews.clone(),
        skew_times: skew.samples.iter().map(|&(t, _)| t.as_secs()).collect(),
        skew_values: skew.samples.iter().map(|&(_, s)| s).collect(),
        corr_procs: corr_changes.iter().map(|&(p, _, _)| p).collect(),
        corr_times: corr_changes.iter().map(|&(_, t, _)| t).collect(),
        corr_values: corr_changes.iter().map(|&(_, _, c)| c).collect(),
    }
}

/// Runs a built scenario and returns only the steady-state skew measured
/// over the second half of the horizon.
#[must_use]
pub fn steady_skew<M: Clone + std::fmt::Debug + Send + 'static, Q: EventQueue<M>>(
    built: BuiltScenario<M, Q>,
    t_end: f64,
) -> f64 {
    run_summary(built, t_end).agreement.steady_skew
}

/// Samples the full skew series of a built scenario (for figure-style
/// outputs).
#[must_use]
pub fn skew_series<M: Clone + std::fmt::Debug + Send + 'static, Q: EventQueue<M>>(
    built: BuiltScenario<M, Q>,
    t_end: f64,
    step: f64,
) -> SkewSeries {
    let params = built.params.clone();
    let plan = built.plan.clone();
    let mut sim = built.sim;
    let outcome = sim.run();
    let view = ExecutionView::with_plan(sim.clocks(), &outcome.corr, &plan);
    SkewSeries::sample_with_events(
        &view,
        RealTime::from_secs(params.t0),
        RealTime::from_secs(t_end * 0.98),
        RealDur::from_secs(step),
    )
}

/// The §10 comparison metrics: `(steady skew, max |ADJ|)`, sampled the way
/// experiment E11 samples baselines (settling for three rounds, steady
/// state over the second half of the horizon).
#[must_use]
pub fn baseline_metrics<M: Clone + std::fmt::Debug + Send + 'static, Q: EventQueue<M>>(
    built: BuiltScenario<M, Q>,
    t_end: f64,
) -> (f64, f64) {
    let params = built.params.clone();
    let plan = built.plan.clone();
    let mut sim = built.sim;
    let outcome = sim.run();
    let view = ExecutionView::with_plan(sim.clocks(), &outcome.corr, &plan);
    let series = SkewSeries::sample_with_events(
        &view,
        RealTime::from_secs(params.t0 + 3.0 * params.p_round),
        RealTime::from_secs(t_end * 0.95),
        RealDur::from_secs(params.p_round / 5.0),
    );
    let steady = series.max_after(RealTime::from_secs(t_end / 2.0));
    let adj = check_adjustments(&view, &params, 1);
    (steady, adj.max_abs)
}
