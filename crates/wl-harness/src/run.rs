//! Shared measurement helpers: run a [`BuiltScenario`] to completion and
//! extract the standard quantities, generically over the message type —
//! the same code summarizes Welch–Lynch runs and baseline runs.
//!
//! These used to live in the `bench` crate (Welch–Lynch only) and were
//! re-implemented ad hoc inside experiment binaries for the baselines.

use crate::algo::SyncAlgorithm;
use crate::assemble::{BuiltScenario, MonoScenario};
use crate::spec::ScenarioSpec;
use wl_analysis::adjustment::{check_adjustments, AdjustmentReport};
use wl_analysis::agreement::{check_agreement, AgreementReport};
use wl_analysis::convergence::{round_series, RoundSeries};
use wl_analysis::skew::SkewSeries;
use wl_analysis::ExecutionView;
use wl_clock::drift::FleetClock;
use wl_core::Params;
use wl_sim::faults::FaultPlan;
use wl_sim::{Automaton, CorrectionHistory, EventQueue, SimStats};
use wl_time::{RealDur, RealTime};

/// Everything the experiments usually need from one run.
#[derive(Debug)]
pub struct RunSummary {
    /// Agreement check from two rounds in to the end.
    pub agreement: AgreementReport,
    /// Adjustment check (first adjustment skipped as warm-up).
    pub adjustments: AdjustmentReport,
    /// Skew at each resynchronization wave.
    pub rounds: RoundSeries,
    /// Raw simulator counters (events delivered, timers suppressed, …).
    pub stats: SimStats,
}

/// Runs a built scenario for `t_end` simulated seconds and summarizes it
/// against the Welch–Lynch theorem suite.
#[must_use]
pub fn run_summary<M: Clone + std::fmt::Debug + Send + 'static, Q: EventQueue<M>>(
    built: BuiltScenario<M, Q>,
    t_end: f64,
) -> RunSummary {
    let params = built.params.clone();
    let plan = built.plan.clone();
    let mut sim = built.sim;
    let outcome = sim.run();
    summarize(
        sim.clocks(),
        &outcome.corr,
        outcome.stats,
        &params,
        &plan,
        t_end,
    )
}

/// [`run_summary`] over a [`MonoScenario`] (the monomorphized fast path):
/// drives the sim, then feeds the streamed counters and correction
/// histories through the identical analysis body. Results are
/// bit-identical to the boxed path's.
#[must_use]
pub fn run_summary_mono<A>(built: MonoScenario<A>, t_end: f64) -> RunSummary
where
    A: SyncAlgorithm + Automaton<Msg = <A as SyncAlgorithm>::Msg>,
{
    let mut sim = built.sim;
    sim.drive();
    let (counters, corr) = sim.observer();
    let stats = counters.stats();
    summarize(
        sim.clocks(),
        corr.histories(),
        stats,
        &built.params,
        &built.plan,
        t_end,
    )
}

/// Runs `spec` with a monomorphized fleet and **no observer at all**
/// ([`wl_sim::NullObserver`]) and returns the engine's own delivered-event
/// count — the raw Monte Carlo throughput floor, with every measurement
/// cost removed. `None` if the spec does not qualify for the fast path
/// (see [`crate::assemble_mono`]).
#[must_use]
pub fn drive_unobserved<A>(spec: &ScenarioSpec) -> Option<u64>
where
    A: SyncAlgorithm + Automaton<Msg = <A as SyncAlgorithm>::Msg>,
{
    let mut sim = crate::assemble::assemble_mono_null::<A>(spec)?;
    sim.drive();
    Some(sim.events_delivered())
}

/// The one analysis body behind [`run_summary`] and [`run_summary_mono`]:
/// given whatever ran (clocks + correction histories + counters), apply
/// the theorem suite. Keeping this single keeps the two run paths from
/// diverging.
fn summarize(
    clocks: &[FleetClock],
    corr: &[CorrectionHistory],
    stats: SimStats,
    params: &Params,
    plan: &FaultPlan,
    t_end: f64,
) -> RunSummary {
    let view = ExecutionView::with_plan(clocks, corr, plan);
    let from = RealTime::from_secs(params.t0 + 2.0 * params.p_round);
    let agreement = check_agreement(
        &view,
        params,
        from,
        RealTime::from_secs(t_end * 0.98),
        RealDur::from_secs(params.p_round / 7.0),
    );
    let adjustments = check_adjustments(&view, params, 1);
    let rounds = round_series(&view, RealDur::from_secs(params.p_round / 4.0));
    RunSummary {
        agreement,
        adjustments,
        rounds,
        stats,
    }
}

/// Runs a built scenario and returns only the steady-state skew measured
/// over the second half of the horizon.
#[must_use]
pub fn steady_skew<M: Clone + std::fmt::Debug + Send + 'static, Q: EventQueue<M>>(
    built: BuiltScenario<M, Q>,
    t_end: f64,
) -> f64 {
    run_summary(built, t_end).agreement.steady_skew
}

/// Samples the full skew series of a built scenario (for figure-style
/// outputs).
#[must_use]
pub fn skew_series<M: Clone + std::fmt::Debug + Send + 'static, Q: EventQueue<M>>(
    built: BuiltScenario<M, Q>,
    t_end: f64,
    step: f64,
) -> SkewSeries {
    let params = built.params.clone();
    let plan = built.plan.clone();
    let mut sim = built.sim;
    let outcome = sim.run();
    let view = ExecutionView::with_plan(sim.clocks(), &outcome.corr, &plan);
    SkewSeries::sample_with_events(
        &view,
        RealTime::from_secs(params.t0),
        RealTime::from_secs(t_end * 0.98),
        RealDur::from_secs(step),
    )
}

/// The §10 comparison metrics: `(steady skew, max |ADJ|)`, sampled the way
/// experiment E11 samples baselines (settling for three rounds, steady
/// state over the second half of the horizon).
#[must_use]
pub fn baseline_metrics<M: Clone + std::fmt::Debug + Send + 'static, Q: EventQueue<M>>(
    built: BuiltScenario<M, Q>,
    t_end: f64,
) -> (f64, f64) {
    let params = built.params.clone();
    let plan = built.plan.clone();
    let mut sim = built.sim;
    let outcome = sim.run();
    let view = ExecutionView::with_plan(sim.clocks(), &outcome.corr, &plan);
    let series = SkewSeries::sample_with_events(
        &view,
        RealTime::from_secs(params.t0 + 3.0 * params.p_round),
        RealTime::from_secs(t_end * 0.95),
        RealDur::from_secs(params.p_round / 5.0),
    );
    let steady = series.max_after(RealTime::from_secs(t_end / 2.0));
    let adj = check_adjustments(&view, &params, 1);
    (steady, adj.max_abs)
}
