//! Shared measurement helpers: run a [`BuiltScenario`] to completion and
//! extract the standard quantities, generically over the message type —
//! the same code summarizes Welch–Lynch runs and baseline runs.
//!
//! These used to live in the `bench` crate (Welch–Lynch only) and were
//! re-implemented ad hoc inside experiment binaries for the baselines.

use crate::assemble::BuiltScenario;
use wl_analysis::adjustment::{check_adjustments, AdjustmentReport};
use wl_analysis::agreement::{check_agreement, AgreementReport};
use wl_analysis::convergence::{round_series, RoundSeries};
use wl_analysis::skew::SkewSeries;
use wl_analysis::ExecutionView;
use wl_sim::{EventQueue, SimStats};
use wl_time::{RealDur, RealTime};

/// Everything the experiments usually need from one run.
#[derive(Debug)]
pub struct RunSummary {
    /// Agreement check from two rounds in to the end.
    pub agreement: AgreementReport,
    /// Adjustment check (first adjustment skipped as warm-up).
    pub adjustments: AdjustmentReport,
    /// Skew at each resynchronization wave.
    pub rounds: RoundSeries,
    /// Raw simulator counters (events delivered, timers suppressed, …).
    pub stats: SimStats,
}

/// Runs a built scenario for `t_end` simulated seconds and summarizes it
/// against the Welch–Lynch theorem suite.
#[must_use]
pub fn run_summary<M: Clone + std::fmt::Debug + Send + 'static, Q: EventQueue<M>>(
    built: BuiltScenario<M, Q>,
    t_end: f64,
) -> RunSummary {
    let params = built.params.clone();
    let plan = built.plan.clone();
    let mut sim = built.sim;
    let outcome = sim.run();
    let view = ExecutionView::with_plan(sim.clocks(), &outcome.corr, &plan);
    let from = RealTime::from_secs(params.t0 + 2.0 * params.p_round);
    let agreement = check_agreement(
        &view,
        &params,
        from,
        RealTime::from_secs(t_end * 0.98),
        RealDur::from_secs(params.p_round / 7.0),
    );
    let adjustments = check_adjustments(&view, &params, 1);
    let rounds = round_series(&view, RealDur::from_secs(params.p_round / 4.0));
    RunSummary {
        agreement,
        adjustments,
        rounds,
        stats: outcome.stats,
    }
}

/// Runs a built scenario and returns only the steady-state skew measured
/// over the second half of the horizon.
#[must_use]
pub fn steady_skew<M: Clone + std::fmt::Debug + Send + 'static, Q: EventQueue<M>>(
    built: BuiltScenario<M, Q>,
    t_end: f64,
) -> f64 {
    run_summary(built, t_end).agreement.steady_skew
}

/// Samples the full skew series of a built scenario (for figure-style
/// outputs).
#[must_use]
pub fn skew_series<M: Clone + std::fmt::Debug + Send + 'static, Q: EventQueue<M>>(
    built: BuiltScenario<M, Q>,
    t_end: f64,
    step: f64,
) -> SkewSeries {
    let params = built.params.clone();
    let plan = built.plan.clone();
    let mut sim = built.sim;
    let outcome = sim.run();
    let view = ExecutionView::with_plan(sim.clocks(), &outcome.corr, &plan);
    SkewSeries::sample_with_events(
        &view,
        RealTime::from_secs(params.t0),
        RealTime::from_secs(t_end * 0.98),
        RealDur::from_secs(step),
    )
}

/// The §10 comparison metrics: `(steady skew, max |ADJ|)`, sampled the way
/// experiment E11 samples baselines (settling for three rounds, steady
/// state over the second half of the horizon).
#[must_use]
pub fn baseline_metrics<M: Clone + std::fmt::Debug + Send + 'static, Q: EventQueue<M>>(
    built: BuiltScenario<M, Q>,
    t_end: f64,
) -> (f64, f64) {
    let params = built.params.clone();
    let plan = built.plan.clone();
    let mut sim = built.sim;
    let outcome = sim.run();
    let view = ExecutionView::with_plan(sim.clocks(), &outcome.corr, &plan);
    let series = SkewSeries::sample_with_events(
        &view,
        RealTime::from_secs(params.t0 + 3.0 * params.p_round),
        RealTime::from_secs(t_end * 0.95),
        RealDur::from_secs(params.p_round / 5.0),
    );
    let steady = series.max_after(RealTime::from_secs(t_end / 2.0));
    let adj = check_adjustments(&view, &params, 1);
    (steady, adj.max_abs)
}
