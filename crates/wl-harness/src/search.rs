//! Driver-powered worst-case skew search over adversary parameters.
//!
//! The static fault gallery ([`FaultKind`]) probes a handful of
//! hand-picked attacks; this module *searches* the adversary space for
//! the empirically worst skew a scenario family admits. The search is a
//! two-stage local optimizer per starting point:
//!
//! 1. **Coordinate descent** — each continuous strategy parameter
//!    (amplitude, crash time, churn period) is probed `±step` with the
//!    step halving every round, walking uphill in worst-window skew.
//! 2. **Seeded annealing** — a Metropolis pass perturbs one random
//!    parameter at a time, accepting downhill moves with probability
//!    `exp(Δ/T)` under a geometrically cooling temperature, to hop out
//!    of the local plateau coordinate descent settles on.
//!
//! Starting points are seeded from the **adversarial equivalents of the
//! static gallery** ([`gallery_pairs`]): every legacy [`FaultKind`]
//! attack maps to an [`AdversaryStrategy`] that assembles the *same*
//! automata, so the search result can never undercut the best static
//! scenario — plus the strategies the closed enum could not express
//! (collusion, churn, targeted delays, partitions).
//!
//! Everything is deterministic: candidate specs inherit the family
//! seed, the annealer's randomness is a pure function of
//! [`SearchConfig::seed`], and every evaluation goes through the cached
//! sweep body — re-running a search against a warm [`SweepCache`]
//! (or a hydrated [`crate::cache::SweepStore`]) replays it without
//! executing a single simulation. Reports carry the margin to the
//! paper's Theorem 16 bound γ ([`wl_core::theory::gamma`]).

use crate::spec::{AdversarySpec, AdversaryStrategy, FaultKind, ScenarioSpec};
use crate::sweep::{SweepAlgorithm, SweepCache, SweepRunner};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wl_sim::ProcessId;

/// Tuning knobs for [`search_worst_case`]. All defaults are modest; CI's
/// `search-smoke` job uses [`SearchConfig::smoke`] to stay in budget.
#[derive(Debug, Clone, Copy)]
pub struct SearchConfig {
    /// Seed for the annealer's RNG — the *only* source of randomness in
    /// the search. Two searches with the same seed, family, and config
    /// visit identical candidates in identical order.
    pub seed: u64,
    /// Coordinate-descent rounds per starting point (each round probes
    /// every continuous parameter once, then halves the step).
    pub descent_rounds: usize,
    /// Metropolis steps per starting point after descent.
    pub anneal_steps: usize,
    /// How many of the best-scoring starting points get the full
    /// refinement treatment (the rest are still *evaluated*, preserving
    /// the ≥-gallery guarantee, just not refined).
    pub refine_top: usize,
    /// Worker threads for batched evaluations (`0` = machine-sized, as
    /// [`SweepRunner`]).
    pub threads: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            seed: 0x5EA2C4,
            descent_rounds: 3,
            anneal_steps: 12,
            refine_top: 3,
            threads: 0,
        }
    }
}

impl SearchConfig {
    /// The tiny bounded configuration CI's `search-smoke` job runs: one
    /// descent round, a handful of anneal steps, one refined start.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            seed: 0x5EA2C4,
            descent_rounds: 1,
            anneal_steps: 4,
            refine_top: 1,
            threads: 0,
        }
    }
}

/// What [`search_worst_case`] found for one scenario family.
#[derive(Debug, Clone)]
pub struct SearchReport {
    /// The worst spec found (carries the adversary block; re-running it
    /// through any sweep reproduces `best_skew` bit-for-bit).
    pub best_spec: ScenarioSpec,
    /// The empirical worst-case skew (worst window max over the
    /// agreement window, the [`crate::SweepOutcome::max_skew`] scalar).
    pub best_skew: f64,
    /// Human label of the winning strategy.
    pub best_label: String,
    /// The best skew any *static* [`FaultKind`] gallery scenario reached.
    pub gallery_max: f64,
    /// Label of the best static gallery entry.
    pub gallery_label: String,
    /// Theorem 16's γ for the family's parameters.
    pub bound: f64,
    /// `bound - best_skew` (positive while the theorem holds).
    pub margin: f64,
    /// Total candidate evaluations (cache hits included).
    pub evaluations: usize,
    /// The search seed, echoed for reproduction.
    pub seed: u64,
}

impl std::fmt::Display for SearchReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "worst-case: {:.3e} s via {} (seed {:#x}, {} evaluations)",
            self.best_skew, self.best_label, self.seed, self.evaluations
        )?;
        writeln!(
            f,
            "gallery max: {:.3e} s via {}",
            self.gallery_max, self.gallery_label
        )?;
        write!(
            f,
            "bound gamma: {:.3e} s, margin {:.3e} s ({:.1}% of bound used)",
            self.bound,
            self.margin,
            100.0 * self.best_skew / self.bound
        )
    }
}

/// One labelled candidate in the search space: a strategy applied to
/// the first `f` processes of the family's base spec.
#[derive(Debug, Clone)]
struct Candidate {
    label: String,
    strategy: AdversaryStrategy,
}

impl Candidate {
    fn spec(&self, base: &ScenarioSpec) -> ScenarioSpec {
        let members: Vec<ProcessId> = (0..base.params.f).map(ProcessId).collect();
        base.clone()
            .adversary(AdversarySpec::new(members, self.strategy))
    }
}

/// The legacy gallery and its adversarial equivalents, as
/// `(label, FaultKind, AdversaryStrategy)` triples. The equivalence is
/// load-bearing: each strategy assembles the *same* automata as its
/// `FaultKind` (see [`crate::adversary::canonical_member`]), so seeding
/// the search from this list guarantees the found worst case is at
/// least the static gallery's.
#[must_use]
pub fn gallery_pairs(base: &ScenarioSpec) -> Vec<(String, FaultKind, AdversaryStrategy)> {
    let amp = base.params.beta;
    let mid = base.t_end.as_secs() / 2.0;
    vec![
        (
            format!("crash@{mid:.1}s"),
            FaultKind::CrashAt(mid),
            AdversaryStrategy::Crash { at: mid },
        ),
        ("mute".into(), FaultKind::Silent, AdversaryStrategy::Mute),
        ("spam".into(), FaultKind::RoundSpam, AdversaryStrategy::Spam),
        (
            format!("pull-apart({amp:.0e})"),
            FaultKind::PullApart(amp),
            AdversaryStrategy::PullApart {
                amplitude: amp,
                high: false,
            },
        ),
        (
            format!("pull-apart-high({amp:.0e})"),
            FaultKind::PullApartHigh(amp),
            AdversaryStrategy::PullApart {
                amplitude: amp,
                high: true,
            },
        ),
        (
            format!("two-faced({amp:.0e})"),
            FaultKind::TwoFaced(amp),
            AdversaryStrategy::TwoFacedValue { amplitude: amp },
        ),
    ]
}

/// The static gallery scenarios for a family: each legacy kind applied
/// to the first `f` processes of `base`.
#[must_use]
pub fn static_gallery(base: &ScenarioSpec) -> Vec<(String, ScenarioSpec)> {
    gallery_pairs(base)
        .into_iter()
        .map(|(label, kind, _)| {
            let mut spec = base.clone();
            for p in 0..base.params.f {
                spec = spec.fault(ProcessId(p), kind);
            }
            (label, spec)
        })
        .collect()
}

/// Every starting point of the search: the gallery equivalents plus the
/// strategies the closed enum could not express.
fn starting_points(base: &ScenarioSpec) -> Vec<Candidate> {
    let amp = base.params.beta;
    let p_round = base.params.p_round;
    let n = base.params.n;
    let f = base.params.f;
    let mut starts: Vec<Candidate> = gallery_pairs(base)
        .into_iter()
        .map(|(label, _, strategy)| Candidate { label, strategy })
        .collect();
    starts.push(Candidate {
        label: format!("collude({amp:.0e})"),
        strategy: AdversaryStrategy::Collude { amplitude: amp },
    });
    starts.push(Candidate {
        label: "churn".into(),
        strategy: AdversaryStrategy::Churn {
            up: 2.0 * p_round,
            down: p_round,
        },
    });
    // Targeted delays victimize an honest process; the faulty member
    // set is `0..f`, so every honest index is a distinct attack.
    for victim in f..n {
        starts.push(Candidate {
            label: format!("targeted-delay(victim={victim})"),
            strategy: AdversaryStrategy::TargetedDelay { victim },
        });
    }
    starts.push(Candidate {
        label: "partition".into(),
        strategy: AdversaryStrategy::Partition,
    });
    starts
}

/// The continuous parameters of a strategy, with their `[lo, hi]` boxes.
fn continuous_params(s: &AdversaryStrategy, base: &ScenarioSpec) -> Vec<(f64, f64, f64)> {
    let amp_hi = 8.0 * base.params.beta;
    let t_end = base.t_end.as_secs();
    let period_lo = base.params.p_round / 4.0;
    match *s {
        AdversaryStrategy::Crash { at } => vec![(at, 0.0, t_end)],
        AdversaryStrategy::PullApart { amplitude, .. }
        | AdversaryStrategy::TwoFacedValue { amplitude }
        | AdversaryStrategy::Collude { amplitude } => vec![(amplitude, 0.0, amp_hi)],
        AdversaryStrategy::Churn { up, down } => {
            vec![(up, period_lo, t_end), (down, period_lo, t_end)]
        }
        AdversaryStrategy::Mute
        | AdversaryStrategy::Spam
        | AdversaryStrategy::TargetedDelay { .. }
        | AdversaryStrategy::Partition => Vec::new(),
    }
}

/// Rebuilds a strategy with parameter `i` replaced by `v` (clamped by
/// the caller).
fn with_param(s: &AdversaryStrategy, i: usize, v: f64) -> AdversaryStrategy {
    match (*s, i) {
        (AdversaryStrategy::Crash { .. }, 0) => AdversaryStrategy::Crash { at: v },
        (AdversaryStrategy::PullApart { high, .. }, 0) => {
            AdversaryStrategy::PullApart { amplitude: v, high }
        }
        (AdversaryStrategy::TwoFacedValue { .. }, 0) => {
            AdversaryStrategy::TwoFacedValue { amplitude: v }
        }
        (AdversaryStrategy::Collude { .. }, 0) => AdversaryStrategy::Collude { amplitude: v },
        (AdversaryStrategy::Churn { down, .. }, 0) => AdversaryStrategy::Churn { up: v, down },
        (AdversaryStrategy::Churn { up, .. }, 1) => AdversaryStrategy::Churn { up, down: v },
        _ => *s,
    }
}

/// Evaluates candidates through the cached sweep body, returning the
/// worst-window skew of each. Cache hits replay for free; misses
/// simulate through the exact per-point body every sweep uses.
fn evaluate<A: SweepAlgorithm>(
    base: &ScenarioSpec,
    candidates: &[Candidate],
    cache: &SweepCache,
    threads: usize,
    evaluations: &mut usize,
) -> Vec<f64> {
    *evaluations += candidates.len();
    let specs: Vec<ScenarioSpec> = candidates.iter().map(|c| c.spec(base)).collect();
    SweepRunner::with_threads(threads)
        .sweep_cached::<A>(specs, cache)
        .into_iter()
        .map(|o| o.max_skew)
        .collect()
}

/// Searches the adversary space of one scenario family for the
/// empirical worst-case skew under algorithm `A`.
///
/// `base` describes the family (parameters, horizon, seed, delay/drift
/// models); its `faults`/`adversary` fields are ignored — the search
/// installs its own adversary per candidate. Deterministic: same
/// `(base, cfg)` → same report, at any thread count, and a warm `cache`
/// replays the whole search without simulating.
///
/// # Panics
///
/// Panics if the base spec's `f` exceeds `n` (malformed parameters).
#[must_use]
pub fn search_worst_case<A: SweepAlgorithm>(
    base: &ScenarioSpec,
    cfg: &SearchConfig,
    cache: &SweepCache,
) -> SearchReport {
    let base = {
        // The family's own fault/adversary assignment is replaced by
        // the search's candidates.
        let mut b = base.clone();
        b.faults.clear();
        b.adversary = None;
        b
    };
    let mut evaluations = 0usize;

    // Stage 0: the static gallery, for the report's baseline row.
    let gallery = static_gallery(&base);
    let gallery_specs: Vec<ScenarioSpec> = gallery.iter().map(|(_, s)| s.clone()).collect();
    evaluations += gallery_specs.len();
    let gallery_skews: Vec<f64> = SweepRunner::with_threads(cfg.threads)
        .sweep_cached::<A>(gallery_specs, cache)
        .into_iter()
        .map(|o| o.max_skew)
        .collect();
    let (gallery_best, _) = argmax(&gallery_skews);
    let gallery_max = gallery_skews[gallery_best];
    let gallery_label = gallery[gallery_best].0.clone();

    // Stage 1: evaluate every starting point (includes the gallery's
    // adversarial equivalents — the ≥-gallery floor).
    let starts = starting_points(&base);
    let start_skews = evaluate::<A>(&base, &starts, cache, cfg.threads, &mut evaluations);
    let mut order: Vec<usize> = (0..starts.len()).collect();
    order.sort_by(|&a, &b| start_skews[b].total_cmp(&start_skews[a]).then(a.cmp(&b)));
    let (mut best, mut best_skew) = (starts[order[0]].clone(), start_skews[order[0]]);

    // Stage 2+3: refine the top starts.
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    for &s in order.iter().take(cfg.refine_top.max(1).min(starts.len())) {
        let (cand, skew) = refine::<A>(
            &base,
            starts[s].clone(),
            start_skews[s],
            cfg,
            cache,
            &mut rng,
            &mut evaluations,
        );
        if skew > best_skew {
            best = cand;
            best_skew = skew;
        }
    }

    let bound = wl_core::theory::gamma(&base.params);
    SearchReport {
        best_spec: best.spec(&base),
        best_skew,
        best_label: best.label.clone(),
        gallery_max,
        gallery_label,
        bound,
        margin: bound - best_skew,
        evaluations,
        seed: cfg.seed,
    }
}

/// Coordinate descent then annealing on one starting point.
fn refine<A: SweepAlgorithm>(
    base: &ScenarioSpec,
    start: Candidate,
    start_skew: f64,
    cfg: &SearchConfig,
    cache: &SweepCache,
    rng: &mut StdRng,
    evaluations: &mut usize,
) -> (Candidate, f64) {
    let boxes = continuous_params(&start.strategy, base);
    let (mut cur, mut cur_skew) = (start, start_skew);
    if boxes.is_empty() {
        return (cur, cur_skew);
    }

    // Coordinate descent with halving steps.
    for round in 0..cfg.descent_rounds {
        for (i, &(_, lo, hi)) in boxes.iter().enumerate() {
            let step = (hi - lo) / f64::from(1u32 << (round as u32 + 2));
            let v = continuous_params(&cur.strategy, base)[i].0;
            let probes: Vec<Candidate> = [v - step, v + step]
                .into_iter()
                .filter(|x| (lo..=hi).contains(x))
                .map(|x| Candidate {
                    label: cur.label.clone(),
                    strategy: with_param(&cur.strategy, i, x),
                })
                .collect();
            if probes.is_empty() {
                continue;
            }
            let skews = evaluate::<A>(base, &probes, cache, cfg.threads, evaluations);
            let (j, _) = argmax(&skews);
            if skews[j] > cur_skew {
                cur = probes[j].clone();
                cur_skew = skews[j];
            }
        }
    }

    // Metropolis annealing: geometric cooling from a temperature sized
    // to the theorem bound (the objective's natural scale).
    let mut temp = 0.05 * wl_core::theory::gamma(&base.params);
    for _ in 0..cfg.anneal_steps {
        let i = rng.gen_range(0..boxes.len());
        let (_, lo, hi) = boxes[i];
        let v = continuous_params(&cur.strategy, base)[i].0;
        let jump = (hi - lo) * 0.25 * (rng.gen::<f64>() * 2.0 - 1.0);
        let proposal = Candidate {
            label: cur.label.clone(),
            strategy: with_param(&cur.strategy, i, (v + jump).clamp(lo, hi)),
        };
        let skew = evaluate::<A>(
            base,
            std::slice::from_ref(&proposal),
            cache,
            cfg.threads,
            evaluations,
        )[0];
        let accept = skew > cur_skew || rng.gen::<f64>() < ((skew - cur_skew) / temp).exp();
        if accept && skew > cur_skew {
            cur = proposal;
            cur_skew = skew;
        } else if accept {
            // Downhill acceptance moves the walker but never the
            // incumbent: `cur_skew` tracks the best-so-far, so the
            // returned pair is monotone in the start.
            cur = Candidate {
                label: cur.label.clone(),
                strategy: proposal.strategy,
            };
        }
        temp *= 0.7;
    }
    (cur, cur_skew)
}

fn argmax(xs: &[f64]) -> (usize, f64) {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    (best, xs[best])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Maintenance;
    use wl_core::Params;
    use wl_time::RealTime;

    fn family() -> ScenarioSpec {
        let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap();
        ScenarioSpec::new(params)
            .seed(11)
            .t_end(RealTime::from_secs(6.0))
    }

    #[test]
    fn search_beats_or_matches_gallery_and_respects_bound() {
        let cache = SweepCache::new();
        let report = search_worst_case::<Maintenance>(&family(), &SearchConfig::smoke(), &cache);
        assert!(
            report.best_skew >= report.gallery_max,
            "search {} fell below gallery {}",
            report.best_skew,
            report.gallery_max
        );
        assert!(
            report.best_skew <= report.bound,
            "empirical skew {} exceeds gamma {}",
            report.best_skew,
            report.bound
        );
        assert!(report.margin >= 0.0);
        assert!(report.evaluations > 0);
        assert!(report.best_spec.adversary.is_some());
    }

    #[test]
    fn search_is_deterministic_and_cache_replayable() {
        let cache = SweepCache::new();
        let cfg = SearchConfig::smoke();
        let a = search_worst_case::<Maintenance>(&family(), &cfg, &cache);
        let misses_after_first = cache.misses();
        // Same cache: the whole search replays from memory.
        let b = search_worst_case::<Maintenance>(&family(), &cfg, &cache);
        assert_eq!(cache.misses(), misses_after_first, "warm search simulated");
        assert_eq!(a.best_skew.to_bits(), b.best_skew.to_bits());
        assert_eq!(a.best_label, b.best_label);
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(
            a.best_spec.content_hash(),
            b.best_spec.content_hash(),
            "winning spec must be byte-reproducible"
        );
        // Fresh cache, same seed: bit-identical report.
        let c = search_worst_case::<Maintenance>(&family(), &cfg, &SweepCache::new());
        assert_eq!(a.best_skew.to_bits(), c.best_skew.to_bits());
        assert_eq!(a.best_label, c.best_label);
    }

    #[test]
    fn gallery_equivalents_reproduce_static_outcomes() {
        // The ≥-gallery guarantee rests on this: each gallery pair's
        // adversarial spec runs the exact same execution as its static
        // FaultKind spec.
        let base = family();
        for (label, kind, strategy) in gallery_pairs(&base) {
            let mut static_spec = base.clone();
            for p in 0..base.params.f {
                static_spec = static_spec.fault(ProcessId(p), kind);
            }
            let adv_spec = base.clone().adversary(AdversarySpec::new(
                (0..base.params.f).map(ProcessId).collect(),
                strategy,
            ));
            let s = crate::sweep::run_point::<Maintenance>(0, &static_spec);
            let a = crate::sweep::run_point::<Maintenance>(0, &adv_spec);
            assert!(
                s.bit_identical(&a),
                "{label}: adversarial equivalent diverged from the static gallery"
            );
        }
    }

    #[test]
    fn report_display_mentions_margin() {
        let cache = SweepCache::new();
        let report = search_worst_case::<Maintenance>(&family(), &SearchConfig::smoke(), &cache);
        let text = format!("{report}");
        assert!(text.contains("bound gamma"));
        assert!(text.contains("margin"));
        assert!(text.contains("gallery max"));
    }
}
