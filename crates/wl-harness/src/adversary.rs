//! The pluggable Adversary API: stateful fault *strategies* instead of
//! static fault tags.
//!
//! The paper's skew bound ε(1+ρ) + ρ(4d+4ε) is a worst-case guarantee
//! over every admissible adversary: arbitrary (Byzantine) behaviour from
//! up to `f` processes (A2) plus arbitrary per-message delay scheduling
//! within `[δ−ε, δ+ε]` (A3). The closed [`FaultKind`] enum replays a
//! fixed gallery of such adversaries; this module makes the adversary a
//! first-class *strategy object* instead:
//!
//! * [`Adversary`] — the trait: a per-activation hook over a member's
//!   outgoing actions (messages and timers), a per-link delay plan
//!   within the A3 band, and a deterministic seeded RNG supplied by the
//!   harness. Implementations are stateful and per-member.
//! * [`AdversaryActor`] — the interposition wrapper: runs the member's
//!   inner automaton, hands its outgoing actions to the strategy, and
//!   forwards whatever survives. This is how behaviour strategies get
//!   "access to outgoing messages" without touching the protocol code.
//! * [`AdversaryDelay`] — the delay-side wrapper: a [`DelayModel`] that
//!   overrides chosen directed links to the floor (δ−ε) or ceiling
//!   (δ+ε) of the band and defers every other link to the base model,
//!   threading per-pair state through the existing delay plumbing.
//! * [`canonical_member`] — realizes an [`AdversarySpec`] for one member
//!   under any [`SyncAlgorithm`]: the legacy-equivalent strategies map
//!   onto the same automata the [`FaultKind`] gallery builds (so a
//!   strategy search starting from the gallery can never do worse), and
//!   the new strategies ([`AdversaryStrategy::Churn`], delay-only
//!   attacks) are realized generically.
//!
//! Scenario plumbing lives in [`mod@crate::assemble`]: adversary members
//! join the [`FaultPlan`](wl_sim::faults::FaultPlan) (unless the
//! strategy is delay-only — in-band delay scheduling is the
//! *environment's* prerogative under A3, so those members stay
//! designated-correct), and [`AdversarySpec`] rides
//! [`crate::ScenarioSpec`] through the cache, segment store, service
//! wire codec, and frontier driver unchanged. The search subsystem on
//! top is [`crate::search`].

use crate::algo::{AssemblyCtx, SyncAlgorithm};
use crate::spec::{AdversarySpec, AdversaryStrategy, FaultKind, ScenarioSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use wl_sim::delay::{DelayBounds, DelayModel};
use wl_sim::{Action, Actions, Automaton, Input, ProcessId};
use wl_time::{ClockTime, RealDur, RealTime};

/// What the adversary does to one directed communication link, fixed for
/// the whole execution (per-pair state, as threaded through
/// [`AdversaryDelay`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkPlan {
    /// Defer to the scenario's base delay model.
    Base,
    /// Ride the bottom of the A3 band: every message takes δ−ε.
    Floor,
    /// Ride the top of the A3 band: every message takes δ+ε.
    Ceiling,
}

/// A pluggable adversary strategy: the open-ended counterpart of the
/// closed [`AdversaryStrategy`] grammar.
///
/// A strategy instance is attached to **one** member process (multiple
/// members get independently seeded instances; coordination comes from
/// shared parameters, exactly like the gallery's colluding `PullApart`
/// attackers). Both hooks default to "do nothing", so a strategy
/// implements only the side it uses:
///
/// * [`Adversary::intercept`] — called after every activation of the
///   member's inner automaton with the actions it produced. The strategy
///   may drop, reorder, rewrite, or inject messages and timers. `rng` is
///   deterministically seeded from the [`AdversarySpec`] seed and the
///   member id, so executions remain pure functions of the spec.
/// * [`Adversary::link_plan`] — consulted once per directed link at
///   assembly time; [`LinkPlan::Floor`]/[`LinkPlan::Ceiling`] pin that
///   link to an edge of the A3 band. Delay choices outside the band are
///   unrepresentable by construction.
pub trait Adversary<M>: Send + fmt::Debug {
    /// Inspects and rewrites the member's outgoing actions.
    fn intercept(
        &mut self,
        member: ProcessId,
        phys_now: ClockTime,
        actions: &mut Vec<Action<M>>,
        rng: &mut StdRng,
    ) {
        let _ = (member, phys_now, actions, rng);
    }

    /// The delay plan for the directed link `from → to`.
    fn link_plan(&self, from: ProcessId, to: ProcessId) -> LinkPlan {
        let _ = (from, to);
        LinkPlan::Base
    }
}

/// The interposition wrapper realizing a behaviour [`Adversary`]: runs
/// the member's inner automaton and filters its outgoing actions through
/// the strategy.
pub struct AdversaryActor<M> {
    member: ProcessId,
    inner: Box<dyn Automaton<Msg = M>>,
    strategy: Box<dyn Adversary<M>>,
    rng: StdRng,
    scratch: Actions<M>,
}

impl<M> fmt::Debug for AdversaryActor<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdversaryActor")
            .field("member", &self.member)
            .field("strategy", &self.strategy)
            .finish()
    }
}

impl<M: Clone + fmt::Debug + Send + 'static> AdversaryActor<M> {
    /// Wraps `inner`, filtering its actions through `strategy`. The RNG
    /// is seeded deterministically from the adversary seed and the
    /// member id (SplitMix64 increment keeps distinct members
    /// decorrelated).
    #[must_use]
    pub fn new(
        member: ProcessId,
        inner: Box<dyn Automaton<Msg = M>>,
        strategy: Box<dyn Adversary<M>>,
        adversary_seed: u64,
    ) -> Self {
        let seed = adversary_seed
            .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(member.index() as u64 + 1));
        Self {
            member,
            inner,
            strategy,
            rng: StdRng::seed_from_u64(seed),
            scratch: Actions::new(),
        }
    }
}

impl<M: Clone + fmt::Debug + Send + 'static> Automaton for AdversaryActor<M> {
    type Msg = M;

    fn on_input(&mut self, input: Input<M>, phys_now: ClockTime, out: &mut Actions<M>) {
        self.inner.on_input(input, phys_now, &mut self.scratch);
        let mut acts: Vec<Action<M>> = self.scratch.drain().collect();
        self.strategy
            .intercept(self.member, phys_now, &mut acts, &mut self.rng);
        for act in acts {
            match act {
                Action::Broadcast(m) => out.broadcast(m),
                Action::Send { to, msg } => out.send(to, msg),
                Action::SetTimer { physical } => out.set_timer(physical),
                Action::NoteCorrection(c) => out.note_correction(c),
                Action::Annotate(s) => out.annotate(s),
            }
        }
    }

    fn initial_correction(&self) -> f64 {
        self.inner.initial_correction()
    }
}

/// Crash-recovery churn: the member alternates `up` seconds alive and
/// `down` seconds dead on its own physical clock. While dead it drops
/// every outgoing message (send-omission, like a crashed process) but
/// keeps its timers, so the inner automaton's state machine resumes
/// where it left off on recovery.
#[derive(Debug, Clone, Copy)]
pub struct ChurnStrategy {
    up: f64,
    down: f64,
}

impl ChurnStrategy {
    /// Alternate `up` seconds alive, `down` seconds dead. Both must be
    /// positive.
    ///
    /// # Panics
    ///
    /// Panics unless `up > 0` and `down > 0`.
    #[must_use]
    pub fn new(up: f64, down: f64) -> Self {
        assert!(up > 0.0 && down > 0.0, "churn phases must be positive");
        Self { up, down }
    }

    /// Whether the member is alive at this physical-clock reading.
    #[must_use]
    pub fn alive(&self, phys_now: ClockTime) -> bool {
        phys_now.as_secs().rem_euclid(self.up + self.down) < self.up
    }
}

impl<M> Adversary<M> for ChurnStrategy {
    fn intercept(
        &mut self,
        _member: ProcessId,
        phys_now: ClockTime,
        actions: &mut Vec<Action<M>>,
        _rng: &mut StdRng,
    ) {
        if !self.alive(phys_now) {
            actions.retain(|a| !matches!(a, Action::Broadcast(_) | Action::Send { .. }));
        }
    }
}

/// The delay-only strategies' link planner: members stay
/// protocol-correct and the adversary schedules delays.
///
/// * [`AdversaryStrategy::TargetedDelay`]: member→victim links ride the
///   ceiling, victim→member links the floor — the victim hears the
///   members as late as possible and is heard as early as possible,
///   skewing every mutual clock estimate in opposite directions.
/// * [`AdversaryStrategy::Partition`]: member↔member links ride the
///   ceiling, member↔non-member links the floor — a soft partition
///   entirely inside the admissible band.
#[derive(Debug, Clone)]
pub struct TargetedLinks {
    member: Vec<bool>,
    victim: Option<usize>,
}

impl TargetedLinks {
    /// Builds the planner for a delay-only strategy, or `None` when the
    /// strategy manipulates member behaviour instead of delays.
    #[must_use]
    pub fn from_spec(n: usize, adv: &AdversarySpec) -> Option<Self> {
        let mut member = vec![false; n];
        for m in &adv.members {
            assert!(m.index() < n, "adversary member {m} out of range");
            member[m.index()] = true;
        }
        match adv.strategy {
            AdversaryStrategy::TargetedDelay { victim } => {
                assert!(victim < n, "targeted-delay victim {victim} out of range");
                Some(Self {
                    member,
                    victim: Some(victim),
                })
            }
            AdversaryStrategy::Partition => Some(Self {
                member,
                victim: None,
            }),
            _ => None,
        }
    }

    /// The plan for the directed link `from → to` (inherent twin of the
    /// [`Adversary::link_plan`] hook, usable without a message type).
    #[must_use]
    pub fn plan(&self, from: ProcessId, to: ProcessId) -> LinkPlan {
        let fm = self.member[from.index()];
        let tm = self.member[to.index()];
        match self.victim {
            Some(v) => {
                if fm && to.index() == v {
                    LinkPlan::Ceiling
                } else if from.index() == v && tm {
                    LinkPlan::Floor
                } else {
                    LinkPlan::Base
                }
            }
            None => {
                if fm && tm {
                    LinkPlan::Ceiling
                } else if fm != tm {
                    LinkPlan::Floor
                } else {
                    LinkPlan::Base
                }
            }
        }
    }
}

impl<M> Adversary<M> for TargetedLinks {
    fn link_plan(&self, from: ProcessId, to: ProcessId) -> LinkPlan {
        self.plan(from, to)
    }
}

/// A [`DelayModel`] that pins adversary-chosen links to an edge of the
/// A3 band and defers every other link to the base model.
///
/// The per-pair plan is a dense `n × n` matrix fixed at assembly time
/// (the same shape as [`wl_sim::delay::PerPairDelay`]), so lookups are
/// branch-light and the wrapped model's RNG stream is consumed **only**
/// on deferred links — overridden links draw nothing, keeping the
/// execution a pure function of the spec.
pub struct AdversaryDelay {
    n: usize,
    plans: Vec<LinkPlan>,
    bounds: DelayBounds,
    base: Box<dyn DelayModel>,
}

impl fmt::Debug for AdversaryDelay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdversaryDelay")
            .field("n", &self.n)
            .field("bounds", &self.bounds)
            .field("base", &self.base)
            .finish()
    }
}

impl AdversaryDelay {
    /// Builds the wrapper from a link planner.
    #[must_use]
    pub fn new(
        n: usize,
        links: &TargetedLinks,
        bounds: DelayBounds,
        base: Box<dyn DelayModel>,
    ) -> Self {
        let plans = (0..n * n)
            .map(|i| links.plan(ProcessId(i / n), ProcessId(i % n)))
            .collect();
        Self {
            n,
            plans,
            bounds,
            base,
        }
    }
}

impl DelayModel for AdversaryDelay {
    fn delay(&mut self, from: ProcessId, to: ProcessId, t: RealTime, rng: &mut StdRng) -> RealDur {
        match self.plans[from.index() * self.n + to.index()] {
            LinkPlan::Base => self.base.delay(from, to, t, rng),
            LinkPlan::Floor => self.bounds.min_delay(),
            LinkPlan::Ceiling => self.bounds.max_delay(),
        }
    }
}

/// Wraps the scenario's base delay model with the adversary's link
/// schedule when the strategy is delay-only; behaviour strategies leave
/// the base model untouched.
pub(crate) fn wrap_delay_model(
    spec: &ScenarioSpec,
    base: Box<dyn DelayModel>,
) -> Box<dyn DelayModel> {
    let Some(adv) = &spec.adversary else {
        return base;
    };
    let n = spec.params.n;
    match TargetedLinks::from_spec(n, adv) {
        Some(links) => Box::new(AdversaryDelay::new(
            n,
            &links,
            spec.params.delay_bounds(),
            base,
        )),
        None => base,
    }
}

/// Realizes an [`AdversarySpec`] for one member under algorithm `A`:
/// the canonical construction behind
/// [`SyncAlgorithm::adversary_member`].
///
/// The legacy-equivalent strategies delegate to [`SyncAlgorithm::faulty`]
/// with the corresponding [`FaultKind`], building **exactly** the
/// automata the static gallery builds (pinned by the
/// `adversary_determinism` tests) — so each algorithm's supported set,
/// and its panic on unsupported kinds, carries over unchanged.
/// [`AdversaryStrategy::Churn`] is realized generically by wrapping the
/// algorithm's correct automaton in an [`AdversaryActor`] running
/// [`ChurnStrategy`]. Delay-only strategies build the member's *correct*
/// automaton (the attack lives in [`AdversaryDelay`]).
///
/// # Panics
///
/// Panics if the algorithm has no realization of the mapped fault kind.
pub fn canonical_member<A: SyncAlgorithm>(
    spec: &ScenarioSpec,
    id: ProcessId,
    adv: &AdversarySpec,
    ctx: &AssemblyCtx<'_>,
) -> Box<dyn Automaton<Msg = A::Msg>> {
    match adv.strategy {
        AdversaryStrategy::Crash { at } => A::faulty(spec, id, FaultKind::CrashAt(at), ctx),
        AdversaryStrategy::Mute => A::faulty(spec, id, FaultKind::Silent, ctx),
        AdversaryStrategy::Spam => A::faulty(spec, id, FaultKind::RoundSpam, ctx),
        AdversaryStrategy::PullApart { amplitude, high } => {
            let kind = if high {
                FaultKind::PullApartHigh(amplitude)
            } else {
                FaultKind::PullApart(amplitude)
            };
            A::faulty(spec, id, kind, ctx)
        }
        AdversaryStrategy::TwoFacedValue { amplitude } => {
            A::faulty(spec, id, FaultKind::TwoFaced(amplitude), ctx)
        }
        // Without an algorithm-specific override, a collusion group is a
        // set of two-faced attackers sharing one amplitude and split —
        // already in phase, since the mask depends only on the spec.
        AdversaryStrategy::Collude { amplitude } => {
            A::faulty(spec, id, FaultKind::TwoFaced(amplitude), ctx)
        }
        AdversaryStrategy::Churn { up, down } => Box::new(AdversaryActor::new(
            id,
            A::correct(spec, id, ctx),
            Box::new(ChurnStrategy::new(up, down)),
            adv.seed,
        )),
        AdversaryStrategy::TargetedDelay { .. } | AdversaryStrategy::Partition => {
            A::correct(spec, id, ctx)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Beacon;

    impl Automaton for Beacon {
        type Msg = u32;
        fn on_input(&mut self, _i: Input<u32>, phys_now: ClockTime, out: &mut Actions<u32>) {
            out.send(ProcessId(1), 7);
            out.set_timer(phys_now + wl_time::ClockDur::from_secs(1.0));
        }
    }

    #[test]
    fn churn_drops_sends_only_while_down() {
        let strat = ChurnStrategy::new(2.0, 1.0);
        assert!(strat.alive(ClockTime::from_secs(0.5)));
        assert!(strat.alive(ClockTime::from_secs(1.9)));
        assert!(!strat.alive(ClockTime::from_secs(2.5)));
        assert!(strat.alive(ClockTime::from_secs(3.1)));

        let mut actor = AdversaryActor::new(ProcessId(0), Box::new(Beacon), Box::new(strat), 9);
        let mut out = Actions::new();
        actor.on_input(Input::Timer, ClockTime::from_secs(0.5), &mut out);
        assert_eq!(out.len(), 2, "alive: send + timer pass through");
        let mut out = Actions::new();
        actor.on_input(Input::Timer, ClockTime::from_secs(2.5), &mut out);
        let acts: Vec<_> = out.drain().collect();
        assert_eq!(acts.len(), 1, "down: send dropped, timer kept");
        assert!(matches!(acts[0], Action::SetTimer { .. }));
    }

    #[test]
    fn targeted_links_plan_matrix() {
        let adv = AdversarySpec::new(
            vec![ProcessId(0)],
            AdversaryStrategy::TargetedDelay { victim: 2 },
        );
        let links = TargetedLinks::from_spec(4, &adv).unwrap();
        assert_eq!(links.plan(ProcessId(0), ProcessId(2)), LinkPlan::Ceiling);
        assert_eq!(links.plan(ProcessId(2), ProcessId(0)), LinkPlan::Floor);
        assert_eq!(links.plan(ProcessId(0), ProcessId(1)), LinkPlan::Base);
        assert_eq!(links.plan(ProcessId(1), ProcessId(2)), LinkPlan::Base);
    }

    #[test]
    fn partition_links_split_members_from_rest() {
        let adv = AdversarySpec::new(
            vec![ProcessId(0), ProcessId(1)],
            AdversaryStrategy::Partition,
        );
        let links = TargetedLinks::from_spec(4, &adv).unwrap();
        assert_eq!(links.plan(ProcessId(0), ProcessId(1)), LinkPlan::Ceiling);
        assert_eq!(links.plan(ProcessId(0), ProcessId(3)), LinkPlan::Floor);
        assert_eq!(links.plan(ProcessId(3), ProcessId(0)), LinkPlan::Floor);
        assert_eq!(links.plan(ProcessId(2), ProcessId(3)), LinkPlan::Base);
    }

    #[test]
    fn behaviour_strategies_have_no_link_planner() {
        let adv = AdversarySpec::new(vec![ProcessId(0)], AdversaryStrategy::Mute);
        assert!(TargetedLinks::from_spec(4, &adv).is_none());
    }

    #[test]
    fn adversary_delay_stays_in_band_and_skips_base_rng_on_overrides() {
        use wl_sim::delay::UniformDelay;
        let bounds = DelayBounds::new(RealDur::from_millis(10.0), RealDur::from_millis(1.0));
        let adv = AdversarySpec::new(
            vec![ProcessId(0)],
            AdversaryStrategy::TargetedDelay { victim: 1 },
        );
        let links = TargetedLinks::from_spec(3, &adv).unwrap();
        let mut model = AdversaryDelay::new(3, &links, bounds, Box::new(UniformDelay::new(bounds)));
        let mut rng = StdRng::seed_from_u64(3);
        let d = model.delay(ProcessId(0), ProcessId(1), RealTime::ZERO, &mut rng);
        assert_eq!(d, bounds.max_delay());
        let d = model.delay(ProcessId(1), ProcessId(0), RealTime::ZERO, &mut rng);
        assert_eq!(d, bounds.min_delay());
        let d = model.delay(ProcessId(2), ProcessId(1), RealTime::ZERO, &mut rng);
        assert!(bounds.contains(d));
    }
}
