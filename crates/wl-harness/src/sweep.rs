//! [`SweepRunner`]: fan a grid of scenarios across threads.
//!
//! Experiment binaries used to iterate their parameter grids serially;
//! on a multi-core box most of the machine idled. The runner executes any
//! per-item job over a work-stealing thread pool (`std::thread::scope` —
//! no external dependency) while guaranteeing that **results are a pure
//! function of the input grid**: output order matches input order, and
//! every scenario's randomness comes from its own spec seed, never from
//! which worker ran it. `threads = 1` degenerates to the serial loop, so
//! "parallel equals serial" is testable (`sweep_thread_independence`).
//!
//! Seeds for grid points come from [`derive_seed`], a SplitMix64 hop from
//! a base seed — decorrelated streams per scenario without coordination.

use crate::algo::SyncAlgorithm;
use crate::assemble::assemble;
use crate::run::{run_summary, RunSummary};
use crate::spec::ScenarioSpec;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use wl_analysis::stats::Online;
use wl_sim::SimStats;

/// Derives the seed of grid point `idx` from a base seed (SplitMix64).
///
/// Adjacent indices give decorrelated streams, and the mapping is stable
/// across machines and sweep widths — a scenario's identity is
/// `(base, idx)`, not its position in some thread's work queue.
#[must_use]
pub fn derive_seed(base: u64, idx: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(idx.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs per-scenario jobs over a scoped thread pool, deterministically.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    threads: usize,
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepRunner {
    /// A runner sized to the machine (`available_parallelism`).
    #[must_use]
    pub fn new() -> Self {
        Self { threads: 0 }
    }

    /// A single-threaded runner (the legacy serial loop).
    #[must_use]
    pub fn serial() -> Self {
        Self { threads: 1 }
    }

    /// A runner with an explicit worker count (`0` = machine-sized).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self { threads }
    }

    /// The number of workers this runner will spawn.
    ///
    /// Machine-sized runners (`threads == 0`) honour the
    /// `WL_SWEEP_THREADS` environment variable before falling back to
    /// `available_parallelism()` — operational escape hatch for
    /// containers whose advertised core count does not match their
    /// actual CPU bandwidth. Explicit counts are never overridden.
    #[must_use]
    pub fn threads(&self) -> usize {
        if self.threads != 0 {
            return self.threads;
        }
        if let Some(n) = std::env::var("WL_SWEEP_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            return n;
        }
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    }

    /// Maps `job` over `items`, in parallel, preserving input order.
    ///
    /// `job(i, &items[i])` must be a pure function of its arguments for
    /// the thread-count-independence guarantee to mean anything; jobs that
    /// assemble and run a [`ScenarioSpec`] are (all randomness flows from
    /// the spec seed).
    ///
    /// # Panics
    ///
    /// Propagates panics from `job`.
    pub fn run<T, R, F>(&self, items: Vec<T>, job: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let threads = self.threads().min(items.len().max(1));
        if threads <= 1 {
            return items.iter().enumerate().map(|(i, t)| job(i, t)).collect();
        }

        let next = AtomicUsize::new(0);
        let n_items = items.len();
        let mut slots: Vec<Option<R>> = (0..n_items).map(|_| None).collect();
        std::thread::scope(|scope| {
            let items = &items;
            let job = &job;
            let next = &next;
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n_items {
                                break;
                            }
                            local.push((i, job(i, &items[i])));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                for (i, r) in handle.join().expect("sweep worker panicked") {
                    slots[i] = Some(r);
                }
            }
        });
        slots
            .into_iter()
            .map(|r| r.expect("every grid index ran exactly once"))
            .collect()
    }

    /// Assembles and runs every spec under algorithm `A`, summarizing each
    /// with [`run_summary`] into a [`SweepOutcome`].
    #[must_use]
    pub fn sweep<A: SyncAlgorithm>(&self, specs: Vec<ScenarioSpec>) -> Vec<SweepOutcome> {
        self.run(specs, |index, spec| run_point::<A>(index, spec))
    }

    /// [`sweep`](SweepRunner::sweep) with memoization: grid points whose
    /// spec is already in `cache` under algorithm `A` are served from it
    /// without assembling or simulating anything.
    ///
    /// Executions are pure functions of the spec, so a hit is exact, not
    /// approximate — lookups go through the 64-bit
    /// [`ScenarioSpec::content_hash`], and every hit is confirmed by
    /// comparing the stored spec for equality, so a hash collision
    /// degrades to a miss rather than a wrong result. Repeated
    /// experiment grids (tweak one axis, re-run) only pay for the points
    /// that changed; results still arrive in grid order with
    /// grid-relative indices.
    #[must_use]
    pub fn sweep_cached<A: SyncAlgorithm>(
        &self,
        specs: Vec<ScenarioSpec>,
        cache: &SweepCache,
    ) -> Vec<SweepOutcome> {
        self.run(specs, |index, spec| {
            let key = (spec.content_hash(), A::NAME);
            // Canonical form on both sides: `drift: None` and its explicit
            // default are the same execution, and must hit each other.
            let canonical = spec.canonical();
            if let Some(mut hit) = cache.get(&key, &canonical) {
                hit.index = index;
                return hit;
            }
            let outcome = run_point::<A>(index, spec);
            cache.insert(key, canonical, outcome.clone());
            outcome
        })
    }
}

/// Executes one grid point — the single per-point body shared by
/// [`SweepRunner::sweep`] and [`SweepRunner::sweep_cached`], so the
/// cached and uncached paths cannot diverge.
fn run_point<A: SyncAlgorithm>(index: usize, spec: &ScenarioSpec) -> SweepOutcome {
    let t_end = spec.t_end.as_secs();
    let summary = run_summary(assemble::<A>(spec), t_end);
    SweepOutcome::new(index, spec.seed, &summary)
}

/// Opt-in memo of per-scenario sweep results, keyed by
/// `(ScenarioSpec::content_hash, algorithm name)`.
///
/// Shareable across sweeps and threads (`&SweepCache` is all
/// [`SweepRunner::sweep_cached`] needs). The first step of the ROADMAP's
/// incremental-sweep item: repeated grid runs skip unchanged points.
#[derive(Debug, Default)]
pub struct SweepCache {
    /// Value holds the spec that produced the outcome, so hash
    /// collisions are detected instead of served.
    map: Mutex<HashMap<CacheKey, CacheEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// `(spec content hash, algorithm name)`.
type CacheKey = (u64, &'static str);
/// The spec that produced the outcome (verified on every hit) plus the
/// memoized outcome.
type CacheEntry = (ScenarioSpec, SweepOutcome);

impl SweepCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn get(&self, key: &CacheKey, spec: &ScenarioSpec) -> Option<SweepOutcome> {
        let found = self
            .map
            .lock()
            .expect("sweep cache poisoned")
            .get(key)
            .filter(|(cached_spec, _)| cached_spec == spec)
            .map(|(_, outcome)| outcome.clone());
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    fn insert(&self, key: CacheKey, spec: ScenarioSpec, outcome: SweepOutcome) {
        self.map
            .lock()
            .expect("sweep cache poisoned")
            .insert(key, (spec, outcome));
    }

    /// Number of scenarios currently memoized.
    ///
    /// # Panics
    ///
    /// Panics if a previous cache user panicked mid-operation.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.lock().expect("sweep cache poisoned").len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed and had to simulate.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// One grid point's results, in grid order.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Position in the input grid.
    pub index: usize,
    /// The spec seed that produced this outcome.
    pub seed: u64,
    /// Steady-state skew (second half of the agreement window).
    pub steady_skew: f64,
    /// Worst skew over the whole agreement window.
    pub max_skew: f64,
    /// Whether Theorem 16's γ bound held.
    pub agreement_holds: bool,
    /// Largest observed |ADJ|.
    pub max_abs_adjustment: f64,
    /// Raw simulator counters.
    pub stats: SimStats,
}

impl SweepOutcome {
    fn new(index: usize, seed: u64, summary: &RunSummary) -> Self {
        Self {
            index,
            seed,
            steady_skew: summary.agreement.steady_skew,
            max_skew: summary.agreement.max_skew,
            agreement_holds: summary.agreement.holds,
            max_abs_adjustment: summary.adjustments.max_abs,
            stats: summary.stats,
        }
    }
}

/// Streaming aggregation of sweep outcomes into `wl-analysis` collectors.
#[derive(Debug, Default)]
pub struct SweepSummary {
    /// Steady-state skew across the grid.
    pub steady_skew: Online,
    /// Worst-case skew across the grid.
    pub max_skew: Online,
    /// |ADJ| maxima across the grid.
    pub max_abs_adjustment: Online,
    /// Total events simulated.
    pub events: u64,
    /// Grid points where Theorem 16 held.
    pub agreement_held: usize,
    /// Grid points aggregated.
    pub count: usize,
}

impl SweepSummary {
    /// Aggregates a slice of outcomes.
    #[must_use]
    pub fn collect(outcomes: &[SweepOutcome]) -> Self {
        let mut s = Self::default();
        for o in outcomes {
            s.push(o);
        }
        s
    }

    /// Adds one outcome.
    pub fn push(&mut self, o: &SweepOutcome) {
        self.steady_skew.push(o.steady_skew);
        self.max_skew.push(o.max_skew);
        self.max_abs_adjustment.push(o.max_abs_adjustment);
        self.events += o.stats.events_delivered;
        self.agreement_held += usize::from(o.agreement_holds);
        self.count += 1;
    }

    /// Whether agreement held at every grid point.
    #[must_use]
    pub fn all_hold(&self) -> bool {
        self.agreement_held == self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Maintenance;
    use wl_core::Params;
    use wl_time::RealTime;

    fn grid(count: usize) -> Vec<ScenarioSpec> {
        let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap();
        (0..count)
            .map(|i| {
                ScenarioSpec::new(params.clone())
                    .seed(derive_seed(7, i as u64))
                    .t_end(RealTime::from_secs(4.0))
            })
            .collect()
    }

    #[test]
    fn derive_seed_is_stable_and_spread() {
        assert_eq!(derive_seed(1, 0), derive_seed(1, 0));
        assert_ne!(derive_seed(1, 0), derive_seed(1, 1));
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }

    #[test]
    fn run_preserves_input_order() {
        let doubled = SweepRunner::with_threads(4).run(vec![1, 2, 3, 4, 5], |_, x| x * 2);
        assert_eq!(doubled, vec![2, 4, 6, 8, 10]);
    }

    #[test]
    fn sweep_outcomes_independent_of_thread_count() {
        let serial = SweepRunner::serial().sweep::<Maintenance>(grid(6));
        let wide = SweepRunner::with_threads(4).sweep::<Maintenance>(grid(6));
        assert_eq!(serial.len(), wide.len());
        for (a, b) in serial.iter().zip(&wide) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.stats, b.stats);
            assert!((a.steady_skew - b.steady_skew).abs() == 0.0);
        }
    }

    #[test]
    fn summary_aggregates() {
        let outcomes = SweepRunner::new().sweep::<Maintenance>(grid(4));
        let summary = SweepSummary::collect(&outcomes);
        assert_eq!(summary.count, 4);
        assert!(summary.all_hold());
        assert!(summary.steady_skew.mean() > 0.0);
        assert!(summary.events > 0);
    }

    #[test]
    fn empty_grid_is_fine() {
        let out = SweepRunner::new().run(Vec::<u32>::new(), |_, x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn cached_sweep_matches_uncached() {
        let cache = SweepCache::new();
        let cold = SweepRunner::serial().sweep_cached::<Maintenance>(grid(4), &cache);
        let plain = SweepRunner::serial().sweep::<Maintenance>(grid(4));
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 4);
        for (a, b) in cold.iter().zip(&plain) {
            assert_eq!(a.stats, b.stats);
            assert!((a.steady_skew - b.steady_skew).abs() == 0.0);
        }
        // Second run: all hits, same results, grid indices remapped.
        let warm = SweepRunner::with_threads(3).sweep_cached::<Maintenance>(grid(4), &cache);
        assert_eq!(cache.hits(), 4);
        for (a, b) in warm.iter().zip(&plain) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.stats, b.stats);
        }
    }

    #[test]
    fn cache_hits_across_drift_canonicalization() {
        // `drift: None` and its explicit default assemble identically and
        // hash identically — they must hit each other in the cache.
        let cache = SweepCache::new();
        let implicit = grid(2);
        let explicit: Vec<ScenarioSpec> = implicit
            .iter()
            .map(|s| s.clone().drift(s.effective_drift()))
            .collect();
        let a = SweepRunner::serial().sweep_cached::<Maintenance>(implicit, &cache);
        let b = SweepRunner::serial().sweep_cached::<Maintenance>(explicit, &cache);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.len(), 2);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.stats, y.stats);
        }
    }

    #[test]
    fn cache_distinguishes_algorithms_and_specs() {
        use crate::LmCnv;
        let cache = SweepCache::new();
        let _ = SweepRunner::serial().sweep_cached::<Maintenance>(grid(2), &cache);
        // Same specs, different algorithm: no hits.
        let _ = SweepRunner::serial().sweep_cached::<LmCnv>(grid(2), &cache);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.len(), 4);
        // A changed grid point misses; unchanged ones hit.
        let mut shifted = grid(2);
        shifted[1] = shifted[1].clone().seed(0xDEAD);
        let _ = SweepRunner::serial().sweep_cached::<Maintenance>(shifted, &cache);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 5);
    }
}
