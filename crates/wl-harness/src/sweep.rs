//! [`SweepRunner`]: fan a grid of scenarios across threads.
//!
//! Experiment binaries used to iterate their parameter grids serially;
//! on a multi-core box most of the machine idled. The runner executes any
//! per-item job over a work-stealing thread pool (`std::thread::scope` —
//! no external dependency) while guaranteeing that **results are a pure
//! function of the input grid**: output order matches input order, and
//! every scenario's randomness comes from its own spec seed, never from
//! which worker ran it. `threads = 1` degenerates to the serial loop, so
//! "parallel equals serial" is testable (`sweep_thread_independence`).
//!
//! Seeds for grid points come from [`derive_seed`], a SplitMix64 hop from
//! a base seed — decorrelated streams per scenario without coordination.

use crate::algo::SyncAlgorithm;
use crate::assemble::assemble;
use crate::run::{run_summary, RunSummary};
use crate::spec::ScenarioSpec;
use std::sync::atomic::{AtomicUsize, Ordering};
use wl_analysis::stats::Online;
use wl_sim::SimStats;

/// Derives the seed of grid point `idx` from a base seed (SplitMix64).
///
/// Adjacent indices give decorrelated streams, and the mapping is stable
/// across machines and sweep widths — a scenario's identity is
/// `(base, idx)`, not its position in some thread's work queue.
#[must_use]
pub fn derive_seed(base: u64, idx: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(idx.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs per-scenario jobs over a scoped thread pool, deterministically.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    threads: usize,
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepRunner {
    /// A runner sized to the machine (`available_parallelism`).
    #[must_use]
    pub fn new() -> Self {
        Self { threads: 0 }
    }

    /// A single-threaded runner (the legacy serial loop).
    #[must_use]
    pub fn serial() -> Self {
        Self { threads: 1 }
    }

    /// A runner with an explicit worker count (`0` = machine-sized).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self { threads }
    }

    /// The number of workers this runner will spawn.
    ///
    /// Machine-sized runners (`threads == 0`) honour the
    /// `WL_SWEEP_THREADS` environment variable before falling back to
    /// `available_parallelism()` — operational escape hatch for
    /// containers whose advertised core count does not match their
    /// actual CPU bandwidth. Explicit counts are never overridden.
    #[must_use]
    pub fn threads(&self) -> usize {
        if self.threads != 0 {
            return self.threads;
        }
        if let Some(n) = std::env::var("WL_SWEEP_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            return n;
        }
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    }

    /// Maps `job` over `items`, in parallel, preserving input order.
    ///
    /// `job(i, &items[i])` must be a pure function of its arguments for
    /// the thread-count-independence guarantee to mean anything; jobs that
    /// assemble and run a [`ScenarioSpec`] are (all randomness flows from
    /// the spec seed).
    ///
    /// # Panics
    ///
    /// Propagates panics from `job`.
    pub fn run<T, R, F>(&self, items: Vec<T>, job: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let threads = self.threads().min(items.len().max(1));
        if threads <= 1 {
            return items.iter().enumerate().map(|(i, t)| job(i, t)).collect();
        }

        let next = AtomicUsize::new(0);
        let n_items = items.len();
        let mut slots: Vec<Option<R>> = (0..n_items).map(|_| None).collect();
        std::thread::scope(|scope| {
            let items = &items;
            let job = &job;
            let next = &next;
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n_items {
                                break;
                            }
                            local.push((i, job(i, &items[i])));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                for (i, r) in handle.join().expect("sweep worker panicked") {
                    slots[i] = Some(r);
                }
            }
        });
        slots
            .into_iter()
            .map(|r| r.expect("every grid index ran exactly once"))
            .collect()
    }

    /// Assembles and runs every spec under algorithm `A`, summarizing each
    /// with [`run_summary`] into a [`SweepOutcome`].
    #[must_use]
    pub fn sweep<A: SyncAlgorithm>(&self, specs: Vec<ScenarioSpec>) -> Vec<SweepOutcome> {
        self.run(specs, |index, spec| {
            let t_end = spec.t_end.as_secs();
            let summary = run_summary(assemble::<A>(spec), t_end);
            SweepOutcome::new(index, spec.seed, &summary)
        })
    }
}

/// One grid point's results, in grid order.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Position in the input grid.
    pub index: usize,
    /// The spec seed that produced this outcome.
    pub seed: u64,
    /// Steady-state skew (second half of the agreement window).
    pub steady_skew: f64,
    /// Worst skew over the whole agreement window.
    pub max_skew: f64,
    /// Whether Theorem 16's γ bound held.
    pub agreement_holds: bool,
    /// Largest observed |ADJ|.
    pub max_abs_adjustment: f64,
    /// Raw simulator counters.
    pub stats: SimStats,
}

impl SweepOutcome {
    fn new(index: usize, seed: u64, summary: &RunSummary) -> Self {
        Self {
            index,
            seed,
            steady_skew: summary.agreement.steady_skew,
            max_skew: summary.agreement.max_skew,
            agreement_holds: summary.agreement.holds,
            max_abs_adjustment: summary.adjustments.max_abs,
            stats: summary.stats,
        }
    }
}

/// Streaming aggregation of sweep outcomes into `wl-analysis` collectors.
#[derive(Debug, Default)]
pub struct SweepSummary {
    /// Steady-state skew across the grid.
    pub steady_skew: Online,
    /// Worst-case skew across the grid.
    pub max_skew: Online,
    /// |ADJ| maxima across the grid.
    pub max_abs_adjustment: Online,
    /// Total events simulated.
    pub events: u64,
    /// Grid points where Theorem 16 held.
    pub agreement_held: usize,
    /// Grid points aggregated.
    pub count: usize,
}

impl SweepSummary {
    /// Aggregates a slice of outcomes.
    #[must_use]
    pub fn collect(outcomes: &[SweepOutcome]) -> Self {
        let mut s = Self::default();
        for o in outcomes {
            s.push(o);
        }
        s
    }

    /// Adds one outcome.
    pub fn push(&mut self, o: &SweepOutcome) {
        self.steady_skew.push(o.steady_skew);
        self.max_skew.push(o.max_skew);
        self.max_abs_adjustment.push(o.max_abs_adjustment);
        self.events += o.stats.events_delivered;
        self.agreement_held += usize::from(o.agreement_holds);
        self.count += 1;
    }

    /// Whether agreement held at every grid point.
    #[must_use]
    pub fn all_hold(&self) -> bool {
        self.agreement_held == self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Maintenance;
    use wl_core::Params;
    use wl_time::RealTime;

    fn grid(count: usize) -> Vec<ScenarioSpec> {
        let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap();
        (0..count)
            .map(|i| {
                ScenarioSpec::new(params.clone())
                    .seed(derive_seed(7, i as u64))
                    .t_end(RealTime::from_secs(4.0))
            })
            .collect()
    }

    #[test]
    fn derive_seed_is_stable_and_spread() {
        assert_eq!(derive_seed(1, 0), derive_seed(1, 0));
        assert_ne!(derive_seed(1, 0), derive_seed(1, 1));
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }

    #[test]
    fn run_preserves_input_order() {
        let doubled = SweepRunner::with_threads(4).run(vec![1, 2, 3, 4, 5], |_, x| x * 2);
        assert_eq!(doubled, vec![2, 4, 6, 8, 10]);
    }

    #[test]
    fn sweep_outcomes_independent_of_thread_count() {
        let serial = SweepRunner::serial().sweep::<Maintenance>(grid(6));
        let wide = SweepRunner::with_threads(4).sweep::<Maintenance>(grid(6));
        assert_eq!(serial.len(), wide.len());
        for (a, b) in serial.iter().zip(&wide) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.stats, b.stats);
            assert!((a.steady_skew - b.steady_skew).abs() == 0.0);
        }
    }

    #[test]
    fn summary_aggregates() {
        let outcomes = SweepRunner::new().sweep::<Maintenance>(grid(4));
        let summary = SweepSummary::collect(&outcomes);
        assert_eq!(summary.count, 4);
        assert!(summary.all_hold());
        assert!(summary.steady_skew.mean() > 0.0);
        assert!(summary.events > 0);
    }

    #[test]
    fn empty_grid_is_fine() {
        let out = SweepRunner::new().run(Vec::<u32>::new(), |_, x| *x);
        assert!(out.is_empty());
    }
}
