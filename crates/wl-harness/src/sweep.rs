//! [`SweepRunner`]: fan a grid of scenarios across threads — and shards.
//!
//! Experiment binaries used to iterate their parameter grids serially;
//! on a multi-core box most of the machine idled. The runner executes any
//! per-item job over a work-stealing thread pool (`std::thread::scope` —
//! no external dependency) while guaranteeing that **results are a pure
//! function of the input grid**: output order matches input order, and
//! every scenario's randomness comes from its own spec seed, never from
//! which worker ran it. `threads = 1` degenerates to the serial loop, so
//! "parallel equals serial" is testable (`sweep_thread_independence`).
//!
//! Seeds for grid points come from [`derive_seed`], a SplitMix64 hop from
//! a base seed — decorrelated streams per scenario without coordination.
//! Because the seed of grid point `i` depends only on `(base, i)`, a grid
//! can also be split across *processes and machines*: [`Shard`] names a
//! `k/N` slice, [`SweepRunner::sweep_sharded`] runs it, and
//! [`merge_sharded`] reassembles the full grid with equality-confirmed
//! conflict detection. Persist results across runs with
//! [`crate::cache::SweepStore`] (see `docs/sweeps.md`).

use crate::algo::SyncAlgorithm;
use crate::assemble::{assemble, assemble_enum, assemble_mono};
use crate::cache::canon_string;
use crate::run::{
    run_capture, run_capture_enum, run_capture_mono, run_summary, run_summary_enum,
    run_summary_mono, RunSummary,
};
use crate::service::ServiceSweepCache;
use crate::sketch::SkewSketch;
use crate::spec::ScenarioSpec;
use std::collections::HashMap;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use wl_analysis::stats::Online;
use wl_sim::{Automaton, SimStats};

/// Derives the seed of grid point `idx` from a base seed (SplitMix64).
///
/// Adjacent indices give decorrelated streams, and the mapping is stable
/// across machines and sweep widths — a scenario's identity is
/// `(base, idx)`, not its position in some thread's work queue. This is
/// also what makes [sharding](Shard) sound: every shard derives the same
/// seed for the same grid index, on any machine.
#[must_use]
pub fn derive_seed(base: u64, idx: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(idx.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A [`SyncAlgorithm`] whose tag type is itself the correct-process
/// [`Automaton`] over its own message type — the pattern every algorithm
/// in this workspace follows (blanket-implemented; nothing to do).
///
/// [`SweepRunner`]'s sweep methods require it so they can take the
/// monomorphized `Vec<A>` fleet fast path on qualifying grid points; see
/// [`crate::assemble_mono`].
pub trait SweepAlgorithm: SyncAlgorithm + Automaton<Msg = <Self as SyncAlgorithm>::Msg> {}

impl<T> SweepAlgorithm for T where T: SyncAlgorithm + Automaton<Msg = <T as SyncAlgorithm>::Msg> {}

/// A `k/N` slice of a sweep grid: shard `k` owns the grid indices
/// congruent to `k` mod `N`.
///
/// Sharding is machine-independent: ownership depends only on the grid
/// index, and grid-point seeds depend only on `(base, index)` (see
/// [`derive_seed`]), so N processes — on N different machines — each
/// running [`SweepRunner::sweep_sharded`] over the *same* grid cover it
/// exactly once, and [`merge_sharded`] reassembles the unsharded result
/// bit-for-bit.
///
/// Parses from the conventional CLI form `"k/N"`:
///
/// ```
/// use wl_harness::Shard;
///
/// let shard: Shard = "1/4".parse().unwrap();
/// assert_eq!((shard.index(), shard.count()), (1, 4));
/// assert!(shard.owns(5) && !shard.owns(6));
/// assert_eq!(Shard::full(), "0/1".parse().unwrap());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    index: u32,
    count: u32,
}

impl Shard {
    /// Shard `index` of `count` total.
    ///
    /// # Panics
    ///
    /// Panics unless `index < count` (which also forces `count >= 1`).
    #[must_use]
    pub fn new(index: u32, count: u32) -> Self {
        assert!(index < count, "shard index {index} out of range 0..{count}");
        Self { index, count }
    }

    /// The trivial shard `0/1`: owns every grid point.
    #[must_use]
    pub fn full() -> Self {
        Self::new(0, 1)
    }

    /// This shard's zero-based index.
    #[must_use]
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Total number of shards the grid is split into.
    #[must_use]
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Whether this shard owns grid index `i`.
    #[must_use]
    pub fn owns(&self, i: usize) -> bool {
        i as u64 % u64::from(self.count) == u64::from(self.index)
    }
}

impl std::fmt::Display for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

impl FromStr for Shard {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (k, n) = s
            .split_once('/')
            .ok_or_else(|| format!("shard spec `{s}` is not of the form k/N"))?;
        let index: u32 = k
            .parse()
            .map_err(|_| format!("shard index `{k}` is not a number"))?;
        let count: u32 = n
            .parse()
            .map_err(|_| format!("shard count `{n}` is not a number"))?;
        if index >= count {
            return Err(format!("shard index {index} out of range 0..{count}"));
        }
        Ok(Self { index, count })
    }
}

/// Why [`merge_sharded`] refused to combine shard outputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardMergeError {
    /// No shard produced grid index `index` — the shard set does not
    /// cover the grid (wrong `N`, or a missing shard).
    Missing {
        /// The uncovered grid index.
        index: usize,
    },
    /// Two shards produced grid index `index` with different results —
    /// the executions were not deterministic across the shards
    /// (mismatched engine versions, or a corrupted input).
    Conflict {
        /// The doubly-covered, disagreeing grid index.
        index: usize,
    },
    /// A shard produced an outcome for an index beyond the grid — its
    /// output belongs to a *different* (larger) grid than the one being
    /// merged; check the `grid_len`/`--grid` arguments line up.
    OutOfRange {
        /// The offending outcome's grid index.
        index: usize,
        /// The length of the grid being merged.
        grid_len: usize,
    },
}

impl std::fmt::Display for ShardMergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Missing { index } => {
                write!(
                    f,
                    "shard merge: grid index {index} missing from every shard"
                )
            }
            Self::Conflict { index } => write!(
                f,
                "shard merge: grid index {index} has conflicting results across shards"
            ),
            Self::OutOfRange { index, grid_len } => write!(
                f,
                "shard merge: outcome index {index} exceeds the {grid_len}-point grid — \
                 shard outputs come from a different grid"
            ),
        }
    }
}

impl std::error::Error for ShardMergeError {}

/// Combines per-shard outcome slices back into the full grid, in grid
/// order.
///
/// Duplicated grid points are tolerated **only** when the duplicates are
/// bit-identical ([`SweepOutcome::bit_identical`]) — equality-confirmed
/// conflict detection, the same discipline the cache applies. Any
/// disagreement or gap is an error, never a silent pick-one.
///
/// # Errors
///
/// [`ShardMergeError::Missing`] if some grid index has no outcome;
/// [`ShardMergeError::Conflict`] if two shards disagree on one.
pub fn merge_sharded(
    parts: &[Vec<SweepOutcome>],
    grid_len: usize,
) -> Result<Vec<SweepOutcome>, ShardMergeError> {
    let mut slots: Vec<Option<&SweepOutcome>> = vec![None; grid_len];
    for outcome in parts.iter().flatten() {
        let slot = slots
            .get_mut(outcome.index)
            .ok_or(ShardMergeError::OutOfRange {
                index: outcome.index,
                grid_len,
            })?;
        match slot {
            Some(existing) if !existing.bit_identical(outcome) => {
                return Err(ShardMergeError::Conflict {
                    index: outcome.index,
                })
            }
            _ => *slot = Some(outcome),
        }
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(index, slot)| slot.cloned().ok_or(ShardMergeError::Missing { index }))
        .collect()
}

/// Runs per-scenario jobs over a scoped thread pool, deterministically.
///
/// # Examples
///
/// A cached sweep: the second run serves every grid point from the cache
/// without executing a single simulation.
///
/// ```
/// use wl_core::Params;
/// use wl_harness::{derive_seed, Maintenance, ScenarioSpec, SweepCache, SweepRunner};
/// use wl_time::RealTime;
///
/// let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap();
/// let grid: Vec<ScenarioSpec> = (0..3)
///     .map(|i| {
///         ScenarioSpec::new(params.clone())
///             .seed(derive_seed(9, i))
///             .t_end(RealTime::from_secs(2.0))
///     })
///     .collect();
///
/// let cache = SweepCache::new();
/// let cold = SweepRunner::new().sweep_cached::<Maintenance>(grid.clone(), &cache);
/// let warm = SweepRunner::new().sweep_cached::<Maintenance>(grid, &cache);
/// assert_eq!((cache.hits(), cache.misses()), (3, 3));
/// assert!(cold.iter().zip(&warm).all(|(a, b)| a.bit_identical(b)));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    threads: usize,
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepRunner {
    /// A runner sized to the machine (`available_parallelism`).
    #[must_use]
    pub fn new() -> Self {
        Self { threads: 0 }
    }

    /// A single-threaded runner (the legacy serial loop).
    #[must_use]
    pub fn serial() -> Self {
        Self { threads: 1 }
    }

    /// A runner with an explicit worker count (`0` = machine-sized).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self { threads }
    }

    /// The number of workers this runner will spawn.
    ///
    /// Machine-sized runners (`threads == 0`) honour the
    /// `WL_SWEEP_THREADS` environment variable before falling back to
    /// `available_parallelism()` — operational escape hatch for
    /// containers whose advertised core count does not match their
    /// actual CPU bandwidth. Explicit counts are never overridden.
    #[must_use]
    pub fn threads(&self) -> usize {
        if self.threads != 0 {
            return self.threads;
        }
        if let Some(n) = std::env::var("WL_SWEEP_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            return n;
        }
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    }

    /// Maps `job` over `items`, in parallel, preserving input order.
    ///
    /// `job(i, &items[i])` must be a pure function of its arguments for
    /// the thread-count-independence guarantee to mean anything; jobs that
    /// assemble and run a [`ScenarioSpec`] are (all randomness flows from
    /// the spec seed).
    ///
    /// # Panics
    ///
    /// Propagates panics from `job`.
    pub fn run<T, R, F>(&self, items: Vec<T>, job: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let threads = self.threads().min(items.len().max(1));
        if threads <= 1 {
            return items.iter().enumerate().map(|(i, t)| job(i, t)).collect();
        }

        let next = AtomicUsize::new(0);
        let n_items = items.len();
        let mut slots: Vec<Option<R>> = (0..n_items).map(|_| None).collect();
        std::thread::scope(|scope| {
            let items = &items;
            let job = &job;
            let next = &next;
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n_items {
                                break;
                            }
                            local.push((i, job(i, &items[i])));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                for (i, r) in handle.join().expect("sweep worker panicked") {
                    slots[i] = Some(r);
                }
            }
        });
        slots
            .into_iter()
            .map(|r| r.expect("every grid index ran exactly once"))
            .collect()
    }

    /// Assembles and runs every spec under algorithm `A`, summarizing each
    /// with [`run_summary`] into a [`SweepOutcome`].
    #[must_use]
    pub fn sweep<A: SweepAlgorithm>(&self, specs: Vec<ScenarioSpec>) -> Vec<SweepOutcome> {
        SweepRequest::new().runner(*self).run::<A>(specs)
    }

    /// [`sweep_cached`](SweepRunner::sweep_cached), but every returned
    /// outcome carries a [`SweepSeries`] payload (`outcome.series` is
    /// always `Some`).
    ///
    /// Cache hits must carry a series to count: a scalar-only record for
    /// the same spec (written by a summary-level sweep) is treated as a
    /// miss, re-simulated once, and the richer record replaces it in the
    /// cache — so series-hungry experiments (`exp_boundary`,
    /// `exp_mean_mid`, `exp_figures`) regenerate their figures from a
    /// warm cache with **zero** simulator executions. The scalar half of
    /// a series-bearing outcome is bit-identical to what
    /// [`sweep_cached`](SweepRunner::sweep_cached) produces for the same
    /// spec, so scalar consumers hit series-bearing records freely.
    ///
    /// Shim over [`SweepRequest`] (`.cached(cache).capture_series(true)`)
    /// — prefer the builder in new code.
    #[must_use]
    pub fn sweep_cached_series<A: SweepAlgorithm>(
        &self,
        specs: Vec<ScenarioSpec>,
        cache: &SweepCache,
    ) -> Vec<SweepOutcome> {
        SweepRequest::new()
            .runner(*self)
            .cached(cache)
            .capture_series(true)
            .run::<A>(specs)
    }

    /// [`sweep`](SweepRunner::sweep) with memoization: grid points whose
    /// spec is already in `cache` under algorithm `A` are served from it
    /// without assembling or simulating anything.
    ///
    /// Executions are pure functions of the spec, so a hit is exact, not
    /// approximate — lookups go through the 64-bit
    /// [`ScenarioSpec::content_hash`], and every hit is confirmed by
    /// comparing the stored canonical spec serialization byte-for-byte,
    /// so a hash collision degrades to a miss rather than a wrong
    /// result. Repeated experiment grids (tweak one axis, re-run) only
    /// pay for the points that changed; results still arrive in grid
    /// order with grid-relative indices. Caches hydrated from a
    /// [`crate::cache::SweepStore`] extend this across processes and
    /// machines.
    ///
    /// Shim over [`SweepRequest`] (`.cached(cache)`) — prefer the
    /// builder in new code.
    #[must_use]
    pub fn sweep_cached<A: SweepAlgorithm>(
        &self,
        specs: Vec<ScenarioSpec>,
        cache: &SweepCache,
    ) -> Vec<SweepOutcome> {
        SweepRequest::new()
            .runner(*self)
            .cached(cache)
            .run::<A>(specs)
    }

    /// Runs only the grid points owned by `shard`, with **grid-global**
    /// indices preserved in the outcomes — [`merge_sharded`] (or
    /// [`crate::cache::SweepStore::merge_from`], for the on-disk route)
    /// reassembles the full grid from the per-shard outputs.
    #[must_use]
    pub fn sweep_sharded<A: SweepAlgorithm>(
        &self,
        specs: Vec<ScenarioSpec>,
        shard: Shard,
    ) -> Vec<SweepOutcome> {
        SweepRequest::new()
            .runner(*self)
            .shard(shard)
            .run::<A>(specs)
    }

    /// [`sweep_sharded`](SweepRunner::sweep_sharded) through a cache —
    /// the per-shard half of a distributed incremental sweep.
    ///
    /// Shim over [`SweepRequest`] (`.shard(shard).cached(cache)`, which
    /// defaults sharded runs to [`TierPolicy::LocalOnly`]) — prefer the
    /// builder in new code.
    #[must_use]
    pub fn sweep_sharded_cached<A: SweepAlgorithm>(
        &self,
        specs: Vec<ScenarioSpec>,
        shard: Shard,
        cache: &SweepCache,
    ) -> Vec<SweepOutcome> {
        SweepRequest::new()
            .runner(*self)
            .shard(shard)
            .cached(cache)
            .run::<A>(specs)
    }
}

fn shard_slice(specs: Vec<ScenarioSpec>, shard: Shard) -> Vec<(usize, ScenarioSpec)> {
    specs
        .into_iter()
        .enumerate()
        .filter(|&(i, _)| shard.owns(i))
        .collect()
}

/// Which cache tiers a [`SweepRequest`] consults on a miss in the local
/// [`SweepCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TierPolicy {
    /// Local cache, then the results service named by
    /// `WL_SWEEP_SERVICE` (when configured), then simulate — the
    /// resolution ladder unsharded cached sweeps always used.
    #[default]
    Full,
    /// Local cache only, never the service — the historical behaviour
    /// of sharded sweeps, whose workers own disjoint store files.
    LocalOnly,
}

/// What each grid point keeps beyond its scalar summary — the capture
/// mode of a [`SweepRequest`] and the "how rich must a hit be" argument
/// of every cache lookup.
///
/// The three modes are strictly ordered by information content
/// (scalar ⊑ sketch ⊑ series): a series record satisfies any need (its
/// sketch is derivable on the fly via [`SkewSketch::of_series`]), a
/// sketch record satisfies scalar and sketch needs, and a scalar
/// record only scalar needs. Parses from the conventional CLI form:
///
/// ```
/// use wl_harness::Capture;
///
/// assert_eq!("sketch".parse::<Capture>().unwrap(), Capture::Sketch);
/// assert_eq!(Capture::Series.to_string(), "series");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Capture {
    /// Scalar summary only — the historical default.
    #[default]
    Scalar,
    /// Scalar plus a mergeable [`SkewSketch`] (~100 bytes/point) —
    /// the streaming-aggregation mode for million-scenario sweeps.
    Sketch,
    /// Scalar plus the full [`SweepSeries`] payload (100 KB–1 MB).
    Series,
}

impl Capture {
    /// Whether `outcome` carries enough payload to satisfy this need
    /// without re-simulating (a series payload satisfies a sketch need
    /// — the sketch is a pure derivation of it).
    #[must_use]
    pub fn satisfied_by(self, outcome: &SweepOutcome) -> bool {
        match self {
            Self::Scalar => true,
            Self::Sketch => outcome.sketch.is_some() || outcome.series.is_some(),
            Self::Series => outcome.series.is_some(),
        }
    }
}

impl std::fmt::Display for Capture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Scalar => "scalar",
            Self::Sketch => "sketch",
            Self::Series => "series",
        })
    }
}

impl FromStr for Capture {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scalar" => Ok(Self::Scalar),
            "sketch" => Ok(Self::Sketch),
            "series" => Ok(Self::Series),
            other => Err(format!(
                "capture mode `{other}` is not scalar|sketch|series"
            )),
        }
    }
}

/// The one sweep entry point: a builder covering every combination the
/// legacy `sweep`/`sweep_cached`/`sweep_cached_series`/`sweep_sharded*`
/// methods hard-coded — series capture on/off, cache tiers, sharding,
/// thread count, and the CI expect-misses assertion — behind a single
/// per-point body, so the combinations cannot drift apart.
///
/// The legacy methods survive as thin shims over this builder; new code
/// should come here directly:
///
/// ```
/// use wl_core::Params;
/// use wl_harness::{derive_seed, Maintenance, ScenarioSpec, SweepCache, SweepRequest};
/// use wl_time::RealTime;
///
/// let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap();
/// let grid: Vec<ScenarioSpec> = (0..3)
///     .map(|i| {
///         ScenarioSpec::new(params.clone())
///             .seed(derive_seed(9, i))
///             .t_end(RealTime::from_secs(2.0))
///     })
///     .collect();
///
/// let cache = SweepCache::new();
/// let cold = SweepRequest::new().cached(&cache).run::<Maintenance>(grid.clone());
/// let warm = SweepRequest::new()
///     .cached(&cache)
///     .expect_misses(0) // CI-style assertion: this run simulates nothing
///     .run::<Maintenance>(grid);
/// assert!(cold.iter().zip(&warm).all(|(a, b)| a.bit_identical(b)));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepRequest<'a> {
    runner: SweepRunner,
    capture: Capture,
    shard: Option<Shard>,
    cache: Option<&'a SweepCache>,
    tier: TierPolicy,
    expect_misses: Option<u64>,
}

impl<'a> SweepRequest<'a> {
    /// A machine-sized, uncached, capture-off, unsharded request.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the underlying [`SweepRunner`] (thread policy).
    #[must_use]
    pub fn runner(mut self, runner: SweepRunner) -> Self {
        self.runner = runner;
        self
    }

    /// Shorthand for an explicit worker count (`0` = machine-sized).
    #[must_use]
    pub fn threads(self, threads: usize) -> Self {
        self.runner(SweepRunner::with_threads(threads))
    }

    /// Capture a [`SweepSeries`] per outcome (`outcome.series` always
    /// `Some`). With a cache, scalar-only records for the same spec are
    /// treated as misses and upgraded in place, exactly as
    /// [`SweepRunner::sweep_cached_series`] always did.
    #[must_use]
    pub fn capture_series(mut self, capture: bool) -> Self {
        self.capture = if capture {
            Capture::Series
        } else {
            Capture::Scalar
        };
        self
    }

    /// Capture a mergeable [`SkewSketch`] per outcome (`outcome.sketch`
    /// always `Some`, `outcome.series` always `None`) — the streaming
    /// aggregation mode: each grid point runs with series capture, the
    /// exact skew sample stream folds through a
    /// [`crate::sketch::SketchObserver`], and only the ~100-byte sketch
    /// is kept. With a cache, series-bearing records satisfy the need
    /// (their sketch is derived on the fly, the record untouched);
    /// scalar-only records are misses and upgrade in place.
    #[must_use]
    pub fn capture_sketch(mut self) -> Self {
        self.capture = Capture::Sketch;
        self
    }

    /// Sets the capture mode directly — the enum-typed form CLI
    /// plumbing prefers over the per-mode builder methods.
    #[must_use]
    pub fn capture(mut self, capture: Capture) -> Self {
        self.capture = capture;
        self
    }

    /// Run only the grid points `shard` owns, with grid-global indices
    /// preserved in the outcomes. Sharded requests default to
    /// [`TierPolicy::LocalOnly`] (the historical behaviour); an explicit
    /// [`tier`](SweepRequest::tier) call after this one overrides that.
    #[must_use]
    pub fn shard(mut self, shard: Shard) -> Self {
        self.shard = Some(shard);
        self.tier = TierPolicy::LocalOnly;
        self
    }

    /// Memoize through `cache` (and the service tier, per
    /// [`TierPolicy`]).
    #[must_use]
    pub fn cached(mut self, cache: &'a SweepCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Overrides the cache-tier resolution ladder.
    #[must_use]
    pub fn tier(mut self, tier: TierPolicy) -> Self {
        self.tier = tier;
        self
    }

    /// CI assertion: this run must miss the cache exactly `want` times
    /// (`0` = "this sweep executes zero simulations"). Checked after
    /// the run; a mismatch panics with the observed count. Requires
    /// [`cached`](SweepRequest::cached).
    #[must_use]
    pub fn expect_misses(mut self, want: u64) -> Self {
        self.expect_misses = Some(want);
        self
    }

    /// Executes the request under algorithm `A`. Outcomes arrive in
    /// grid order (the owned subsequence of it, when sharded) and are a
    /// pure function of `(specs, A)` — every configuration knob only
    /// changes *how* they are computed, never what they are.
    ///
    /// # Panics
    ///
    /// Panics when an [`expect_misses`](SweepRequest::expect_misses)
    /// assertion fails, or if a worker thread panics.
    #[must_use]
    pub fn run<A: SweepAlgorithm>(&self, specs: Vec<ScenarioSpec>) -> Vec<SweepOutcome> {
        let misses_before = self.cache.map(|c| c.misses());
        let service = match (self.cache, self.tier) {
            (Some(_), TierPolicy::Full) => ServiceSweepCache::from_env(),
            _ => None,
        };
        let owned = shard_slice(specs, self.shard.unwrap_or_else(Shard::full));
        if let (Some(service), Some(cache)) = (&service, self.cache) {
            let owned_specs: Vec<ScenarioSpec> = owned.iter().map(|(_, s)| s.clone()).collect();
            service.prefetch::<A>(&owned_specs, self.capture, cache);
        }
        let out = self
            .runner
            .run(owned, |_, (index, spec)| match (self.cache, self.capture) {
                (None, Capture::Scalar) => run_point::<A>(*index, spec),
                (None, Capture::Sketch) => run_point_sketch::<A>(*index, spec),
                (None, Capture::Series) => run_point_series::<A>(*index, spec),
                (Some(cache), Capture::Scalar) => run_point_cached::<A>(*index, spec, cache),
                (Some(cache), Capture::Sketch) => run_point_cached_sketch::<A>(*index, spec, cache),
                (Some(cache), Capture::Series) => run_point_cached_series::<A>(*index, spec, cache),
            });
        if let (Some(service), Some(cache)) = (&service, self.cache) {
            service.push_back::<A>(cache);
        }
        if let (Some(want), Some(before)) = (self.expect_misses, misses_before) {
            let got = self.cache.map_or(0, SweepCache::misses) - before;
            assert!(
                got == want,
                "sweep expected exactly {want} cache miss(es), observed {got}"
            );
        }
        out
    }
}

/// Executes one grid point — the single per-point body shared by every
/// sweep entry point, so the cached, sharded, and plain paths cannot
/// diverge. The dispatch ladder: fault-free points take the
/// monomorphized `Vec<A>` fast path; faulted/rejoiner points take the
/// enum-dispatched `Vec<A::FleetAuto>` fast path; only traced specs
/// fall back to `Box<dyn Automaton>`. All three paths are pinned
/// bit-identical by `mono_path_bit_identical_to_boxed` and
/// `enum_path_bit_identical_to_boxed`. `pub(crate)` so
/// [`crate::service`]'s server pool simulates misses through the exact
/// same body.
pub(crate) fn run_point<A: SweepAlgorithm>(index: usize, spec: &ScenarioSpec) -> SweepOutcome {
    let t_end = spec.t_end.as_secs();
    let summary = match assemble_mono::<A>(spec) {
        Some(built) => run_summary_mono(built, t_end),
        None => match assemble_enum::<A>(spec) {
            Some(built) => run_summary_enum(built, t_end),
            None => run_summary(assemble::<A>(spec), t_end),
        },
    };
    SweepOutcome::new(index, spec.seed, &summary)
}

/// [`run_point`] with series capture: the same execution (same dispatch
/// ladder), but the correction histories are additionally sampled into a
/// [`SweepSeries`] before they are dropped. The scalar fields are
/// bit-identical to [`run_point`]'s (the capture is a read-only pass
/// over the same run).
pub(crate) fn run_point_series<A: SweepAlgorithm>(
    index: usize,
    spec: &ScenarioSpec,
) -> SweepOutcome {
    let t_end = spec.t_end.as_secs();
    let (summary, series) = match assemble_mono::<A>(spec) {
        Some(built) => run_capture_mono(built, t_end),
        None => match assemble_enum::<A>(spec) {
            Some(built) => run_capture_enum(built, t_end),
            None => run_capture(assemble::<A>(spec), t_end),
        },
    };
    SweepOutcome::new(index, spec.seed, &summary).with_series(series)
}

/// [`run_point`] with sketch capture: the same series-capturing
/// execution as [`run_point_series`], but the series is folded into a
/// [`SkewSketch`] and dropped before the outcome is returned — so the
/// scalar half is bit-identical to both other bodies, the sketch is by
/// construction [`SkewSketch::of_series`] of the series the series
/// body would have kept, and the grid point costs ~100 bytes.
pub(crate) fn run_point_sketch<A: SweepAlgorithm>(
    index: usize,
    spec: &ScenarioSpec,
) -> SweepOutcome {
    let mut outcome = run_point_series::<A>(index, spec);
    let series = outcome
        .series
        .take()
        .expect("series capture always fills the series payload");
    outcome.sketch = Some(SkewSketch::of_series(&series));
    outcome
}

/// The cached per-point body: canonicalize, look up, fall back to
/// [`run_point`], insert. `pub(crate)` so [`crate::driver`]'s
/// checkpointed worker loop runs the exact same body.
pub(crate) fn run_point_cached<A: SweepAlgorithm>(
    index: usize,
    spec: &ScenarioSpec,
    cache: &SweepCache,
) -> SweepOutcome {
    // Canonical form on both sides: `drift: None` and its explicit
    // default are the same execution, and must hit each other.
    let spec_canon = canon_string(&spec.canonical());
    let hash = spec.content_hash();
    if let Some(mut hit) = cache.lookup(hash, A::NAME, &spec_canon, Capture::Scalar) {
        hit.index = index;
        return hit;
    }
    let outcome = run_point::<A>(index, spec);
    cache.store(hash, A::NAME.to_string(), spec_canon, outcome.clone());
    outcome
}

/// The series-requiring cached body: a hit must carry a series, a miss
/// (including a scalar-only or sketch-only near-hit) re-runs with
/// capture and upgrades the cached record.
pub(crate) fn run_point_cached_series<A: SweepAlgorithm>(
    index: usize,
    spec: &ScenarioSpec,
    cache: &SweepCache,
) -> SweepOutcome {
    let spec_canon = canon_string(&spec.canonical());
    let hash = spec.content_hash();
    if let Some(mut hit) = cache.lookup(hash, A::NAME, &spec_canon, Capture::Series) {
        hit.index = index;
        return hit;
    }
    let outcome = run_point_series::<A>(index, spec);
    cache.store(hash, A::NAME.to_string(), spec_canon, outcome.clone());
    outcome
}

/// The sketch-requiring cached body: sketch-bearing hits return as-is;
/// series-bearing hits satisfy the need by deriving the sketch on the
/// fly (dropping the series from the *returned* outcome, never from
/// the cache — the richer record stays); scalar-only near-hits re-run
/// with sketch capture and upgrade the entry in place.
pub(crate) fn run_point_cached_sketch<A: SweepAlgorithm>(
    index: usize,
    spec: &ScenarioSpec,
    cache: &SweepCache,
) -> SweepOutcome {
    let spec_canon = canon_string(&spec.canonical());
    let hash = spec.content_hash();
    if let Some(mut hit) = cache.lookup(hash, A::NAME, &spec_canon, Capture::Sketch) {
        hit.index = index;
        if hit.sketch.is_none() {
            let series = hit
                .series
                .take()
                .expect("a sketch-satisfying hit without a sketch carries a series");
            hit.sketch = Some(SkewSketch::of_series(&series));
        }
        return hit;
    }
    let outcome = run_point_sketch::<A>(index, spec);
    cache.store(hash, A::NAME.to_string(), spec_canon, outcome.clone());
    outcome
}

/// Opt-in memo of per-scenario sweep results, keyed by
/// `(ScenarioSpec::content_hash, algorithm name)` and confirmed against
/// the canonical spec serialization on every hit.
///
/// Shareable across sweeps and threads (`&SweepCache` is all
/// [`SweepRunner::sweep_cached`] needs), and across *processes and
/// machines* through [`crate::cache::SweepStore`], which persists the
/// same entries to disk.
///
/// # Examples
///
/// ```
/// use wl_core::Params;
/// use wl_harness::{Maintenance, ScenarioSpec, SweepCache, SweepRunner};
/// use wl_time::RealTime;
///
/// let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap();
/// let spec = ScenarioSpec::new(params).seed(3).t_end(RealTime::from_secs(2.0));
///
/// let cache = SweepCache::new();
/// let _ = SweepRunner::serial().sweep_cached::<Maintenance>(vec![spec.clone()], &cache);
/// assert_eq!((cache.len(), cache.misses()), (1, 1));
///
/// // Same spec again: a hit, no simulation.
/// let _ = SweepRunner::serial().sweep_cached::<Maintenance>(vec![spec], &cache);
/// assert_eq!((cache.len(), cache.hits()), (1, 1));
/// ```
#[derive(Debug, Default)]
pub struct SweepCache {
    /// Keyed by a mix of the spec content hash and the algorithm name;
    /// the entry holds both back, plus the canonical spec bytes, so any
    /// collision is detected instead of served.
    map: Mutex<HashMap<u64, CacheEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Debug, Clone)]
struct CacheEntry {
    /// The spec's [`ScenarioSpec::content_hash`] — carried through to
    /// the disk store, which persists it as the record key.
    content_hash: u64,
    algo: String,
    spec_canon: String,
    outcome: SweepOutcome,
}

/// Folds the algorithm name into the spec content hash (FNV-1a
/// continuation) — one `u64` map key per `(spec, algorithm)` pair.
fn entry_key(content_hash: u64, algo: &str) -> u64 {
    crate::cache::fnv64_seeded(content_hash ^ crate::cache::FNV_OFFSET, algo.as_bytes())
}

impl SweepCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up `(content_hash, algo)`, confirming the hit against the
    /// canonical spec bytes. An entry counts only when its payload
    /// satisfies `need` ([`Capture::satisfied_by`]) — a scalar-only
    /// entry does not satisfy a sketch or series need, so the lookup
    /// degrades to a miss (and the re-run will upgrade the entry).
    /// Counts a hit or a miss either way.
    pub(crate) fn lookup(
        &self,
        content_hash: u64,
        algo: &str,
        spec_canon: &str,
        need: Capture,
    ) -> Option<SweepOutcome> {
        let found = self
            .map
            .lock()
            .expect("sweep cache poisoned")
            .get(&entry_key(content_hash, algo))
            .filter(|e| e.algo == algo && e.spec_canon == spec_canon)
            .filter(|e| need.satisfied_by(&e.outcome))
            .map(|e| e.outcome.clone());
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Inserts an entry (replacing any previous occupant of the slot).
    pub(crate) fn store(
        &self,
        content_hash: u64,
        algo: String,
        spec_canon: String,
        outcome: SweepOutcome,
    ) {
        self.map.lock().expect("sweep cache poisoned").insert(
            entry_key(content_hash, &algo),
            CacheEntry {
                content_hash,
                algo,
                spec_canon,
                outcome,
            },
        );
    }

    /// [`lookup`](SweepCache::lookup) without touching the hit/miss
    /// counters — how [`crate::service`]'s client tier decides which
    /// grid points still need resolving without disturbing the
    /// statistics contracts (`WL_SWEEP_EXPECT_MISSES` counts only what
    /// the sweep loop itself observes).
    pub(crate) fn peek(
        &self,
        content_hash: u64,
        algo: &str,
        spec_canon: &str,
        need: Capture,
    ) -> Option<SweepOutcome> {
        self.map
            .lock()
            .expect("sweep cache poisoned")
            .get(&entry_key(content_hash, algo))
            .filter(|e| e.algo == algo && e.spec_canon == spec_canon)
            .filter(|e| need.satisfied_by(&e.outcome))
            .map(|e| e.outcome.clone())
    }

    /// Seeds an entry without touching the hit/miss counters — how
    /// [`crate::cache::SweepStore`] hydrates a cache from disk.
    pub(crate) fn seed(
        &self,
        content_hash: u64,
        algo: String,
        spec_canon: String,
        outcome: SweepOutcome,
    ) {
        self.store(content_hash, algo, spec_canon, outcome);
    }

    /// Snapshots every entry as `(content_hash, algo, spec_canon,
    /// outcome)` — the persistence export used by
    /// [`crate::cache::SweepStore::absorb`].
    pub(crate) fn snapshot(&self) -> Vec<(u64, String, String, SweepOutcome)> {
        self.map
            .lock()
            .expect("sweep cache poisoned")
            .values()
            .map(|e| {
                (
                    e.content_hash,
                    e.algo.clone(),
                    e.spec_canon.clone(),
                    e.outcome.clone(),
                )
            })
            .collect()
    }

    /// Number of scenarios currently memoized.
    ///
    /// # Panics
    ///
    /// Panics if a previous cache user panicked mid-operation.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.lock().expect("sweep cache poisoned").len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed and had to simulate.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// One grid point's results, in grid order.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SweepOutcome {
    /// Position in the input grid.
    pub index: usize,
    /// The spec seed that produced this outcome.
    pub seed: u64,
    /// Steady-state skew (second half of the agreement window).
    pub steady_skew: f64,
    /// Worst skew over the whole agreement window.
    pub max_skew: f64,
    /// Whether Theorem 16's γ bound held.
    pub agreement_holds: bool,
    /// Largest observed |ADJ|.
    pub max_abs_adjustment: f64,
    /// Mean observed |ADJ| (first adjustment skipped as warm-up).
    pub mean_abs_adjustment: f64,
    /// Whether Theorem 4a's adjustment bound held.
    pub adjustment_holds: bool,
    /// Raw simulator counters.
    pub stats: SimStats,
    /// Optional mergeable skew sketch (see [`SkewSketch`]) — present
    /// only when the outcome was produced by a
    /// [`Capture::Sketch`] request (or hydrated from a `K`/`L` store
    /// record). Mutually exclusive with `series` in stored records:
    /// the series subsumes the sketch, so a record carries one or the
    /// other, never both.
    pub sketch: Option<SkewSketch>,
    /// Optional per-run series payload (see [`SweepSeries`]) — present
    /// only when the outcome was produced by
    /// [`SweepRunner::sweep_cached_series`] (or hydrated from a
    /// series-bearing store record). Keep `sketch` and `series` **last,
    /// in this order**: the canonical record parser in `cache.rs`
    /// mirrors the field order.
    pub series: Option<SweepSeries>,
}

impl SweepOutcome {
    /// Collapses a [`RunSummary`] into the scalar grid-point record —
    /// exactly what the sweep's per-point body stores. Public so parity
    /// tests can compare independently produced runs with
    /// [`SweepOutcome::bit_identical`].
    #[must_use]
    pub fn new(index: usize, seed: u64, summary: &RunSummary) -> Self {
        Self {
            index,
            seed,
            steady_skew: summary.agreement.steady_skew,
            max_skew: summary.agreement.max_skew,
            agreement_holds: summary.agreement.holds,
            max_abs_adjustment: summary.adjustments.max_abs,
            mean_abs_adjustment: summary.adjustments.mean_abs,
            adjustment_holds: summary.adjustments.holds,
            stats: summary.stats,
            sketch: None,
            series: None,
        }
    }

    fn with_series(mut self, series: SweepSeries) -> Self {
        self.series = Some(series);
        self
    }

    /// Bit-level equality: floats compared by their IEEE bit patterns
    /// (`NaN == NaN`, `-0.0 != 0.0`) — the determinism currency of the
    /// shard merge and the disk store, strictly stronger than any
    /// epsilon comparison. Series payloads (or their absence) must match
    /// too.
    #[must_use]
    pub fn bit_identical(&self, other: &Self) -> bool {
        let series_match = match (&self.series, &other.series) {
            (None, None) => true,
            (Some(a), Some(b)) => a.bit_identical(b),
            _ => false,
        };
        let sketch_match = match (&self.sketch, &other.sketch) {
            (None, None) => true,
            (Some(a), Some(b)) => a.bit_identical(b),
            _ => false,
        };
        sketch_match
            && self.index == other.index
            && self.seed == other.seed
            && self.steady_skew.to_bits() == other.steady_skew.to_bits()
            && self.max_skew.to_bits() == other.max_skew.to_bits()
            && self.agreement_holds == other.agreement_holds
            && self.max_abs_adjustment.to_bits() == other.max_abs_adjustment.to_bits()
            && self.mean_abs_adjustment.to_bits() == other.mean_abs_adjustment.to_bits()
            && self.adjustment_holds == other.adjustment_holds
            && self.stats == other.stats
            && series_match
    }
}

/// Per-run time series cached alongside the scalar summary — the payload
/// that lets figure-style experiments regenerate from a warm cache
/// without re-simulating anything.
///
/// All times are real seconds. The three series:
///
/// * **per-round skew** (`round_times`/`round_skews`) — the max
///   nonfaulty skew just after each resynchronization wave
///   (`wl_analysis::convergence::round_series` at wave gap `P/4`, the
///   same series [`RunSummary`] reports); its
///   last element is the *final skew*, the quantity "final skew vs
///   parameter" plots read off per grid point.
/// * **sampled skew** (`skew_times`/`skew_values`) — the max pairwise
///   nonfaulty skew on a uniform grid over `[0, 0.99·t_end]` (step
///   `P/10`, floored so a run yields at most ~4000 grid samples) *plus*
///   a sample immediately before and after every nonfaulty correction
///   change, where piecewise-linear local time makes the skew extremal —
///   so window maxima computed from the series are exact, not
///   grid-resolution approximations.
/// * **correction series** (`corr_procs`/`corr_times`/`corr_values`) —
///   every nonfaulty correction change as `(process, time, new CORR)`,
///   flattened in time order (ties broken by process id).
///
/// Stored in v2 (`S`-tagged) records of the sweep store; see
/// `docs/sweeps.md`.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SweepSeries {
    /// Real time of each resynchronization wave measurement.
    pub round_times: Vec<f64>,
    /// Max nonfaulty skew just after each wave.
    pub round_skews: Vec<f64>,
    /// Sample times of the skew series (grid + correction events).
    pub skew_times: Vec<f64>,
    /// Max pairwise nonfaulty skew at each sample time.
    pub skew_values: Vec<f64>,
    /// Process id of each correction change, parallel to `corr_times`.
    pub corr_procs: Vec<u32>,
    /// Real time of each correction change.
    pub corr_times: Vec<f64>,
    /// The new correction value reported at each change.
    pub corr_values: Vec<f64>,
}

impl SweepSeries {
    /// The skew series restricted to `from <= t <= to`, as `(t, skew)`
    /// pairs — the shape plotting code consumes.
    #[must_use]
    pub fn skew_window(&self, from: f64, to: f64) -> Vec<(f64, f64)> {
        self.skew_times
            .iter()
            .zip(&self.skew_values)
            .filter(|&(&t, _)| t >= from && t <= to)
            .map(|(&t, &s)| (t, s))
            .collect()
    }

    /// The largest sampled skew with `from <= t <= to` (0 if the window
    /// is empty). Exact, because the series samples every correction
    /// event (where the piecewise-linear skew is extremal).
    #[must_use]
    pub fn max_skew_in(&self, from: f64, to: f64) -> f64 {
        self.skew_window(from, to)
            .iter()
            .map(|&(_, s)| s)
            .fold(0.0, f64::max)
    }

    /// The per-round series as a [`wl_analysis::convergence::RoundSeries`]
    /// (for `contraction_factor` / `final_skew` / `check_recurrence`).
    #[must_use]
    pub fn rounds(&self) -> wl_analysis::convergence::RoundSeries {
        wl_analysis::convergence::RoundSeries {
            skews: self.round_skews.clone(),
            times: self
                .round_times
                .iter()
                .map(|&t| wl_time::RealTime::from_secs(t))
                .collect(),
        }
    }

    /// Bit-level equality of every series element (same currency as
    /// [`SweepOutcome::bit_identical`]).
    #[must_use]
    pub fn bit_identical(&self, other: &Self) -> bool {
        fn eq(a: &[f64], b: &[f64]) -> bool {
            a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
        }
        eq(&self.round_times, &other.round_times)
            && eq(&self.round_skews, &other.round_skews)
            && eq(&self.skew_times, &other.skew_times)
            && eq(&self.skew_values, &other.skew_values)
            && self.corr_procs == other.corr_procs
            && eq(&self.corr_times, &other.corr_times)
            && eq(&self.corr_values, &other.corr_values)
    }
}

/// Streaming aggregation of sweep outcomes into `wl-analysis` collectors.
#[derive(Debug, Default)]
pub struct SweepSummary {
    /// Steady-state skew across the grid.
    pub steady_skew: Online,
    /// Worst-case skew across the grid.
    pub max_skew: Online,
    /// |ADJ| maxima across the grid.
    pub max_abs_adjustment: Online,
    /// Total events simulated.
    pub events: u64,
    /// Grid points where Theorem 16 held.
    pub agreement_held: usize,
    /// Grid points aggregated.
    pub count: usize,
}

impl SweepSummary {
    /// Aggregates a slice of outcomes.
    #[must_use]
    pub fn collect(outcomes: &[SweepOutcome]) -> Self {
        let mut s = Self::default();
        for o in outcomes {
            s.push(o);
        }
        s
    }

    /// Adds one outcome.
    pub fn push(&mut self, o: &SweepOutcome) {
        self.steady_skew.push(o.steady_skew);
        self.max_skew.push(o.max_skew);
        self.max_abs_adjustment.push(o.max_abs_adjustment);
        self.events += o.stats.events_delivered;
        self.agreement_held += usize::from(o.agreement_holds);
        self.count += 1;
    }

    /// Whether agreement held at every grid point.
    #[must_use]
    pub fn all_hold(&self) -> bool {
        self.agreement_held == self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Maintenance;
    use wl_core::Params;
    use wl_time::RealTime;

    fn grid(count: usize) -> Vec<ScenarioSpec> {
        let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap();
        (0..count)
            .map(|i| {
                ScenarioSpec::new(params.clone())
                    .seed(derive_seed(7, i as u64))
                    .t_end(RealTime::from_secs(4.0))
            })
            .collect()
    }

    #[test]
    fn derive_seed_is_stable_and_spread() {
        assert_eq!(derive_seed(1, 0), derive_seed(1, 0));
        assert_ne!(derive_seed(1, 0), derive_seed(1, 1));
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }

    #[test]
    fn run_preserves_input_order() {
        let doubled = SweepRunner::with_threads(4).run(vec![1, 2, 3, 4, 5], |_, x| x * 2);
        assert_eq!(doubled, vec![2, 4, 6, 8, 10]);
    }

    #[test]
    fn sweep_outcomes_independent_of_thread_count() {
        let serial = SweepRunner::serial().sweep::<Maintenance>(grid(6));
        let wide = SweepRunner::with_threads(4).sweep::<Maintenance>(grid(6));
        assert_eq!(serial.len(), wide.len());
        for (a, b) in serial.iter().zip(&wide) {
            assert!(a.bit_identical(b));
        }
    }

    #[test]
    fn mono_path_bit_identical_to_boxed() {
        // Fault-free specs take the Vec<A> fast path inside run_point;
        // forcing the boxed path through assemble + run_summary must give
        // byte-identical outcomes.
        for (i, spec) in grid(3).iter().enumerate() {
            let fast = run_point::<Maintenance>(i, spec);
            let boxed = SweepOutcome::new(
                i,
                spec.seed,
                &run_summary(assemble::<Maintenance>(spec), spec.t_end.as_secs()),
            );
            assert!(fast.bit_identical(&boxed), "grid point {i} diverged");
        }
        // And the fast path really is available for these specs.
        assert!(assemble_mono::<Maintenance>(&grid(1)[0]).is_some());
        // Faulted specs fall back.
        let faulted = grid(1)[0]
            .clone()
            .fault(wl_sim::ProcessId(0), crate::FaultKind::Silent);
        assert!(assemble_mono::<Maintenance>(&faulted).is_none());
    }

    #[test]
    fn enum_path_bit_identical_to_boxed() {
        // Faulted specs take the Vec<A::FleetAuto> fast path inside
        // run_point; forcing the boxed path through assemble + run_summary
        // must give byte-identical outcomes.
        use crate::run::run_summary;
        for (i, base) in grid(3).iter().enumerate() {
            let spec = base
                .clone()
                .fault(wl_sim::ProcessId(0), crate::FaultKind::Silent);
            // The faulted spec is served by the enum path, not mono.
            assert!(assemble_mono::<Maintenance>(&spec).is_none());
            assert!(assemble_enum::<Maintenance>(&spec).is_some());
            let fast = run_point::<Maintenance>(i, &spec);
            let boxed = SweepOutcome::new(
                i,
                spec.seed,
                &run_summary(assemble::<Maintenance>(&spec), spec.t_end.as_secs()),
            );
            assert!(fast.bit_identical(&boxed), "grid point {i} diverged");
        }
        // A rejoiner scenario also rides the enum path, byte-identically.
        let spec = grid(1)[0]
            .clone()
            .rejoiner(wl_sim::ProcessId(2), wl_time::RealTime::from_secs(2.0));
        assert!(assemble_enum::<Maintenance>(&spec).is_some());
        let fast = run_point::<Maintenance>(0, &spec);
        let boxed = SweepOutcome::new(
            0,
            spec.seed,
            &run_summary(assemble::<Maintenance>(&spec), spec.t_end.as_secs()),
        );
        assert!(fast.bit_identical(&boxed), "rejoiner point diverged");
        // Traced specs fall all the way back to the boxed path.
        let traced = grid(1)[0].clone().trace(16);
        assert!(assemble_enum::<Maintenance>(&traced).is_none());
    }

    #[test]
    fn summary_aggregates() {
        let outcomes = SweepRunner::new().sweep::<Maintenance>(grid(4));
        let summary = SweepSummary::collect(&outcomes);
        assert_eq!(summary.count, 4);
        assert!(summary.all_hold());
        assert!(summary.steady_skew.mean() > 0.0);
        assert!(summary.events > 0);
    }

    #[test]
    fn empty_grid_is_fine() {
        let out = SweepRunner::new().run(Vec::<u32>::new(), |_, x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn cached_sweep_matches_uncached() {
        let cache = SweepCache::new();
        let cold = SweepRunner::serial().sweep_cached::<Maintenance>(grid(4), &cache);
        let plain = SweepRunner::serial().sweep::<Maintenance>(grid(4));
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 4);
        for (a, b) in cold.iter().zip(&plain) {
            assert!(a.bit_identical(b));
        }
        // Second run: all hits, same results, grid indices remapped.
        let warm = SweepRunner::with_threads(3).sweep_cached::<Maintenance>(grid(4), &cache);
        assert_eq!(cache.hits(), 4);
        for (a, b) in warm.iter().zip(&plain) {
            assert!(a.bit_identical(b));
        }
    }

    #[test]
    fn series_path_scalars_match_plain_sweep() {
        let plain = SweepRunner::serial().sweep::<Maintenance>(grid(3));
        let cache = SweepCache::new();
        let with_series = SweepRunner::serial().sweep_cached_series::<Maintenance>(grid(3), &cache);
        for (a, b) in with_series.iter().zip(&plain) {
            let series = a.series.as_ref().expect("series always captured");
            assert!(!series.skew_times.is_empty());
            assert_eq!(series.skew_times.len(), series.skew_values.len());
            assert_eq!(series.round_times.len(), series.round_skews.len());
            assert_eq!(series.corr_times.len(), series.corr_values.len());
            assert_eq!(series.corr_times.len(), series.corr_procs.len());
            // The scalar half must be exactly what the scalar sweep
            // produces — capture is a read-only pass over the same run.
            let mut scalar = a.clone();
            scalar.series = None;
            assert!(scalar.bit_identical(b), "series capture perturbed point");
        }
    }

    #[test]
    fn series_requirement_upgrades_scalar_entries() {
        let cache = SweepCache::new();
        // Scalar sweep first: entries lack series.
        let _ = SweepRunner::serial().sweep_cached::<Maintenance>(grid(2), &cache);
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        // A series sweep over the same grid must NOT trust the scalar
        // entries: every point re-runs once with capture.
        let upgraded = SweepRunner::serial().sweep_cached_series::<Maintenance>(grid(2), &cache);
        assert_eq!((cache.hits(), cache.misses()), (0, 4));
        assert!(upgraded.iter().all(|o| o.series.is_some()));
        // Now both kinds of consumer hit the upgraded entries.
        let warm_series = SweepRunner::serial().sweep_cached_series::<Maintenance>(grid(2), &cache);
        let warm_scalar = SweepRunner::serial().sweep_cached::<Maintenance>(grid(2), &cache);
        assert_eq!((cache.hits(), cache.misses()), (4, 4));
        for (a, b) in warm_series.iter().zip(&upgraded) {
            assert!(a.bit_identical(b));
        }
        // Scalar consumers receive the series-bearing outcome as-is.
        assert!(warm_scalar.iter().all(|o| o.series.is_some()));
    }

    #[test]
    fn cache_hits_across_drift_canonicalization() {
        // `drift: None` and its explicit default assemble identically and
        // hash identically — they must hit each other in the cache.
        let cache = SweepCache::new();
        let implicit = grid(2);
        let explicit: Vec<ScenarioSpec> = implicit
            .iter()
            .map(|s| s.clone().drift(s.effective_drift()))
            .collect();
        let a = SweepRunner::serial().sweep_cached::<Maintenance>(implicit, &cache);
        let b = SweepRunner::serial().sweep_cached::<Maintenance>(explicit, &cache);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.len(), 2);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.stats, y.stats);
        }
    }

    #[test]
    fn cache_distinguishes_algorithms_and_specs() {
        use crate::LmCnv;
        let cache = SweepCache::new();
        let _ = SweepRunner::serial().sweep_cached::<Maintenance>(grid(2), &cache);
        // Same specs, different algorithm: no hits.
        let _ = SweepRunner::serial().sweep_cached::<LmCnv>(grid(2), &cache);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.len(), 4);
        // A changed grid point misses; unchanged ones hit.
        let mut shifted = grid(2);
        shifted[1] = shifted[1].clone().seed(0xDEAD);
        let _ = SweepRunner::serial().sweep_cached::<Maintenance>(shifted, &cache);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 5);
    }

    #[test]
    fn request_builder_matches_every_legacy_entry_point() {
        let cache = SweepCache::new();
        let legacy_cache = SweepCache::new();
        // Plain.
        let a = SweepRequest::new().run::<Maintenance>(grid(4));
        let b = SweepRunner::new().sweep::<Maintenance>(grid(4));
        assert!(a.iter().zip(&b).all(|(x, y)| x.bit_identical(y)));
        // Cached.
        let a = SweepRequest::new()
            .cached(&cache)
            .run::<Maintenance>(grid(4));
        let b = SweepRunner::new().sweep_cached::<Maintenance>(grid(4), &legacy_cache);
        assert!(a.iter().zip(&b).all(|(x, y)| x.bit_identical(y)));
        // Cached + series.
        let a = SweepRequest::new()
            .cached(&cache)
            .capture_series(true)
            .run::<Maintenance>(grid(4));
        let b = SweepRunner::new().sweep_cached_series::<Maintenance>(grid(4), &legacy_cache);
        assert!(a.iter().zip(&b).all(|(x, y)| x.bit_identical(y)));
        assert_eq!(cache.misses(), legacy_cache.misses());
        // Sharded + cached, grid-global indices preserved.
        let shard = Shard::new(1, 2);
        let a = SweepRequest::new()
            .shard(shard)
            .cached(&cache)
            .run::<Maintenance>(grid(5));
        let b =
            SweepRunner::new().sweep_sharded_cached::<Maintenance>(grid(5), shard, &legacy_cache);
        assert_eq!(a.len(), 2);
        assert!(a.iter().zip(&b).all(|(x, y)| x.bit_identical(y)));
        assert!(a.iter().all(|o| shard.owns(o.index)));
    }

    #[test]
    fn request_expect_misses_passes_and_fails() {
        let cache = SweepCache::new();
        let _ = SweepRequest::new()
            .threads(1)
            .cached(&cache)
            .expect_misses(3)
            .run::<Maintenance>(grid(3));
        // Warm: zero misses is enforceable.
        let _ = SweepRequest::new()
            .cached(&cache)
            .expect_misses(0)
            .run::<Maintenance>(grid(3));
        // And a wrong expectation panics.
        let err = std::panic::catch_unwind(|| {
            let _ = SweepRequest::new()
                .cached(&cache)
                .expect_misses(7)
                .run::<Maintenance>(grid(3));
        });
        assert!(err.is_err(), "miss-count mismatch must fail the sweep");
    }

    #[test]
    fn sharded_requests_default_to_local_tier() {
        // `.shard()` flips the tier to LocalOnly; an explicit override
        // restores the full ladder. (Pure policy check — no service is
        // running, so we only verify the builder state transitions by
        // exercising both paths successfully.)
        let cache = SweepCache::new();
        let shard = Shard::new(0, 2);
        let local = SweepRequest::new()
            .shard(shard)
            .cached(&cache)
            .run::<Maintenance>(grid(4));
        let full = SweepRequest::new()
            .shard(shard)
            .tier(TierPolicy::Full)
            .cached(&cache)
            .run::<Maintenance>(grid(4));
        assert!(local.iter().zip(&full).all(|(x, y)| x.bit_identical(y)));
    }

    #[test]
    fn shard_parsing_and_ownership() {
        let s: Shard = "2/5".parse().unwrap();
        assert_eq!((s.index(), s.count()), (2, 5));
        assert!(s.owns(2) && s.owns(7) && !s.owns(3));
        assert_eq!(s.to_string(), "2/5");
        assert!("5/5".parse::<Shard>().is_err());
        assert!("x/5".parse::<Shard>().is_err());
        assert!("3".parse::<Shard>().is_err());
        assert!(Shard::full().owns(0) && Shard::full().owns(123));
    }

    #[test]
    fn sharded_sweep_merges_to_unsharded() {
        let full = SweepRunner::serial().sweep::<Maintenance>(grid(5));
        let parts: Vec<Vec<SweepOutcome>> = (0..2)
            .map(|k| SweepRunner::serial().sweep_sharded::<Maintenance>(grid(5), Shard::new(k, 2)))
            .collect();
        assert_eq!(parts[0].len(), 3);
        assert_eq!(parts[1].len(), 2);
        let merged = merge_sharded(&parts, 5).unwrap();
        assert_eq!(merged.len(), full.len());
        for (a, b) in merged.iter().zip(&full) {
            assert!(a.bit_identical(b));
        }
    }

    #[test]
    fn shard_merge_detects_gaps_and_conflicts() {
        let full = SweepRunner::serial().sweep::<Maintenance>(grid(3));
        // A missing shard leaves a gap.
        let only_first: Vec<Vec<SweepOutcome>> = vec![vec![full[0].clone()], vec![full[2].clone()]];
        assert_eq!(
            merge_sharded(&only_first, 3).unwrap_err(),
            ShardMergeError::Missing { index: 1 }
        );
        // Overlap is fine when identical…
        let overlap = vec![full.clone(), vec![full[1].clone()]];
        assert!(merge_sharded(&overlap, 3).is_ok());
        // …and an error when it disagrees.
        let mut tampered = full[1].clone();
        tampered.steady_skew += 1.0;
        let conflict = vec![full.clone(), vec![tampered]];
        assert_eq!(
            merge_sharded(&conflict, 3).unwrap_err(),
            ShardMergeError::Conflict { index: 1 }
        );
        // An index beyond the grid is a mismatched-grid error, not a
        // phantom determinism violation.
        assert_eq!(
            merge_sharded(&[full], 2).unwrap_err(),
            ShardMergeError::OutOfRange {
                index: 2,
                grid_len: 2
            }
        );
    }
}
