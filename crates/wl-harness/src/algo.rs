//! [`SyncAlgorithm`]: the plug-in trait every synchronization algorithm
//! implements to run under the harness.
//!
//! The harness owns everything algorithm-independent (clocks, offsets,
//! START times, fault bookkeeping, delay models, simulator config); an
//! algorithm contributes:
//!
//! * its message type ([`SyncAlgorithm::Msg`]);
//! * its start discipline ([`SyncAlgorithm::discipline`]) — round-aligned
//!   per assumption A4, or the §9.2 cold start;
//! * automata for correct, faulty, and rejoining processes.
//!
//! Implementations exist for the paper's [`Maintenance`], [`Startup`] and
//! [`Rejoiner`] and for the §10 baselines [`LmCnv`], [`MahaneySchneider`]
//! and [`SrikanthToueg`]. The sim-seed salts (`0x5EED`, `0xF00D`,
//! `0xBA5E`) are inherited from the legacy per-crate builders so that
//! executions are bit-for-bit identical to the pre-harness code paths —
//! the `harness_parity` integration tests pin this.

use crate::fleet::{CnvAlgoFleet, MsAlgoFleet, StAlgoFleet, WlAlgoFleet};
use crate::spec::{FaultKind, ScenarioSpec};
use wl_baselines::byzantine::{TimedTwoFaced, ValueTwoFaced};
use wl_baselines::lm_cnv::{CnvMsg, LmCnv};
use wl_baselines::mahaney_schneider::{MahaneySchneider, MsMsg};
use wl_baselines::srikanth_toueg::{SrikanthToueg, StMsg};
use wl_clock::drift::FleetClock;
use wl_core::byzantine::{PullApart, RoundSpammer};
use wl_core::{Maintenance, Rejoiner, Startup, WlMsg};
use wl_sim::faults::{crash_phys_time, CrashAt, SilentFor};
use wl_sim::{Automaton, ProcessId};
use wl_time::{ClockTime, RealTime};

/// The role a fleet slot plays in a scenario — the single argument that
/// selects which automaton [`SyncAlgorithm::fleet_automaton`] builds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FleetRole {
    /// A correct process.
    Correct,
    /// A designated-faulty process realizing this fault kind.
    Faulty(FaultKind),
    /// The §9.1 rejoiner (START deferred to its repair time).
    Rejoiner,
}

/// How a scenario's initial offsets, corrections, and START times are
/// derived — and which salt decorrelates the delay RNG from the assembly
/// RNG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartDiscipline {
    /// Assumption A4: initial offsets within `spread_frac · β`, START
    /// delivered when each initial logical clock reads `T⁰`.
    RoundAligned {
        /// Added (wrapping) to the spec seed for the simulator's delay RNG.
        sim_seed_salt: u64,
    },
    /// §9.2 startup: zero clock offsets, arbitrary initial *corrections*
    /// within ±`initial_spread/2`, STARTs inside a small real-time window.
    ColdStart {
        /// Added (wrapping) to the spec seed for the simulator's delay RNG.
        sim_seed_salt: u64,
    },
}

/// Assembly state an algorithm may consult when building automata.
pub struct AssemblyCtx<'a> {
    /// The physical clocks (index = process id).
    pub clocks: &'a [FleetClock],
    /// Initial corrections (all zero for round-aligned scenarios).
    pub initial_corrs: &'a [f64],
}

/// A synchronization algorithm pluggable into the harness.
///
/// Methods are associated functions (no `self`): the implementing type is
/// the algorithm's *automaton* type, used purely as a type-level tag at
/// assembly time — `assemble::<Maintenance>(&spec)`.
pub trait SyncAlgorithm {
    /// The protocol message type.
    type Msg: Clone + std::fmt::Debug + Send + 'static;

    /// Human-readable name matching the §10 table.
    const NAME: &'static str;

    /// Validates the spec before assembly (default: no check — mirrors the
    /// legacy baseline builders, which trusted their callers).
    ///
    /// # Panics
    ///
    /// Implementations panic on invalid parameters.
    fn validate(_spec: &ScenarioSpec) {}

    /// The start discipline and sim-seed salt.
    fn discipline(spec: &ScenarioSpec) -> StartDiscipline;

    /// The enum type a `Vec`-of-enums fleet of this algorithm holds —
    /// one of the `*AlgoFleet` enums in [`crate::fleet`], shared by
    /// every algorithm of the same message family.
    type FleetAuto: Automaton<Msg = Self::Msg> + 'static;

    /// The **single** automaton-construction body: builds the automaton
    /// filling fleet slot `id` in role `role`.
    ///
    /// Both fleet representations go through here — the enum fast path
    /// stores the result directly in a `Vec<Self::FleetAuto>`
    /// ([`crate::assemble_enum`]), and the boxed path boxes it (the
    /// default [`SyncAlgorithm::correct`] / [`SyncAlgorithm::faulty`] /
    /// [`SyncAlgorithm::rejoiner_automaton`] all delegate). One body
    /// means the two paths cannot diverge; byte-identity is pinned by
    /// `enum_path_bit_identical_to_boxed` and the `fleet_parity`
    /// proptests.
    ///
    /// Returns `None` only for an unsupported *role* (today: a rejoiner
    /// under an algorithm without one).
    ///
    /// # Panics
    ///
    /// Panics if the algorithm has no realization of a requested
    /// [`FaultKind`].
    fn fleet_automaton(
        spec: &ScenarioSpec,
        id: ProcessId,
        role: FleetRole,
        ctx: &AssemblyCtx<'_>,
    ) -> Option<Self::FleetAuto>;

    /// The automaton of a correct process, boxed. Default: boxes
    /// [`SyncAlgorithm::fleet_automaton`]'s [`FleetRole::Correct`]
    /// result.
    fn correct(
        spec: &ScenarioSpec,
        id: ProcessId,
        ctx: &AssemblyCtx<'_>,
    ) -> Box<dyn Automaton<Msg = Self::Msg>> {
        Box::new(
            Self::fleet_automaton(spec, id, FleetRole::Correct, ctx)
                .expect("fleet_automaton must realize Correct"),
        )
    }

    /// The *unboxed* correct-process automaton, when the implementing
    /// type is itself that automaton — which is the pattern every
    /// algorithm in this workspace follows. Enables the monomorphized
    /// `Vec<Self>` fleet fast path ([`crate::assemble_mono`]): fault-free
    /// fleets skip the per-event virtual dispatch of `Box<dyn Automaton>`
    /// entirely. `None` (the default) opts out; the assembly then falls
    /// back to the boxed path, which is always available.
    ///
    /// Implementations must build **exactly** the automaton
    /// [`SyncAlgorithm::correct`] would box: the two paths are pinned
    /// byte-identical by the sweep parity tests.
    fn correct_mono(spec: &ScenarioSpec, id: ProcessId, ctx: &AssemblyCtx<'_>) -> Option<Self>
    where
        Self: Sized,
    {
        let _ = (spec, id, ctx);
        None
    }

    /// The automaton realizing `kind` for a designated-faulty process,
    /// boxed. Default: boxes [`SyncAlgorithm::fleet_automaton`]'s
    /// [`FleetRole::Faulty`] result.
    ///
    /// # Panics
    ///
    /// Panics if the algorithm has no realization of `kind`.
    fn faulty(
        spec: &ScenarioSpec,
        id: ProcessId,
        kind: FaultKind,
        ctx: &AssemblyCtx<'_>,
    ) -> Box<dyn Automaton<Msg = Self::Msg>> {
        Box::new(
            Self::fleet_automaton(spec, id, FleetRole::Faulty(kind), ctx)
                .expect("fleet_automaton must realize designated faults"),
        )
    }

    /// The automaton of a §9.1 rejoiner, boxed, if the algorithm
    /// supports one. Default: boxes [`SyncAlgorithm::fleet_automaton`]'s
    /// [`FleetRole::Rejoiner`] result.
    fn rejoiner_automaton(
        spec: &ScenarioSpec,
        id: ProcessId,
        ctx: &AssemblyCtx<'_>,
    ) -> Option<Box<dyn Automaton<Msg = Self::Msg>>> {
        Self::fleet_automaton(spec, id, FleetRole::Rejoiner, ctx)
            .map(|a| Box::new(a) as Box<dyn Automaton<Msg = Self::Msg>>)
    }

    /// The automaton of an adversary *member* process, boxed. Default:
    /// the canonical realization
    /// ([`crate::adversary::canonical_member`]) — legacy-equivalent
    /// strategies map onto the same automata [`SyncAlgorithm::faulty`]
    /// builds for the corresponding [`FaultKind`], churn wraps the
    /// correct automaton, and delay-only strategies build the correct
    /// automaton unchanged. Algorithms override this to give the new
    /// strategies sharper realizations (see `Maintenance`'s
    /// member-aware collusion mask).
    ///
    /// # Panics
    ///
    /// Panics if the algorithm has no realization of the strategy.
    fn adversary_member(
        spec: &ScenarioSpec,
        id: ProcessId,
        adv: &crate::spec::AdversarySpec,
        ctx: &AssemblyCtx<'_>,
    ) -> Box<dyn Automaton<Msg = Self::Msg>>
    where
        Self: Sized,
    {
        crate::adversary::canonical_member::<Self>(spec, id, adv, ctx)
    }
}

/// The attacker's early-send threshold, chosen so the *honest* processes
/// are split down the middle: the smallest index with ⌈honest/2⌉ honest
/// processes strictly below it. Works for any placement of the designated
/// faulty ids, not just the low indices.
fn early_below(n: usize, spec: &ScenarioSpec) -> usize {
    let faulty: Vec<bool> = {
        let mut v = vec![false; n];
        for &(id, _) in &spec.faults {
            v[id.index()] = true;
        }
        v
    };
    let honest = faulty.iter().filter(|&&f| !f).count();
    let target = honest.div_ceil(2);
    let mut seen = 0usize;
    for (idx, &is_faulty) in faulty.iter().enumerate() {
        if seen == target {
            return idx;
        }
        if !is_faulty {
            seen += 1;
        }
    }
    n
}

/// The legacy Welch–Lynch threshold: assumes the `f` designated-faulty
/// processes occupy the low indices (`early_below = f + ⌈(n−f)/2⌉`).
/// Kept verbatim for the maintenance pull-apart — pinned by the
/// `harness_parity` byte-identity tests.
fn early_below_legacy_wl(n: usize, f: usize) -> usize {
    f + (n - f).div_ceil(2)
}

// ---------------------------------------------------------------------------
// Welch–Lynch maintenance (§4) — also hosts rejoiners and the full fault
// gallery.
// ---------------------------------------------------------------------------

impl SyncAlgorithm for Maintenance {
    type Msg = WlMsg;
    const NAME: &'static str = "Welch-Lynch";

    fn validate(spec: &ScenarioSpec) {
        spec.params.validate_timing().expect("invalid parameters");
    }

    fn discipline(_spec: &ScenarioSpec) -> StartDiscipline {
        StartDiscipline::RoundAligned {
            sim_seed_salt: 0x5EED,
        }
    }

    type FleetAuto = WlAlgoFleet;

    fn fleet_automaton(
        spec: &ScenarioSpec,
        id: ProcessId,
        role: FleetRole,
        ctx: &AssemblyCtx<'_>,
    ) -> Option<WlAlgoFleet> {
        let p = &spec.params;
        let n = p.n;
        Some(match role {
            FleetRole::Correct => WlAlgoFleet::Maintenance(Maintenance::new(id, p.clone(), 0.0)),
            FleetRole::Rejoiner => WlAlgoFleet::Rejoiner(Rejoiner::new(id, p.clone())),
            FleetRole::Faulty(kind) => match kind {
                FaultKind::CrashAt(t) => WlAlgoFleet::Crashed(CrashAt::new(
                    Maintenance::new(id, p.clone(), 0.0),
                    crash_phys_time(&ctx.clocks[id.index()], RealTime::from_secs(t)),
                )),
                FaultKind::Silent => WlAlgoFleet::Silent(SilentFor::<WlMsg>::default()),
                FaultKind::RoundSpam => WlAlgoFleet::Spammer(RoundSpammer::new(
                    n,
                    p.wait_window() / 2.0,
                    spec.seed.wrapping_add(id.index() as u64),
                    (p.t0 - 10.0 * p.p_round, p.t0 + 100.0 * p.p_round),
                )),
                // Against Welch–Lynch, the generic two-faced attack *is*
                // the pull-apart: lying about your clock means sending Tⁱ
                // at a shifted moment.
                FaultKind::PullApart(a) | FaultKind::TwoFaced(a) => WlAlgoFleet::PullApart(
                    PullApart::new(p.clone(), a, early_below_legacy_wl(n, p.f)),
                ),
                FaultKind::PullApartHigh(a) => {
                    // Early sends go to the upper-index honest half.
                    let threshold = p.f + (n - p.f) / 2;
                    let mask = (0..n).map(|q| q >= threshold).collect();
                    WlAlgoFleet::PullApart(PullApart::with_early_mask(p.clone(), a, mask))
                }
            },
        })
    }

    fn correct_mono(spec: &ScenarioSpec, id: ProcessId, _ctx: &AssemblyCtx<'_>) -> Option<Self> {
        Some(Maintenance::new(id, spec.params.clone(), 0.0))
    }

    fn adversary_member(
        spec: &ScenarioSpec,
        id: ProcessId,
        adv: &crate::spec::AdversarySpec,
        ctx: &AssemblyCtx<'_>,
    ) -> Box<dyn Automaton<Msg = WlMsg>> {
        if let crate::spec::AdversaryStrategy::Collude { amplitude } = adv.strategy {
            // A member-aware colluding mask: the early targets are the
            // upper half of the *non-member* processes, wherever the
            // members sit — every member pulls the same honest halves in
            // the same directions, so the per-member pulls add. (The
            // legacy threshold assumes attackers occupy the low indices;
            // search moves them around.)
            let n = spec.params.n;
            let honest: Vec<usize> = (0..n).filter(|&q| !adv.controls(ProcessId(q))).collect();
            let below = honest.len() / 2;
            let mask: Vec<bool> = (0..n)
                .map(|q| {
                    honest
                        .iter()
                        .position(|&h| h == q)
                        .is_some_and(|pos| pos >= below)
                })
                .collect();
            return Box::new(PullApart::with_early_mask(
                spec.params.clone(),
                amplitude,
                mask,
            ));
        }
        crate::adversary::canonical_member::<Self>(spec, id, adv, ctx)
    }
}

// ---------------------------------------------------------------------------
// Welch–Lynch reintegration (§9.1): a maintenance fleet in which
// `spec.rejoiner` names the repaired process. Same assembly as
// `Maintenance`; the tag exists so call sites can say what they mean.
// ---------------------------------------------------------------------------

impl SyncAlgorithm for Rejoiner {
    type Msg = WlMsg;
    const NAME: &'static str = "Welch-Lynch (rejoin)";

    fn validate(spec: &ScenarioSpec) {
        assert!(
            spec.rejoiner.is_some(),
            "a Rejoiner scenario needs `spec.rejoiner` set"
        );
        <Maintenance as SyncAlgorithm>::validate(spec);
    }

    fn discipline(spec: &ScenarioSpec) -> StartDiscipline {
        <Maintenance as SyncAlgorithm>::discipline(spec)
    }

    type FleetAuto = WlAlgoFleet;

    fn fleet_automaton(
        spec: &ScenarioSpec,
        id: ProcessId,
        role: FleetRole,
        ctx: &AssemblyCtx<'_>,
    ) -> Option<WlAlgoFleet> {
        <Maintenance as SyncAlgorithm>::fleet_automaton(spec, id, role, ctx)
    }
}

// ---------------------------------------------------------------------------
// Welch–Lynch startup (§9.2).
// ---------------------------------------------------------------------------

impl SyncAlgorithm for Startup {
    type Msg = WlMsg;
    const NAME: &'static str = "Welch-Lynch (startup)";

    fn discipline(_spec: &ScenarioSpec) -> StartDiscipline {
        StartDiscipline::ColdStart {
            sim_seed_salt: 0xF00D,
        }
    }

    type FleetAuto = WlAlgoFleet;

    fn fleet_automaton(
        spec: &ScenarioSpec,
        id: ProcessId,
        role: FleetRole,
        ctx: &AssemblyCtx<'_>,
    ) -> Option<WlAlgoFleet> {
        Some(match role {
            FleetRole::Correct => WlAlgoFleet::Startup(Startup::new(
                id,
                spec.startup_params(),
                ctx.initial_corrs[id.index()],
            )),
            FleetRole::Faulty(FaultKind::Silent) => {
                WlAlgoFleet::Silent(SilentFor::<WlMsg>::default())
            }
            FleetRole::Faulty(other) => {
                panic!("the startup scenarios only realize Silent faults, got {other:?}")
            }
            FleetRole::Rejoiner => return None,
        })
    }

    fn correct_mono(spec: &ScenarioSpec, id: ProcessId, ctx: &AssemblyCtx<'_>) -> Option<Self> {
        Some(Startup::new(
            id,
            spec.startup_params(),
            ctx.initial_corrs[id.index()],
        ))
    }
}

// ---------------------------------------------------------------------------
// §10 baselines. All three share the round-aligned discipline with the
// legacy 0xBA5E salt, Silent faults, and a two-faced attacker; they differ
// in message type and automata.
// ---------------------------------------------------------------------------

impl SyncAlgorithm for LmCnv {
    type Msg = CnvMsg;
    const NAME: &'static str = "LM-CNV";

    fn discipline(_spec: &ScenarioSpec) -> StartDiscipline {
        StartDiscipline::RoundAligned {
            sim_seed_salt: 0xBA5E,
        }
    }

    type FleetAuto = CnvAlgoFleet;

    fn fleet_automaton(
        spec: &ScenarioSpec,
        id: ProcessId,
        role: FleetRole,
        _ctx: &AssemblyCtx<'_>,
    ) -> Option<CnvAlgoFleet> {
        let p = &spec.params;
        Some(match role {
            FleetRole::Correct => CnvAlgoFleet::Correct(LmCnv::new(id, p.clone(), 0.0)),
            FleetRole::Faulty(FaultKind::Silent) => {
                CnvAlgoFleet::Silent(SilentFor::<CnvMsg>::default())
            }
            FleetRole::Faulty(FaultKind::TwoFaced(a)) => {
                CnvAlgoFleet::TwoFaced(ValueTwoFaced::new(
                    p.clone(),
                    a,
                    early_below(p.n, spec),
                    (|claim| CnvMsg(ClockTime::from_secs(claim))) as fn(f64) -> CnvMsg,
                ))
            }
            FleetRole::Faulty(other) => {
                panic!("LM-CNV scenarios realize Silent/TwoFaced faults, got {other:?}")
            }
            FleetRole::Rejoiner => return None,
        })
    }

    fn correct_mono(spec: &ScenarioSpec, id: ProcessId, _ctx: &AssemblyCtx<'_>) -> Option<Self> {
        Some(LmCnv::new(id, spec.params.clone(), 0.0))
    }
}

impl SyncAlgorithm for MahaneySchneider {
    type Msg = MsMsg;
    const NAME: &'static str = "Mahaney-Schneider";

    fn discipline(_spec: &ScenarioSpec) -> StartDiscipline {
        StartDiscipline::RoundAligned {
            sim_seed_salt: 0xBA5E,
        }
    }

    type FleetAuto = MsAlgoFleet;

    fn fleet_automaton(
        spec: &ScenarioSpec,
        id: ProcessId,
        role: FleetRole,
        _ctx: &AssemblyCtx<'_>,
    ) -> Option<MsAlgoFleet> {
        let p = &spec.params;
        Some(match role {
            FleetRole::Correct => MsAlgoFleet::Correct(MahaneySchneider::new(id, p.clone(), 0.0)),
            FleetRole::Faulty(FaultKind::Silent) => {
                MsAlgoFleet::Silent(SilentFor::<MsMsg>::default())
            }
            FleetRole::Faulty(FaultKind::TwoFaced(a)) => MsAlgoFleet::TwoFaced(ValueTwoFaced::new(
                p.clone(),
                a,
                early_below(p.n, spec),
                (|claim| MsMsg(ClockTime::from_secs(claim))) as fn(f64) -> MsMsg,
            )),
            FleetRole::Faulty(other) => {
                panic!("Mahaney-Schneider scenarios realize Silent/TwoFaced faults, got {other:?}")
            }
            FleetRole::Rejoiner => return None,
        })
    }

    fn correct_mono(spec: &ScenarioSpec, id: ProcessId, _ctx: &AssemblyCtx<'_>) -> Option<Self> {
        Some(MahaneySchneider::new(id, spec.params.clone(), 0.0))
    }
}

impl SyncAlgorithm for SrikanthToueg {
    type Msg = StMsg;
    const NAME: &'static str = "Srikanth-Toueg";

    fn discipline(_spec: &ScenarioSpec) -> StartDiscipline {
        StartDiscipline::RoundAligned {
            sim_seed_salt: 0xBA5E,
        }
    }

    type FleetAuto = StAlgoFleet;

    fn fleet_automaton(
        spec: &ScenarioSpec,
        id: ProcessId,
        role: FleetRole,
        _ctx: &AssemblyCtx<'_>,
    ) -> Option<StAlgoFleet> {
        let p = &spec.params;
        Some(match role {
            FleetRole::Correct => StAlgoFleet::Correct(SrikanthToueg::new(id, p.clone(), 0.0)),
            FleetRole::Faulty(FaultKind::Silent) => {
                StAlgoFleet::Silent(SilentFor::<StMsg>::default())
            }
            FleetRole::Faulty(FaultKind::TwoFaced(a)) => StAlgoFleet::TwoFaced(TimedTwoFaced::new(
                p.clone(),
                a,
                early_below(p.n, spec),
                (|round, _| StMsg {
                    round: round as u32,
                    echo: false,
                }) as fn(u64, f64) -> StMsg,
            )),
            FleetRole::Faulty(other) => {
                panic!("Srikanth-Toueg scenarios realize Silent/TwoFaced faults, got {other:?}")
            }
            FleetRole::Rejoiner => return None,
        })
    }

    fn correct_mono(spec: &ScenarioSpec, id: ProcessId, _ctx: &AssemblyCtx<'_>) -> Option<Self> {
        Some(SrikanthToueg::new(id, spec.params.clone(), 0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScenarioSpec;
    use wl_core::Params;

    fn spec_with_faults(n: usize, f: usize, faults: &[(usize, FaultKind)]) -> ScenarioSpec {
        let mut spec = ScenarioSpec::new(Params::auto(n, f, 1e-6, 0.010, 0.001).unwrap());
        for &(id, kind) in faults {
            spec = spec.fault(ProcessId(id), kind);
        }
        spec
    }

    #[test]
    fn early_below_matches_legacy_for_single_low_attacker() {
        // One attacker at index 0 — the only configuration the legacy
        // builders supported — must keep the legacy threshold.
        let spec = spec_with_faults(4, 1, &[(0, FaultKind::TwoFaced(0.01))]);
        assert_eq!(early_below(4, &spec), 1 + 3usize.div_ceil(2));
        let spec = spec_with_faults(7, 2, &[(0, FaultKind::TwoFaced(0.01))]);
        assert_eq!(early_below(7, &spec), 1 + 6usize.div_ceil(2));
    }

    #[test]
    fn early_below_splits_honest_set_with_high_index_faults() {
        // Silent fault at a HIGH index must not shift the early window
        // into the honest range: honest = {0,1,...,5} minus the attacker,
        // threshold puts ceil(honest/2) honest processes below it.
        let spec = spec_with_faults(
            7,
            2,
            &[(0, FaultKind::TwoFaced(0.01)), (6, FaultKind::Silent)],
        );
        // honest = {1,2,3,4,5}, ceil(5/2) = 3 below -> threshold after id 3.
        assert_eq!(early_below(7, &spec), 4);
    }

    #[test]
    fn legacy_wl_threshold_unchanged() {
        assert_eq!(early_below_legacy_wl(4, 1), 3);
        assert_eq!(early_below_legacy_wl(7, 2), 5);
    }
}
