//! [`ScenarioSpec`]: the algorithm-agnostic description of a scenario.
//!
//! A spec realizes the paper's assumptions concretely:
//!
//! * physical clocks from a [`DriftModel`] (A1), with initial offsets
//!   chosen so the initial logical clocks of nonfaulty processes are
//!   within β (A4) — or deliberately *not*, for the startup scenarios;
//! * a delay model within `[δ−ε, δ+ε]` (A3);
//! * START messages delivered exactly when each initial logical clock
//!   reads `T⁰` (A4) — or inside a small real-time window, for startup;
//! * a fault plan assigning behaviours to up to `f` processes (A2) — or
//!   more, for the impossibility experiments.
//!
//! The same spec can be assembled under any [`SyncAlgorithm`]: experiment
//! E11 runs Welch–Lynch, LM-CNV, Mahaney–Schneider, and Srikanth–Toueg
//! from literally the same value, so "identical conditions" is a type-level
//! guarantee instead of a code-review obligation.
//!
//! [`SyncAlgorithm`]: crate::SyncAlgorithm

use wl_clock::drift::DriftModel;
use wl_core::{Params, StartupParams};
use wl_sim::ProcessId;
use wl_time::RealTime;

/// Which delay model a scenario uses (all within the A3 band).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum DelayKind {
    /// Every message takes exactly δ.
    Constant,
    /// Uniform noise over `[δ−ε, δ+ε]`.
    Uniform,
    /// Adversarial: fast to the low-index half, slow to the rest.
    AdversarialSplit,
}

/// Fault behaviours assignable to a process.
///
/// Each algorithm realizes the kinds that make sense for its message
/// alphabet (see [`SyncAlgorithm::faulty`]); asking for an unsupported
/// kind panics with a clear message.
///
/// [`SyncAlgorithm::faulty`]: crate::SyncAlgorithm::faulty
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub enum FaultKind {
    /// Correct until the given real time, then silent.
    CrashAt(f64),
    /// Never sends anything.
    Silent,
    /// Sends random protocol-shaped `Round` noise.
    RoundSpam,
    /// The two-faced early/late attack with the given amplitude (seconds).
    PullApart(f64),
    /// The two-faced attack targeting the *upper-index* half of the honest
    /// processes with the early send (with even-spread drift, those are the
    /// fast clocks — the strongest configuration, used by the
    /// fault-boundary experiment E12).
    PullApartHigh(f64),
    /// The value/timing two-faced attack against the baselines: claims a
    /// clock `amplitude` ahead to the low half and `amplitude` behind to
    /// the rest. For Welch–Lynch this is realized as [`FaultKind::PullApart`].
    TwoFaced(f64),
}

/// A pluggable adversary strategy: *how* the adversary's member processes
/// misbehave, and how the adversary steers message delays within the A3
/// band `[δ−ε, δ+ε]`.
///
/// The closed [`FaultKind`] enum assigns one behaviour per process; a
/// strategy instead describes a coordinated, stateful plan for a *group*
/// of members (see [`AdversarySpec`]). The first five variants are the
/// canonical reimplementations of the legacy kinds; the rest are new
/// attacks the enum could not express. Realization lives in
/// [`crate::adversary`]; each algorithm realizes the strategies that make
/// sense for its message alphabet and panics with a clear message
/// otherwise, exactly like [`FaultKind`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub enum AdversaryStrategy {
    /// Correct until the given real time, then silent
    /// (canonical [`FaultKind::CrashAt`]).
    Crash {
        /// Crash time (real seconds).
        at: f64,
    },
    /// Never sends anything (canonical [`FaultKind::Silent`]).
    Mute,
    /// Sends random protocol-shaped `Round` noise
    /// (canonical [`FaultKind::RoundSpam`]).
    Spam,
    /// The two-faced early/late timing attack (canonical
    /// [`FaultKind::PullApart`] / [`FaultKind::PullApartHigh`]).
    PullApart {
        /// Attack amplitude (seconds).
        amplitude: f64,
        /// `true` targets the upper-index honest half with the early send
        /// (the strongest split under even-spread drift).
        high: bool,
    },
    /// Two-faced clock *values*: claims a clock `amplitude` ahead to one
    /// half and `amplitude` behind to the other (canonical
    /// [`FaultKind::TwoFaced`]).
    TwoFacedValue {
        /// Claimed-value offset (seconds).
        amplitude: f64,
    },
    /// Collusion group: every member runs the two-faced timing attack in
    /// phase with a shared amplitude and the *same* early-target mask, so
    /// the per-member pulls add instead of cancelling.
    Collude {
        /// Shared attack amplitude (seconds).
        amplitude: f64,
    },
    /// Crash-recovery churn: alive for `up` real seconds, dead for `down`,
    /// repeating. While dead the member drops all output (like a crash);
    /// on recovery it resumes its correct automaton's state.
    Churn {
        /// Seconds alive per cycle.
        up: f64,
        /// Seconds dead per cycle.
        down: f64,
    },
    /// Members stay protocol-correct but the adversary schedules delays:
    /// member→victim messages ride the top of the band (δ+ε) while
    /// victim→member messages ride the bottom (δ−ε) — targeted asymmetric
    /// delays against one process.
    TargetedDelay {
        /// Index of the targeted process.
        victim: usize,
    },
    /// Partial connectivity: member↔member edges ride the top of the band
    /// and member↔non-member edges the bottom, threaded through the
    /// delay model's per-pair state. Members stay protocol-correct.
    Partition,
}

impl AdversaryStrategy {
    /// Whether the strategy misbehaves only through *delay scheduling*
    /// (members run their correct automata).
    #[must_use]
    pub fn is_delay_only(&self) -> bool {
        matches!(
            self,
            AdversaryStrategy::TargetedDelay { .. } | AdversaryStrategy::Partition
        )
    }
}

/// The adversary block of a [`ScenarioSpec`]: which processes the
/// adversary controls, the [`AdversaryStrategy`] they execute, and the
/// adversary's private RNG seed.
///
/// This is the canonically-serializable grammar the whole stack speaks:
/// it hashes into [`ScenarioSpec::content_hash`], serializes through the
/// cache's canonical text form and the service wire codec, and persists
/// in the segment store under the adversarial record tags (`A`/`B` — see
/// `docs/store-format.md`).
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct AdversarySpec {
    /// The processes the adversary controls (its *members*).
    pub members: Vec<ProcessId>,
    /// The strategy all members execute.
    pub strategy: AdversaryStrategy,
    /// The adversary's private seed (independent of the spec seed, so
    /// search can vary the adversary without disturbing the environment).
    pub seed: u64,
}

impl AdversarySpec {
    /// An adversary controlling `members` running `strategy`.
    #[must_use]
    pub fn new(members: Vec<ProcessId>, strategy: AdversaryStrategy) -> Self {
        Self {
            members,
            strategy,
            seed: 1,
        }
    }

    /// Sets the adversary's private seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether `id` is one of the adversary's members.
    #[must_use]
    pub fn controls(&self, id: ProcessId) -> bool {
        self.members.contains(&id)
    }
}

/// A fully specified scenario, ready to assemble under any algorithm.
///
/// Construct with [`ScenarioSpec::new`] (round-aligned, A4 start) or
/// [`ScenarioSpec::startup`] (§9.2 cold start), then chain the builder
/// methods. The spec is plain data: `Clone` it, mutate copies for grid
/// sweeps, send it across threads.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct ScenarioSpec {
    /// The paper's global constants.
    pub params: Params,
    /// Drift model; `None` uses the adversarial default — `Split` at
    /// `params.rho`, or `Ideal` when `rho == 0`.
    pub drift: Option<DriftModel>,
    /// Message-delay model (default: uniform).
    pub delay: DelayKind,
    /// RNG seed for offsets, drift rates, corrections, and delays.
    pub seed: u64,
    /// Simulated horizon.
    pub t_end: RealTime,
    /// Fraction of β used as the initial offset window (A4 headroom).
    pub spread_frac: f64,
    /// Fault behaviours per process.
    pub faults: Vec<(ProcessId, FaultKind)>,
    /// §9.1 rejoiner: the process and its repair time. It counts as
    /// faulty until it rejoins.
    pub rejoiner: Option<(ProcessId, RealTime)>,
    /// Pluggable adversary: a coordinated strategy over a member group,
    /// replacing (and strictly generalizing) static `faults` entries.
    /// `None` means no adversary — the spec hashes and serializes exactly
    /// as it did before the Adversary API existed.
    pub adversary: Option<AdversarySpec>,
    /// Trace capacity (0 = tracing disabled).
    pub trace_capacity: usize,
    /// Safety valve on event count (0 = unlimited).
    pub max_events: u64,
    /// §9.2 startup only: width (seconds) of the arbitrary initial
    /// correction window.
    pub initial_spread: f64,
}

impl ScenarioSpec {
    /// A round-aligned (A4) scenario with the defaults the experiments
    /// assume: split drift at `params.rho`, uniform delays, 30 simulated
    /// seconds, 80% of β as the initial offset window, no faults.
    #[must_use]
    pub fn new(params: Params) -> Self {
        Self {
            params,
            drift: None,
            delay: DelayKind::Uniform,
            seed: 1,
            t_end: RealTime::from_secs(30.0),
            spread_frac: 0.8,
            faults: Vec::new(),
            rejoiner: None,
            adversary: None,
            trace_capacity: 0,
            max_events: 0,
            initial_spread: 0.0,
        }
    }

    /// A §9.2 cold-start scenario: clocks with the same rate behaviour as
    /// [`ScenarioSpec::new`], but initial *corrections* arbitrary within
    /// ±`initial_spread/2` — the clocks start wildly unsynchronized.
    ///
    /// Startup needs only the A1–A3 constants; `β` and `P` exist in
    /// [`Params`] for the round-aligned algorithms and the analysis
    /// helpers, so workable values are derived here **without** demanding
    /// §5.2 feasibility — high-drift startup scenarios (where no feasible
    /// maintenance `(β, P)` exists) remain constructible, exactly as the
    /// legacy `build_startup` allowed.
    #[must_use]
    pub fn startup(sp: &StartupParams, initial_spread: f64) -> Self {
        let params = Params::auto(sp.n, sp.f, sp.rho, sp.delta, sp.eps).unwrap_or_else(|_| {
            // No feasible maintenance round exists; fill β/P with the
            // natural scales so analysis windows stay meaningful. The
            // cold-start assembly itself only reads ρ and δ.
            let beta = 4.5 * sp.eps + 8.0 * sp.rho * sp.delta + 1e-7;
            Params {
                n: sp.n,
                f: sp.f,
                rho: sp.rho,
                delta: sp.delta,
                eps: sp.eps,
                beta,
                p_round: wl_core::params::min_p(sp.rho, sp.delta, sp.eps, beta),
                t0: 1.0,
                avg: wl_core::AveragingFn::default(),
                sigma: 0.0,
                exchanges: 1,
            }
        });
        let mut spec = Self::new(params);
        spec.initial_spread = initial_spread;
        spec
    }

    /// Sets the RNG seed (offsets, drift rates, corrections, delays).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the simulated horizon.
    #[must_use]
    pub fn t_end(mut self, t_end: RealTime) -> Self {
        self.t_end = t_end;
        self
    }

    /// Sets the drift model.
    #[must_use]
    pub fn drift(mut self, drift: DriftModel) -> Self {
        self.drift = Some(drift);
        self
    }

    /// Sets the delay model.
    #[must_use]
    pub fn delay(mut self, delay: DelayKind) -> Self {
        self.delay = delay;
        self
    }

    /// Sets the fraction of β used for initial offsets (default 0.8).
    #[must_use]
    pub fn spread_frac(mut self, frac: f64) -> Self {
        self.spread_frac = frac;
        self
    }

    /// Assigns a fault behaviour to a process.
    #[must_use]
    pub fn fault(mut self, p: ProcessId, kind: FaultKind) -> Self {
        self.faults.push((p, kind));
        self
    }

    /// Marks the listed processes silent (legacy baseline-builder shape).
    #[must_use]
    pub fn silent(mut self, ids: &[ProcessId]) -> Self {
        for &id in ids {
            self.faults.push((id, FaultKind::Silent));
        }
        self
    }

    /// Replaces process `p` with a §9.1 rejoiner repaired at `repair_at`.
    #[must_use]
    pub fn rejoiner(mut self, p: ProcessId, repair_at: RealTime) -> Self {
        self.rejoiner = Some((p, repair_at));
        self
    }

    /// Installs a pluggable adversary (see [`AdversarySpec`]).
    #[must_use]
    pub fn adversary(mut self, adv: AdversarySpec) -> Self {
        self.adversary = Some(adv);
        self
    }

    /// Enables trace recording with the given capacity.
    #[must_use]
    pub fn trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Sets the event-count safety valve.
    #[must_use]
    pub fn max_events(mut self, max_events: u64) -> Self {
        self.max_events = max_events;
        self
    }

    /// The default drift model for these parameters: the adversarial
    /// `Split` extreme, or `Ideal` when drift is disabled.
    #[must_use]
    pub fn effective_drift(&self) -> DriftModel {
        self.drift.clone().unwrap_or({
            if self.params.rho > 0.0 {
                DriftModel::Split {
                    rho: self.params.rho,
                }
            } else {
                DriftModel::Ideal
            }
        })
    }

    /// The startup constants corresponding to `params`.
    ///
    /// # Panics
    ///
    /// Panics if `params` violates A2/A3 (impossible for validated specs).
    #[must_use]
    pub fn startup_params(&self) -> StartupParams {
        let p = &self.params;
        StartupParams::new(p.n, p.f, p.rho, p.delta, p.eps)
            .expect("spec params satisfy the startup constraints")
    }

    /// Builds and runs nothing — convenience passthrough to
    /// [`assemble()`](crate::assemble()) for fluent call sites.
    #[must_use]
    pub fn build<A: crate::SyncAlgorithm>(&self) -> crate::BuiltScenario<A::Msg> {
        crate::assemble::<A>(self)
    }

    /// The spec with its drift made explicit (`drift: None` and an
    /// explicit [`ScenarioSpec::effective_drift`] assemble identically,
    /// so the cache must treat them as the same spec — as the hash does).
    #[must_use]
    pub(crate) fn canonical(&self) -> ScenarioSpec {
        let mut spec = self.clone();
        spec.drift = Some(self.effective_drift());
        spec
    }

    /// A stable content hash of everything that determines this spec's
    /// execution.
    ///
    /// Equal *specs* assemble into bit-identical executions under the
    /// same algorithm (executions are pure functions of the spec), so
    /// [`crate::SweepCache`] uses this hash as its lookup key — and,
    /// because a 64-bit non-cryptographic hash can collide in principle,
    /// confirms every hit by comparing the stored spec for equality.
    /// The hash is FNV-1a over a fixed field serialization — stable
    /// across machines and runs, *not* across releases that add spec
    /// fields (the disk store additionally gates every record on
    /// [`crate::cache::ENGINE_VERSION`] for exactly that reason).
    ///
    /// # Examples
    ///
    /// ```
    /// use wl_core::Params;
    /// use wl_harness::ScenarioSpec;
    ///
    /// let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap();
    /// let spec = ScenarioSpec::new(params).seed(7);
    ///
    /// // Equal specs hash equally; any execution-relevant edit changes it.
    /// assert_eq!(spec.content_hash(), spec.clone().content_hash());
    /// assert_ne!(spec.content_hash(), spec.clone().seed(8).content_hash());
    ///
    /// // `drift: None` and its explicit default are the *same* execution,
    /// // and hash identically.
    /// let explicit = spec.clone().drift(spec.effective_drift());
    /// assert_eq!(spec.content_hash(), explicit.content_hash());
    /// ```
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |v: u64| {
            // FNV-1a, one byte at a time, over the little-endian word.
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        let p = &self.params;
        mix(p.n as u64);
        mix(p.f as u64);
        mix(p.rho.to_bits());
        mix(p.delta.to_bits());
        mix(p.eps.to_bits());
        mix(p.beta.to_bits());
        mix(p.p_round.to_bits());
        mix(p.t0.to_bits());
        mix(match p.avg {
            wl_core::AveragingFn::Midpoint => 0,
            wl_core::AveragingFn::Mean => 1,
        });
        mix(p.sigma.to_bits());
        mix(p.exchanges as u64);
        match self.effective_drift() {
            DriftModel::Ideal => mix(0),
            DriftModel::EvenSpread { rho } => {
                mix(1);
                mix(rho.to_bits());
            }
            DriftModel::Split { rho } => {
                mix(2);
                mix(rho.to_bits());
            }
            DriftModel::RandomConstant { rho } => {
                mix(3);
                mix(rho.to_bits());
            }
            DriftModel::RandomPiecewise {
                rho,
                segment_secs,
                horizon_secs,
            } => {
                mix(4);
                mix(rho.to_bits());
                mix(segment_secs.to_bits());
                mix(horizon_secs.to_bits());
            }
        }
        mix(match self.delay {
            DelayKind::Constant => 0,
            DelayKind::Uniform => 1,
            DelayKind::AdversarialSplit => 2,
        });
        mix(self.seed);
        mix(self.t_end.as_secs().to_bits());
        mix(self.spread_frac.to_bits());
        mix(self.faults.len() as u64);
        for &(id, kind) in &self.faults {
            mix(id.index() as u64);
            match kind {
                FaultKind::CrashAt(t) => {
                    mix(0);
                    mix(t.to_bits());
                }
                FaultKind::Silent => mix(1),
                FaultKind::RoundSpam => mix(2),
                FaultKind::PullApart(a) => {
                    mix(3);
                    mix(a.to_bits());
                }
                FaultKind::PullApartHigh(a) => {
                    mix(4);
                    mix(a.to_bits());
                }
                FaultKind::TwoFaced(a) => {
                    mix(5);
                    mix(a.to_bits());
                }
            }
        }
        match self.rejoiner {
            None => mix(0),
            Some((id, at)) => {
                mix(1);
                mix(id.index() as u64);
                mix(at.as_secs().to_bits());
            }
        }
        mix(self.trace_capacity as u64);
        mix(self.max_events);
        mix(self.initial_spread.to_bits());
        // The adversary block mixes *only when present*: every legacy
        // (non-adversarial) spec keeps the hash it had before the field
        // existed, and the ENGINE_VERSION gate handles the format epoch.
        if let Some(adv) = &self.adversary {
            mix(0xad5e_c0de);
            mix(adv.members.len() as u64);
            for &m in &adv.members {
                mix(m.index() as u64);
            }
            match adv.strategy {
                AdversaryStrategy::Crash { at } => {
                    mix(0);
                    mix(at.to_bits());
                }
                AdversaryStrategy::Mute => mix(1),
                AdversaryStrategy::Spam => mix(2),
                AdversaryStrategy::PullApart { amplitude, high } => {
                    mix(3);
                    mix(amplitude.to_bits());
                    mix(u64::from(high));
                }
                AdversaryStrategy::TwoFacedValue { amplitude } => {
                    mix(4);
                    mix(amplitude.to_bits());
                }
                AdversaryStrategy::Collude { amplitude } => {
                    mix(5);
                    mix(amplitude.to_bits());
                }
                AdversaryStrategy::Churn { up, down } => {
                    mix(6);
                    mix(up.to_bits());
                    mix(down.to_bits());
                }
                AdversaryStrategy::TargetedDelay { victim } => {
                    mix(7);
                    mix(victim as u64);
                }
                AdversaryStrategy::Partition => mix(8),
            }
            mix(adv.seed);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{assemble, Startup};

    #[test]
    fn content_hash_stable_and_sensitive() {
        let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap();
        let spec = ScenarioSpec::new(params.clone()).seed(7);
        assert_eq!(spec.content_hash(), spec.clone().content_hash());
        assert_ne!(
            spec.content_hash(),
            spec.clone().seed(8).content_hash(),
            "seed must be part of the identity"
        );
        assert_ne!(
            spec.content_hash(),
            spec.clone().delay(DelayKind::Constant).content_hash()
        );
        assert_ne!(
            spec.content_hash(),
            spec.clone()
                .fault(ProcessId(1), crate::FaultKind::Silent)
                .content_hash()
        );
        assert_ne!(
            spec.content_hash(),
            spec.clone().t_end(RealTime::from_secs(31.0)).content_hash()
        );
        // The None drift and its explicit default hash identically
        // (effective_drift is what the assembly consumes).
        assert_eq!(
            spec.content_hash(),
            spec.clone().drift(spec.effective_drift()).content_hash()
        );
    }

    #[test]
    fn adversary_block_extends_the_hash_without_disturbing_legacy_specs() {
        let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap();
        let spec = ScenarioSpec::new(params).seed(7);
        let adv = AdversarySpec::new(
            vec![ProcessId(0)],
            AdversaryStrategy::PullApart {
                amplitude: 0.002,
                high: false,
            },
        );
        let with = spec.clone().adversary(adv.clone());
        // Installing an adversary changes the identity...
        assert_ne!(spec.content_hash(), with.content_hash());
        // ...and every adversary dimension is part of it.
        assert_ne!(
            with.content_hash(),
            spec.clone().adversary(adv.clone().seed(2)).content_hash(),
            "adversary seed must be part of the identity"
        );
        assert_ne!(
            with.content_hash(),
            spec.clone()
                .adversary(AdversarySpec::new(
                    vec![ProcessId(1)],
                    AdversaryStrategy::PullApart {
                        amplitude: 0.002,
                        high: false,
                    },
                ))
                .content_hash(),
            "member set must be part of the identity"
        );
        assert_ne!(
            with.content_hash(),
            spec.clone()
                .adversary(AdversarySpec::new(
                    vec![ProcessId(0)],
                    AdversaryStrategy::PullApart {
                        amplitude: 0.003,
                        high: false,
                    },
                ))
                .content_hash(),
            "strategy parameters must be part of the identity"
        );
        assert_ne!(
            with.content_hash(),
            spec.clone()
                .adversary(AdversarySpec::new(
                    vec![ProcessId(0)],
                    AdversaryStrategy::PullApart {
                        amplitude: 0.002,
                        high: true,
                    },
                ))
                .content_hash()
        );
    }

    #[test]
    fn startup_constructible_at_high_drift() {
        // rho = 0.2 admits no feasible maintenance (beta, P), but startup
        // only needs A1-A3 — the legacy build_startup accepted this and
        // the harness must too.
        let sp = StartupParams::new(4, 1, 0.2, 0.010, 0.001).unwrap();
        let spec = ScenarioSpec::startup(&sp, 2.0)
            .seed(5)
            .t_end(RealTime::from_secs(2.0));
        let mut sim = assemble::<Startup>(&spec).sim;
        assert!(sim.run().stats.messages_sent > 0);
    }
}
