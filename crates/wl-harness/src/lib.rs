//! Unified scenario harness: one assembly path and one sweep engine for
//! **every** synchronization algorithm in the workspace.
//!
//! Before this crate existed, `wl-core::scenario` and
//! `wl-baselines::scenario` each hand-rolled the same assembly steps —
//! draw initial offsets, build drift clocks, compute START times, wrap
//! faulty processes, pick a delay model, seed the simulator — and every
//! experiment binary wrote its own serial sweep loop on top. This crate
//! owns all of that:
//!
//! * [`ScenarioSpec`] — a plain-data description of a scenario: parameters,
//!   drift model, delay model, fault plan, seed, horizon. Algorithm
//!   agnostic; build it once, run it under any algorithm.
//! * [`SyncAlgorithm`] — the plug-in trait. Implemented for the paper's
//!   [`Maintenance`], [`Startup`] and [`Rejoiner`] automata and for the
//!   §10 baselines [`LmCnv`], [`MahaneySchneider`] and [`SrikanthToueg`].
//!   An algorithm contributes its message type, its per-process automata
//!   (correct, faulty, rejoining), and its start discipline; the harness
//!   contributes everything else.
//! * [`assemble()`](assemble()) — the single assembly function:
//!   `assemble::<A>(&spec)` → a ready-to-run [`BuiltScenario`]. The
//!   engine's queue is pluggable per `wl-sim`'s `EventQueue`:
//!   [`assemble_calendar`] swaps the binary heap for a calendar queue
//!   tuned to the spec's delay band, and [`assemble_with_queue`] accepts
//!   any queue — all byte-identical in behaviour (`queue_parity` tests).
//! * [`run`] — shared measurement helpers (`run_summary`,
//!   `baseline_metrics`, `skew_series`) generic over the message type, so
//!   Welch–Lynch runs and baseline runs are summarized by the same code.
//! * [`SweepRunner`] — fans a grid of specs across threads with
//!   deterministic per-scenario seed derivation ([`derive_seed`]). Results
//!   are identical at any thread count, including one. Grids also split
//!   across *processes and machines*: [`Shard`] + [`merge_sharded`]
//!   cover a grid k/N-wise with equality-confirmed reassembly.
//! * [`cache`] — the persistence layer: [`SweepCache`] memoizes per-spec
//!   results in memory; [`SweepStore`] persists them to a
//!   content-addressed, corruption-tolerant record file shared across
//!   experiment binaries and machines ([`DiskSweepCache`] bundles both).
//!   A sweep re-run against a warm store executes **zero** simulations —
//!   including series-hungry figure experiments, via the optional
//!   [`SweepSeries`] record payload
//!   ([`SweepRunner::sweep_cached_series`]). See `docs/sweeps.md` for
//!   the format and the determinism contract.
//! * [`service`] — the results-service layer: [`serve`] runs a
//!   long-lived server that owns one hot [`SweepStore`], answers warm
//!   lookups at memory speed, simulates misses on a resident pool, and
//!   checkpoints every batch before answering (`kill -9`-safe, like
//!   workers); [`ServiceSweepCache`] + the `WL_SWEEP_SERVICE` env knob
//!   make every cached sweep resolve *local store → service →
//!   simulate* (`sweep_serve` is the CLI). See `docs/service.md`.
//! * [`driver`] — the multi-process layer: [`run_worker`] executes one
//!   shard with checkpointed, resumable stores; [`drive`] spawns one
//!   worker subprocess per shard, monitors heartbeats, restarts crashed
//!   or stalled workers under a bounded budget, and auto-merges the
//!   shard stores into a store byte-identical to a 1-process run
//!   (`sweep_drive` is the CLI).
//!
//! # Quickstart
//!
//! ```
//! use wl_harness::{assemble, Maintenance, ScenarioSpec, SweepRunner};
//! use wl_core::Params;
//! use wl_time::RealTime;
//!
//! let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap();
//!
//! // One scenario:
//! let spec = ScenarioSpec::new(params.clone())
//!     .seed(42)
//!     .t_end(RealTime::from_secs(10.0));
//! let outcome = assemble::<Maintenance>(&spec).sim.run();
//! assert!(outcome.stats.events_delivered > 0);
//!
//! // A parallel sweep over seeds (deterministic at any thread count):
//! let specs: Vec<ScenarioSpec> = (0..4)
//!     .map(|i| {
//!         ScenarioSpec::new(params.clone())
//!             .seed(wl_harness::derive_seed(42, i))
//!             .t_end(RealTime::from_secs(5.0))
//!     })
//!     .collect();
//! let skews = SweepRunner::new().run(specs, |_, spec| {
//!     wl_harness::run::steady_skew(assemble::<Maintenance>(spec), 5.0)
//! });
//! assert_eq!(skews.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod algo;
pub mod assemble;
pub mod cache;
pub mod driver;
pub mod fleet;
pub mod frontier;
pub mod run;
pub mod search;
pub mod service;
pub mod sketch;
pub mod spec;
pub mod sweep;
pub mod transport;

pub use adversary::{
    Adversary, AdversaryActor, AdversaryDelay, ChurnStrategy, LinkPlan, TargetedLinks,
};
pub use algo::{AssemblyCtx, FleetRole, StartDiscipline, SyncAlgorithm};
pub use assemble::{
    assemble, assemble_calendar, assemble_enum, assemble_enum_with_queue, assemble_mono,
    assemble_mono_null, assemble_mono_observed, assemble_with_queue, BuiltScenario, EnumScenario,
    MonoScenario,
};
pub use cache::{
    CompactStats, DiskSweepCache, MergeConflict, MergeConflictKind, MergeStats, MigrationReport,
    StoreFormat, SweepStore, ENGINE_VERSION,
};
pub use driver::{
    drive, run_worker, DriveError, DriveReport, DriverConfig, WorkerConfig, WorkerProgress,
};
pub use fleet::{CnvAlgoFleet, MsAlgoFleet, StAlgoFleet, WlAlgoFleet};
pub use frontier::{
    run_worker_frontier, Claim, Frontier, FrontierError, FrontierProgress, FrontierSpec,
    FrontierStatus, FrontierWorkerConfig,
};
pub use search::{search_worst_case, SearchConfig, SearchReport};
pub use service::{
    serve, service_from_env, ServeConfig, ServeReport, ServiceAddr, ServiceClient, ServiceStats,
    ServiceSweepCache,
};
pub use sketch::{store_report, SketchObserver, SkewSketch};
pub use spec::{AdversarySpec, AdversaryStrategy, DelayKind, FaultKind, ScenarioSpec};
pub use sweep::{
    derive_seed, merge_sharded, Capture, Shard, ShardMergeError, SweepAlgorithm, SweepCache,
    SweepOutcome, SweepRequest, SweepRunner, SweepSeries, SweepSummary, TierPolicy,
};
pub use transport::{
    drive_frontier, DropBoxTransport, FrontierDriveError, FrontierDriveReport,
    FrontierDriverConfig, ServiceTransport, SubprocessTransport, WorkerLaunch, WorkerTransport,
};

// The algorithms, re-exported so harness users need a single import.
pub use wl_baselines::lm_cnv::LmCnv;
pub use wl_baselines::mahaney_schneider::MahaneySchneider;
pub use wl_baselines::srikanth_toueg::SrikanthToueg;
pub use wl_core::{Maintenance, Rejoiner, Startup};
