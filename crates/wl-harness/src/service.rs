//! The sweep-results **service**: a long-lived server over a
//! [`SweepStore`], and the client tier that lets any cached sweep resolve
//! grid points *local store → service → simulate*.
//!
//! PR 1–6 made sweep results content-addressed (keyed by
//! [`ScenarioSpec::content_hash`] + algorithm + [`ENGINE_VERSION`]),
//! equality-confirmed on every hit, and durable in a byte-pinned store
//! with O(batch) appending checkpoints. Every process still owned its own
//! store, though. This module turns the stack outward into **one hot
//! shared store serving many clients**:
//!
//! * [`serve`] — the server core. It owns a [`SweepStore`], answers warm
//!   lookups at memory speed from the in-RAM record index, batches misses
//!   onto a resident simulation pool (a [`SweepRunner`] — every point
//!   goes through the same per-point body as local sweeps, enum-fleet
//!   fast path included), and flushes every batch of new records with
//!   [`SweepStore::checkpoint`] **before** answering. A `kill -9` at any
//!   instant therefore leaves a loadable store — the same crash contract
//!   the driver pins for workers — and a graceful [shutdown](Request::Shutdown)
//!   rewrites the store canonically, so it compares byte-identical to a
//!   1-process local-store run over the same grid.
//! * [`ServiceClient`] — the blocking wire client (TCP or unix socket).
//! * [`ServiceSweepCache`] — the cache tier
//!   [`SweepRunner::sweep_cached`]/[`sweep_cached_series`] and
//!   [`run_worker`] consult when `WL_SWEEP_SERVICE` is set: before a
//!   sweep it batch-resolves every point its local cache lacks, and after
//!   the sweep it offers back (put-record) any point the service could
//!   not supply. The tier is strictly additive — losing the server mid
//!   run degrades to local simulation, never to an error.
//!
//! # Wire protocol
//!
//! Requests and responses travel in one framing (see `docs/service.md`
//! for the byte-level layout): a `u32` little-endian body length, then
//! the body — one opcode byte, the operation payload, and a trailing
//! FNV-1a 64-bit checksum over everything before it. Record payloads are
//! the *canonical* [`EncodedRecord`] bytes from `docs/store-format.md`,
//! so the wire format inherits the store's byte-level spec (and its
//! tamper tests: flip any byte of a frame and it is rejected, never
//! misread). Grid points inside a batch-get carry the full
//! [`ScenarioSpec`] in a fixed binary encoding; the server recomputes the
//! content hash from the decoded spec and refuses the point on mismatch,
//! so a codec drift degrades to a local simulation, never a wrong
//! result.
//!
//! [`sweep_cached_series`]: SweepRunner::sweep_cached_series
//! [`run_worker`]: crate::driver::run_worker
//! [`ScenarioSpec::content_hash`]: ScenarioSpec::content_hash

use crate::cache::segment::{
    record_tag, tag_has_series, tag_has_sketch, EncodedRecord, PayloadKind,
};
use crate::cache::{canon_string, parse_outcome, StoreFormat, SweepStore, ENGINE_VERSION};
use crate::spec::{AdversarySpec, AdversaryStrategy, DelayKind, FaultKind, ScenarioSpec};
use crate::sweep::{
    run_point, run_point_series, run_point_sketch, Capture, SweepAlgorithm, SweepCache, SweepRunner,
};
use std::collections::HashSet;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;
use wl_clock::drift::DriftModel;
use wl_core::{AveragingFn, Params};
use wl_sim::ProcessId;
use wl_time::RealTime;

// ---------------------------------------------------------------------------
// Addresses.
// ---------------------------------------------------------------------------

/// Where a sweep service listens: TCP or a unix-domain socket.
///
/// Parses from the `WL_SWEEP_SERVICE` convention: `unix:<path>` for a
/// unix socket, `tcp:<addr>` (or a bare `host:port`) for TCP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceAddr {
    /// A TCP address in `std::net` accepted syntax, e.g. `127.0.0.1:7171`.
    Tcp(String),
    /// A unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

impl ServiceAddr {
    /// Parses an address spec. Empty, `"0"`, and `"off"` mean *no
    /// service* (so the env knob can be cancelled per invocation).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim();
        if s.is_empty() || s == "0" || s == "off" {
            return None;
        }
        if let Some(path) = s.strip_prefix("unix:") {
            #[cfg(unix)]
            return Some(Self::Unix(PathBuf::from(path)));
            #[cfg(not(unix))]
            {
                let _ = path;
                return None;
            }
        }
        Some(Self::Tcp(s.strip_prefix("tcp:").unwrap_or(s).to_string()))
    }
}

impl std::fmt::Display for ServiceAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Tcp(addr) => write!(f, "tcp:{addr}"),
            #[cfg(unix)]
            Self::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// The service address configured in the environment, if any: reads
/// `WL_SWEEP_SERVICE` and parses it with [`ServiceAddr::parse`].
#[must_use]
pub fn service_from_env() -> Option<ServiceAddr> {
    std::env::var("WL_SWEEP_SERVICE")
        .ok()
        .and_then(|v| ServiceAddr::parse(&v))
}

// ---------------------------------------------------------------------------
// Frame I/O (shared by client and server).
// ---------------------------------------------------------------------------

/// Hard ceiling on one frame's body, against nonsense length prefixes.
/// Generous: a 48-point batch of series-bearing records is a few MiB.
const MAX_FRAME: u32 = 256 * 1024 * 1024;

/// A frame body is at least an opcode byte plus the 8-byte checksum.
const MIN_FRAME: u32 = 9;

fn fnv64(bytes: &[u8]) -> u64 {
    crate::cache::fnv64_seeded(crate::cache::FNV_OFFSET, bytes)
}

fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Writes one frame: `u32` LE length, the body, its FNV-1a checksum.
fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    let total = u32::try_from(body.len() + 8).map_err(|_| bad_data("frame too large"))?;
    if total > MAX_FRAME {
        return Err(bad_data("frame too large"));
    }
    w.write_all(&total.to_le_bytes())?;
    w.write_all(body)?;
    w.write_all(&fnv64(body).to_le_bytes())?;
    w.flush()
}

/// Validates a fully-read frame body (checksum trailer) and strips the
/// checksum. `None` = corrupt.
fn check_frame(buf: &[u8]) -> Option<&[u8]> {
    if buf.len() < MIN_FRAME as usize {
        return None;
    }
    let (body, crc) = buf.split_at(buf.len() - 8);
    if fnv64(body).to_le_bytes() != crc {
        return None;
    }
    Some(body)
}

/// Reads one frame, blocking. `Ok(None)` is a clean EOF *between*
/// frames; EOF or a checksum failure inside a frame is an error.
fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read(&mut len) {
        Ok(0) => return Ok(None),
        Ok(mut got) => {
            while got < 4 {
                match r.read(&mut len[got..])? {
                    0 => return Err(io::ErrorKind::UnexpectedEof.into()),
                    n => got += n,
                }
            }
        }
        Err(e) => return Err(e),
    }
    let total = u32::from_le_bytes(len);
    if !(MIN_FRAME..=MAX_FRAME).contains(&total) {
        return Err(bad_data("frame length out of range"));
    }
    let mut buf = vec![0u8; total as usize];
    r.read_exact(&mut buf)?;
    check_frame(&buf)
        .map(|body| Some(body.to_vec()))
        .ok_or_else(|| bad_data("frame checksum mismatch"))
}

// ---------------------------------------------------------------------------
// A little byte cursor for payload decoding.
// ---------------------------------------------------------------------------

struct Take<'a>(&'a [u8]);

impl<'a> Take<'a> {
    fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.0.len() < n {
            return None;
        }
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Some(head)
    }
    fn u8(&mut self) -> Option<u8> {
        self.bytes(1).map(|b| b[0])
    }
    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.bytes(2)?.try_into().ok()?))
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.bytes(4)?.try_into().ok()?))
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.bytes(8)?.try_into().ok()?))
    }
    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }
    fn str16(&mut self) -> Option<String> {
        let n = self.u16()? as usize;
        String::from_utf8(self.bytes(n)?.to_vec()).ok()
    }
    fn blob32(&mut self) -> Option<Vec<u8>> {
        let n = self.u32()? as usize;
        Some(self.bytes(n)?.to_vec())
    }
    fn record(&mut self) -> Option<EncodedRecord> {
        let (record, used) = EncodedRecord::decode(self.0)?;
        self.0 = &self.0[used..];
        Some(record)
    }
    fn done(&self) -> bool {
        self.0.is_empty()
    }
}

fn push_str16(out: &mut Vec<u8>, s: &str) {
    let len = u16::try_from(s.len()).expect("short string");
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn push_blob32(out: &mut Vec<u8>, b: &[u8]) {
    let len = u32::try_from(b.len()).expect("blob < 4 GiB");
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(b);
}

// ---------------------------------------------------------------------------
// The ScenarioSpec wire codec.
// ---------------------------------------------------------------------------

/// Encodes a [`ScenarioSpec`] into the fixed little-endian wire layout
/// (see `docs/service.md`). Floats travel as raw IEEE-754 bits, so the
/// roundtrip is exact — the server recomputes
/// [`ScenarioSpec::content_hash`] from the decoded spec and must get the
/// client's value back.
#[must_use]
pub fn encode_spec(spec: &ScenarioSpec) -> Vec<u8> {
    let mut out = Vec::with_capacity(160 + spec.faults.len() * 18);
    let f = |out: &mut Vec<u8>, v: f64| out.extend_from_slice(&v.to_bits().to_le_bytes());
    let u = |out: &mut Vec<u8>, v: u64| out.extend_from_slice(&v.to_le_bytes());
    let p = &spec.params;
    u(&mut out, p.n as u64);
    u(&mut out, p.f as u64);
    f(&mut out, p.rho);
    f(&mut out, p.delta);
    f(&mut out, p.eps);
    f(&mut out, p.beta);
    f(&mut out, p.p_round);
    f(&mut out, p.t0);
    out.push(match p.avg {
        AveragingFn::Midpoint => 0,
        AveragingFn::Mean => 1,
    });
    f(&mut out, p.sigma);
    u(&mut out, p.exchanges as u64);
    match &spec.drift {
        None => out.push(0),
        Some(DriftModel::Ideal) => out.push(1),
        Some(DriftModel::EvenSpread { rho }) => {
            out.push(2);
            f(&mut out, *rho);
        }
        Some(DriftModel::Split { rho }) => {
            out.push(3);
            f(&mut out, *rho);
        }
        Some(DriftModel::RandomConstant { rho }) => {
            out.push(4);
            f(&mut out, *rho);
        }
        Some(DriftModel::RandomPiecewise {
            rho,
            segment_secs,
            horizon_secs,
        }) => {
            out.push(5);
            f(&mut out, *rho);
            f(&mut out, *segment_secs);
            f(&mut out, *horizon_secs);
        }
    }
    out.push(match spec.delay {
        DelayKind::Constant => 0,
        DelayKind::Uniform => 1,
        DelayKind::AdversarialSplit => 2,
    });
    u(&mut out, spec.seed);
    f(&mut out, spec.t_end.as_secs());
    f(&mut out, spec.spread_frac);
    let count = u32::try_from(spec.faults.len()).expect("fault plan < 4G entries");
    out.extend_from_slice(&count.to_le_bytes());
    for &(id, kind) in &spec.faults {
        u(&mut out, id.index() as u64);
        match kind {
            FaultKind::CrashAt(t) => {
                out.push(0);
                f(&mut out, t);
            }
            FaultKind::Silent => out.push(1),
            FaultKind::RoundSpam => out.push(2),
            FaultKind::PullApart(a) => {
                out.push(3);
                f(&mut out, a);
            }
            FaultKind::PullApartHigh(a) => {
                out.push(4);
                f(&mut out, a);
            }
            FaultKind::TwoFaced(a) => {
                out.push(5);
                f(&mut out, a);
            }
        }
    }
    match spec.rejoiner {
        None => out.push(0),
        Some((id, at)) => {
            out.push(1);
            u(&mut out, id.index() as u64);
            f(&mut out, at.as_secs());
        }
    }
    u(&mut out, spec.trace_capacity as u64);
    u(&mut out, spec.max_events);
    f(&mut out, spec.initial_spread);
    match &spec.adversary {
        None => out.push(0),
        Some(adv) => {
            out.push(1);
            let members = u32::try_from(adv.members.len()).expect("member set < 4G entries");
            out.extend_from_slice(&members.to_le_bytes());
            for m in &adv.members {
                u(&mut out, m.index() as u64);
            }
            match adv.strategy {
                AdversaryStrategy::Crash { at } => {
                    out.push(0);
                    f(&mut out, at);
                }
                AdversaryStrategy::Mute => out.push(1),
                AdversaryStrategy::Spam => out.push(2),
                AdversaryStrategy::PullApart { amplitude, high } => {
                    out.push(3);
                    f(&mut out, amplitude);
                    out.push(u8::from(high));
                }
                AdversaryStrategy::TwoFacedValue { amplitude } => {
                    out.push(4);
                    f(&mut out, amplitude);
                }
                AdversaryStrategy::Collude { amplitude } => {
                    out.push(5);
                    f(&mut out, amplitude);
                }
                AdversaryStrategy::Churn { up, down } => {
                    out.push(6);
                    f(&mut out, up);
                    f(&mut out, down);
                }
                AdversaryStrategy::TargetedDelay { victim } => {
                    out.push(7);
                    u(&mut out, victim as u64);
                }
                AdversaryStrategy::Partition => out.push(8),
            }
            u(&mut out, adv.seed);
        }
    }
    out
}

/// The inverse of [`encode_spec`]. `None` = malformed (wrong length,
/// unknown variant byte, trailing bytes).
#[must_use]
pub fn decode_spec(bytes: &[u8]) -> Option<ScenarioSpec> {
    let mut t = Take(bytes);
    let params = Params {
        n: usize::try_from(t.u64()?).ok()?,
        f: usize::try_from(t.u64()?).ok()?,
        rho: t.f64()?,
        delta: t.f64()?,
        eps: t.f64()?,
        beta: t.f64()?,
        p_round: t.f64()?,
        t0: t.f64()?,
        avg: match t.u8()? {
            0 => AveragingFn::Midpoint,
            1 => AveragingFn::Mean,
            _ => return None,
        },
        sigma: t.f64()?,
        exchanges: usize::try_from(t.u64()?).ok()?,
    };
    let drift = match t.u8()? {
        0 => None,
        1 => Some(DriftModel::Ideal),
        2 => Some(DriftModel::EvenSpread { rho: t.f64()? }),
        3 => Some(DriftModel::Split { rho: t.f64()? }),
        4 => Some(DriftModel::RandomConstant { rho: t.f64()? }),
        5 => Some(DriftModel::RandomPiecewise {
            rho: t.f64()?,
            segment_secs: t.f64()?,
            horizon_secs: t.f64()?,
        }),
        _ => return None,
    };
    let delay = match t.u8()? {
        0 => DelayKind::Constant,
        1 => DelayKind::Uniform,
        2 => DelayKind::AdversarialSplit,
        _ => return None,
    };
    let seed = t.u64()?;
    let t_end = RealTime::from_secs(t.f64()?);
    let spread_frac = t.f64()?;
    let fault_count = t.u32()? as usize;
    let mut faults = Vec::with_capacity(fault_count.min(1024));
    for _ in 0..fault_count {
        let id = ProcessId(usize::try_from(t.u64()?).ok()?);
        let kind = match t.u8()? {
            0 => FaultKind::CrashAt(t.f64()?),
            1 => FaultKind::Silent,
            2 => FaultKind::RoundSpam,
            3 => FaultKind::PullApart(t.f64()?),
            4 => FaultKind::PullApartHigh(t.f64()?),
            5 => FaultKind::TwoFaced(t.f64()?),
            _ => return None,
        };
        faults.push((id, kind));
    }
    let rejoiner = match t.u8()? {
        0 => None,
        1 => Some((
            ProcessId(usize::try_from(t.u64()?).ok()?),
            RealTime::from_secs(t.f64()?),
        )),
        _ => return None,
    };
    let trace_capacity = usize::try_from(t.u64()?).ok()?;
    let max_events = t.u64()?;
    let initial_spread = t.f64()?;
    let adversary = match t.u8()? {
        0 => None,
        1 => {
            let member_count = t.u32()? as usize;
            let mut members = Vec::with_capacity(member_count.min(1024));
            for _ in 0..member_count {
                members.push(ProcessId(usize::try_from(t.u64()?).ok()?));
            }
            let strategy = match t.u8()? {
                0 => AdversaryStrategy::Crash { at: t.f64()? },
                1 => AdversaryStrategy::Mute,
                2 => AdversaryStrategy::Spam,
                3 => AdversaryStrategy::PullApart {
                    amplitude: t.f64()?,
                    high: match t.u8()? {
                        0 => false,
                        1 => true,
                        _ => return None,
                    },
                },
                4 => AdversaryStrategy::TwoFacedValue {
                    amplitude: t.f64()?,
                },
                5 => AdversaryStrategy::Collude {
                    amplitude: t.f64()?,
                },
                6 => AdversaryStrategy::Churn {
                    up: t.f64()?,
                    down: t.f64()?,
                },
                7 => AdversaryStrategy::TargetedDelay {
                    victim: usize::try_from(t.u64()?).ok()?,
                },
                8 => AdversaryStrategy::Partition,
                _ => return None,
            };
            let seed = t.u64()?;
            Some(AdversarySpec {
                members,
                strategy,
                seed,
            })
        }
        _ => return None,
    };
    let spec = ScenarioSpec {
        params,
        drift,
        delay,
        seed,
        t_end,
        spread_frac,
        faults,
        rejoiner,
        adversary,
        trace_capacity,
        max_events,
        initial_spread,
    };
    t.done().then_some(spec)
}

// ---------------------------------------------------------------------------
// Requests and responses.
// ---------------------------------------------------------------------------

const OP_GET: u8 = 0x01;
const OP_PUT: u8 = 0x02;
const OP_BATCH_GET: u8 = 0x03;
const OP_STATS: u8 = 0x04;
const OP_SHUTDOWN: u8 = 0x05;
const OP_PUT_BATCH: u8 = 0x06;

const RE_FOUND: u8 = 0x81;
const RE_MISS: u8 = 0x82;
const RE_OK: u8 = 0x83;
const RE_BATCH: u8 = 0x84;
const RE_STATS: u8 = 0x85;
const RE_ERR: u8 = 0x86;

/// One grid point of a [`Request::BatchGet`]: the content hash the
/// client derived, plus the full spec ([`encode_spec`] bytes) so the
/// server can simulate the point on a miss.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchItem {
    /// The client's [`ScenarioSpec::content_hash`] for this point.
    pub content_hash: u64,
    /// The [`encode_spec`] encoding of the point's spec.
    pub spec: Vec<u8>,
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Look up one record by key; never simulates.
    Get {
        /// The spec's content hash.
        content_hash: u64,
        /// The client's [`ENGINE_VERSION`] — a mismatch is a miss.
        engine_version: u32,
        /// Required payload richness (a record below it is a miss; a
        /// series record satisfies a sketch need).
        need: Capture,
        /// The algorithm name ([`crate::SyncAlgorithm::NAME`]).
        algo: String,
    },
    /// Contribute one canonical record (equality-confirmed insert).
    Put {
        /// The record, exactly as a store would hold it.
        record: EncodedRecord,
    },
    /// Resolve a batch of grid points: warm ones from the index, the
    /// rest simulated on the server's pool, inserted, checkpointed,
    /// and returned.
    BatchGet {
        /// The client's [`ENGINE_VERSION`]; a mismatch refuses the batch.
        engine_version: u32,
        /// The payload richness every returned record must satisfy.
        need: Capture,
        /// The algorithm name (must be one the server can assemble).
        algo: String,
        /// The grid points, in client order.
        items: Vec<BatchItem>,
    },
    /// Contribute many canonical records in one frame: one lock
    /// acquisition and one checkpoint for the whole batch, where the
    /// per-record [`Request::Put`] pays both per record. This is how
    /// frontier workers return a whole chunk's simulated points.
    PutBatch {
        /// The records, exactly as a store would hold them.
        records: Vec<EncodedRecord>,
    },
    /// Ask for the server's counters.
    Stats,
    /// Ask the server to checkpoint, rewrite its store canonically, and
    /// exit.
    Shutdown,
}

/// Server counters, as returned by [`Request::Stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Live records in the served store.
    pub records: u64,
    /// Grid points answered from the in-RAM index.
    pub warm_hits: u64,
    /// Grid points simulated on the server's pool.
    pub simulated: u64,
    /// Records accepted via [`Request::Put`] / [`Request::PutBatch`].
    pub puts: u64,
    /// Requests handled (all opcodes).
    pub requests: u64,
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The record for a [`Request::Get`] hit.
    Found {
        /// The canonical record.
        record: EncodedRecord,
    },
    /// A [`Request::Get`] miss.
    Miss,
    /// Acknowledges a [`Request::Put`] or [`Request::Shutdown`].
    Ok,
    /// Per-point results of a [`Request::BatchGet`], in request order.
    /// `None` = the server could not resolve the point (undecodable
    /// spec, hash mismatch, unknown algorithm); the client simulates it
    /// locally.
    Batch {
        /// One slot per requested item.
        items: Vec<Option<EncodedRecord>>,
    },
    /// The counters for a [`Request::Stats`].
    Stats {
        /// Current server counters.
        stats: ServiceStats,
    },
    /// The request was understood but refused.
    Err {
        /// Human-readable reason.
        message: String,
    },
}

/// The wire byte of a [`Capture`] need — `0`/`1` match what the v4
/// protocol sent for its scalar/series boolean, so `2` (sketch) is a
/// pure extension of the codec.
fn capture_byte(need: Capture) -> u8 {
    match need {
        Capture::Scalar => 0,
        Capture::Series => 1,
        Capture::Sketch => 2,
    }
}

/// The strict inverse of [`capture_byte`]. `None` = malformed.
fn capture_from_byte(byte: u8) -> Option<Capture> {
    match byte {
        0 => Some(Capture::Scalar),
        1 => Some(Capture::Series),
        2 => Some(Capture::Sketch),
        _ => None,
    }
}

/// Whether a record under `tag` can satisfy `need` without parsing its
/// payload — the tag-level prefilter; the outcome-level
/// [`Capture::satisfied_by`] confirms after parsing.
fn tag_satisfies(need: Capture, tag: u8) -> bool {
    match need {
        Capture::Scalar => true,
        Capture::Sketch => tag_has_sketch(tag) || tag_has_series(tag),
        Capture::Series => tag_has_series(tag),
    }
}

/// Encodes a request into a frame body (opcode + payload, no checksum —
/// the framing layer adds it).
#[must_use]
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match req {
        Request::Get {
            content_hash,
            engine_version,
            need,
            algo,
        } => {
            out.push(OP_GET);
            out.extend_from_slice(&content_hash.to_le_bytes());
            out.extend_from_slice(&engine_version.to_le_bytes());
            out.push(capture_byte(*need));
            push_str16(&mut out, algo);
        }
        Request::Put { record } => {
            out.push(OP_PUT);
            out.extend_from_slice(&record.encode());
        }
        Request::BatchGet {
            engine_version,
            need,
            algo,
            items,
        } => {
            out.push(OP_BATCH_GET);
            out.extend_from_slice(&engine_version.to_le_bytes());
            out.push(capture_byte(*need));
            push_str16(&mut out, algo);
            let count = u32::try_from(items.len()).expect("batch < 4G items");
            out.extend_from_slice(&count.to_le_bytes());
            for item in items {
                out.extend_from_slice(&item.content_hash.to_le_bytes());
                push_blob32(&mut out, &item.spec);
            }
        }
        Request::PutBatch { records } => {
            out.push(OP_PUT_BATCH);
            let count = u32::try_from(records.len()).expect("batch < 4G records");
            out.extend_from_slice(&count.to_le_bytes());
            for record in records {
                out.extend_from_slice(&record.encode());
            }
        }
        Request::Stats => out.push(OP_STATS),
        Request::Shutdown => out.push(OP_SHUTDOWN),
    }
    out
}

/// Decodes a frame body into a request. `None` = malformed.
#[must_use]
pub fn decode_request(body: &[u8]) -> Option<Request> {
    let mut t = Take(body);
    let req = match t.u8()? {
        OP_GET => Request::Get {
            content_hash: t.u64()?,
            engine_version: t.u32()?,
            need: capture_from_byte(t.u8()?)?,
            algo: t.str16()?,
        },
        OP_PUT => Request::Put {
            record: t.record()?,
        },
        OP_BATCH_GET => {
            let engine_version = t.u32()?;
            let need = capture_from_byte(t.u8()?)?;
            let algo = t.str16()?;
            let count = t.u32()? as usize;
            let mut items = Vec::with_capacity(count.min(4096));
            for _ in 0..count {
                items.push(BatchItem {
                    content_hash: t.u64()?,
                    spec: t.blob32()?,
                });
            }
            Request::BatchGet {
                engine_version,
                need,
                algo,
                items,
            }
        }
        OP_PUT_BATCH => {
            let count = t.u32()? as usize;
            let mut records = Vec::with_capacity(count.min(4096));
            for _ in 0..count {
                records.push(t.record()?);
            }
            Request::PutBatch { records }
        }
        OP_STATS => Request::Stats,
        OP_SHUTDOWN => Request::Shutdown,
        _ => return None,
    };
    t.done().then_some(req)
}

/// Encodes a response into a frame body.
#[must_use]
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    match resp {
        Response::Found { record } => {
            out.push(RE_FOUND);
            out.extend_from_slice(&record.encode());
        }
        Response::Miss => out.push(RE_MISS),
        Response::Ok => out.push(RE_OK),
        Response::Batch { items } => {
            out.push(RE_BATCH);
            let count = u32::try_from(items.len()).expect("batch < 4G items");
            out.extend_from_slice(&count.to_le_bytes());
            for item in items {
                match item {
                    Some(record) => {
                        out.push(1);
                        out.extend_from_slice(&record.encode());
                    }
                    None => out.push(0),
                }
            }
        }
        Response::Stats { stats } => {
            out.push(RE_STATS);
            for v in [
                stats.records,
                stats.warm_hits,
                stats.simulated,
                stats.puts,
                stats.requests,
            ] {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        Response::Err { message } => {
            out.push(RE_ERR);
            push_str16(&mut out, message);
        }
    }
    out
}

/// Decodes a frame body into a response. `None` = malformed.
#[must_use]
pub fn decode_response(body: &[u8]) -> Option<Response> {
    let mut t = Take(body);
    let resp = match t.u8()? {
        RE_FOUND => Response::Found {
            record: t.record()?,
        },
        RE_MISS => Response::Miss,
        RE_OK => Response::Ok,
        RE_BATCH => {
            let count = t.u32()? as usize;
            let mut items = Vec::with_capacity(count.min(4096));
            for _ in 0..count {
                items.push(match t.u8()? {
                    0 => None,
                    1 => Some(t.record()?),
                    _ => return None,
                });
            }
            Response::Batch { items }
        }
        RE_STATS => Response::Stats {
            stats: ServiceStats {
                records: t.u64()?,
                warm_hits: t.u64()?,
                simulated: t.u64()?,
                puts: t.u64()?,
                requests: t.u64()?,
            },
        },
        RE_ERR => Response::Err {
            message: t.str16()?,
        },
        _ => return None,
    };
    t.done().then_some(resp)
}

// ---------------------------------------------------------------------------
// Streams (one enum over both transports).
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    fn connect(addr: &ServiceAddr) -> io::Result<Self> {
        match addr {
            ServiceAddr::Tcp(a) => TcpStream::connect(a.as_str()).map(Self::Tcp),
            #[cfg(unix)]
            ServiceAddr::Unix(p) => UnixStream::connect(p).map(Self::Unix),
        }
    }

    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Self::Tcp(s) => s.set_read_timeout(dur),
            #[cfg(unix)]
            Self::Unix(s) => s.set_read_timeout(dur),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Self::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Self::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Self::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Self::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Self::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Self::Unix(s) => s.flush(),
        }
    }
}

// ---------------------------------------------------------------------------
// Client.
// ---------------------------------------------------------------------------

/// A blocking sweep-service client over one (lazily established,
/// transparently re-established) connection.
#[derive(Debug)]
pub struct ServiceClient {
    addr: ServiceAddr,
    stream: Option<Stream>,
}

impl ServiceClient {
    /// A client for `addr`; connects on first use.
    #[must_use]
    pub fn new(addr: ServiceAddr) -> Self {
        Self { addr, stream: None }
    }

    /// The address this client talks to.
    #[must_use]
    pub fn addr(&self) -> &ServiceAddr {
        &self.addr
    }

    /// Sends one request and reads its response.
    ///
    /// A transport failure on a *reused* connection is retried once on a
    /// fresh connection (the server may simply have restarted); failures
    /// on a fresh connection propagate.
    ///
    /// # Errors
    ///
    /// Connect/write/read failures, and [`io::ErrorKind::InvalidData`]
    /// for frames that fail their checksum or decode.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        let body = encode_request(req);
        let reused = self.stream.is_some();
        match self.roundtrip(&body) {
            Ok(resp) => Ok(resp),
            Err(e) if reused => {
                // The pooled connection may have died with the previous
                // server process; one fresh connection decides it.
                let _ = e;
                self.stream = None;
                self.roundtrip(&body)
            }
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }

    fn roundtrip(&mut self, body: &[u8]) -> io::Result<Response> {
        if self.stream.is_none() {
            self.stream = Some(Stream::connect(&self.addr)?);
        }
        let stream = self.stream.as_mut().expect("just connected");
        let result = write_frame(stream, body)
            .and_then(|()| read_frame(stream))
            .and_then(|frame| frame.ok_or_else(|| io::Error::from(io::ErrorKind::UnexpectedEof)))
            .and_then(|frame| {
                decode_response(&frame).ok_or_else(|| bad_data("malformed response"))
            });
        if result.is_err() {
            self.stream = None;
        }
        result
    }

    /// Looks up one record by key. `Ok(None)` = the server has no
    /// matching record.
    ///
    /// # Errors
    ///
    /// Transport failures; [`io::ErrorKind::InvalidData`] on a server
    /// refusal or a malformed response.
    pub fn get(
        &mut self,
        content_hash: u64,
        algo: &str,
        need: Capture,
    ) -> io::Result<Option<EncodedRecord>> {
        match self.request(&Request::Get {
            content_hash,
            engine_version: ENGINE_VERSION,
            need,
            algo: algo.to_string(),
        })? {
            Response::Found { record } => Ok(Some(record)),
            Response::Miss => Ok(None),
            Response::Err { message } => Err(bad_data(&message)),
            _ => Err(bad_data("unexpected response to get")),
        }
    }

    /// Contributes one canonical record.
    ///
    /// # Errors
    ///
    /// Transport failures; [`io::ErrorKind::InvalidData`] if the server
    /// refuses the record (engine mismatch, corrupt payload, conflict).
    pub fn put(&mut self, record: &EncodedRecord) -> io::Result<()> {
        match self.request(&Request::Put {
            record: record.clone(),
        })? {
            Response::Ok => Ok(()),
            Response::Err { message } => Err(bad_data(&message)),
            _ => Err(bad_data("unexpected response to put")),
        }
    }

    /// Contributes many canonical records in one frame (one server-side
    /// lock acquisition and one checkpoint for all of them).
    ///
    /// # Errors
    ///
    /// Transport failures; [`io::ErrorKind::InvalidData`] if the server
    /// refuses any record (engine mismatch, corrupt payload, conflict) —
    /// records ahead of the refused one are still accepted and durable.
    pub fn put_batch(&mut self, records: &[EncodedRecord]) -> io::Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        match self.request(&Request::PutBatch {
            records: records.to_vec(),
        })? {
            Response::Ok => Ok(()),
            Response::Err { message } => Err(bad_data(&message)),
            _ => Err(bad_data("unexpected response to put-batch")),
        }
    }

    /// Resolves a batch of `(content_hash, spec)` points under `algo`,
    /// returning one slot per point in order (`None` = unresolved;
    /// simulate locally).
    ///
    /// # Errors
    ///
    /// Transport failures; [`io::ErrorKind::InvalidData`] on a server
    /// refusal (e.g. an [`ENGINE_VERSION`] mismatch) or a malformed or
    /// mis-sized response.
    pub fn batch_get(
        &mut self,
        algo: &str,
        need: Capture,
        points: &[(u64, &ScenarioSpec)],
    ) -> io::Result<Vec<Option<EncodedRecord>>> {
        let items = points
            .iter()
            .map(|(hash, spec)| BatchItem {
                content_hash: *hash,
                spec: encode_spec(spec),
            })
            .collect();
        match self.request(&Request::BatchGet {
            engine_version: ENGINE_VERSION,
            need,
            algo: algo.to_string(),
            items,
        })? {
            Response::Batch { items } if items.len() == points.len() => Ok(items),
            Response::Batch { .. } => Err(bad_data("batch response size mismatch")),
            Response::Err { message } => Err(bad_data(&message)),
            _ => Err(bad_data("unexpected response to batch-get")),
        }
    }

    /// Fetches the server's counters.
    ///
    /// # Errors
    ///
    /// Transport failures or a malformed response.
    pub fn stats(&mut self) -> io::Result<ServiceStats> {
        match self.request(&Request::Stats)? {
            Response::Stats { stats } => Ok(stats),
            Response::Err { message } => Err(bad_data(&message)),
            _ => Err(bad_data("unexpected response to stats")),
        }
    }

    /// Asks the server to save its store canonically and exit.
    ///
    /// # Errors
    ///
    /// Transport failures or a refusal.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.request(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            Response::Err { message } => Err(bad_data(&message)),
            _ => Err(bad_data("unexpected response to shutdown")),
        }
    }
}

// ---------------------------------------------------------------------------
// The client-side cache tier.
// ---------------------------------------------------------------------------

/// The service tier of the sweep cache stack: resolves grid points a
/// local [`SweepCache`] lacks against a running sweep service, and
/// offers back what the service could not supply.
///
/// Constructed per sweep from the `WL_SWEEP_SERVICE` environment knob
/// ([`ServiceSweepCache::from_env`]); when the knob is unset, cached
/// sweeps behave exactly as before. The tier is **fail-soft**: any
/// transport error downgrades it to a no-op for the rest of the sweep
/// (with one stderr warning), and the sweep falls back to simulating
/// locally — a dead server can slow a run down, never break it or
/// change its results.
#[derive(Debug)]
pub struct ServiceSweepCache {
    addr: ServiceAddr,
    client: Mutex<ServiceClient>,
    degraded: AtomicBool,
    served: AtomicU64,
    pushed: AtomicU64,
    /// Points the service could not supply, remembered by key so the
    /// post-sweep [`push_back`](Self::push_back) can offer the locally
    /// simulated results.
    pending: Mutex<Vec<(u64, String)>>,
}

impl ServiceSweepCache {
    /// A tier talking to `addr`.
    #[must_use]
    pub fn new(addr: ServiceAddr) -> Self {
        Self {
            client: Mutex::new(ServiceClient::new(addr.clone())),
            addr,
            degraded: AtomicBool::new(false),
            served: AtomicU64::new(0),
            pushed: AtomicU64::new(0),
            pending: Mutex::new(Vec::new()),
        }
    }

    /// The tier configured in the environment (`WL_SWEEP_SERVICE`), if
    /// any.
    #[must_use]
    pub fn from_env() -> Option<Self> {
        service_from_env().map(Self::new)
    }

    /// Points this tier served into local caches so far.
    #[must_use]
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Points this tier pushed back to the service so far.
    #[must_use]
    pub fn pushed(&self) -> u64 {
        self.pushed.load(Ordering::Relaxed)
    }

    /// Batch-resolves every point of `specs` that `cache` cannot serve
    /// (honoring the `need` payload level) and seeds the answers into
    /// `cache`, so the sweep loop that follows sees them as plain hits.
    /// Returns how many points the service supplied.
    pub fn prefetch<A: SweepAlgorithm>(
        &self,
        specs: &[ScenarioSpec],
        need: Capture,
        cache: &SweepCache,
    ) -> usize {
        if self.degraded.load(Ordering::Relaxed) {
            return 0;
        }
        let mut wanted: Vec<(u64, String, &ScenarioSpec)> = Vec::new();
        let mut seen = HashSet::new();
        for spec in specs {
            let canon = canon_string(&spec.canonical());
            let hash = spec.content_hash();
            if cache.peek(hash, A::NAME, &canon, need).is_some() {
                continue;
            }
            if seen.insert((hash, canon.clone())) {
                wanted.push((hash, canon, spec));
            }
        }
        if wanted.is_empty() {
            return 0;
        }
        let points: Vec<(u64, &ScenarioSpec)> = wanted.iter().map(|(h, _, s)| (*h, *s)).collect();
        let records = {
            let mut client = self.client.lock().expect("service client poisoned");
            match client.batch_get(A::NAME, need, &points) {
                Ok(records) => records,
                Err(e) => {
                    self.degrade(&e);
                    return 0;
                }
            }
        };
        let mut served = 0usize;
        let mut pending = self.pending.lock().expect("service pending poisoned");
        for ((hash, canon, _spec), record) in wanted.into_iter().zip(records) {
            let outcome = record
                .as_ref()
                .filter(|r| {
                    r.engine_version == ENGINE_VERSION
                        && r.algo == A::NAME
                        && r.content_hash == hash
                        && r.spec_canon == canon
                        && tag_satisfies(need, r.tag)
                })
                .and_then(|r| parse_outcome(&r.outcome_canon))
                .filter(|o| need.satisfied_by(o));
            match outcome {
                Some(outcome) => {
                    cache.seed(hash, A::NAME.to_string(), canon, outcome);
                    served += 1;
                }
                None => pending.push((hash, canon)),
            }
        }
        self.served.fetch_add(served as u64, Ordering::Relaxed);
        served
    }

    /// Offers the locally simulated results of every pending point back
    /// to the service, as **one** [`Request::PutBatch`] frame (one
    /// server-side lock acquisition and one checkpoint, however many
    /// points the sweep — or the frontier chunk — simulated).
    pub fn push_back<A: SweepAlgorithm>(&self, cache: &SweepCache) {
        if self.degraded.load(Ordering::Relaxed) {
            return;
        }
        let pending = std::mem::take(&mut *self.pending.lock().expect("service pending poisoned"));
        let records: Vec<EncodedRecord> = pending
            .into_iter()
            .filter_map(|(hash, canon)| {
                let outcome = cache.peek(hash, A::NAME, &canon, Capture::Scalar)?;
                Some(canonical_record(A::NAME, hash, &canon, &outcome))
            })
            .collect();
        if records.is_empty() {
            return;
        }
        let mut client = self.client.lock().expect("service client poisoned");
        match client.put_batch(&records) {
            Ok(()) => {
                self.pushed
                    .fetch_add(records.len() as u64, Ordering::Relaxed);
            }
            // An InvalidData refusal (engine mismatch, conflict) and a
            // transport failure both mean the rest of this sweep should
            // stop offering.
            Err(e) => self.degrade(&e),
        }
    }

    /// Marks the tier dead for the rest of the sweep. Must not touch
    /// `self.client` — callers invoke this while holding that lock.
    fn degrade(&self, e: &io::Error) {
        if !self.degraded.swap(true, Ordering::Relaxed) {
            eprintln!(
                "warning: sweep service {} unavailable ({e}); \
                 falling back to local simulation",
                self.addr
            );
        }
    }
}

/// Builds the canonical store/wire record for an outcome: grid index
/// normalized to zero (*what* was computed, not where it sat in some
/// grid — the same normalization [`SweepStore::absorb`] applies).
fn canonical_record(
    algo: &str,
    content_hash: u64,
    spec_canon: &str,
    outcome: &crate::sweep::SweepOutcome,
) -> EncodedRecord {
    let mut normalized = outcome.clone();
    normalized.index = 0;
    let kind = if normalized.series.is_some() {
        PayloadKind::Series
    } else if normalized.sketch.is_some() {
        PayloadKind::Sketch
    } else {
        PayloadKind::Scalar
    };
    EncodedRecord {
        tag: record_tag(kind, crate::cache::spec_is_adversarial(spec_canon)),
        content_hash,
        engine_version: ENGINE_VERSION,
        algo: algo.to_string(),
        spec_canon: spec_canon.to_string(),
        outcome_canon: canon_string(&normalized),
    }
}

// ---------------------------------------------------------------------------
// Server.
// ---------------------------------------------------------------------------

/// Configuration of a [`serve`] run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Where to listen. `tcp:127.0.0.1:0` binds an ephemeral port (the
    /// resolved address is reported through [`serve`]'s `on_ready`).
    pub addr: ServiceAddr,
    /// The served store (created if missing, hydrated if present — a
    /// restarted server resumes from whatever its checkpoints left).
    pub store: PathBuf,
    /// On-disk format. [`StoreFormat::Binary`] makes per-batch
    /// checkpoints O(batch) segment appends.
    pub format: StoreFormat,
    /// Simulation pool width for miss batches; `0` = the
    /// [`SweepRunner::new`] default (`WL_SWEEP_THREADS` / all cores).
    pub threads: usize,
    /// Fault injection: abort the process (as `kill -9` would) right
    /// after this many miss-batch checkpoints, *before* the response is
    /// sent. `None` in production; tests and the CI kill-smoke use it to
    /// crash the server mid-load deterministically.
    pub crash_after_batches: Option<usize>,
}

impl ServeConfig {
    /// A server on `addr` over the store at `store`, with defaults
    /// (binary format, auto pool width, no fault injection).
    #[must_use]
    pub fn new(addr: ServiceAddr, store: impl Into<PathBuf>) -> Self {
        Self {
            addr,
            store: store.into(),
            format: StoreFormat::Binary,
            threads: 0,
            crash_after_batches: None,
        }
    }
}

/// What a graceful [`serve`] run did.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// The resolved listen address (ephemeral TCP ports filled in).
    pub addr: ServiceAddr,
    /// Final counters.
    pub stats: ServiceStats,
}

#[derive(Debug)]
struct Core {
    store: SweepStore,
    warm_hits: u64,
    simulated: u64,
    puts: u64,
    requests: u64,
    batches: usize,
}

impl Core {
    fn stats(&self) -> ServiceStats {
        ServiceStats {
            records: self.store.len() as u64,
            warm_hits: self.warm_hits,
            simulated: self.simulated,
            puts: self.puts,
            requests: self.requests,
        }
    }
}

#[derive(Debug)]
enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    fn bind(addr: &ServiceAddr) -> io::Result<(Self, ServiceAddr)> {
        match addr {
            ServiceAddr::Tcp(a) => {
                let listener = TcpListener::bind(a.as_str())?;
                let resolved = ServiceAddr::Tcp(listener.local_addr()?.to_string());
                Ok((Self::Tcp(listener), resolved))
            }
            #[cfg(unix)]
            ServiceAddr::Unix(path) => {
                // The server owns its socket path; a stale file from a
                // killed predecessor must not block the restart.
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                let listener = UnixListener::bind(path)?;
                Ok((Self::Unix(listener), ServiceAddr::Unix(path.clone())))
            }
        }
    }

    fn accept(&self) -> io::Result<Stream> {
        match self {
            Self::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            #[cfg(unix)]
            Self::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
        }
    }
}

/// Wakes a listener blocked in `accept` by connecting and hanging up —
/// how the shutdown handler unblocks the accept loop.
fn wake(addr: &ServiceAddr) {
    let _ = Stream::connect(addr);
}

/// Runs a sweep service until a [`Request::Shutdown`] arrives, then
/// rewrites the store canonically and returns.
///
/// `on_ready` fires once, after the listener is bound, with the resolved
/// address — print it, or hand it to an in-process client.
///
/// Per connection the server handles any number of requests; misses of a
/// batch-get are simulated on the resident pool *outside* the store
/// lock, so warm lookups from other clients keep flowing while a batch
/// simulates. Every batch of fresh records is checkpointed **before**
/// its response goes out: what a client has seen answered, a `kill -9`
/// cannot lose.
///
/// # Errors
///
/// Binding, accepting, and final-save I/O failures. Per-connection I/O
/// errors only drop that connection.
pub fn serve(cfg: &ServeConfig, on_ready: impl FnOnce(&ServiceAddr)) -> io::Result<ServeReport> {
    let mut store = SweepStore::open(&cfg.store)?;
    store.set_format(cfg.format);
    let (listener, resolved) = Listener::bind(&cfg.addr)?;
    on_ready(&resolved);
    let core = Mutex::new(Core {
        store,
        warm_hits: 0,
        simulated: 0,
        puts: 0,
        requests: 0,
        batches: 0,
    });
    let runner = if cfg.threads == 0 {
        SweepRunner::new()
    } else {
        SweepRunner::with_threads(cfg.threads)
    };
    let shutdown = AtomicBool::new(false);

    std::thread::scope(|scope| -> io::Result<()> {
        loop {
            let stream = match listener.accept() {
                Ok(stream) => stream,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    return Err(e);
                }
            };
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let core = &core;
            let runner = &runner;
            let shutdown = &shutdown;
            let resolved = &resolved;
            scope.spawn(move || {
                if let Err(e) = handle(stream, core, runner, shutdown, resolved, cfg) {
                    if !matches!(
                        e.kind(),
                        io::ErrorKind::UnexpectedEof | io::ErrorKind::BrokenPipe
                    ) {
                        eprintln!("sweep service: connection error: {e}");
                    }
                }
            });
        }
        Ok(())
    })?;

    #[cfg(unix)]
    if let ServiceAddr::Unix(path) = &resolved {
        let _ = std::fs::remove_file(path);
    }
    let mut core = core.into_inner().expect("server core poisoned");
    // The canonical rewrite: appended checkpoint segments collapse into
    // sorted-order segments, so the store byte-compares against any
    // other canonical store over the same records.
    core.store.save()?;
    Ok(ServeReport {
        addr: resolved,
        stats: core.stats(),
    })
}

/// How long an idle connection blocks before re-checking the shutdown
/// flag.
const IDLE_POLL: Duration = Duration::from_millis(200);

enum Inbound {
    Frame(Vec<u8>),
    Eof,
    Idle,
}

/// Reads one frame with an idle timeout: a timeout **between** frames
/// reports [`Inbound::Idle`] (so the handler can re-check the shutdown
/// flag); a timeout *inside* a frame keeps waiting — bytes of a frame,
/// once started, arrive promptly or the peer is gone.
fn read_frame_idle(stream: &mut Stream) -> io::Result<Inbound> {
    let timed_out = |e: &io::Error| {
        matches!(
            e.kind(),
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        )
    };
    let mut len = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match stream.read(&mut len[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(Inbound::Eof)
                } else {
                    Err(io::ErrorKind::UnexpectedEof.into())
                }
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if timed_out(&e) && got == 0 => return Ok(Inbound::Idle),
            Err(e) if timed_out(&e) => {}
            Err(e) => return Err(e),
        }
    }
    let total = u32::from_le_bytes(len);
    if !(MIN_FRAME..=MAX_FRAME).contains(&total) {
        return Err(bad_data("frame length out of range"));
    }
    let mut buf = vec![0u8; total as usize];
    let mut filled = 0usize;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted || timed_out(&e) => {}
            Err(e) => return Err(e),
        }
    }
    check_frame(&buf)
        .map(|body| Inbound::Frame(body.to_vec()))
        .ok_or_else(|| bad_data("frame checksum mismatch"))
}

fn handle(
    mut stream: Stream,
    core: &Mutex<Core>,
    runner: &SweepRunner,
    shutdown: &AtomicBool,
    addr: &ServiceAddr,
    cfg: &ServeConfig,
) -> io::Result<()> {
    stream.set_read_timeout(Some(IDLE_POLL))?;
    loop {
        let body = match read_frame_idle(&mut stream)? {
            Inbound::Frame(body) => body,
            Inbound::Eof => return Ok(()),
            Inbound::Idle => {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
                continue;
            }
        };
        let Some(request) = decode_request(&body) else {
            let resp = Response::Err {
                message: "malformed request".to_string(),
            };
            write_frame(&mut stream, &encode_response(&resp))?;
            continue;
        };
        let is_shutdown = matches!(request, Request::Shutdown);
        let response = dispatch(request, core, runner, cfg)?;
        write_frame(&mut stream, &encode_response(&response))?;
        if is_shutdown {
            shutdown.store(true, Ordering::SeqCst);
            wake(addr);
            return Ok(());
        }
    }
}

fn lock_core(core: &Mutex<Core>) -> std::sync::MutexGuard<'_, Core> {
    core.lock().expect("server core poisoned")
}

fn dispatch(
    request: Request,
    core: &Mutex<Core>,
    runner: &SweepRunner,
    cfg: &ServeConfig,
) -> io::Result<Response> {
    lock_core(core).requests += 1;
    Ok(match request {
        Request::Get {
            content_hash,
            engine_version,
            need,
            algo,
        } => {
            if engine_version != ENGINE_VERSION {
                return Ok(Response::Miss);
            }
            let mut c = lock_core(core);
            match c
                .store
                .record_encoded(content_hash, &algo)
                .filter(|r| tag_satisfies(need, r.tag))
            {
                Some(record) => {
                    c.warm_hits += 1;
                    Response::Found { record }
                }
                None => Response::Miss,
            }
        }
        Request::Put { record } => {
            if record.engine_version != ENGINE_VERSION {
                Response::Err {
                    message: format!(
                        "record engine v{} != server engine v{ENGINE_VERSION}",
                        record.engine_version
                    ),
                }
            } else {
                let mut c = lock_core(core);
                match c.store.insert_encoded(&record) {
                    Ok(changed) => {
                        if changed {
                            c.puts += 1;
                            c.store.checkpoint()?;
                        }
                        Response::Ok
                    }
                    Err(conflict) => Response::Err {
                        message: format!("record refused: {conflict}"),
                    },
                }
            }
        }
        Request::BatchGet {
            engine_version,
            need,
            algo,
            items,
        } => {
            if engine_version != ENGINE_VERSION {
                Response::Err {
                    message: format!(
                        "client engine v{engine_version} != server engine v{ENGINE_VERSION}"
                    ),
                }
            } else {
                batch_get(&algo, need, &items, core, runner, cfg)?
            }
        }
        Request::PutBatch { records } => {
            if let Some(bad) = records.iter().find(|r| r.engine_version != ENGINE_VERSION) {
                Response::Err {
                    message: format!(
                        "record engine v{} != server engine v{ENGINE_VERSION}",
                        bad.engine_version
                    ),
                }
            } else {
                let mut c = lock_core(core);
                let mut changed = 0u64;
                let mut refused = None;
                for record in &records {
                    match c.store.insert_encoded(record) {
                        Ok(true) => changed += 1,
                        Ok(false) => {}
                        Err(conflict) => {
                            refused = Some(conflict);
                            break;
                        }
                    }
                }
                // One checkpoint for the whole batch — and even a
                // refused batch keeps the records accepted before the
                // conflict durable.
                if changed > 0 {
                    c.puts += changed;
                    c.store.checkpoint()?;
                }
                match refused {
                    None => Response::Ok,
                    Some(conflict) => Response::Err {
                        message: format!("record refused: {conflict}"),
                    },
                }
            }
        }
        Request::Stats => Response::Stats {
            stats: lock_core(core).stats(),
        },
        Request::Shutdown => Response::Ok,
    })
}

fn batch_get(
    algo: &str,
    need: Capture,
    items: &[BatchItem],
    core: &Mutex<Core>,
    runner: &SweepRunner,
    cfg: &ServeConfig,
) -> io::Result<Response> {
    let mut out: Vec<Option<EncodedRecord>> = vec![None; items.len()];
    let mut cold: Vec<(usize, ScenarioSpec)> = Vec::new();
    {
        let mut c = lock_core(core);
        for (i, item) in items.iter().enumerate() {
            // The hash recomputation is the codec's integrity check: a
            // drifting spec encoding degrades to "unresolved", and the
            // client simulates locally — never a wrong record.
            let Some(spec) =
                decode_spec(&item.spec).filter(|s| s.content_hash() == item.content_hash)
            else {
                continue;
            };
            match c
                .store
                .record_encoded(item.content_hash, algo)
                .filter(|r| tag_satisfies(need, r.tag))
            {
                Some(record) => {
                    c.warm_hits += 1;
                    out[i] = Some(record);
                }
                None => cold.push((i, spec)),
            }
        }
    }
    if !cold.is_empty() {
        // Simulate outside the lock: warm lookups from other clients
        // keep flowing while this batch runs on the pool.
        if let Some(outcomes) = simulate(algo, runner, &cold, need) {
            let mut c = lock_core(core);
            for ((i, spec), outcome) in cold.iter().zip(outcomes) {
                let canon = canon_string(&spec.canonical());
                let record = canonical_record(algo, spec.content_hash(), &canon, &outcome);
                match c.store.insert_encoded(&record) {
                    Ok(inserted) => {
                        if inserted {
                            c.simulated += 1;
                        } else {
                            // A concurrent client raced this point into
                            // the store first; determinism guarantees the
                            // records agree, and the stat stays "records
                            // resolved by simulation", not "sim calls".
                            c.warm_hits += 1;
                        }
                        out[*i] = Some(record);
                    }
                    Err(conflict) => {
                        // Determinism makes this unreachable short of a
                        // corrupted store; refuse the point, keep going.
                        eprintln!("sweep service: refusing simulated record: {conflict}");
                    }
                }
            }
            // Checkpoint before responding: answered means durable.
            c.store.checkpoint()?;
            c.batches += 1;
            if cfg.crash_after_batches == Some(c.batches) {
                // Simulated crash: no unwinding, no destructors, no
                // response — the closest safe stand-in for `kill -9`.
                // The checkpoint just appended is what a restart serves.
                std::process::abort();
            }
        }
    }
    Ok(Response::Batch { items: out })
}

/// Runs a batch of grid points under the algorithm named `algo`, through
/// the exact per-point bodies local sweeps use (same dispatch ladder:
/// mono fleet → enum fleet → boxed). `None` = the name is not one this
/// server can assemble.
fn simulate(
    algo: &str,
    runner: &SweepRunner,
    points: &[(usize, ScenarioSpec)],
    need: Capture,
) -> Option<Vec<crate::sweep::SweepOutcome>> {
    use crate::algo::SyncAlgorithm as _;
    fn run<A: SweepAlgorithm>(
        runner: &SweepRunner,
        points: &[(usize, ScenarioSpec)],
        need: Capture,
    ) -> Vec<crate::sweep::SweepOutcome> {
        runner.run(points.to_vec(), |_, (index, spec)| match need {
            Capture::Scalar => run_point::<A>(*index, spec),
            Capture::Sketch => run_point_sketch::<A>(*index, spec),
            Capture::Series => run_point_series::<A>(*index, spec),
        })
    }
    if algo == crate::Maintenance::NAME {
        Some(run::<crate::Maintenance>(runner, points, need))
    } else if algo == crate::Startup::NAME {
        Some(run::<crate::Startup>(runner, points, need))
    } else if algo == crate::Rejoiner::NAME {
        Some(run::<crate::Rejoiner>(runner, points, need))
    } else if algo == crate::LmCnv::NAME {
        Some(run::<crate::LmCnv>(runner, points, need))
    } else if algo == crate::MahaneySchneider::NAME {
        Some(run::<crate::MahaneySchneider>(runner, points, need))
    } else if algo == crate::SrikanthToueg::NAME {
        Some(run::<crate::SrikanthToueg>(runner, points, need))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::SyncAlgorithm as _;
    use crate::cache::segment::{TAG_SCALAR, TAG_SERIES, TAG_SKETCH};
    use crate::sweep::derive_seed;
    use crate::Maintenance;
    use rand::{Rng, SeedableRng};

    fn grid(count: usize) -> Vec<ScenarioSpec> {
        let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap();
        (0..count)
            .map(|i| {
                ScenarioSpec::new(params.clone())
                    .seed(derive_seed(0x5E12_71CE, i as u64))
                    .t_end(RealTime::from_secs(2.0))
            })
            .collect()
    }

    fn tmp_store(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("wl-service-{}-{name}.wls", std::process::id()))
    }

    /// A random capture need — all three wire values.
    fn arb_need(rng: &mut rand::rngs::StdRng) -> Capture {
        match rng.gen::<u64>() % 3 {
            0 => Capture::Scalar,
            1 => Capture::Sketch,
            _ => Capture::Series,
        }
    }

    /// A random record through arbitrary bit patterns — the same
    /// "seeded arbitrary" style the segment and migration proptests use.
    fn arb_record(rng: &mut rand::rngs::StdRng) -> EncodedRecord {
        let nasty = ["algo a", "q\"uote", "tab\there", "wl-maintenance", "∆-sync"];
        EncodedRecord {
            tag: match rng.gen::<u64>() % 3 {
                0 => TAG_SCALAR,
                1 => TAG_SERIES,
                _ => TAG_SKETCH,
            },
            content_hash: rng.gen(),
            engine_version: ENGINE_VERSION,
            algo: nasty[(rng.gen::<u64>() % 5) as usize].to_string(),
            spec_canon: format!(
                "Spec{{n:{},rho:x{:016x}}}",
                rng.gen::<u32>(),
                rng.gen::<u64>()
            )
            .repeat(1 + (rng.gen::<u64>() % 3) as usize),
            outcome_canon: format!("Outcome{{v:x{:016x}}}", rng.gen::<u64>())
                .repeat(1 + (rng.gen::<u64>() % 4) as usize),
        }
    }

    fn arb_spec(rng: &mut rand::rngs::StdRng) -> ScenarioSpec {
        let f = |rng: &mut rand::rngs::StdRng| f64::from_bits(rng.gen::<u64>());
        let params = Params {
            n: (rng.gen::<u64>() % (1 << 16)) as usize,
            f: (rng.gen::<u64>() % (1 << 16)) as usize,
            rho: f(rng),
            delta: f(rng),
            eps: f(rng),
            beta: f(rng),
            p_round: f(rng),
            t0: f(rng),
            avg: if rng.gen::<u64>() % 2 == 0 {
                AveragingFn::Midpoint
            } else {
                AveragingFn::Mean
            },
            sigma: f(rng),
            exchanges: (rng.gen::<u64>() % (1 << 16)) as usize,
        };
        let drift = match rng.gen::<u64>() % 6 {
            0 => None,
            1 => Some(DriftModel::Ideal),
            2 => Some(DriftModel::EvenSpread { rho: f(rng) }),
            3 => Some(DriftModel::Split { rho: f(rng) }),
            4 => Some(DriftModel::RandomConstant { rho: f(rng) }),
            _ => Some(DriftModel::RandomPiecewise {
                rho: f(rng),
                segment_secs: f(rng),
                horizon_secs: f(rng),
            }),
        };
        let faults = (0..rng.gen::<u64>() % 4)
            .map(|_| {
                let kind = match rng.gen::<u64>() % 6 {
                    0 => FaultKind::CrashAt(f(rng)),
                    1 => FaultKind::Silent,
                    2 => FaultKind::RoundSpam,
                    3 => FaultKind::PullApart(f(rng)),
                    4 => FaultKind::PullApartHigh(f(rng)),
                    _ => FaultKind::TwoFaced(f(rng)),
                };
                (ProcessId((rng.gen::<u64>() % 256) as usize), kind)
            })
            .collect();
        ScenarioSpec {
            params,
            drift,
            delay: match rng.gen::<u64>() % 3 {
                0 => DelayKind::Constant,
                1 => DelayKind::Uniform,
                _ => DelayKind::AdversarialSplit,
            },
            seed: rng.gen(),
            t_end: RealTime::from_secs(f(rng)),
            spread_frac: f(rng),
            faults,
            rejoiner: if rng.gen::<u64>() % 2 == 0 {
                None
            } else {
                Some((
                    ProcessId((rng.gen::<u64>() % 256) as usize),
                    RealTime::from_secs(f(rng)),
                ))
            },
            adversary: if rng.gen::<u64>() % 2 == 0 {
                None
            } else {
                let strategy = match rng.gen::<u64>() % 9 {
                    0 => AdversaryStrategy::Crash { at: f(rng) },
                    1 => AdversaryStrategy::Mute,
                    2 => AdversaryStrategy::Spam,
                    3 => AdversaryStrategy::PullApart {
                        amplitude: f(rng),
                        high: rng.gen::<u64>() % 2 == 0,
                    },
                    4 => AdversaryStrategy::TwoFacedValue { amplitude: f(rng) },
                    5 => AdversaryStrategy::Collude { amplitude: f(rng) },
                    6 => AdversaryStrategy::Churn {
                        up: f(rng),
                        down: f(rng),
                    },
                    7 => AdversaryStrategy::TargetedDelay {
                        victim: (rng.gen::<u64>() % 256) as usize,
                    },
                    _ => AdversaryStrategy::Partition,
                };
                Some(AdversarySpec {
                    members: (0..rng.gen::<u64>() % 4)
                        .map(|_| ProcessId((rng.gen::<u64>() % 256) as usize))
                        .collect(),
                    strategy,
                    seed: rng.gen(),
                })
            },
            trace_capacity: (rng.gen::<u64>() % (1 << 16)) as usize,
            max_events: rng.gen(),
            initial_spread: f(rng),
        }
    }

    #[test]
    fn addr_parse_forms() {
        assert_eq!(ServiceAddr::parse(""), None);
        assert_eq!(ServiceAddr::parse("  "), None);
        assert_eq!(ServiceAddr::parse("0"), None);
        assert_eq!(ServiceAddr::parse("off"), None);
        assert_eq!(
            ServiceAddr::parse("tcp:127.0.0.1:7171"),
            Some(ServiceAddr::Tcp("127.0.0.1:7171".into()))
        );
        assert_eq!(
            ServiceAddr::parse("localhost:9"),
            Some(ServiceAddr::Tcp("localhost:9".into()))
        );
        #[cfg(unix)]
        assert_eq!(
            ServiceAddr::parse("unix:/tmp/x.sock"),
            Some(ServiceAddr::Unix(PathBuf::from("/tmp/x.sock")))
        );
        // Round-trips through Display.
        let addr = ServiceAddr::parse("tcp:[::1]:4000").unwrap();
        assert_eq!(ServiceAddr::parse(&addr.to_string()), Some(addr));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig {
            cases: 32,
            .. proptest::prelude::ProptestConfig::default()
        })]

        /// The spec wire codec is exact over arbitrary bit patterns
        /// (NaN payloads, -0.0, subnormals): decode(encode(s)) re-encodes
        /// to the same bytes and hashes to the same content hash.
        #[test]
        fn prop_spec_codec_roundtrip(seed in 0u64..u64::MAX) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            for _ in 0..8 {
                let spec = arb_spec(&mut rng);
                let bytes = encode_spec(&spec);
                let back = decode_spec(&bytes).expect("codec must accept its own output");
                proptest::prop_assert_eq!(&encode_spec(&back), &bytes);
                proptest::prop_assert_eq!(back.content_hash(), spec.content_hash());
            }
        }

        /// Frame + request/response codecs round-trip arbitrary records
        /// and batches through an in-memory pipe.
        #[test]
        fn prop_frame_roundtrip(seed in 0u64..u64::MAX) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let record = arb_record(&mut rng);
            let spec = arb_spec(&mut rng);
            let requests = vec![
                Request::Get {
                    content_hash: rng.gen(),
                    engine_version: ENGINE_VERSION,
                    need: arb_need(&mut rng),
                    algo: record.algo.clone(),
                },
                Request::Put { record: record.clone() },
                Request::PutBatch {
                    records: vec![record.clone(), arb_record(&mut rng)],
                },
                Request::PutBatch { records: vec![] },
                Request::BatchGet {
                    engine_version: ENGINE_VERSION,
                    need: arb_need(&mut rng),
                    algo: record.algo.clone(),
                    items: vec![
                        BatchItem { content_hash: rng.gen(), spec: encode_spec(&spec) },
                        BatchItem { content_hash: rng.gen(), spec: vec![] },
                    ],
                },
                Request::Stats,
                Request::Shutdown,
            ];
            let responses = vec![
                Response::Found { record: record.clone() },
                Response::Miss,
                Response::Ok,
                Response::Batch { items: vec![Some(record.clone()), None] },
                Response::Stats {
                    stats: ServiceStats {
                        records: rng.gen(),
                        warm_hits: rng.gen(),
                        simulated: rng.gen(),
                        puts: rng.gen(),
                        requests: rng.gen(),
                    },
                },
                Response::Err { message: "refused ∆".into() },
            ];
            let mut wire = Vec::new();
            for req in &requests {
                write_frame(&mut wire, &encode_request(req)).unwrap();
            }
            for resp in &responses {
                write_frame(&mut wire, &encode_response(resp)).unwrap();
            }
            let mut reader: &[u8] = &wire;
            for req in &requests {
                let body = read_frame(&mut reader).unwrap().expect("frame");
                proptest::prop_assert_eq!(decode_request(&body).as_ref(), Some(req));
            }
            for resp in &responses {
                let body = read_frame(&mut reader).unwrap().expect("frame");
                proptest::prop_assert_eq!(decode_response(&body).as_ref(), Some(resp));
            }
            proptest::prop_assert!(read_frame(&mut reader).unwrap().is_none(), "clean EOF");
        }
    }

    /// Mirror of the segment suite's tamper test at the frame layer:
    /// flip any single byte of a framed request and the reader must
    /// reject or differ — never silently yield the original.
    #[test]
    fn frame_tamper_rejection() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let original = Request::Put {
            record: arb_record(&mut rng),
        };
        let body = encode_request(&original);
        let mut wire = Vec::new();
        write_frame(&mut wire, &body).unwrap();
        for i in 0..wire.len() {
            let mut bad = wire.clone();
            bad[i] ^= 0x40;
            let mut reader: &[u8] = &bad;
            match read_frame(&mut reader) {
                Err(_) => {}
                Ok(None) => {}
                Ok(Some(read_body)) => {
                    // A length-prefix flip can reframe the stream; the
                    // checksum must still keep the *content* honest.
                    assert_ne!(
                        decode_request(&read_body).as_ref(),
                        Some(&original),
                        "flip at byte {i} went unnoticed"
                    );
                }
            }
        }
        // Truncation inside a frame is an error, not a short read.
        let mut truncated: &[u8] = &wire[..wire.len() - 1];
        assert!(read_frame(&mut truncated).is_err());
    }

    #[test]
    fn oversized_and_undersized_frames_are_rejected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        wire.extend_from_slice(&[0u8; 16]);
        assert!(read_frame(&mut &wire[..]).is_err());
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MIN_FRAME - 1).to_le_bytes());
        wire.extend_from_slice(&[0u8; 16]);
        assert!(read_frame(&mut &wire[..]).is_err());
    }

    /// End-to-end over TCP on an ephemeral port: cold batch-get
    /// simulates on the server, warm get hits, put inserts, stats
    /// count, shutdown saves canonically.
    #[test]
    fn tcp_end_to_end() {
        let store_path = tmp_store("tcp-e2e");
        let _ = std::fs::remove_file(&store_path);
        let cfg = ServeConfig {
            addr: ServiceAddr::Tcp("127.0.0.1:0".into()),
            store: store_path.clone(),
            format: StoreFormat::Binary,
            threads: 1,
            crash_after_batches: None,
        };
        let (tx, rx) = std::sync::mpsc::channel();
        let server =
            std::thread::spawn(move || serve(&cfg, move |addr| tx.send(addr.clone()).unwrap()));
        let addr = rx.recv().expect("server ready");
        let mut client = ServiceClient::new(addr);

        let specs = grid(3);
        let points: Vec<(u64, &ScenarioSpec)> =
            specs.iter().map(|s| (s.content_hash(), s)).collect();
        // Cold: the server simulates every point.
        let got = client
            .batch_get(Maintenance::NAME, Capture::Scalar, &points)
            .unwrap();
        assert!(got.iter().all(Option::is_some));
        for ((hash, spec), record) in points.iter().zip(&got) {
            let record = record.as_ref().unwrap();
            assert_eq!(record.content_hash, *hash);
            assert_eq!(record.spec_canon, canon_string(&spec.canonical()));
            let outcome = parse_outcome(&record.outcome_canon).expect("parses");
            assert_eq!(outcome.index, 0, "stored outcomes are index-normalized");
        }
        // Warm: a single get hits the same record.
        let warm = client
            .get(points[0].0, Maintenance::NAME, Capture::Scalar)
            .unwrap()
            .expect("warm hit");
        assert_eq!(&warm, got[0].as_ref().unwrap());
        // A series-requiring get over a scalar record is a miss.
        assert!(client
            .get(points[0].0, Maintenance::NAME, Capture::Series)
            .unwrap()
            .is_none());
        // A sketch-requiring get over a scalar record is also a miss.
        assert!(client
            .get(points[0].0, Maintenance::NAME, Capture::Sketch)
            .unwrap()
            .is_none());
        // Unknown algorithm: unresolved slots, not an error.
        let unknown = client
            .batch_get("no-such-algo", Capture::Scalar, &points[..1])
            .unwrap();
        assert_eq!(unknown, vec![None]);
        // Put a foreign record and read it back.
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut foreign = arb_record(&mut rng);
        foreign.tag = TAG_SCALAR;
        foreign.outcome_canon = {
            let outcome = crate::sweep::SweepOutcome {
                index: 0,
                seed: 1,
                steady_skew: 2.0,
                max_skew: 3.0,
                agreement_holds: true,
                max_abs_adjustment: 0.5,
                mean_abs_adjustment: 0.25,
                adjustment_holds: true,
                stats: wl_sim::SimStats::default(),
                sketch: None,
                series: None,
            };
            canon_string(&outcome)
        };
        client.put(&foreign).unwrap();
        let back = client
            .get(foreign.content_hash, &foreign.algo, Capture::Scalar)
            .unwrap()
            .expect("put record readable");
        assert_eq!(back, foreign);
        // A conflicting put (same key, different outcome) is refused.
        let mut conflicting = foreign.clone();
        conflicting.outcome_canon = conflicting.outcome_canon.replace("seed:1", "seed:9");
        assert!(client.put(&conflicting).is_err());

        let stats = client.stats().unwrap();
        assert_eq!(stats.records, 4);
        assert_eq!(stats.simulated, 3);
        assert!(stats.warm_hits >= 2);
        assert_eq!(stats.puts, 1);

        client.shutdown().unwrap();
        let report = server.join().unwrap().unwrap();
        assert_eq!(report.stats.records, 4);

        // The shut-down store is canonical and fully loadable.
        let store = SweepStore::open(&store_path).unwrap();
        assert_eq!(store.len(), 4);
        assert_eq!(store.skipped_lines(), 0);
        let _ = std::fs::remove_file(&store_path);
    }

    /// Batched puts: one frame inserts many records under one lock and
    /// one checkpoint; an engine mismatch refuses the whole batch; a
    /// conflicting record keeps the records ahead of it durable.
    #[test]
    fn tcp_put_batch() {
        let store_path = tmp_store("put-batch");
        let _ = std::fs::remove_file(&store_path);
        let cfg = ServeConfig {
            addr: ServiceAddr::Tcp("127.0.0.1:0".into()),
            store: store_path.clone(),
            format: StoreFormat::Binary,
            threads: 1,
            crash_after_batches: None,
        };
        let (tx, rx) = std::sync::mpsc::channel();
        let server =
            std::thread::spawn(move || serve(&cfg, move |addr| tx.send(addr.clone()).unwrap()));
        let addr = rx.recv().expect("server ready");
        let mut client = ServiceClient::new(addr);

        // Simulate locally, then contribute the whole grid as one frame.
        let specs = grid(3);
        let cache = SweepCache::new();
        let runner = crate::sweep::SweepRunner::serial();
        let _ = runner.run(specs.clone(), |i, s| {
            crate::sweep::run_point_cached::<Maintenance>(i, s, &cache)
        });
        let records: Vec<EncodedRecord> = specs
            .iter()
            .map(|spec| {
                let canon = canon_string(&spec.canonical());
                let outcome = cache
                    .peek(
                        spec.content_hash(),
                        Maintenance::NAME,
                        &canon,
                        Capture::Scalar,
                    )
                    .unwrap();
                canonical_record(Maintenance::NAME, spec.content_hash(), &canon, &outcome)
            })
            .collect();
        client.put_batch(&records).unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.puts, 3);
        assert_eq!(stats.records, 3);
        assert_eq!(stats.simulated, 0, "the server never simulated");
        // Re-putting the same batch changes nothing.
        client.put_batch(&records).unwrap();
        assert_eq!(client.stats().unwrap().puts, 3);
        // Every record is now a warm hit.
        let warm = client
            .get(specs[1].content_hash(), Maintenance::NAME, Capture::Scalar)
            .unwrap()
            .expect("warm hit");
        assert_eq!(warm, records[1]);

        // A batch holding a stale-engine record is refused whole.
        let mut stale = records[0].clone();
        stale.engine_version = ENGINE_VERSION + 1;
        assert!(client.put_batch(&[stale]).is_err());
        // A batch with a conflict mid-way keeps the good prefix: the
        // fresh record before the conflicting one lands durably.
        let fresh = {
            let spec = grid(5).pop().unwrap();
            let canon = canon_string(&spec.canonical());
            let outcome = crate::sweep::run_point::<Maintenance>(0, &spec);
            canonical_record(Maintenance::NAME, spec.content_hash(), &canon, &outcome)
        };
        let mut conflicting = records[2].clone();
        conflicting.outcome_canon = conflicting.outcome_canon.replace(':', ";");
        assert!(client.put_batch(&[fresh.clone(), conflicting]).is_err());
        let stats = client.stats().unwrap();
        assert_eq!(stats.puts, 4, "prefix of a refused batch still lands");
        assert_eq!(stats.records, 4);
        client.shutdown().unwrap();
        let report = server.join().unwrap().unwrap();
        assert_eq!(report.stats.records, 4);
        let _ = std::fs::remove_file(&store_path);
    }

    /// The cache tier end-to-end over a unix socket: prefetch seeds the
    /// local cache so the sweep loop sees pure hits, and a dead server
    /// degrades to a no-op instead of failing the sweep.
    #[cfg(unix)]
    #[test]
    fn service_tier_prefetch_and_degrade() {
        let store_path = tmp_store("tier");
        let sock =
            std::env::temp_dir().join(format!("wl-service-{}-tier.sock", std::process::id()));
        let _ = std::fs::remove_file(&store_path);
        let cfg = ServeConfig {
            addr: ServiceAddr::Unix(sock.clone()),
            store: store_path.clone(),
            format: StoreFormat::Binary,
            threads: 1,
            crash_after_batches: None,
        };
        let (tx, rx) = std::sync::mpsc::channel();
        let server =
            std::thread::spawn(move || serve(&cfg, move |addr| tx.send(addr.clone()).unwrap()));
        let addr = rx.recv().expect("server ready");

        let specs = grid(4);
        let tier = ServiceSweepCache::new(addr.clone());
        let cache = SweepCache::new();
        assert_eq!(
            tier.prefetch::<Maintenance>(&specs, Capture::Scalar, &cache),
            4
        );
        assert_eq!(tier.served(), 4);
        // The sweep loop now sees pure hits — zero local simulations.
        let runner = crate::sweep::SweepRunner::serial();
        let out = runner.run(specs.clone(), |i, s| {
            crate::sweep::run_point_cached::<Maintenance>(i, s, &cache)
        });
        assert_eq!(out.len(), 4);
        assert_eq!(cache.misses(), 0);
        assert_eq!(cache.hits(), 4);
        // Outcomes match a direct simulation (index restored per grid).
        let direct = run_point::<Maintenance>(2, &specs[2]);
        assert_eq!(canon_string(&out[2]), canon_string(&direct));
        // A second prefetch has nothing left to ask for.
        assert_eq!(
            tier.prefetch::<Maintenance>(&specs, Capture::Scalar, &cache),
            0
        );
        ServiceClient::new(addr).shutdown().unwrap();
        server.join().unwrap().unwrap();

        // Dead server: the tier degrades quietly and the sweep works.
        let dead = ServiceSweepCache::new(ServiceAddr::Unix(
            std::env::temp_dir().join("wl-service-no-such.sock"),
        ));
        let cold = SweepCache::new();
        assert_eq!(
            dead.prefetch::<Maintenance>(&specs, Capture::Scalar, &cold),
            0
        );
        let out = runner.run(specs, |i, s| {
            crate::sweep::run_point_cached::<Maintenance>(i, s, &cold)
        });
        assert_eq!(out.len(), 4);
        assert_eq!(cold.misses(), 4, "degraded tier leaves the sweep local");
        dead.push_back::<Maintenance>(&cold); // must be a no-op, not a hang
        let _ = std::fs::remove_file(&store_path);
    }

    /// Series-requiring prefetch: the server simulates with capture and
    /// the tier refuses to seed scalar records where series are needed.
    #[cfg(unix)]
    #[test]
    fn service_tier_series_prefetch() {
        let store_path = tmp_store("series");
        let sock =
            std::env::temp_dir().join(format!("wl-service-{}-series.sock", std::process::id()));
        let _ = std::fs::remove_file(&store_path);
        let cfg = ServeConfig {
            addr: ServiceAddr::Unix(sock.clone()),
            store: store_path.clone(),
            format: StoreFormat::Binary,
            threads: 1,
            crash_after_batches: None,
        };
        let (tx, rx) = std::sync::mpsc::channel();
        let server =
            std::thread::spawn(move || serve(&cfg, move |addr| tx.send(addr.clone()).unwrap()));
        let addr = rx.recv().expect("server ready");

        let specs = grid(2);
        let tier = ServiceSweepCache::new(addr.clone());
        let cache = SweepCache::new();
        assert_eq!(
            tier.prefetch::<Maintenance>(&specs, Capture::Series, &cache),
            2
        );
        for spec in &specs {
            let canon = canon_string(&spec.canonical());
            let hit = cache
                .peek(
                    spec.content_hash(),
                    Maintenance::NAME,
                    &canon,
                    Capture::Series,
                )
                .expect("series-bearing hit");
            assert!(hit.series.is_some());
        }
        // The scalar-side view of those records also hits.
        assert_eq!(
            tier.prefetch::<Maintenance>(&specs, Capture::Scalar, &cache),
            0
        );
        ServiceClient::new(addr).shutdown().unwrap();
        server.join().unwrap().unwrap();
        let _ = std::fs::remove_file(&store_path);
    }
}
