//! Enum-dispatched fleets: the statically typed alternative to
//! `DynFleet<M> = Vec<Box<dyn Automaton>>` for *faulted* scenarios.
//!
//! The monomorphized `Vec<A>` fast path (PR 3) only covers all-correct
//! fleets — one concrete automaton type per process. A faulted scenario
//! mixes automata (correct processes, crash wrappers, spammers,
//! two-faced attackers), which historically forced every process behind
//! a `Box<dyn Automaton>` and every event through virtual dispatch.
//!
//! These enums close that gap: one enum per protocol message family
//! wraps every automaton the corresponding [`crate::SyncAlgorithm`]
//! implementations can realize, so a mixed fleet is a `Vec<...AlgoFleet>`
//! — contiguous storage, enum-match dispatch the optimizer can inline,
//! no per-process heap allocation.
//!
//! # Dispatch contract
//!
//! Each enum's [`Automaton`] impl is a pure delegator: `on_input` and
//! `initial_correction` match on the variant and forward verbatim to the
//! wrapped automaton. No variant adds, reorders, or filters behaviour —
//! which is why the enum path is *byte-identical* to the boxed path
//! (pinned by `enum_path_bit_identical_to_boxed` and the
//! `fleet_parity` proptests). Variants are constructed exclusively by
//! [`crate::SyncAlgorithm::fleet_automaton`], the same single body the
//! boxed path boxes — bit-identity is a consequence of sharing that
//! body, not a separately maintained invariant.

use wl_baselines::byzantine::{TimedTwoFaced, ValueTwoFaced};
use wl_baselines::lm_cnv::{CnvMsg, LmCnv};
use wl_baselines::mahaney_schneider::{MahaneySchneider, MsMsg};
use wl_baselines::srikanth_toueg::{SrikanthToueg, StMsg};
use wl_core::byzantine::{PullApart, RoundSpammer};
use wl_core::{Maintenance, Rejoiner, Startup, WlMsg};
use wl_sim::faults::{CrashAt, SilentFor};
use wl_sim::{Actions, Automaton, Input};
use wl_time::ClockTime;

/// Every automaton a Welch–Lynch scenario ([`Maintenance`], [`Startup`],
/// [`Rejoiner`] and their fault galleries) can place in a fleet.
#[derive(Debug)]
pub enum WlAlgoFleet {
    /// A correct §4 maintenance process.
    Maintenance(Maintenance),
    /// A correct §9.2 startup process.
    Startup(Startup),
    /// A §9.1 rejoiner (self-silencing until its first full round).
    Rejoiner(Rejoiner),
    /// A maintenance process that crashes at a designated real time.
    Crashed(CrashAt<Maintenance>),
    /// A process that never speaks ([`crate::FaultKind::Silent`]).
    Silent(SilentFor<WlMsg>),
    /// The round-spam attacker ([`crate::FaultKind::RoundSpam`]).
    Spammer(RoundSpammer),
    /// The pull-apart / two-faced attacker
    /// ([`crate::FaultKind::PullApart`] and friends).
    PullApart(PullApart),
}

/// Every automaton an LM-CNV (§10) scenario can place in a fleet.
#[derive(Debug)]
pub enum CnvAlgoFleet {
    /// A correct LM-CNV process.
    Correct(LmCnv),
    /// A process that never speaks.
    Silent(SilentFor<CnvMsg>),
    /// The value-lying two-faced attacker.
    TwoFaced(ValueTwoFaced<CnvMsg, fn(f64) -> CnvMsg>),
}

/// Every automaton a Mahaney–Schneider (§10) scenario can place in a
/// fleet.
#[derive(Debug)]
pub enum MsAlgoFleet {
    /// A correct Mahaney–Schneider process.
    Correct(MahaneySchneider),
    /// A process that never speaks.
    Silent(SilentFor<MsMsg>),
    /// The value-lying two-faced attacker.
    TwoFaced(ValueTwoFaced<MsMsg, fn(f64) -> MsMsg>),
}

/// Every automaton a Srikanth–Toueg (§10) scenario can place in a fleet.
#[derive(Debug)]
pub enum StAlgoFleet {
    /// A correct Srikanth–Toueg process.
    Correct(SrikanthToueg),
    /// A process that never speaks.
    Silent(SilentFor<StMsg>),
    /// The timing-lying two-faced attacker.
    TwoFaced(TimedTwoFaced<StMsg, fn(u64, f64) -> StMsg>),
}

macro_rules! delegate_automaton {
    ($enum_ty:ident, $msg:ty, [$($variant:ident),+ $(,)?]) => {
        impl Automaton for $enum_ty {
            type Msg = $msg;

            #[inline]
            fn on_input(
                &mut self,
                input: Input<$msg>,
                phys_now: ClockTime,
                out: &mut Actions<$msg>,
            ) {
                match self {
                    $(Self::$variant(a) => a.on_input(input, phys_now, out),)+
                }
            }

            #[inline]
            fn initial_correction(&self) -> f64 {
                match self {
                    $(Self::$variant(a) => a.initial_correction(),)+
                }
            }
        }
    };
}

delegate_automaton!(
    WlAlgoFleet,
    WlMsg,
    [
        Maintenance,
        Startup,
        Rejoiner,
        Crashed,
        Silent,
        Spammer,
        PullApart
    ]
);
delegate_automaton!(CnvAlgoFleet, CnvMsg, [Correct, Silent, TwoFaced]);
delegate_automaton!(MsAlgoFleet, MsMsg, [Correct, Silent, TwoFaced]);
delegate_automaton!(StAlgoFleet, StMsg, [Correct, Silent, TwoFaced]);

#[cfg(test)]
mod tests {
    use super::*;
    use wl_core::Params;
    use wl_sim::ProcessId;

    #[test]
    fn enum_delegates_on_input_and_initial_correction() {
        let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap();
        let mut direct = Maintenance::new(ProcessId(0), params.clone(), 0.25);
        let mut wrapped = WlAlgoFleet::Maintenance(Maintenance::new(ProcessId(0), params, 0.25));
        assert_eq!(direct.initial_correction(), wrapped.initial_correction());

        let mut out_a = Actions::new();
        let mut out_b = Actions::new();
        direct.on_input(Input::Start, ClockTime::from_secs(1.0), &mut out_a);
        wrapped.on_input(Input::Start, ClockTime::from_secs(1.0), &mut out_b);
        assert_eq!(out_a.as_slice(), out_b.as_slice());
    }

    #[test]
    fn silent_variant_stays_silent() {
        let mut silent = WlAlgoFleet::Silent(SilentFor::default());
        let mut out = Actions::new();
        silent.on_input(Input::Start, ClockTime::from_secs(1.0), &mut out);
        assert!(out.is_empty());
    }
}
