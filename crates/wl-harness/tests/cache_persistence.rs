//! Pins the ISSUE-3 acceptance criteria through the public API:
//!
//! 1. a sweep run twice via the disk cache performs **zero** simulator
//!    executions on the second run (every lookup is a confirmed hit —
//!    a miss is the only thing that triggers a simulation);
//! 2. a 2-shard merged sweep is **byte-identical** to the unsharded
//!    sweep — at the outcome level (`merge_sharded` + `bit_identical`)
//!    and at the store-file level (merged shard stores serialize to the
//!    same bytes as the 1-process store).
//!
//! And the ISSUE-4 extension: series-bearing sweeps
//! (`sweep_cached_series`, the payload behind `exp_boundary` /
//! `exp_mean_mid` / `exp_figures`) round-trip through the disk store
//! with every series element intact, so their warm re-runs also execute
//! zero simulations.
//!
//! And the ISSUE-5 acceptance: a text store migrates to the v3 binary
//! segment format and back **byte-identically**, warm runs off the
//! migrated (smaller) binary store still execute zero simulations, and
//! `DiskSweepCache` persists/serves either format transparently.

use std::path::PathBuf;
use wl_core::Params;
use wl_harness::{
    derive_seed, merge_sharded, DelayKind, DiskSweepCache, FaultKind, Maintenance, ScenarioSpec,
    Shard, StoreFormat, SweepCache, SweepRunner, SweepStore,
};
use wl_sim::ProcessId;
use wl_time::RealTime;

fn grid(count: usize) -> Vec<ScenarioSpec> {
    let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap();
    let delays = [
        DelayKind::Constant,
        DelayKind::Uniform,
        DelayKind::AdversarialSplit,
    ];
    (0..count)
        .map(|i| {
            ScenarioSpec::new(params.clone())
                .seed(derive_seed(0xABCD, i as u64))
                .delay(delays[i % 3])
                .t_end(RealTime::from_secs(2.0))
        })
        .collect()
}

/// `grid`, but every point designates a faulty process — so the cached
/// per-point body is served by the enum-dispatched fast path, not the
/// monomorphized all-correct one.
fn faulted_grid(count: usize) -> Vec<ScenarioSpec> {
    let kinds = [
        FaultKind::Silent,
        FaultKind::TwoFaced(0.002),
        FaultKind::RoundSpam,
    ];
    grid(count)
        .into_iter()
        .enumerate()
        .map(|(i, spec)| spec.fault(ProcessId(i % 4), kinds[i % 3]))
        .collect()
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("wl-persist-{}-{name}.wls", std::process::id()))
}

#[test]
fn second_disk_cached_run_executes_zero_simulations() {
    let path = tmp("zero-exec");
    let _ = std::fs::remove_file(&path);

    // Cold run: everything misses, everything persists.
    let mut disk = DiskSweepCache::open(&path).unwrap();
    let cold = SweepRunner::new().sweep_cached::<Maintenance>(grid(6), disk.cache());
    assert_eq!(disk.cache().misses(), 6);
    assert_eq!(disk.persist().unwrap(), 6);

    // Fresh process simulated by a fresh handle: zero misses means zero
    // simulator executions — a simulation only ever runs on a miss.
    let disk2 = DiskSweepCache::open(&path).unwrap();
    let warm = SweepRunner::new().sweep_cached::<Maintenance>(grid(6), disk2.cache());
    assert_eq!(disk2.cache().hits(), 6, "every grid point served from disk");
    assert_eq!(disk2.cache().misses(), 0, "zero simulator executions");
    for (a, b) in warm.iter().zip(&cold) {
        assert!(a.bit_identical(b), "disk round trip must be lossless");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn faulted_warm_run_executes_zero_simulations_on_enum_path() {
    // PR-6: faulted grid points are served by the enum-dispatched fleet
    // fast path inside the cached per-point body. The cache must not
    // notice — cold run misses everything, warm run off a fresh handle
    // hits everything (zero simulator executions), and the round trip
    // is bit-identical.
    let specs = faulted_grid(6);
    for spec in &specs {
        assert!(
            wl_harness::assemble_mono::<Maintenance>(spec).is_none(),
            "faulted specs must not qualify for the all-correct mono path"
        );
        assert!(
            wl_harness::assemble_enum::<Maintenance>(spec).is_some(),
            "faulted specs must qualify for the enum fast path"
        );
    }

    let path = tmp("enum-zero-exec");
    let _ = std::fs::remove_file(&path);

    let mut disk = DiskSweepCache::open(&path).unwrap();
    let cold = SweepRunner::new().sweep_cached::<Maintenance>(specs.clone(), disk.cache());
    assert_eq!(disk.cache().misses(), 6);
    assert_eq!(disk.persist().unwrap(), 6);

    let disk2 = DiskSweepCache::open(&path).unwrap();
    let warm = SweepRunner::new().sweep_cached::<Maintenance>(specs, disk2.cache());
    assert_eq!(disk2.cache().hits(), 6, "every faulted point served warm");
    assert_eq!(disk2.cache().misses(), 0, "zero simulator executions");
    for (a, b) in warm.iter().zip(&cold) {
        assert!(a.bit_identical(b), "enum-path round trip must be lossless");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn warm_series_run_executes_zero_simulations() {
    let path = tmp("series-zero-exec");
    let _ = std::fs::remove_file(&path);

    // Cold: capture series for every grid point, persist.
    let mut disk = DiskSweepCache::open(&path).unwrap();
    let cold = SweepRunner::new().sweep_cached_series::<Maintenance>(grid(5), disk.cache());
    assert_eq!(disk.cache().misses(), 5);
    assert!(cold.iter().all(|o| o.series.is_some()));
    disk.persist().unwrap();

    // Warm, fresh handle: the series requirement is satisfied from disk
    // alone — zero misses means zero simulator executions, with every
    // series element surviving the round trip bit-for-bit.
    let disk2 = DiskSweepCache::open(&path).unwrap();
    let warm = SweepRunner::new().sweep_cached_series::<Maintenance>(grid(5), disk2.cache());
    assert_eq!(disk2.cache().hits(), 5, "series served from disk");
    assert_eq!(disk2.cache().misses(), 0, "zero simulator executions");
    for (a, b) in warm.iter().zip(&cold) {
        assert!(a.bit_identical(b), "series round trip must be lossless");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn migrated_binary_store_serves_warm_series_run_with_zero_simulations() {
    // The ISSUE-5 acceptance flow end-to-end through the public API: a
    // text store produced the PR-4 way migrates to the v3 binary format
    // and back byte-identically, and warm runs off the *migrated* store
    // execute zero simulations.
    let text = tmp("mig-warm-text");
    let binary = tmp("mig-warm-binary");
    let round = tmp("mig-warm-round");
    let _ = std::fs::remove_file(&text);

    let mut disk = DiskSweepCache::open(&text).unwrap();
    let cold = SweepRunner::new().sweep_cached_series::<Maintenance>(grid(4), disk.cache());
    disk.persist().unwrap();

    let report = SweepStore::migrate(&text, &binary, StoreFormat::Binary).unwrap();
    assert_eq!(report.records, 4);
    assert!(
        report.bytes_out < report.bytes_in,
        "binary series store ({}) must be smaller than text ({})",
        report.bytes_out,
        report.bytes_in
    );

    // Warm run off the binary store: zero misses = zero simulations.
    let warm_disk = DiskSweepCache::open(&binary).unwrap();
    assert_eq!(warm_disk.store().format(), StoreFormat::Binary);
    let warm = SweepRunner::new().sweep_cached_series::<Maintenance>(grid(4), warm_disk.cache());
    assert_eq!(
        (warm_disk.cache().hits(), warm_disk.cache().misses()),
        (4, 0),
        "migrated store must serve the whole grid warm"
    );
    for (a, b) in warm.iter().zip(&cold) {
        assert!(a.bit_identical(b), "migration must be lossless");
    }

    // And back: byte-identical to the original text store.
    SweepStore::migrate(&binary, &round, StoreFormat::Text).unwrap();
    assert_eq!(
        std::fs::read(&text).unwrap(),
        std::fs::read(&round).unwrap(),
        "text -> binary -> text is byte-pinned"
    );
    for p in [&text, &binary, &round] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn binary_disk_cache_persists_and_serves_like_text() {
    // DiskSweepCache::set_format (the WL_SWEEP_FORMAT code path): the
    // persist writes binary, a fresh handle auto-detects it, and the
    // warm run is served entirely from disk.
    let path = tmp("bin-disk");
    let _ = std::fs::remove_file(&path);
    let mut disk = DiskSweepCache::open(&path).unwrap();
    disk.set_format(StoreFormat::Binary);
    let cold = SweepRunner::new().sweep_cached::<Maintenance>(grid(6), disk.cache());
    assert_eq!(disk.persist().unwrap(), 6);
    assert!(disk.status().contains("binary store"), "{}", disk.status());

    let bytes = std::fs::read(&path).unwrap();
    assert_eq!(&bytes[..4], b"WLSB");

    let disk2 = DiskSweepCache::open(&path).unwrap();
    let warm = SweepRunner::new().sweep_cached::<Maintenance>(grid(6), disk2.cache());
    assert_eq!((disk2.cache().hits(), disk2.cache().misses()), (6, 0));
    for (a, b) in warm.iter().zip(&cold) {
        assert!(a.bit_identical(b));
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn two_shard_merge_equals_unsharded_byte_for_byte() {
    let full = SweepRunner::new().sweep::<Maintenance>(grid(7));

    // Outcome level: run the two shards (different thread widths on
    // purpose — determinism is thread-count independent) and merge.
    let shard0 = SweepRunner::serial().sweep_sharded::<Maintenance>(grid(7), Shard::new(0, 2));
    let shard1 =
        SweepRunner::with_threads(3).sweep_sharded::<Maintenance>(grid(7), Shard::new(1, 2));
    let merged = merge_sharded(&[shard0, shard1], 7).unwrap();
    assert_eq!(merged.len(), full.len());
    for (a, b) in merged.iter().zip(&full) {
        assert!(
            a.bit_identical(b),
            "sharded != unsharded at index {}",
            b.index
        );
    }

    // Store level: shard stores merged on disk == the 1-process store.
    let p_a = tmp("shard-a");
    let p_b = tmp("shard-b");
    let p_merged = tmp("shard-merged");
    let p_full = tmp("shard-full");
    for (path, shard) in [(&p_a, Shard::new(0, 2)), (&p_b, Shard::new(1, 2))] {
        let _ = std::fs::remove_file(path);
        let cache = SweepCache::new();
        let _ = SweepRunner::new().sweep_sharded_cached::<Maintenance>(grid(7), shard, &cache);
        let mut store = SweepStore::open(path).unwrap();
        store.absorb(&cache);
        store.save().unwrap();
    }
    let mut merged_store = SweepStore::new();
    merged_store
        .merge_from(&SweepStore::open(&p_a).unwrap())
        .unwrap();
    merged_store
        .merge_from(&SweepStore::open(&p_b).unwrap())
        .unwrap();
    merged_store.save_to(&p_merged).unwrap();

    let _ = std::fs::remove_file(&p_full);
    let full_cache = SweepCache::new();
    let _ = SweepRunner::new().sweep_cached::<Maintenance>(grid(7), &full_cache);
    let mut full_store = SweepStore::open(&p_full).unwrap();
    full_store.absorb(&full_cache);
    full_store.save().unwrap();

    assert_eq!(
        std::fs::read(&p_merged).unwrap(),
        std::fs::read(&p_full).unwrap(),
        "merged shard stores must serialize byte-identically to the unsharded store"
    );
    for p in [&p_a, &p_b, &p_merged, &p_full] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn shard_stores_hydrate_other_shards() {
    // Cross-machine flow: shard 1 benefits from shard 0's store when the
    // grids overlap (here: identical grids, complementary shards — no
    // overlap, so no hits; then a full pass over the merged store hits
    // everything).
    let p = tmp("cross");
    let _ = std::fs::remove_file(&p);
    for k in 0..2 {
        let mut disk = DiskSweepCache::open(&p).unwrap();
        let _ = SweepRunner::new().sweep_sharded_cached::<Maintenance>(
            grid(5),
            Shard::new(k, 2),
            disk.cache(),
        );
        disk.persist().unwrap();
    }
    let disk = DiskSweepCache::open(&p).unwrap();
    let _ = SweepRunner::new().sweep_cached::<Maintenance>(grid(5), disk.cache());
    assert_eq!(disk.cache().hits(), 5);
    assert_eq!(disk.cache().misses(), 0);
    let _ = std::fs::remove_file(&p);
}
