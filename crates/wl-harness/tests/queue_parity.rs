//! Queue-swap safety net: the [`CalendarQueue`] engine produces
//! **byte-identical executions** to the default [`HeapQueue`] engine.
//!
//! The delivery order of the model (§2.3) is a *total* order —
//! `(t', class, seq)` — so a correct event queue has no ordering freedom
//! at all; swapping the data structure may change only speed. These tests
//! pin that across all three scenario families (round-aligned
//! maintenance, §9.2 cold start, §9.1 reintegration) plus a §10 baseline,
//! with fault galleries and every delay model, comparing the full
//! `Debug`-formatted trace, correction histories, and counters.

use wl_harness::{
    assemble, assemble_calendar, assemble_with_queue, DelayKind, FaultKind, LmCnv, Maintenance,
    Rejoiner, ScenarioSpec, Startup,
};
use wl_sim::queue::CalendarQueue;
use wl_sim::{EventQueue, SimOutcome, Simulation};
use wl_time::RealTime;

const CAP: usize = 2_000_000;

fn run<M, Q>(mut sim: Simulation<M, Q>) -> SimOutcome
where
    M: Clone + std::fmt::Debug + Send + 'static,
    Q: EventQueue<M>,
{
    sim.run()
}

fn assert_identical(heap: SimOutcome, cal: SimOutcome) {
    assert_eq!(heap.stats, cal.stats, "simulator counters differ");
    assert_eq!(heap.corr, cal.corr, "correction histories differ");
    assert_eq!(heap.stopped_at, cal.stopped_at, "stop times differ");
    assert!(
        !heap.trace.events().is_empty(),
        "trace must be non-empty for a meaningful check"
    );
    assert_eq!(
        format!("{:?}", heap.trace.events()),
        format!("{:?}", cal.trace.events()),
        "trace event streams differ"
    );
}

fn params() -> wl_core::Params {
    wl_core::Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap()
}

#[test]
fn maintenance_family_parity() {
    for seed in [1u64, 42, 1337] {
        for delay in [
            DelayKind::Constant,
            DelayKind::Uniform,
            DelayKind::AdversarialSplit,
        ] {
            let spec = ScenarioSpec::new(params())
                .seed(seed)
                .delay(delay)
                .t_end(RealTime::from_secs(10.0))
                .trace(CAP);
            assert_identical(
                run(assemble::<Maintenance>(&spec).sim),
                run(assemble_calendar::<Maintenance>(&spec).sim),
            );
        }
    }
}

#[test]
fn maintenance_fault_gallery_parity() {
    let p = wl_core::Params::auto(7, 2, 1e-6, 0.010, 0.001).unwrap();
    let spec = ScenarioSpec::new(p.clone())
        .seed(9)
        .fault(wl_sim::ProcessId(0), FaultKind::PullApart(p.beta / 2.0))
        .fault(wl_sim::ProcessId(3), FaultKind::RoundSpam)
        .fault(wl_sim::ProcessId(5), FaultKind::CrashAt(6.0))
        .t_end(RealTime::from_secs(10.0))
        .trace(CAP);
    assert_identical(
        run(assemble::<Maintenance>(&spec).sim),
        run(assemble_calendar::<Maintenance>(&spec).sim),
    );
}

#[test]
fn startup_family_parity() {
    let sp = wl_core::StartupParams::new(4, 1, 1e-6, 0.010, 0.001).unwrap();
    for seed in [23u64, 99] {
        let spec = ScenarioSpec::startup(&sp, 5.0)
            .seed(seed)
            .t_end(RealTime::from_secs(8.0))
            .silent(&[wl_sim::ProcessId(3)])
            .trace(CAP);
        assert_identical(
            run(assemble::<Startup>(&spec).sim),
            run(assemble_calendar::<Startup>(&spec).sim),
        );
    }
}

#[test]
fn rejoiner_family_parity() {
    let spec = ScenarioSpec::new(params())
        .seed(19)
        .rejoiner(wl_sim::ProcessId(3), RealTime::from_secs(7.3))
        .t_end(RealTime::from_secs(20.0))
        .trace(CAP);
    assert_identical(
        run(assemble::<Rejoiner>(&spec).sim),
        run(assemble_calendar::<Rejoiner>(&spec).sim),
    );
}

#[test]
fn baseline_parity() {
    let spec = ScenarioSpec::new(params())
        .seed(61)
        .t_end(RealTime::from_secs(10.0))
        .silent(&[wl_sim::ProcessId(3)])
        .trace(CAP);
    assert_identical(
        run(assemble::<LmCnv>(&spec).sim),
        run(assemble_calendar::<LmCnv>(&spec).sim),
    );
}

#[test]
fn pathological_calendar_geometries_still_identical() {
    // Deliberately terrible tunings: a 2-bucket calendar with a huge
    // width, and a 512-bucket calendar with a microscopic width. Order is
    // a correctness property, not a tuning property.
    let spec = ScenarioSpec::new(params())
        .seed(5)
        .t_end(RealTime::from_secs(6.0))
        .trace(CAP);
    let reference = run(assemble::<Maintenance>(&spec).sim);
    for queue in [CalendarQueue::new(3.0, 2), CalendarQueue::new(2e-5, 512)] {
        let got = run(assemble_with_queue::<Maintenance, _>(&spec, queue).sim);
        assert_eq!(reference.stats, got.stats);
        assert_eq!(reference.corr, got.corr);
        assert_eq!(
            format!("{:?}", reference.trace.events()),
            format!("{:?}", got.trace.events())
        );
    }
}

#[test]
fn calendar_sweep_summary_matches_heap() {
    // End-to-end through run_summary: the measured quantities (skew,
    // adjustments, agreement verdicts) are bitwise equal too.
    let spec = ScenarioSpec::new(params())
        .seed(77)
        .t_end(RealTime::from_secs(12.0));
    let heap = wl_harness::run::run_summary(assemble::<Maintenance>(&spec), 12.0);
    let cal = wl_harness::run::run_summary(assemble_calendar::<Maintenance>(&spec), 12.0);
    assert_eq!(heap.stats, cal.stats);
    assert!((heap.agreement.steady_skew - cal.agreement.steady_skew).abs() == 0.0);
    assert!((heap.agreement.max_skew - cal.agreement.max_skew).abs() == 0.0);
    assert_eq!(heap.agreement.holds, cal.agreement.holds);
    assert!((heap.adjustments.max_abs - cal.adjustments.max_abs).abs() == 0.0);
}

/// The run-facing check: with tracing *off* (the sweep configuration),
/// the calendar engine still reproduces heap outcomes exactly.
#[test]
fn untraced_runs_identical() {
    let spec = ScenarioSpec::new(params())
        .seed(4242)
        .t_end(RealTime::from_secs(10.0));
    let a = run(assemble::<Maintenance>(&spec).sim);
    let b = run(assemble_calendar::<Maintenance>(&spec).sim);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.corr, b.corr);
    assert_eq!(a.stopped_at, b.stopped_at);
}
