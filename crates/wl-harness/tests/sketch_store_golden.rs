//! Golden-fixture pinning of the v5 sketch store formats and the
//! `sweep_stats` transcript.
//!
//! The fixtures under `tests/fixtures/` are a frozen sketch-capture
//! store in both on-disk formats plus the exact `store_report` text
//! they produce. Checked in, they pin three things at once:
//!
//! 1. **serialization** — a sketch sweep re-run today must save stores
//!    byte-identical to the frozen files (any drift in the canon
//!    grammar, tag bytes, segment framing, or sketch arithmetic shows
//!    up as a diff here first);
//! 2. **load compatibility** — the frozen files must keep loading as
//!    live records under the current [`ENGINE_VERSION`], serving a warm
//!    sweep with zero misses;
//! 3. **reporting** — `store_report` over the frozen records must stay
//!    character-identical, because CI `cmp`s its output across shard
//!    counts and machines.
//!
//! Regenerate deliberately (after an intentional format change, with
//! the engine version bumped) via:
//!
//! ```text
//! WL_UPDATE_GOLDEN=1 cargo test -p wl-harness --test sketch_store_golden
//! ```
//!
//! [`ENGINE_VERSION`]: wl_harness::ENGINE_VERSION

use std::path::{Path, PathBuf};
use wl_core::Params;
use wl_harness::{
    derive_seed, store_report, Capture, DelayKind, Maintenance, ScenarioSpec, SrikanthToueg,
    StoreFormat, SweepCache, SweepRequest, SweepStore,
};
use wl_time::RealTime;

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
}

/// The frozen grid: two algorithm families over three delay models, so
/// the report exercises multi-family grouping and distinct γ bounds.
fn fixture_grid() -> Vec<ScenarioSpec> {
    let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap();
    let delays = [
        DelayKind::Constant,
        DelayKind::Uniform,
        DelayKind::AdversarialSplit,
    ];
    (0..6)
        .map(|i| {
            ScenarioSpec::new(params.clone())
                .seed(derive_seed(0x601D_F11E, i as u64))
                .delay(delays[i % 3])
                .t_end(RealTime::from_secs(1.5))
        })
        .collect()
}

/// Runs the fixture grid in sketch-capture mode under both families and
/// returns the populated store (unsaved, format unset).
fn built_store() -> SweepStore {
    let cache = SweepCache::new();
    let _ = SweepRequest::new()
        .threads(1)
        .cached(&cache)
        .capture(Capture::Sketch)
        .run::<Maintenance>(fixture_grid());
    let _ = SweepRequest::new()
        .threads(1)
        .cached(&cache)
        .capture(Capture::Sketch)
        .run::<SrikanthToueg>(fixture_grid());
    let mut store = SweepStore::new();
    store.absorb(&cache);
    store
}

fn save_bytes(format: StoreFormat) -> Vec<u8> {
    let mut store = built_store();
    store.set_format(format);
    let path = std::env::temp_dir().join(format!("wl-golden-{}-{format}.wls", std::process::id()));
    store.save_to(&path).expect("save fixture candidate");
    let bytes = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    bytes
}

#[test]
fn sketch_store_and_stats_report_match_golden_fixtures() {
    let dir = fixture_dir();
    let text_path = dir.join("sketch-store.wls");
    let binary_path = dir.join("sketch-store.wlsb");
    let report_path = dir.join("sweep-stats.golden");

    let text = save_bytes(StoreFormat::Text);
    let binary = save_bytes(StoreFormat::Binary);
    let report = store_report(&built_store());

    if std::env::var("WL_UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&text_path, &text).unwrap();
        std::fs::write(&binary_path, &binary).unwrap();
        std::fs::write(&report_path, &report).unwrap();
        eprintln!("golden fixtures regenerated under {}", dir.display());
    }

    // 1. Serialization: today's engine reproduces the frozen bytes.
    assert_eq!(
        std::fs::read(&text_path).expect("checked-in text fixture"),
        text,
        "text sketch store drifted from the golden fixture \
         (intentional? regenerate with WL_UPDATE_GOLDEN=1 and bump ENGINE_VERSION)"
    );
    assert_eq!(
        std::fs::read(&binary_path).expect("checked-in binary fixture"),
        binary,
        "binary sketch store drifted from the golden fixture"
    );

    // 2. Load compatibility: the frozen files hold 12 live sketch
    //    records and serve a warm sketch-need sweep without simulating.
    for path in [&text_path, &binary_path] {
        let frozen = SweepStore::open(path).unwrap();
        assert_eq!(frozen.len(), 12);
        assert_eq!(frozen.stale_records(), 0);
        assert_eq!(frozen.skipped_lines(), 0);
        let cache = frozen.hydrate();
        let _ = SweepRequest::new()
            .threads(1)
            .cached(&cache)
            .capture(Capture::Sketch)
            .expect_misses(0)
            .run::<Maintenance>(fixture_grid());
        assert_eq!(cache.misses(), 0, "frozen store must serve the grid warm");

        // 3. Reporting: character-identical from either format.
        let golden = std::fs::read_to_string(&report_path).expect("checked-in golden report");
        assert_eq!(
            store_report(&frozen),
            golden,
            "sweep_stats transcript drifted from the golden fixture"
        );
    }
}
