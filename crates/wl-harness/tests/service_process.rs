//! End-to-end tests of the sweep-results service, with a real server
//! subprocess: this test binary re-enters itself as the server
//! (`argv[1] == "--serve"`), so `harness = false` in the manifest.
//!
//! Pinned here (and mirrored by the CI `service-smoke` job):
//!
//! 1. a cached sweep pointed at a server via `WL_SWEEP_SERVICE` runs
//!    with **zero local simulations** — cold (the server simulates) and
//!    warm (the server's in-RAM index answers) — and the warm pass adds
//!    zero server-side simulations too;
//! 2. a server killed mid-load (hard abort right after its first
//!    miss-batch checkpoint, before responding) leaves a store a
//!    restarted server loads and serves in full, the interrupted client
//!    falls back to local simulation and still completes, and the final
//!    server store is **byte-identical** to a 1-process local-store run;
//! 3. two clients sweeping the same cold grid concurrently converge to
//!    that same byte-identical store;
//! 4. a client pointed at a dead address degrades to a plain local
//!    sweep — same outcomes, no error;
//! 5. a warm server under load — 8 concurrent clients, each through the
//!    `WL_SWEEP_SERVICE` env knob with `WL_SWEEP_EXPECT_MISSES=0`
//!    semantics held (zero local misses per client) — answers everything
//!    from its in-RAM index: server stats report zero simulations.

use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::time::{Duration, Instant};
use wl_core::Params;
use wl_harness::{
    derive_seed, Capture, DelayKind, Maintenance, ScenarioSpec, ServiceAddr, ServiceClient,
    ServiceStats, StoreFormat, SweepCache, SweepOutcome, SweepRunner, SweepStore,
};
use wl_time::RealTime;

const GRID: usize = 12;

fn grid() -> Vec<ScenarioSpec> {
    let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap();
    let delays = [
        DelayKind::Constant,
        DelayKind::Uniform,
        DelayKind::AdversarialSplit,
    ];
    (0..GRID)
        .map(|i| {
            ScenarioSpec::new(params.clone())
                .seed(derive_seed(0x5EC_51DE, i as u64))
                .delay(delays[i % 3])
                .t_end(RealTime::from_secs(1.5))
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--serve") {
        serve_main(&args[2..]);
        return;
    }

    test_served_sweep_runs_zero_local_simulations();
    test_killed_server_store_is_recoverable_and_byte_identical();
    test_concurrent_clients_converge_to_reference_bytes();
    test_dead_service_degrades_to_local_sweep();
    test_warm_server_under_load_simulates_nothing();
    println!("service_process: all 5 tests passed");
}

// ---------------------------------------------------------------------------
// Server mode.
// ---------------------------------------------------------------------------

/// `--serve --socket PATH --store FILE [--crash-after-batches N]`
fn serve_main(args: &[String]) {
    let mut it = args.iter();
    let mut socket = None;
    let mut store = None;
    let mut crash_after_batches = None;
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--socket" => socket = it.next().cloned(),
            "--store" => store = it.next().cloned(),
            "--crash-after-batches" => {
                crash_after_batches = Some(it.next().unwrap().parse().unwrap())
            }
            other => panic!("unknown serve flag {other}"),
        }
    }
    let cfg = wl_harness::ServeConfig {
        addr: ServiceAddr::parse(&format!("unix:{}", socket.expect("--socket"))).unwrap(),
        store: PathBuf::from(store.expect("--store")),
        format: StoreFormat::Binary,
        threads: 1,
        crash_after_batches,
    };
    let report = wl_harness::serve(&cfg, |addr| println!("ready on {addr}")).expect("serve");
    println!(
        "served: {} records, {} warm hits, {} simulated",
        report.stats.records, report.stats.warm_hits, report.stats.simulated
    );
}

// ---------------------------------------------------------------------------
// Client-side helpers.
// ---------------------------------------------------------------------------

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wl-service-proc-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct Server {
    child: Child,
    addr: ServiceAddr,
    sock: PathBuf,
}

impl Server {
    fn spawn(dir: &Path, store: &Path, crash_after_batches: Option<usize>) -> Self {
        let sock = dir.join("wl.sock");
        let mut cmd = Command::new(std::env::current_exe().expect("own path"));
        cmd.arg("--serve")
            .arg("--socket")
            .arg(&sock)
            .arg("--store")
            .arg(store);
        if let Some(n) = crash_after_batches {
            cmd.arg("--crash-after-batches").arg(n.to_string());
        }
        let child = cmd.spawn().expect("spawn server");
        // The server removes any stale socket before binding, so the
        // file's (re)appearance is the ready signal.
        let deadline = Instant::now() + Duration::from_secs(30);
        while !sock.exists() {
            assert!(Instant::now() < deadline, "server socket never appeared");
            std::thread::sleep(Duration::from_millis(5));
        }
        let addr = ServiceAddr::parse(&format!("unix:{}", sock.display())).unwrap();
        Self { child, addr, sock }
    }

    fn stats(&self) -> ServiceStats {
        ServiceClient::new(self.addr.clone())
            .stats()
            .expect("stats")
    }

    /// Graceful stop: canonical final save, clean exit.
    fn shutdown(mut self) {
        ServiceClient::new(self.addr.clone())
            .shutdown()
            .expect("shutdown");
        let status = self.child.wait().expect("server exit");
        assert!(status.success(), "server exited {status}");
    }

    /// Waits for the injected abort to kill the server.
    fn wait_for_crash(mut self) {
        let status = self.child.wait().expect("server exit");
        assert!(
            !status.success(),
            "server was supposed to die, got {status}"
        );
        let _ = std::fs::remove_file(&self.sock);
    }
}

/// Runs one cached sweep against `addr` (via the env knob — the exact
/// path the `exp_*` binaries take) and returns the outcomes plus the
/// local cache's (hits, misses).
fn served_sweep(addr: &ServiceAddr, specs: Vec<ScenarioSpec>) -> (Vec<SweepOutcome>, u64, u64) {
    std::env::set_var("WL_SWEEP_SERVICE", addr.to_string());
    let cache = SweepCache::new();
    let out = SweepRunner::serial().sweep_cached::<Maintenance>(specs, &cache);
    std::env::remove_var("WL_SWEEP_SERVICE");
    (out, cache.hits(), cache.misses())
}

/// The 1-process local-store reference: a plain cached sweep absorbed
/// into a binary store — the bytes every server store must match.
fn reference_bytes(dir: &Path) -> Vec<u8> {
    std::env::remove_var("WL_SWEEP_SERVICE");
    let cache = SweepCache::new();
    let _ = SweepRunner::serial().sweep_cached::<Maintenance>(grid(), &cache);
    let path = dir.join("reference.wls");
    let mut store = SweepStore::open(&path).unwrap();
    store.set_format(StoreFormat::Binary);
    store.absorb(&cache);
    store.save().unwrap();
    std::fs::read(&path).unwrap()
}

// ---------------------------------------------------------------------------
// The tests.
// ---------------------------------------------------------------------------

fn test_served_sweep_runs_zero_local_simulations() {
    let dir = tmp_dir("warm");
    let store = dir.join("server.wls");
    let server = Server::spawn(&dir, &store, None);

    // Cold: the server simulates; the client's sweep loop sees pure
    // hits — zero *local* simulations even on a cold store.
    let (out, hits, misses) = served_sweep(&server.addr, grid());
    assert_eq!(out.len(), GRID);
    assert_eq!((hits, misses), (GRID as u64, 0));
    let cold = server.stats();
    assert_eq!(cold.simulated, GRID as u64);
    assert_eq!(cold.records, GRID as u64);

    // Warm: same again, and the server answers from its in-RAM index —
    // zero simulations anywhere.
    let (warm_out, hits, misses) = served_sweep(&server.addr, grid());
    assert_eq!((hits, misses), (GRID as u64, 0));
    let warm = server.stats();
    assert_eq!(warm.simulated, GRID as u64, "warm pass must not simulate");
    assert_eq!(warm.warm_hits, cold.warm_hits + GRID as u64);

    // Served outcomes are exactly what local simulation produces.
    std::env::remove_var("WL_SWEEP_SERVICE");
    let local = SweepRunner::serial().sweep::<Maintenance>(grid());
    let canon = |o: &SweepOutcome| format!("{o:?}");
    assert_eq!(
        out.iter().map(canon).collect::<Vec<_>>(),
        local.iter().map(canon).collect::<Vec<_>>()
    );
    assert_eq!(
        warm_out.iter().map(canon).collect::<Vec<_>>(),
        local.iter().map(canon).collect::<Vec<_>>()
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    println!("ok: served sweeps execute zero local simulations, cold and warm");
}

fn test_killed_server_store_is_recoverable_and_byte_identical() {
    let dir = tmp_dir("kill");
    let store = dir.join("server.wls");
    let reference = reference_bytes(&dir);

    // The server aborts (kill -9 stand-in) right after checkpointing
    // its first miss batch, *before* answering — the worst moment: work
    // done, client unanswered.
    let server = Server::spawn(&dir, &store, Some(1));
    let addr = server.addr.clone();
    let (out, hits, misses) = served_sweep(&addr, grid());
    assert_eq!(out.len(), GRID, "client completes despite the dead server");
    assert_eq!(
        (hits, misses),
        (0, GRID as u64),
        "interrupted prefetch must fall back to local simulation"
    );
    server.wait_for_crash();

    // The checkpoint the server wrote before dying is fully loadable —
    // the batch was durable before the response would have gone out.
    let recovered = SweepStore::open(&store).unwrap();
    assert_eq!(recovered.len(), GRID, "checkpointed batch survives kill");
    assert_eq!(recovered.skipped_lines(), 0, "no torn records");

    // A restarted server serves that checkpointed prefix in full.
    let server = Server::spawn(&dir, &store, None);
    let (_, hits, misses) = served_sweep(&server.addr, grid());
    assert_eq!((hits, misses), (GRID as u64, 0));
    let stats = server.stats();
    assert_eq!(stats.simulated, 0, "restart serves, never re-simulates");
    assert_eq!(stats.warm_hits, GRID as u64);
    server.shutdown();

    // And its graceful save is byte-identical to the 1-process
    // local-store run — the crash cost nothing.
    assert_eq!(
        std::fs::read(&store).unwrap(),
        reference,
        "post-kill server store != local reference store"
    );
    let _ = std::fs::remove_dir_all(&dir);
    println!("ok: killed server's store recovers byte-identically after restart");
}

fn test_concurrent_clients_converge_to_reference_bytes() {
    let dir = tmp_dir("concurrent");
    let store = dir.join("server.wls");
    let reference = reference_bytes(&dir);
    let server = Server::spawn(&dir, &store, None);

    // Two clients race the same cold grid. Env is process-global, so
    // the tiers are built directly (subprocess clients — the shape the
    // CI smoke runs — go through the env knob instead).
    let specs = grid();
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let addr = server.addr.clone();
            let specs = specs.clone();
            scope.spawn(move || {
                let tier = wl_harness::ServiceSweepCache::new(addr);
                let cache = SweepCache::new();
                let served = tier.prefetch::<Maintenance>(&specs, Capture::Scalar, &cache);
                assert_eq!(served, GRID, "every point served, none simulated here");
            });
        }
    });
    let stats = server.stats();
    assert_eq!(stats.records, GRID as u64);
    assert_eq!(
        stats.simulated, GRID as u64,
        "the two racing batches must not double-simulate the grid"
    );
    server.shutdown();
    assert_eq!(
        std::fs::read(&store).unwrap(),
        reference,
        "concurrent-client server store != local reference store"
    );
    let _ = std::fs::remove_dir_all(&dir);
    println!("ok: concurrent cold clients converge to the reference bytes");
}

fn test_warm_server_under_load_simulates_nothing() {
    let dir = tmp_dir("load");
    let store = dir.join("server.wls");
    let server = Server::spawn(&dir, &store, None);

    // Warm the store once (the server simulates the cold grid), then
    // snapshot the stats the load phase must not move.
    let (_, hits, misses) = served_sweep(&server.addr, grid());
    assert_eq!((hits, misses), (GRID as u64, 0));
    let warm = server.stats();
    assert_eq!(warm.simulated, GRID as u64);
    assert_eq!(warm.records, GRID as u64);

    // 8 concurrent clients hammer the warm server through the same env
    // knob the experiment binaries use. `WL_SWEEP_EXPECT_MISSES=0` is
    // held for the duration, and its contract — zero local cache misses,
    // i.e. zero local simulations — is asserted per client.
    const CLIENTS: usize = 8;
    std::env::set_var("WL_SWEEP_SERVICE", server.addr.to_string());
    std::env::set_var("WL_SWEEP_EXPECT_MISSES", "0");
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            let specs = grid();
            scope.spawn(move || {
                let cache = SweepCache::new();
                let out = SweepRunner::serial().sweep_cached::<Maintenance>(specs, &cache);
                assert_eq!(out.len(), GRID);
                assert_eq!(
                    (cache.hits(), cache.misses()),
                    (GRID as u64, 0),
                    "a loaded warm server must keep every client at zero misses"
                );
            });
        }
    });
    std::env::remove_var("WL_SWEEP_EXPECT_MISSES");
    std::env::remove_var("WL_SWEEP_SERVICE");

    // The server answered all of it from its in-RAM index: not one
    // simulation beyond the warm-up, one warm hit per point per client.
    let loaded = server.stats();
    assert_eq!(
        loaded.simulated, warm.simulated,
        "load against a warm store must add 0 simulated"
    );
    assert_eq!(loaded.records, GRID as u64);
    assert_eq!(
        loaded.warm_hits,
        warm.warm_hits + (CLIENTS * GRID) as u64,
        "every loaded point must be a warm hit"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    println!("ok: 8 concurrent clients on a warm server simulate nothing anywhere");
}

fn test_dead_service_degrades_to_local_sweep() {
    let dir = tmp_dir("dead");
    let addr = ServiceAddr::parse(&format!("unix:{}", dir.join("nobody.sock").display())).unwrap();
    let (out, hits, misses) = served_sweep(&addr, grid());
    assert_eq!(out.len(), GRID);
    assert_eq!((hits, misses), (0, GRID as u64), "pure local fallback");
    std::env::remove_var("WL_SWEEP_SERVICE");
    let local = SweepRunner::serial().sweep::<Maintenance>(grid());
    assert_eq!(format!("{out:?}"), format!("{local:?}"));
    let _ = std::fs::remove_dir_all(&dir);
    println!("ok: dead service degrades to a plain local sweep");
}
