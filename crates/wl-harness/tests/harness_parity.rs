//! Refactor-safety net: the harness assembly path produces **byte-identical
//! executions** to the legacy per-crate builders it replaced.
//!
//! The `legacy` module below is a frozen, verbatim copy of the assembly
//! logic that used to live in `wl_core::scenario` and
//! `wl_baselines::scenario` (deleted when `wl-harness` was extracted), kept
//! here as a golden reference fixture — the only deviation is a trace
//! capacity knob on the baseline builders, which never had one (tracing
//! records events; it does not alter them). Each test assembles the same
//! configuration both ways, runs both simulations, and asserts equality of
//! the full `Debug`-formatted trace (every send, delivery, timer, and
//! correction, with exact times), the correction histories, and the
//! counters.
//!
//! If an intentional behaviour change ever lands in the harness, these
//! tests are expected to fail and the fixture should be updated with the
//! new golden behaviour — consciously. (One such conscious update: the
//! positional `Simulation::new` constructor was retired for `SimBuilder`,
//! so the frozen assembly logic below now hands its identically-derived
//! ingredients to the builder.)

use wl_core::Params;
use wl_harness::{
    assemble, DelayKind, FaultKind, LmCnv, MahaneySchneider, Maintenance, Rejoiner, ScenarioSpec,
    SrikanthToueg, Startup,
};
use wl_sim::trace::Trace;
use wl_sim::{ProcessId, SimOutcome, Simulation};
use wl_time::RealTime;

/// Frozen legacy assembly (see module docs).
mod legacy {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use wl_baselines::byzantine::{TimedTwoFaced, ValueTwoFaced};
    use wl_baselines::lm_cnv::{CnvMsg, LmCnv};
    use wl_baselines::mahaney_schneider::{MahaneySchneider, MsMsg};
    use wl_baselines::srikanth_toueg::{SrikanthToueg, StMsg};
    use wl_clock::drift::{DriftModel, FleetClock};
    use wl_clock::Clock;
    use wl_core::byzantine::{PullApart, RoundSpammer};
    use wl_core::{Maintenance, Rejoiner, Startup};
    use wl_core::{Params, StartupParams};
    use wl_sim::delay::{AdversarialSplitDelay, ConstantDelay, DelayModel, UniformDelay};
    use wl_sim::faults::{crash_phys_time, FaultPlan, SilentFor};
    use wl_sim::{Automaton, ProcessId, SimBuilder, SimConfig, Simulation};
    use wl_time::{ClockTime, RealTime};

    pub use wl_harness::{DelayKind, FaultKind};

    pub struct Built<M> {
        pub sim: Simulation<M>,
        pub plan: FaultPlan,
        pub starts: Vec<RealTime>,
    }

    /// Verbatim `wl_core::scenario::ScenarioBuilder` (fields + build).
    pub struct ScenarioBuilder {
        params: Params,
        drift: DriftModel,
        delay: DelayKind,
        seed: u64,
        t_end: RealTime,
        spread_frac: f64,
        faults: Vec<(ProcessId, FaultKind)>,
        trace_capacity: usize,
        rejoiner: Option<(ProcessId, RealTime)>,
    }

    impl ScenarioBuilder {
        pub fn new(params: Params) -> Self {
            let drift = if params.rho > 0.0 {
                DriftModel::Split { rho: params.rho }
            } else {
                DriftModel::Ideal
            };
            Self {
                params,
                drift,
                delay: DelayKind::Uniform,
                seed: 1,
                t_end: RealTime::from_secs(30.0),
                spread_frac: 0.8,
                faults: Vec::new(),
                trace_capacity: 0,
                rejoiner: None,
            }
        }

        pub fn seed(mut self, seed: u64) -> Self {
            self.seed = seed;
            self
        }

        pub fn t_end(mut self, t_end: RealTime) -> Self {
            self.t_end = t_end;
            self
        }

        pub fn drift(mut self, drift: DriftModel) -> Self {
            self.drift = drift;
            self
        }

        pub fn delay(mut self, delay: DelayKind) -> Self {
            self.delay = delay;
            self
        }

        pub fn spread_frac(mut self, frac: f64) -> Self {
            self.spread_frac = frac;
            self
        }

        pub fn fault(mut self, p: ProcessId, kind: FaultKind) -> Self {
            self.faults.push((p, kind));
            self
        }

        pub fn rejoiner(mut self, p: ProcessId, repair_at: RealTime) -> Self {
            self.rejoiner = Some((p, repair_at));
            self
        }

        pub fn trace(mut self, capacity: usize) -> Self {
            self.trace_capacity = capacity;
            self
        }

        pub fn build(self) -> Built<wl_core::WlMsg> {
            let p = &self.params;
            p.validate_timing().expect("invalid parameters");
            let n = p.n;
            let mut rng = StdRng::seed_from_u64(self.seed);

            let window = p.beta * self.spread_frac;
            let offsets: Vec<ClockTime> = (0..n)
                .map(|_| ClockTime::from_secs(rng.gen_range(-window / 2.0..=window / 2.0)))
                .collect();
            let clocks = self.drift.build(n, &offsets, rng.gen());

            let starts: Vec<RealTime> = clocks.iter().map(|c| c.time_of(p.t0_clock())).collect();

            let mut faulty_ids: Vec<ProcessId> = self.faults.iter().map(|&(id, _)| id).collect();
            if let Some((id, _)) = self.rejoiner {
                faulty_ids.push(id);
            }
            let plan = FaultPlan::with_faulty(n, &faulty_ids);

            let mut procs: Vec<Box<dyn Automaton<Msg = wl_core::WlMsg>>> = Vec::with_capacity(n);
            let mut starts_adj = starts.clone();
            for i in 0..n {
                let id = ProcessId(i);
                let fault = self
                    .faults
                    .iter()
                    .find(|&&(fid, _)| fid == id)
                    .map(|&(_, k)| k);
                let is_rejoiner = self.rejoiner.map(|(rid, _)| rid) == Some(id);
                let auto: Box<dyn Automaton<Msg = wl_core::WlMsg>> = if is_rejoiner {
                    let (_, repair_at) = self.rejoiner.unwrap();
                    starts_adj[i] = repair_at;
                    Box::new(Rejoiner::new(id, p.clone()))
                } else {
                    match fault {
                        None => Box::new(Maintenance::new(id, p.clone(), 0.0)),
                        Some(FaultKind::CrashAt(t)) => Box::new(wl_sim::faults::CrashAt::new(
                            Maintenance::new(id, p.clone(), 0.0),
                            crash_phys_time(&clocks[i], RealTime::from_secs(t)),
                        )),
                        Some(FaultKind::Silent) => Box::new(SilentFor::<wl_core::WlMsg>::default()),
                        Some(FaultKind::RoundSpam) => Box::new(RoundSpammer::new(
                            n,
                            p.wait_window() / 2.0,
                            self.seed.wrapping_add(i as u64),
                            (p.t0 - 10.0 * p.p_round, p.t0 + 100.0 * p.p_round),
                        )),
                        Some(FaultKind::PullApart(a)) | Some(FaultKind::TwoFaced(a)) => {
                            let early_below = p.f + (n - p.f).div_ceil(2);
                            Box::new(PullApart::new(p.clone(), a, early_below))
                        }
                        Some(FaultKind::PullApartHigh(a)) => {
                            let threshold = p.f + (n - p.f) / 2;
                            let mask = (0..n).map(|q| q >= threshold).collect();
                            Box::new(PullApart::with_early_mask(p.clone(), a, mask))
                        }
                    }
                };
                procs.push(auto);
            }

            let delay: Box<dyn DelayModel> = match self.delay {
                DelayKind::Constant => {
                    Box::new(ConstantDelay::new(wl_time::RealDur::from_secs(p.delta)))
                }
                DelayKind::Uniform => Box::new(UniformDelay::new(p.delay_bounds())),
                DelayKind::AdversarialSplit => {
                    Box::new(AdversarialSplitDelay::new(p.delay_bounds(), n / 2))
                }
            };

            let sim = SimBuilder::new()
                .clocks(clocks)
                .procs(procs)
                .delay_boxed(delay)
                .starts(starts_adj)
                .config(SimConfig {
                    t_end: self.t_end,
                    seed: self.seed.wrapping_add(0x5EED),
                    delay_bounds: p.delay_bounds(),
                    trace_capacity: self.trace_capacity,
                    max_events: 0,
                })
                .build();

            Built { sim, plan, starts }
        }
    }

    /// Verbatim `wl_core::scenario::build_startup` (+ trace knob).
    pub fn build_startup(
        params: &StartupParams,
        initial_spread: f64,
        silent: &[ProcessId],
        seed: u64,
        t_end: RealTime,
        trace_capacity: usize,
    ) -> Built<wl_core::WlMsg> {
        let n = params.n;
        let mut rng = StdRng::seed_from_u64(seed);
        let drift = if params.rho > 0.0 {
            DriftModel::Split { rho: params.rho }
        } else {
            DriftModel::Ideal
        };
        let clocks: Vec<FleetClock> = drift.build(n, &vec![ClockTime::ZERO; n], rng.gen());
        let initial_corrs: Vec<f64> = (0..n)
            .map(|_| rng.gen_range(-initial_spread / 2.0..=initial_spread / 2.0))
            .collect();
        let plan = FaultPlan::with_faulty(n, silent);

        let procs: Vec<Box<dyn Automaton<Msg = wl_core::WlMsg>>> = (0..n)
            .map(|i| {
                let id = ProcessId(i);
                if plan.is_faulty(id) {
                    Box::new(SilentFor::<wl_core::WlMsg>::default())
                        as Box<dyn Automaton<Msg = wl_core::WlMsg>>
                } else {
                    Box::new(Startup::new(id, params.clone(), initial_corrs[i]))
                }
            })
            .collect();

        let starts: Vec<RealTime> = (0..n)
            .map(|_| RealTime::from_secs(1.0 + rng.gen_range(0.0..params.delta)))
            .collect();

        let sim = SimBuilder::new()
            .clocks(clocks)
            .procs(procs)
            .delay(UniformDelay::new(params.delay_bounds()))
            .starts(starts.clone())
            .config(SimConfig {
                t_end,
                seed: seed.wrapping_add(0xF00D),
                delay_bounds: params.delay_bounds(),
                trace_capacity,
                max_events: 0,
            })
            .build();
        Built { sim, plan, starts }
    }

    fn common_setup(params: &Params, seed: u64) -> (Vec<FleetClock>, Vec<RealTime>, StdRng) {
        let n = params.n;
        let mut rng = StdRng::seed_from_u64(seed);
        let window = params.beta * 0.8;
        let offsets: Vec<ClockTime> = (0..n)
            .map(|_| ClockTime::from_secs(rng.gen_range(-window / 2.0..=window / 2.0)))
            .collect();
        let drift = if params.rho > 0.0 {
            DriftModel::Split { rho: params.rho }
        } else {
            DriftModel::Ideal
        };
        let clocks = drift.build(n, &offsets, rng.gen());
        let starts: Vec<RealTime> = clocks
            .iter()
            .map(|c| c.time_of(params.t0_clock()))
            .collect();
        (clocks, starts, rng)
    }

    /// Verbatim `wl_baselines::scenario::build_generic` (+ trace knob).
    fn build_generic<M, F>(
        params: &Params,
        silent: &[ProcessId],
        seed: u64,
        t_end: RealTime,
        trace_capacity: usize,
        make: F,
    ) -> Built<M>
    where
        M: Clone + std::fmt::Debug + Send + 'static,
        F: Fn(ProcessId) -> Box<dyn Automaton<Msg = M>>,
        SilentFor<M>: Automaton<Msg = M>,
    {
        let (clocks, starts, _rng) = common_setup(params, seed);
        let plan = FaultPlan::with_faulty(params.n, silent);
        let procs: Vec<Box<dyn Automaton<Msg = M>>> = (0..params.n)
            .map(|i| {
                let id = ProcessId(i);
                if plan.is_faulty(id) {
                    Box::new(SilentFor::<M>::default()) as Box<dyn Automaton<Msg = M>>
                } else {
                    make(id)
                }
            })
            .collect();
        let sim = SimBuilder::new()
            .clocks(clocks)
            .procs(procs)
            .delay(UniformDelay::new(params.delay_bounds()))
            .starts(starts.clone())
            .config(SimConfig {
                t_end,
                seed: seed.wrapping_add(0xBA5E),
                delay_bounds: params.delay_bounds(),
                trace_capacity,
                max_events: 0,
            })
            .build();
        Built { sim, plan, starts }
    }

    pub fn build_lm_cnv(
        params: &Params,
        silent: &[ProcessId],
        seed: u64,
        t_end: RealTime,
        cap: usize,
    ) -> Built<CnvMsg> {
        build_generic(params, silent, seed, t_end, cap, |id| {
            Box::new(LmCnv::new(id, params.clone(), 0.0))
        })
    }

    pub fn build_mahaney_schneider(
        params: &Params,
        silent: &[ProcessId],
        seed: u64,
        t_end: RealTime,
        cap: usize,
    ) -> Built<MsMsg> {
        build_generic(params, silent, seed, t_end, cap, |id| {
            Box::new(MahaneySchneider::new(id, params.clone(), 0.0))
        })
    }

    pub fn build_srikanth_toueg(
        params: &Params,
        silent: &[ProcessId],
        seed: u64,
        t_end: RealTime,
        cap: usize,
    ) -> Built<StMsg> {
        build_generic(params, silent, seed, t_end, cap, |id| {
            Box::new(SrikanthToueg::new(id, params.clone(), 0.0))
        })
    }

    pub fn build_lm_cnv_attacked(
        params: &Params,
        amplitude: f64,
        seed: u64,
        t_end: RealTime,
        cap: usize,
    ) -> Built<CnvMsg> {
        let n = params.n;
        let early_below = 1 + (n - 1).div_ceil(2);
        let built = build_generic(params, &[], seed, t_end, cap, |id| {
            if id.index() == 0 {
                Box::new(ValueTwoFaced::new(
                    params.clone(),
                    amplitude,
                    early_below,
                    |claim| CnvMsg(ClockTime::from_secs(claim)),
                ))
            } else {
                Box::new(LmCnv::new(id, params.clone(), 0.0))
            }
        });
        Built {
            plan: FaultPlan::with_faulty(n, &[ProcessId(0)]),
            ..built
        }
    }

    pub fn build_srikanth_toueg_attacked(
        params: &Params,
        amplitude: f64,
        seed: u64,
        t_end: RealTime,
        cap: usize,
    ) -> Built<StMsg> {
        let n = params.n;
        let early_below = 1 + (n - 1).div_ceil(2);
        let built = build_generic(params, &[], seed, t_end, cap, |id| {
            if id.index() == 0 {
                Box::new(TimedTwoFaced::new(
                    params.clone(),
                    amplitude,
                    early_below,
                    |round, _| StMsg {
                        round: round as u32,
                        echo: false,
                    },
                ))
            } else {
                Box::new(SrikanthToueg::new(id, params.clone(), 0.0))
            }
        });
        Built {
            plan: FaultPlan::with_faulty(n, &[ProcessId(0)]),
            ..built
        }
    }
}

const CAP: usize = 2_000_000;

fn run<M: Clone + std::fmt::Debug + Send + 'static>(mut sim: Simulation<M>) -> SimOutcome {
    sim.run()
}

/// Byte-level equality of two executions: trace (exact event sequence with
/// exact times), correction histories, counters.
fn assert_identical(a: SimOutcome, b: SimOutcome) {
    assert_eq!(a.stats, b.stats, "simulator counters differ");
    assert_eq!(a.corr, b.corr, "correction histories differ");
    assert!(
        !a.trace.events().is_empty(),
        "trace must be non-empty for a meaningful check"
    );
    let (fa, fb) = (trace_bytes(&a.trace), trace_bytes(&b.trace));
    assert_eq!(fa, fb, "trace event streams differ");
}

fn trace_bytes(t: &Trace) -> String {
    format!("{:?}", t.events())
}

fn params() -> Params {
    Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap()
}

#[test]
fn maintenance_parity_across_seeds() {
    let p = params();
    for seed in [1u64, 42, 1337] {
        let old = legacy::ScenarioBuilder::new(p.clone())
            .seed(seed)
            .t_end(RealTime::from_secs(12.0))
            .trace(CAP)
            .build();
        let new = assemble::<Maintenance>(
            &ScenarioSpec::new(p.clone())
                .seed(seed)
                .t_end(RealTime::from_secs(12.0))
                .trace(CAP),
        );
        assert_eq!(old.plan.fault_count(), new.plan.fault_count());
        assert_eq!(old.starts, new.starts);
        assert_identical(run(old.sim), run(new.sim));
    }
}

#[test]
fn maintenance_parity_with_fault_gallery() {
    let p = Params::auto(7, 2, 1e-6, 0.010, 0.001).unwrap();
    let faults: [(ProcessId, FaultKind); 3] = [
        (ProcessId(0), FaultKind::PullApart(p.beta / 2.0)),
        (ProcessId(3), FaultKind::RoundSpam),
        (ProcessId(5), FaultKind::CrashAt(6.0)),
    ];
    let mut old_b = legacy::ScenarioBuilder::new(p.clone())
        .seed(9)
        .t_end(RealTime::from_secs(10.0))
        .trace(CAP);
    let mut spec = ScenarioSpec::new(p)
        .seed(9)
        .t_end(RealTime::from_secs(10.0))
        .trace(CAP);
    for &(id, kind) in &faults {
        old_b = old_b.fault(id, kind);
        spec = spec.fault(id, kind);
    }
    assert_identical(
        run(old_b.build().sim),
        run(assemble::<Maintenance>(&spec).sim),
    );
}

#[test]
fn maintenance_parity_with_delay_and_drift_overrides() {
    let p = params();
    let drift = wl_clock::drift::DriftModel::EvenSpread { rho: p.rho };
    let old = legacy::ScenarioBuilder::new(p.clone())
        .seed(77)
        .drift(drift.clone())
        .delay(DelayKind::AdversarialSplit)
        .spread_frac(0.95)
        .t_end(RealTime::from_secs(10.0))
        .trace(CAP)
        .build();
    let new = assemble::<Maintenance>(
        &ScenarioSpec::new(p)
            .seed(77)
            .drift(drift)
            .delay(DelayKind::AdversarialSplit)
            .spread_frac(0.95)
            .t_end(RealTime::from_secs(10.0))
            .trace(CAP),
    );
    assert_identical(run(old.sim), run(new.sim));
}

#[test]
fn rejoiner_parity() {
    let p = params();
    let repair = RealTime::from_secs(7.3);
    let old = legacy::ScenarioBuilder::new(p.clone())
        .seed(19)
        .rejoiner(ProcessId(3), repair)
        .t_end(RealTime::from_secs(20.0))
        .trace(CAP)
        .build();
    let new = assemble::<Rejoiner>(
        &ScenarioSpec::new(p)
            .seed(19)
            .rejoiner(ProcessId(3), repair)
            .t_end(RealTime::from_secs(20.0))
            .trace(CAP),
    );
    assert_identical(run(old.sim), run(new.sim));
}

#[test]
fn startup_parity() {
    let sp = wl_core::StartupParams::new(4, 1, 1e-6, 0.010, 0.001).unwrap();
    for seed in [23u64, 99] {
        let old = legacy::build_startup(
            &sp,
            5.0,
            &[ProcessId(3)],
            seed,
            RealTime::from_secs(8.0),
            CAP,
        );
        let new = assemble::<Startup>(
            &ScenarioSpec::startup(&sp, 5.0)
                .seed(seed)
                .t_end(RealTime::from_secs(8.0))
                .silent(&[ProcessId(3)])
                .trace(CAP),
        );
        assert_eq!(old.starts, new.starts);
        assert_identical(run(old.sim), run(new.sim));
    }
}

#[test]
fn baseline_parity_lm_cnv_ms_st() {
    let p = params();
    let silent = [ProcessId(3)];
    let t = RealTime::from_secs(10.0);
    let spec = ScenarioSpec::new(p.clone())
        .seed(61)
        .t_end(t)
        .silent(&silent)
        .trace(CAP);
    assert_identical(
        run(legacy::build_lm_cnv(&p, &silent, 61, t, CAP).sim),
        run(assemble::<LmCnv>(&spec).sim),
    );
    assert_identical(
        run(legacy::build_mahaney_schneider(&p, &silent, 61, t, CAP).sim),
        run(assemble::<MahaneySchneider>(&spec).sim),
    );
    assert_identical(
        run(legacy::build_srikanth_toueg(&p, &silent, 61, t, CAP).sim),
        run(assemble::<SrikanthToueg>(&spec).sim),
    );
}

#[test]
fn baseline_parity_under_attack() {
    let p = params();
    let t = RealTime::from_secs(10.0);
    let amp = 1.9 * (p.beta + p.delta + p.eps);
    assert_identical(
        run(legacy::build_lm_cnv_attacked(&p, amp, 61, t, CAP).sim),
        run(assemble::<LmCnv>(
            &ScenarioSpec::new(p.clone())
                .seed(61)
                .t_end(t)
                .fault(ProcessId(0), FaultKind::TwoFaced(amp))
                .trace(CAP),
        )
        .sim),
    );
    assert_identical(
        run(legacy::build_srikanth_toueg_attacked(&p, p.delta / 2.0, 61, t, CAP).sim),
        run(assemble::<SrikanthToueg>(
            &ScenarioSpec::new(p.clone())
                .seed(61)
                .t_end(t)
                .fault(ProcessId(0), FaultKind::TwoFaced(p.delta / 2.0))
                .trace(CAP),
        )
        .sim),
    );
}
