//! The §10 baselines converge under the harness (tests inherited from the
//! deleted `wl_baselines::scenario` module, now running through the
//! unified assembly path).

use wl_analysis::skew::SkewSeries;
use wl_analysis::ExecutionView;
use wl_core::Params;
use wl_harness::{
    assemble, BuiltScenario, LmCnv, MahaneySchneider, ScenarioSpec, SrikanthToueg, SyncAlgorithm,
};
use wl_sim::ProcessId;
use wl_time::{RealDur, RealTime};

fn params() -> Params {
    Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap()
}

fn spec(silent: &[ProcessId], seed: u64, t_end: f64) -> ScenarioSpec {
    ScenarioSpec::new(params())
        .seed(seed)
        .t_end(RealTime::from_secs(t_end))
        .silent(silent)
}

fn steady_skew<M: Clone + std::fmt::Debug + Send + 'static>(
    built: BuiltScenario<M>,
    t_end: f64,
) -> f64 {
    let params = built.params.clone();
    let plan = built.plan.clone();
    let mut sim = built.sim;
    let outcome = sim.run();
    let view = ExecutionView::with_plan(sim.clocks(), &outcome.corr, &plan);
    let series = SkewSeries::sample_with_events(
        &view,
        RealTime::from_secs(params.t0 + 3.0 * params.p_round),
        RealTime::from_secs(t_end * 0.95),
        RealDur::from_secs(params.p_round / 5.0),
    );
    series.max_after(RealTime::from_secs(t_end / 2.0))
}

#[test]
fn cnv_converges_fault_free() {
    let p = params();
    let skew = steady_skew(assemble::<LmCnv>(&spec(&[], 3, 30.0)), 30.0);
    // CNV should keep clocks within ~2n*eps = 8ms here.
    assert!(skew < 2.0 * 4.0 * p.eps, "CNV steady skew {skew}");
    assert!(skew > 0.0);
}

#[test]
fn ms_converges_fault_free() {
    let p = params();
    let skew = steady_skew(assemble::<MahaneySchneider>(&spec(&[], 3, 30.0)), 30.0);
    assert!(skew < 2.0 * 4.0 * p.eps, "MS steady skew {skew}");
}

#[test]
fn st_converges_fault_free() {
    let p = params();
    let built = assemble::<SrikanthToueg>(&spec(&[], 3, 30.0));
    let plan = built.plan.clone();
    let mut sim = built.sim;
    let outcome = sim.run();
    // The protocol must actually resynchronize round after round, not
    // just coast on the initial offsets.
    for q in 0..p.n {
        assert!(
            outcome.corr[q].adjustments().len() > 100,
            "p{q} only adjusted {} times",
            outcome.corr[q].adjustments().len()
        );
    }
    let view = ExecutionView::with_plan(sim.clocks(), &outcome.corr, &plan);
    let series = SkewSeries::sample_with_events(
        &view,
        RealTime::from_secs(p.t0 + 3.0 * p.p_round),
        RealTime::from_secs(28.0),
        RealDur::from_secs(p.p_round / 5.0),
    );
    let skew = series.max_after(RealTime::from_secs(15.0));
    // ST agreement ~ delta + eps = 11ms.
    assert!(skew < 2.0 * (p.delta + p.eps), "ST steady skew {skew}");
    assert!(skew > 0.0);
}

#[test]
fn baselines_tolerate_one_silent_fault() {
    let p = params();
    let silent = [ProcessId(3)];
    let s1 = steady_skew(assemble::<LmCnv>(&spec(&silent, 4, 30.0)), 30.0);
    let s2 = steady_skew(assemble::<MahaneySchneider>(&spec(&silent, 4, 30.0)), 30.0);
    let s3 = steady_skew(assemble::<SrikanthToueg>(&spec(&silent, 4, 30.0)), 30.0);
    assert!(s1 < 2.0 * 4.0 * p.eps, "CNV with fault {s1}");
    assert!(s2 < 2.0 * 4.0 * p.eps, "MS with fault {s2}");
    assert!(s3 < 2.0 * (p.delta + p.eps), "ST with fault {s3}");
}

#[test]
fn baseline_names() {
    assert_eq!(<LmCnv as SyncAlgorithm>::NAME, "LM-CNV");
    assert_eq!(
        <MahaneySchneider as SyncAlgorithm>::NAME,
        "Mahaney-Schneider"
    );
    assert_eq!(<SrikanthToueg as SyncAlgorithm>::NAME, "Srikanth-Toueg");
}
