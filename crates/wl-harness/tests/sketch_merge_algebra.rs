//! The merge algebra of [`SkewSketch`], pinned by property tests.
//!
//! Sharded sweeps lean on one algebraic fact: folding a million skew
//! samples into one sketch and merging per-shard sketches of the same
//! samples are *the same function* — not approximately, but to the
//! bit. That is what lets `sweep_stats` over N shard stores print a
//! transcript character-identical to a 1-process run, and what lets
//! [`SweepStore::merge_from`] treat sketch records as a join
//! semilattice. The laws, over adversarial inputs (arbitrary f64 bit
//! patterns: NaNs, ±0.0, subnormals, infinities):
//!
//! * **identity** — `merge(s, empty) == s == merge(empty, s)`;
//! * **commutativity** — `merge(a, b) == merge(b, a)`;
//! * **associativity** — `merge(merge(a, b), c) == merge(a, merge(b, c))`;
//! * **shard-invariance** — for *any* assignment of samples to shards,
//!   `merge(fold(shard_0), …, fold(shard_k)) == fold(all)`;
//! * **canon-stability** — bit-identical sketches serialize to the same
//!   canonical string (so store bytes cannot drift across shardings).
//!
//! Equality throughout is [`SkewSketch::bit_identical`] — exact field
//! and bin equality — plus the serialized form, never a tolerance.

use proptest::prelude::*;
use wl_harness::cache::canon_string;
use wl_harness::{SketchObserver, SkewSketch};

/// Folds a sample stream through the per-point observer.
fn fold(samples: &[f64]) -> SkewSketch {
    let mut obs = SketchObserver::new();
    for &v in samples {
        obs.observe(v);
    }
    obs.finish()
}

fn merged(a: &SkewSketch, b: &SkewSketch) -> SkewSketch {
    let mut out = a.clone();
    out.merge(b);
    out
}

/// Asserts bitwise *and* serialized equality — the store-level contract.
fn assert_same(a: &SkewSketch, b: &SkewSketch, law: &str) {
    assert!(
        a.bit_identical(b),
        "{law} violated:\n  left  = {a:?}\n  right = {b:?}"
    );
    assert_eq!(canon_string(a), canon_string(b), "{law}: canon drifted");
}

/// Arbitrary f64 *bit patterns* — the harshest sample distribution: every
/// NaN payload, both zero signs, subnormals, infinities — mixed with
/// realistically-scaled skews so the log-bin path is exercised too.
fn arb_samples(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..u64::MAX).prop_map(f64::from_bits),
            1e-9f64..1e-1f64,
            Just(0.0),
            Just(-0.0),
            Just(f64::NAN),
            Just(f64::INFINITY),
        ],
        0..max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn empty_is_the_two_sided_identity(samples in arb_samples(48)) {
        let s = fold(&samples);
        let empty = SkewSketch::new();
        assert_same(&merged(&s, &empty), &s, "right identity");
        assert_same(&merged(&empty, &s), &s, "left identity");
        prop_assert!(s.well_formed(), "fold must produce a well-formed sketch");
    }

    #[test]
    fn merge_commutes(a in arb_samples(48), b in arb_samples(48)) {
        let (sa, sb) = (fold(&a), fold(&b));
        assert_same(&merged(&sa, &sb), &merged(&sb, &sa), "commutativity");
    }

    #[test]
    fn merge_associates(a in arb_samples(32), b in arb_samples(32), c in arb_samples(32)) {
        let (sa, sb, sc) = (fold(&a), fold(&b), fold(&c));
        assert_same(
            &merged(&merged(&sa, &sb), &sc),
            &merged(&sa, &merged(&sb, &sc)),
            "associativity",
        );
    }

    /// The tentpole law: an arbitrary sharding of the sample stream —
    /// including empty shards and shards seeing the samples out of the
    /// global order — merges back to the 1-process fold, bit for bit.
    #[test]
    fn any_sharding_merges_to_the_unsharded_fold(
        samples in arb_samples(96),
        shards in 1usize..6,
        assignment_seed in 0u64..u64::MAX,
    ) {
        // Deterministic pseudo-random shard assignment per sample; a
        // multiplicative hash is enough spread and keeps the test
        // reproducible from the proptest seed alone.
        let mut parts: Vec<Vec<f64>> = vec![Vec::new(); shards];
        for (i, &v) in samples.iter().enumerate() {
            let h = (assignment_seed ^ i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            parts[(h % shards as u64) as usize].push(v);
        }
        let mut reassembled = SkewSketch::new();
        for part in &parts {
            reassembled.merge(&fold(part));
        }
        assert_same(&reassembled, &fold(&samples), "shard-invariance");
        prop_assert_eq!(
            reassembled.count,
            samples.len() as u64,
            "every sample accounted for exactly once"
        );
    }

    /// Quantiles and the mean are functions of the sketch alone, so
    /// sharding cannot move them even in the last bit.
    #[test]
    fn summary_statistics_survive_sharding(samples in arb_samples(96), at in 0u64..u64::MAX) {
        let cut = (at % (samples.len() as u64 + 1)) as usize;
        let whole = fold(&samples);
        let halves = merged(&fold(&samples[..cut]), &fold(&samples[cut..]));
        for (num, den) in [(1, 2), (19, 20), (99, 100)] {
            prop_assert_eq!(
                whole.quantile(num, den).to_bits(),
                halves.quantile(num, den).to_bits(),
                "q{num}/{den} moved under sharding"
            );
        }
        prop_assert_eq!(whole.mean().to_bits(), halves.mean().to_bits());
        prop_assert_eq!(whole.max.to_bits(), halves.max.to_bits());
    }
}
