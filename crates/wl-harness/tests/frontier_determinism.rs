//! Proptest pin on the frontier's core promise: **any** schedule merges
//! to the same store bytes as the unsharded run.
//!
//! The frontier state machine is driven entirely in-process — no
//! subprocesses — so proptest can shrink freely over the knobs that a
//! real fleet varies at random:
//!
//! * chunk size (including one oversized chunk spanning the whole grid
//!   and a ragged last chunk);
//! * which worker acts next at every step (claim interleaving);
//! * worker death points — before *or* after the chunk checkpoint, the
//!   two halves of the `kill -9` window — with the orphaned claim
//!   recovered by `requeue_stale` and the dead worker later restarted
//!   against its own store (resume);
//! * on-disk format (text and binary).
//!
//! Whatever the schedule, the merged store must be byte-identical to a
//! serial 1-process sweep of the same grid. The subprocess version of
//! this pin (fixed schedules, real kills) is `transport_conformance.rs`.

use proptest::prelude::*;
use std::path::PathBuf;
use std::time::Duration;
use wl_core::Params;
use wl_harness::{
    derive_seed, DelayKind, Frontier, FrontierSpec, Maintenance, ScenarioSpec, StoreFormat,
    SweepCache, SweepRunner, SweepStore,
};
use wl_time::RealTime;

const GRID: usize = 6;

fn grid() -> Vec<ScenarioSpec> {
    let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap();
    let delays = [
        DelayKind::Constant,
        DelayKind::Uniform,
        DelayKind::AdversarialSplit,
    ];
    (0..GRID)
        .map(|i| {
            ScenarioSpec::new(params.clone())
                .seed(derive_seed(0xDE7E_3713, i as u64))
                .delay(delays[i % 3])
                .t_end(RealTime::from_secs(1.5))
        })
        .collect()
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wl-frontier-prop-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The serial 1-process bytes every schedule must reproduce.
fn reference_bytes(dir: &std::path::Path, format: StoreFormat) -> Vec<u8> {
    let cache = SweepCache::new();
    let _ = SweepRunner::serial().sweep_cached::<Maintenance>(grid(), &cache);
    let path = dir.join("reference.wls");
    let mut store = SweepStore::open(&path).unwrap();
    store.set_format(format);
    store.absorb(&cache);
    store.save().unwrap();
    std::fs::read(&path).unwrap()
}

/// One in-process virtual worker: its own store file and hydrated cache,
/// exactly what `run_worker_frontier` holds per subprocess.
struct Worker {
    name: String,
    path: PathBuf,
    store: SweepStore,
    cache: SweepCache,
    chunks_done: usize,
    dead: bool,
    /// A restarted worker never dies again, so every schedule terminates.
    restarted: bool,
}

impl Worker {
    fn spawn(dir: &std::path::Path, id: usize, format: StoreFormat) -> Self {
        let path = dir.join(format!("w{id}.wls"));
        let mut store = SweepStore::open(&path).unwrap();
        store.set_format(format);
        let cache = store.hydrate();
        Self {
            name: format!("w{id}"),
            path,
            store,
            cache,
            chunks_done: 0,
            dead: false,
            restarted: false,
        }
    }

    /// Restart after a death: reopen the same store file and resume from
    /// whatever its checkpoints left behind.
    fn restart(&mut self, format: StoreFormat) {
        let mut store = SweepStore::open(&self.path).unwrap();
        store.set_format(format);
        self.cache = store.hydrate();
        self.store = store;
        self.dead = false;
        self.restarted = true;
    }
}

/// When (and how) a worker dies: after `chunks` chunk checkpoints, with
/// the fatal chunk's records kept (`after_checkpoint`) or lost.
#[derive(Debug, Clone, Copy)]
struct Death {
    chunks: usize,
    after_checkpoint: bool,
}

proptest! {
    #![proptest_config(ProptestConfig {
        // Simulation-backed cases: each runs a full (small) sweep, so a
        // handful of cases is the budget, not the default 256.
        cases: 10,
        ..ProptestConfig::default()
    })]

    #[test]
    fn any_schedule_merges_to_the_unsharded_bytes(
        chunk in 1usize..GRID + 3,
        worker_count in 1usize..4,
        binary in proptest::bool::ANY,
        schedule in proptest::collection::vec(0usize..64, 0..48),
        death_chunks in proptest::collection::vec(proptest::option::of(0usize..3), 3),
        death_after in proptest::collection::vec(proptest::bool::ANY, 3),
    ) {
        let format = if binary { StoreFormat::Binary } else { StoreFormat::Text };
        let dir = tmp_dir("case");
        let grid = grid();
        let reference = reference_bytes(&dir, format);

        let frontier_dir = dir.join("frontier");
        let frontier =
            Frontier::init(&frontier_dir, FrontierSpec::for_grid::<Maintenance>(&grid, chunk))
                .unwrap();
        let runner = SweepRunner::serial();
        let mut workers: Vec<Worker> = (0..worker_count)
            .map(|id| Worker::spawn(&dir, id, format))
            .collect();
        let deaths: Vec<Option<Death>> = death_chunks
            .iter()
            .zip(&death_after)
            .map(|(chunks, &after_checkpoint)| {
                chunks.map(|chunks| Death { chunks, after_checkpoint })
            })
            .collect();

        let mut step = 0usize;
        while !frontier.is_complete().unwrap() {
            let live: Vec<usize> = (0..workers.len()).filter(|&i| !workers[i].dead).collect();
            if live.is_empty() {
                // The fleet died out: the driver restarts every slot
                // against its own store (resume semantics).
                for w in &mut workers {
                    w.restart(format);
                }
                continue;
            }
            let pick = schedule
                .get(step)
                .map_or(step % live.len(), |ix| ix % live.len());
            step += 1;
            let wi = live[pick];

            let Some(claim) = frontier.claim(&workers[wi].name).unwrap() else {
                // Everything is claimed or done; recover any orphans. In
                // this sequential model no claim is ever held by a live
                // worker across steps, so a zero timeout only requeues
                // the dead workers' orphans.
                frontier.requeue_stale(Duration::ZERO).unwrap();
                continue;
            };

            let dying = !workers[wi].restarted
                && deaths[wi].is_some_and(|d| d.chunks == workers[wi].chunks_done);
            if dying && !deaths[wi].unwrap().after_checkpoint {
                // Death in the first half of the kill window: the claim
                // is orphaned and this chunk's records are lost.
                workers[wi].dead = true;
                drop(claim);
                continue;
            }

            let specs: Vec<ScenarioSpec> = grid[claim.range()].to_vec();
            let w = &mut workers[wi];
            let _ = runner.sweep_cached::<Maintenance>(specs, &w.cache);
            w.store.absorb(&w.cache);
            w.store.checkpoint().unwrap();
            w.chunks_done += 1;

            if dying {
                // Death in the second half: checkpointed but never
                // completed — the orphaned claim the steal path recovers,
                // with the records already safe in the store.
                workers[wi].dead = true;
                drop(claim);
            } else {
                claim.complete().unwrap();
            }
        }

        // Harvest and merge, exactly as `drive_frontier` does.
        let out = dir.join("merged.wls");
        let mut merged = SweepStore::open(&out).unwrap();
        merged.set_format(format);
        for w in &workers {
            let theirs = SweepStore::open(&w.path).unwrap();
            merged.merge_from(&theirs).unwrap();
        }
        merged.save().unwrap();

        let merged_bytes = std::fs::read(&out).unwrap();
        prop_assert_eq!(
            merged_bytes,
            reference,
            "chunk={} workers={} format={:?}: schedule diverged from the unsharded run",
            chunk,
            worker_count,
            format
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
