//! End-to-end tests of the multi-process sweep driver, with real
//! subprocesses: this test binary re-enters itself as the worker
//! (`argv[1] == "--worker"`), so `harness = false` in the manifest.
//!
//! Pinned here (and mirrored by the CI `driver-smoke` job):
//!
//! 1. a 3-worker drive produces a merged store **byte-identical** to a
//!    1-worker drive;
//! 2. a worker crashed mid-sweep (hard abort after its first
//!    checkpoint) is restarted, resumes from its checkpointed store,
//!    and the merged store is still byte-identical;
//! 3. shard stores damaged *between* drives — truncated mid-record and
//!    truncated at a record boundary — cost exactly the damaged tail on
//!    resume (the loader skips it, the worker re-runs only those
//!    points), and the final merged store is byte-identical to a clean
//!    run;
//! 4. a worker that hangs after its first checkpoint is stall-killed
//!    (`SIGKILL`) and restarted, and the drive still converges;
//! 5. a worker that crashes on every launch exhausts its restart budget
//!    and fails the drive with `WorkerExhausted`;
//! 6. the whole crash → restart → resume → merge story holds in the v3
//!    **binary** store format too (appending checkpoints, compressed
//!    segments): a 3-worker binary drive with an injected crash merges
//!    byte-identical to a 1-worker binary drive, and the binary merged
//!    store hydrates the same records as the text one.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Duration;
use wl_core::Params;
use wl_harness::{
    derive_seed, drive, run_worker, Capture, DelayKind, DriveError, DriverConfig, Maintenance,
    ScenarioSpec, Shard, StoreFormat, SweepRunner, SweepStore, WorkerConfig,
};
use wl_time::RealTime;

const GRID: usize = 12;

/// The test grid — small horizons so a full drive stays fast, three
/// delay models so records are not all alike.
fn grid() -> Vec<ScenarioSpec> {
    let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap();
    let delays = [
        DelayKind::Constant,
        DelayKind::Uniform,
        DelayKind::AdversarialSplit,
    ];
    (0..GRID)
        .map(|i| {
            ScenarioSpec::new(params.clone())
                .seed(derive_seed(0xD21_4E57, i as u64))
                .delay(delays[i % 3])
                .t_end(RealTime::from_secs(1.5))
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--worker") {
        worker_main(&args[2..]);
        return;
    }

    test_three_workers_byte_identical_to_one();
    test_crashed_worker_resumes_and_converges();
    test_truncated_stores_resume_costs_only_the_tail();
    test_stalled_worker_is_killed_and_restarted();
    test_restart_budget_exhaustion_fails_the_drive();
    test_binary_format_drive_crash_resume_byte_identical();
    println!("driver_process: all 6 tests passed");
}

// ---------------------------------------------------------------------------
// Worker mode.
// ---------------------------------------------------------------------------

/// `--worker K/N --store FILE [--crash-after M] [--hang-after M] [--format F]`
fn worker_main(args: &[String]) {
    let mut it = args.iter();
    let shard: Shard = it.next().expect("shard").parse().expect("valid shard");
    let mut store = None;
    let mut crash_after = None;
    let mut hang_after: Option<usize> = None;
    let mut format = StoreFormat::Text;
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--store" => store = it.next().cloned(),
            "--crash-after" => crash_after = Some(it.next().unwrap().parse().unwrap()),
            "--hang-after" => hang_after = Some(it.next().unwrap().parse().unwrap()),
            "--format" => format = it.next().unwrap().parse().unwrap(),
            other => panic!("unknown worker flag {other}"),
        }
    }
    let cfg = WorkerConfig {
        shard,
        store: PathBuf::from(store.expect("--store")),
        checkpoint: 2,
        crash_after,
        format,
        capture: Capture::Scalar,
    };
    let mut checkpoints = 0;
    let progress = run_worker::<Maintenance>(&SweepRunner::serial(), grid(), &cfg, |p| {
        println!(
            "progress shard={shard} done={}/{} hits={} misses={}",
            p.done, p.total, p.hits, p.misses
        );
        checkpoints += 1;
        if hang_after == Some(checkpoints) {
            // A wedged worker: alive but never progressing again. The
            // driver's stall timeout is what gets us out of here.
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        }
    })
    .expect("worker store I/O");
    println!(
        "worker {shard} complete: {} points ({} hits, {} misses)",
        progress.total, progress.hits, progress.misses
    );
}

// ---------------------------------------------------------------------------
// Driver-side helpers.
// ---------------------------------------------------------------------------

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wl-driver-proc-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A worker command for this very binary; `extra` is appended on the
/// first launch only (fault injection must not survive the restart).
fn self_command(shard: Shard, store: &Path, attempt: u32, extra: &[&str]) -> Command {
    let mut cmd = Command::new(std::env::current_exe().expect("own path"));
    cmd.arg("--worker")
        .arg(shard.to_string())
        .arg("--store")
        .arg(store);
    if attempt == 0 {
        for arg in extra {
            cmd.arg(arg);
        }
    }
    cmd
}

fn config(name: &str, shards: u32) -> DriverConfig {
    let dir = tmp_dir(name);
    let out = dir.join("merged.wls");
    let mut cfg = DriverConfig::new(shards, dir, out);
    cfg.poll = Duration::from_millis(10);
    cfg
}

/// The 1-process reference bytes every test compares against.
fn reference_bytes() -> Vec<u8> {
    let cfg = config("reference", 1);
    let report =
        drive(&cfg, |shard, store, _| self_command(shard, store, 1, &[])).expect("reference drive");
    assert_eq!(report.merged_records, GRID);
    let bytes = std::fs::read(&cfg.out).unwrap();
    let _ = std::fs::remove_dir_all(&cfg.dir);
    bytes
}

/// Reads `(hits, misses)` off the worker's completion line —
/// `worker K/N complete: P points (H hits, M misses)`.
fn final_hits_misses(log: &Path) -> (u64, u64) {
    let text = std::fs::read_to_string(log).expect("worker log");
    let line = text
        .lines()
        .rev()
        .find(|l| l.contains("complete:"))
        .expect("completion line");
    let nums: Vec<u64> = line
        .split(['(', ')', ',', ' '])
        .filter_map(|t| t.parse().ok())
        .collect();
    assert_eq!(nums.len(), 3, "points, hits, misses in {line:?}");
    (nums[1], nums[2])
}

// ---------------------------------------------------------------------------
// The tests.
// ---------------------------------------------------------------------------

fn test_three_workers_byte_identical_to_one() {
    let reference = reference_bytes();
    let cfg = config("three", 3);
    let report = drive(&cfg, |shard, store, attempt| {
        self_command(shard, store, attempt, &[])
    })
    .expect("3-worker drive");
    assert_eq!(report.merged_records, GRID);
    assert_eq!(report.restarts, 0);
    assert_eq!(
        std::fs::read(&cfg.out).unwrap(),
        reference,
        "3-worker merged store != 1-worker store"
    );
    let _ = std::fs::remove_dir_all(&cfg.dir);
    println!("ok: 3-worker drive byte-identical to 1-worker drive");
}

fn test_crashed_worker_resumes_and_converges() {
    let reference = reference_bytes();
    let cfg = config("crash", 3);
    // Worker 1 hard-aborts right after its first checkpoint on its first
    // launch; the driver must restart it and the restart must resume.
    let report = drive(&cfg, |shard, store, attempt| {
        let extra: &[&str] = if shard.index() == 1 {
            &["--crash-after", "1"]
        } else {
            &[]
        };
        self_command(shard, store, attempt, extra)
    })
    .expect("crash drive");
    assert_eq!(report.restarts, 1, "exactly the injected crash restarted");
    assert_eq!(report.merged_records, GRID);
    assert_eq!(
        std::fs::read(&cfg.out).unwrap(),
        reference,
        "post-crash merged store != clean store"
    );
    // The restarted worker's completion line proves resume: the 2 points
    // checkpointed before the crash were hits, the remaining 2 misses.
    let (hits, misses) = final_hits_misses(&cfg.worker_log(1));
    assert_eq!((hits, misses), (2, 2), "restart must resume, not redo");
    let _ = std::fs::remove_dir_all(&cfg.dir);
    println!("ok: crashed worker restarted, resumed, and converged byte-identically");
}

fn test_truncated_stores_resume_costs_only_the_tail() {
    let reference = reference_bytes();
    let cfg = config("truncate", 2);
    let clean = |cfg: &DriverConfig| {
        drive(cfg, |shard, store, attempt| {
            self_command(shard, store, attempt, &[])
        })
    };
    clean(&cfg).expect("initial drive");
    assert_eq!(std::fs::read(&cfg.out).unwrap(), reference);

    // Damage shard 0's store mid-record: strip 10 bytes off the tail, so
    // the last line fails its checksum. Damage shard 1's store at a
    // record boundary: drop the final line whole. Each shard owns 6
    // points here.
    let store0 = cfg.shard_store(0);
    let full = std::fs::read_to_string(&store0).unwrap();
    std::fs::write(&store0, &full[..full.len() - 10]).unwrap();
    let damaged0 = SweepStore::open(&store0).unwrap();
    assert_eq!(damaged0.len(), 5, "only the torn record is lost");
    assert_eq!(damaged0.skipped_lines(), 1);

    let store1 = cfg.shard_store(1);
    let full = std::fs::read_to_string(&store1).unwrap();
    let boundary = full[..full.len() - 1].rfind('\n').unwrap() + 1;
    std::fs::write(&store1, &full[..boundary]).unwrap();
    let damaged1 = SweepStore::open(&store1).unwrap();
    assert_eq!(damaged1.len(), 5, "the boundary cut drops one whole record");
    assert_eq!(damaged1.skipped_lines(), 0, "no torn line at a boundary");

    // Resume: fresh logs so the completion lines below belong to this
    // drive, then re-drive over the damaged stores.
    for k in 0..2 {
        let _ = std::fs::remove_file(cfg.worker_log(k));
    }
    let _ = std::fs::remove_file(&cfg.out);
    clean(&cfg).expect("resume drive");
    for k in 0..2 {
        let (hits, misses) = final_hits_misses(&cfg.worker_log(k));
        assert_eq!(
            (hits, misses),
            (5, 1),
            "worker {k} must re-run exactly the damaged record"
        );
    }
    assert_eq!(
        std::fs::read(&cfg.out).unwrap(),
        reference,
        "resume over damaged stores != clean store"
    );
    let _ = std::fs::remove_dir_all(&cfg.dir);
    println!("ok: mid-record and boundary truncations cost exactly the damaged tail");
}

fn test_stalled_worker_is_killed_and_restarted() {
    let reference = reference_bytes();
    let mut cfg = config("stall", 2);
    // Generous relative to a healthy worker's inter-checkpoint time
    // (tens of ms even in debug builds) so only the deliberately hung
    // worker can ever trip it.
    cfg.stall_timeout = Some(Duration::from_millis(2000));
    let report = drive(&cfg, |shard, store, attempt| {
        let extra: &[&str] = if shard.index() == 0 {
            &["--hang-after", "1"]
        } else {
            &[]
        };
        self_command(shard, store, attempt, extra)
    })
    .expect("stall drive");
    assert_eq!(report.stall_kills, 1, "the hung worker was SIGKILLed");
    assert_eq!(report.restarts, 1);
    assert_eq!(std::fs::read(&cfg.out).unwrap(), reference);
    let _ = std::fs::remove_dir_all(&cfg.dir);
    println!("ok: stalled worker killed and restarted; drive converged");
}

fn test_restart_budget_exhaustion_fails_the_drive() {
    let mut cfg = config("exhaust", 2);
    cfg.max_restarts = 1;
    // Shard 0 crashes on *every* launch (injection not limited to
    // attempt 0): initial + 1 restart, then the budget is gone.
    let err = drive(&cfg, |shard, store, _attempt| {
        let extra: &[&str] = if shard.index() == 0 {
            &["--crash-after", "1"]
        } else {
            &[]
        };
        self_command(shard, store, 0, extra)
    })
    .expect_err("budget must run out");
    match err {
        DriveError::WorkerExhausted {
            shard, attempts, ..
        } => {
            assert_eq!(shard, Shard::new(0, 2));
            assert_eq!(attempts, 2, "initial launch + one restart");
        }
        other => panic!("expected WorkerExhausted, got {other}"),
    }
    // The healthy worker must not be left running after the failure.
    let _ = std::fs::remove_dir_all(&cfg.dir);
    println!("ok: restart budget exhaustion fails the drive cleanly");
}

fn test_binary_format_drive_crash_resume_byte_identical() {
    // A worker command whose --format survives restarts (unlike the
    // fault-injection extras, which are first-launch-only).
    let binary_command = |shard: Shard, store: &Path, attempt: u32, crash: bool| {
        let mut cmd = self_command(shard, store, attempt, &[]);
        cmd.arg("--format").arg("binary");
        if attempt == 0 && crash {
            cmd.arg("--crash-after").arg("1");
        }
        cmd
    };

    // 1-worker binary reference.
    let mut ref_cfg = config("bin-reference", 1);
    ref_cfg.format = StoreFormat::Binary;
    drive(&ref_cfg, |shard, store, attempt| {
        binary_command(shard, store, attempt, false)
    })
    .expect("binary reference drive");
    let reference = std::fs::read(&ref_cfg.out).unwrap();
    assert_eq!(
        &reference[..4],
        b"WLSB",
        "merged output really is a binary store"
    );

    // 3 workers, worker 1 crashed after its first (appended) checkpoint.
    let mut cfg = config("bin-crash", 3);
    cfg.format = StoreFormat::Binary;
    let report = drive(&cfg, |shard, store, attempt| {
        binary_command(shard, store, attempt, shard.index() == 1)
    })
    .expect("binary crash drive");
    assert_eq!(report.restarts, 1, "the injected crash restarted");
    assert_eq!(report.merged_records, GRID);
    assert_eq!(report.skipped_lines, 0, "appended checkpoints load clean");
    assert_eq!(
        std::fs::read(&cfg.out).unwrap(),
        reference,
        "binary 3-worker crash drive != binary 1-worker drive"
    );
    let (hits, misses) = final_hits_misses(&cfg.worker_log(1));
    assert_eq!((hits, misses), (2, 2), "binary restart must resume");

    // The binary merged store hydrates the same records the text merged
    // store does (same grid, different bytes).
    let binary_merged = SweepStore::open(&cfg.out).unwrap();
    assert_eq!(binary_merged.format(), StoreFormat::Binary);
    assert_eq!(binary_merged.len(), GRID);
    let text_reference = reference_bytes();
    assert_ne!(reference, text_reference, "formats differ on disk");
    assert!(
        reference.len() < text_reference.len(),
        "binary merged store ({}) not smaller than text ({})",
        reference.len(),
        text_reference.len()
    );
    let _ = std::fs::remove_dir_all(&ref_cfg.dir);
    let _ = std::fs::remove_dir_all(&cfg.dir);
    println!("ok: binary-format drive (crash + resume) byte-identical and smaller than text");
}
