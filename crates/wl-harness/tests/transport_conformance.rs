//! The transport conformance suite: every contract the static-shard
//! driver proved in `driver_process.rs`, re-proven **per transport**
//! against the work-stealing frontier — with real subprocesses (this
//! test binary re-enters itself as the worker, `argv[1] ==
//! "--frontier-worker"`, and as the sweep service, `argv[1] ==
//! "--serve"`; hence `harness = false` in the manifest).
//!
//! The suite is one set of scenario functions and one macro
//! ([`conformance!`]) that stamps them out for every
//! [`WorkerTransport`] backend — adding a fourth transport means adding
//! one macro line, zero new assertions:
//!
//! 1. **bytes** — an N-worker drive merges byte-identical to the
//!    1-process reference store, ragged last chunk included;
//! 2. **crash** — a worker hard-aborted after checkpointing its first
//!    chunk (claim left orphaned — the `kill -9` shape) is restarted,
//!    the orphan is requeued and stolen, and the merge is still
//!    byte-identical;
//! 3. **stall** — a worker that wedges (alive, no progress, no peers to
//!    steal around it) is `SIGKILL`ed on heartbeat timeout, restarted,
//!    resumes from its checkpoints, and the merge is byte-identical;
//! 4. **exhaust** — a worker that crashes on every launch retires its
//!    slot; with no surviving slots the drive fails with
//!    `WorkersExhausted`, never hangs.
//!
//! Chunk-interleaving determinism beyond these fixed schedules is pinned
//! by `tests/frontier_determinism.rs` (proptest, no subprocesses).

use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::sync::OnceLock;
use std::time::{Duration, Instant};
use wl_core::Params;
use wl_harness::{
    derive_seed, drive_frontier, run_worker_frontier, Capture, DelayKind, DropBoxTransport,
    FrontierDriveError, FrontierDriveReport, FrontierDriverConfig, FrontierWorkerConfig,
    Maintenance, ScenarioSpec, ServiceAddr, ServiceClient, ServiceTransport, StoreFormat,
    SubprocessTransport, SweepCache, SweepRunner, SweepStore, WorkerLaunch,
};
use wl_time::RealTime;

const GRID: usize = 8;

/// The test grid — small horizons so the full matrix stays fast, three
/// delay models so records are not all alike.
fn grid() -> Vec<ScenarioSpec> {
    let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).unwrap();
    let delays = [
        DelayKind::Constant,
        DelayKind::Uniform,
        DelayKind::AdversarialSplit,
    ];
    (0..GRID)
        .map(|i| {
            ScenarioSpec::new(params.clone())
                .seed(derive_seed(0x7C09_F04A, i as u64))
                .delay(delays[i % 3])
                .t_end(RealTime::from_secs(1.5))
        })
        .collect()
}

/// Stamps the four conformance scenarios out for each transport kind.
macro_rules! conformance {
    ($($kind:expr),+ $(,)?) => {
        $(
            scenario_bytes_match($kind);
            scenario_crash_mid_sweep($kind);
            scenario_stall_kill($kind);
            scenario_retry_exhaustion($kind);
        )+
    };
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("--frontier-worker") => {
            worker_main(&args[2..]);
            return;
        }
        Some("--serve") => {
            serve_main(&args[2..]);
            return;
        }
        _ => {}
    }

    // The whole suite, per transport. A fourth backend = one more line.
    conformance!(Kind::Subprocess, Kind::DropBox, Kind::Service);
    println!("transport_conformance: all scenarios passed on all transports");
}

// ---------------------------------------------------------------------------
// Worker mode.
// ---------------------------------------------------------------------------

/// `--frontier-worker --frontier DIR --worker-id ID --store FILE
/// [--steal-ms T] [--crash-after-chunks M] [--hang-after-chunks M]`
fn worker_main(args: &[String]) {
    let mut it = args.iter();
    let mut frontier = None;
    let mut worker = None;
    let mut store = None;
    let mut steal_ms = 2000u64;
    let mut crash_after_chunks = None;
    let mut hang_after_chunks: Option<usize> = None;
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--frontier" => frontier = it.next().cloned(),
            "--worker-id" => worker = it.next().cloned(),
            "--store" => store = it.next().cloned(),
            "--steal-ms" => steal_ms = it.next().unwrap().parse().unwrap(),
            "--crash-after-chunks" => {
                crash_after_chunks = Some(it.next().unwrap().parse().unwrap())
            }
            "--hang-after-chunks" => hang_after_chunks = Some(it.next().unwrap().parse().unwrap()),
            other => panic!("unknown worker flag {other}"),
        }
    }
    let worker = worker.expect("--worker-id");
    let cfg = FrontierWorkerConfig {
        frontier: PathBuf::from(frontier.expect("--frontier")),
        worker: worker.clone(),
        store: PathBuf::from(store.expect("--store")),
        format: StoreFormat::Text,
        steal_timeout: Duration::from_millis(steal_ms),
        poll: Duration::from_millis(20),
        crash_after_chunks,
        capture: Capture::Scalar,
    };
    let progress = run_worker_frontier::<Maintenance>(&SweepRunner::serial(), grid(), &cfg, |p| {
        println!(
            "progress worker={worker} chunks={} points={} hits={} misses={}",
            p.chunks, p.points, p.hits, p.misses
        );
        if hang_after_chunks.is_some_and(|n| p.chunks >= n) {
            // A wedged worker: alive but never progressing again. The
            // driver's stall timeout is what gets us out of here.
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        }
    })
    .unwrap_or_else(|e| panic!("frontier worker {worker}: {e}"));
    println!(
        "worker {worker} complete: {} chunk(s), {} point(s) ({} hits, {} misses)",
        progress.chunks, progress.points, progress.hits, progress.misses
    );
}

// ---------------------------------------------------------------------------
// Server mode (for the service transport legs).
// ---------------------------------------------------------------------------

/// `--serve --socket PATH --store FILE`
fn serve_main(args: &[String]) {
    let mut it = args.iter();
    let mut socket = None;
    let mut store = None;
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--socket" => socket = it.next().cloned(),
            "--store" => store = it.next().cloned(),
            other => panic!("unknown serve flag {other}"),
        }
    }
    let cfg = wl_harness::ServeConfig {
        addr: ServiceAddr::parse(&format!("unix:{}", socket.expect("--socket"))).unwrap(),
        store: PathBuf::from(store.expect("--store")),
        format: StoreFormat::Binary,
        threads: 1,
        crash_after_batches: None,
    };
    wl_harness::serve(&cfg, |addr| println!("ready on {addr}")).expect("serve");
}

// ---------------------------------------------------------------------------
// The transport-parameterized fixture.
// ---------------------------------------------------------------------------

/// Which backend a scenario runs against.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    Subprocess,
    DropBox,
    Service,
}

impl Kind {
    fn label(self) -> &'static str {
        match self {
            Self::Subprocess => "subprocess",
            Self::DropBox => "dropbox",
            Self::Service => "service",
        }
    }
}

/// Per-slot fault injection for one drive.
#[derive(Clone, Copy, Default)]
struct Fault {
    slot: u32,
    /// `--crash-after-chunks 1` on this slot (first launch only unless
    /// `every_launch`).
    crash: bool,
    /// Crash injection survives restarts (for budget-exhaustion runs).
    every_launch: bool,
    /// `--hang-after-chunks 1` on this slot's first launch.
    hang: bool,
}

struct Server {
    child: Child,
    addr: ServiceAddr,
}

impl Server {
    fn spawn(dir: &Path) -> Self {
        let sock = dir.join("wl.sock");
        let child = Command::new(std::env::current_exe().expect("own path"))
            .arg("--serve")
            .arg("--socket")
            .arg(&sock)
            .arg("--store")
            .arg(dir.join("server.wls"))
            .spawn()
            .expect("spawn server");
        // The server removes any stale socket before binding, so the
        // file's (re)appearance is the ready signal.
        let deadline = Instant::now() + Duration::from_secs(30);
        while !sock.exists() {
            assert!(Instant::now() < deadline, "server socket never appeared");
            std::thread::sleep(Duration::from_millis(5));
        }
        let addr = ServiceAddr::parse(&format!("unix:{}", sock.display())).unwrap();
        Self { child, addr }
    }

    fn shutdown(mut self) {
        ServiceClient::new(self.addr.clone())
            .shutdown()
            .expect("shutdown");
        let status = self.child.wait().expect("server exit");
        assert!(status.success(), "server exited {status}");
    }
}

/// One frontier drive over transport `kind` with fault `fault`. The
/// service legs spawn (and shut down) a real server subprocess around
/// the drive.
fn run_drive(
    kind: Kind,
    cfg: &FrontierDriverConfig,
    fault: Fault,
) -> Result<FrontierDriveReport, FrontierDriveError> {
    let command_for = move |launch: &WorkerLaunch| {
        let mut cmd = Command::new(std::env::current_exe().expect("own path"));
        cmd.arg("--frontier-worker")
            .arg("--frontier")
            .arg(&launch.frontier)
            .arg("--worker-id")
            .arg(&launch.worker)
            .arg("--store")
            .arg(&launch.store)
            .arg("--steal-ms")
            .arg("400");
        if launch.slot == fault.slot && (launch.attempt == 0 || fault.every_launch) {
            if fault.crash {
                cmd.arg("--crash-after-chunks").arg("1");
            }
            if fault.hang {
                cmd.arg("--hang-after-chunks").arg("1");
            }
        }
        cmd
    };
    match kind {
        Kind::Subprocess => {
            drive_frontier::<Maintenance>(cfg, &grid(), &mut SubprocessTransport::new(command_for))
        }
        Kind::DropBox => {
            drive_frontier::<Maintenance>(cfg, &grid(), &mut DropBoxTransport::new(command_for))
        }
        Kind::Service => {
            let server = Server::spawn(&cfg.dir);
            let result = drive_frontier::<Maintenance>(
                cfg,
                &grid(),
                &mut ServiceTransport::new(server.addr.to_string(), command_for),
            );
            server.shutdown();
            result
        }
    }
}

fn config(kind: Kind, name: &str, workers: u32, chunk: usize) -> FrontierDriverConfig {
    let dir = std::env::temp_dir().join(format!(
        "wl-conform-{}-{}-{name}",
        std::process::id(),
        kind.label()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("merged.wls");
    let mut cfg = FrontierDriverConfig::new(workers, dir, out);
    cfg.chunk = chunk;
    cfg.poll = Duration::from_millis(10);
    cfg.steal_timeout = Duration::from_millis(400);
    cfg.format = StoreFormat::Text;
    cfg
}

/// The 1-process reference bytes every scenario compares against,
/// computed in-process once for the whole suite.
fn reference_bytes() -> &'static [u8] {
    static REFERENCE: OnceLock<Vec<u8>> = OnceLock::new();
    REFERENCE.get_or_init(|| {
        let cache = SweepCache::new();
        let _ = SweepRunner::serial().sweep_cached::<Maintenance>(grid(), &cache);
        let path = std::env::temp_dir().join(format!("wl-conform-{}-ref.wls", std::process::id()));
        let mut store = SweepStore::open(&path).unwrap();
        store.set_format(StoreFormat::Text);
        store.absorb(&cache);
        store.save().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        bytes
    })
}

// ---------------------------------------------------------------------------
// The scenarios — written once, run per transport by `conformance!`.
// ---------------------------------------------------------------------------

/// 3 workers stealing 3-point chunks (ragged 2-point last chunk) merge
/// byte-identical to the 1-process reference.
fn scenario_bytes_match(kind: Kind) {
    let cfg = config(kind, "bytes", 3, 3);
    let report = run_drive(kind, &cfg, Fault::default()).expect("clean drive");
    assert_eq!(report.merged_records, GRID);
    assert_eq!(report.restarts, 0);
    // At least one deposited store must be harvested; a worker that
    // never won a claim may be reaped before it writes its header-only
    // store, so an exact count is transport timing, not contract.
    assert!(
        report.stores_merged >= 1,
        "no worker store harvested on {}",
        kind.label()
    );
    assert_eq!(
        std::fs::read(&cfg.out).unwrap(),
        reference_bytes(),
        "[{}] 3-worker merged store != 1-process reference",
        kind.label()
    );
    let _ = std::fs::remove_dir_all(&cfg.dir);
    println!(
        "ok [{}]: N-worker drive byte-identical to 1-process run",
        kind.label()
    );
}

/// A worker hard-aborted after checkpointing its first chunk — claim
/// left orphaned, the `kill -9` shape — is restarted; the orphan is
/// requeued after the steal timeout and re-claimed (by the restart or a
/// peer); the merge is byte-identical anyway.
fn scenario_crash_mid_sweep(kind: Kind) {
    let cfg = config(kind, "crash", 2, 2);
    let fault = Fault {
        slot: 0,
        crash: true,
        ..Fault::default()
    };
    let report = run_drive(kind, &cfg, fault).expect("crash drive");
    assert!(
        report.restarts >= 1,
        "[{}] the injected crash must restart",
        kind.label()
    );
    assert_eq!(report.merged_records, GRID);
    assert_eq!(
        std::fs::read(&cfg.out).unwrap(),
        reference_bytes(),
        "[{}] post-crash merged store != 1-process reference",
        kind.label()
    );
    let _ = std::fs::remove_dir_all(&cfg.dir);
    println!(
        "ok [{}]: kill-mid-sweep restart converges byte-identically",
        kind.label()
    );
}

/// A single wedged worker — alive, no progress, and *no peers* to steal
/// around it — is `SIGKILL`ed on heartbeat timeout and restarted; the
/// restart resumes from its checkpoints and the merge is byte-identical.
/// (One worker on purpose: with peers, work stealing would mask the
/// stall instead of exercising the kill path.)
fn scenario_stall_kill(kind: Kind) {
    let mut cfg = config(kind, "stall", 1, 3);
    // Generous relative to a healthy worker's inter-chunk time (tens of
    // ms even in debug builds) so only the deliberately hung worker can
    // ever trip it.
    cfg.stall_timeout = Some(Duration::from_millis(2000));
    let fault = Fault {
        slot: 0,
        hang: true,
        ..Fault::default()
    };
    let report = run_drive(kind, &cfg, fault).expect("stall drive");
    assert_eq!(
        report.stall_kills,
        1,
        "[{}] the hung worker was SIGKILLed",
        kind.label()
    );
    assert_eq!(report.restarts, 1);
    assert_eq!(report.merged_records, GRID);
    assert_eq!(
        std::fs::read(&cfg.out).unwrap(),
        reference_bytes(),
        "[{}] post-stall merged store != 1-process reference",
        kind.label()
    );
    let _ = std::fs::remove_dir_all(&cfg.dir);
    println!(
        "ok [{}]: stalled worker killed, restarted; drive converged",
        kind.label()
    );
}

/// A worker that crashes on **every** launch exhausts its restart budget
/// and retires its slot; with no slots left the drive fails with
/// `WorkersExhausted` — a clear error, never a hang.
fn scenario_retry_exhaustion(kind: Kind) {
    let mut cfg = config(kind, "exhaust", 1, 2);
    cfg.max_restarts = 1;
    let fault = Fault {
        slot: 0,
        crash: true,
        every_launch: true,
        ..Fault::default()
    };
    let err = run_drive(kind, &cfg, fault).expect_err("budget must run out");
    match err {
        FrontierDriveError::WorkersExhausted { chunks_left, .. } => {
            assert!(
                chunks_left >= 1,
                "[{}] chunks must remain unfinished",
                kind.label()
            );
        }
        other => panic!("[{}] expected WorkersExhausted, got {other}", kind.label()),
    }
    let _ = std::fs::remove_dir_all(&cfg.dir);
    println!(
        "ok [{}]: restart-budget exhaustion fails the drive cleanly",
        kind.label()
    );
}
