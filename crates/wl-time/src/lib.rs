//! Type-safe time quantities for the Welch–Lynch clock-synchronization library.
//!
//! The paper ("A New Fault-Tolerant Algorithm for Clock Synchronization",
//! Welch & Lynch) is scrupulous about the distinction between *real* times
//! (lower-case `t`, the global frame in which executions unfold) and *clock*
//! times (upper-case `T`, the values read off a process' physical or logical
//! clock). Mixing the two is the classic source of off-by-a-drift-factor bugs
//! in clock-synchronization code, so this crate encodes the distinction in
//! the type system:
//!
//! * [`RealTime`] / [`RealDur`] — points and spans on the real-time axis.
//! * [`ClockTime`] / [`ClockDur`] — points and spans on a clock-time axis.
//!
//! Arithmetic is only defined within an axis (`RealTime - RealTime =
//! RealDur`, `ClockTime + ClockDur = ClockTime`, …). Crossing the axes is
//! the job of a clock (see the `wl-clock` crate), never of plain arithmetic.
//!
//! All quantities are `f64` seconds under the hood; the simulator orders
//! events with [`RealTime::total_cmp`]-based keys so NaN never enters the
//! event queue unnoticed.
//!
//! # Example
//!
//! ```
//! use wl_time::{RealTime, RealDur, ClockTime, ClockDur};
//!
//! let t0 = RealTime::from_secs(1.0);
//! let t1 = t0 + RealDur::from_secs(0.5);
//! assert_eq!(t1 - t0, RealDur::from_secs(0.5));
//!
//! let big_t = ClockTime::from_secs(100.0) + ClockDur::from_secs(2.0);
//! assert_eq!(big_t.as_secs(), 102.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! time_point {
    ($(#[$meta:meta])* $name:ident, $dur:ident, $tag:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(f64);

        impl $name {
            /// The time-point at the origin of the axis (0 seconds).
            pub const ZERO: Self = Self(0.0);

            /// Creates a time-point from a number of seconds.
            #[must_use]
            pub fn from_secs(secs: f64) -> Self {
                Self(secs)
            }

            /// Returns the value in seconds.
            #[must_use]
            pub fn as_secs(self) -> f64 {
                self.0
            }

            /// Returns `true` if the underlying value is finite (not NaN/inf).
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Total ordering over the raw representation (IEEE `totalOrder`).
            ///
            /// Used by the simulator's event queue, which must be a total
            /// order even if a NaN sneaks in via a buggy clock model.
            #[must_use]
            pub fn total_cmp(&self, other: &Self) -> Ordering {
                self.0.total_cmp(&other.0)
            }

            /// The pointwise maximum of two time-points.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// The pointwise minimum of two time-points.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!("{:.9}", $tag), self.0)
            }
        }

        impl Sub for $name {
            type Output = $dur;
            fn sub(self, rhs: Self) -> $dur {
                $dur(self.0 - rhs.0)
            }
        }

        impl Add<$dur> for $name {
            type Output = Self;
            fn add(self, rhs: $dur) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign<$dur> for $name {
            fn add_assign(&mut self, rhs: $dur) {
                self.0 += rhs.0;
            }
        }

        impl Sub<$dur> for $name {
            type Output = Self;
            fn sub(self, rhs: $dur) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign<$dur> for $name {
            fn sub_assign(&mut self, rhs: $dur) {
                self.0 -= rhs.0;
            }
        }
    };
}

macro_rules! duration {
    ($(#[$meta:meta])* $name:ident, $tag:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(f64);

        impl $name {
            /// The zero-length duration.
            pub const ZERO: Self = Self(0.0);

            /// Creates a duration from a number of seconds.
            #[must_use]
            pub fn from_secs(secs: f64) -> Self {
                Self(secs)
            }

            /// Creates a duration from a number of milliseconds.
            #[must_use]
            pub fn from_millis(ms: f64) -> Self {
                Self(ms * 1e-3)
            }

            /// Creates a duration from a number of microseconds.
            #[must_use]
            pub fn from_micros(us: f64) -> Self {
                Self(us * 1e-6)
            }

            /// Returns the value in seconds.
            #[must_use]
            pub fn as_secs(self) -> f64 {
                self.0
            }

            /// Returns the value in milliseconds.
            #[must_use]
            pub fn as_millis(self) -> f64 {
                self.0 * 1e3
            }

            /// Returns the absolute value of the duration.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns `true` if the underlying value is finite.
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// The pointwise maximum of two durations.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// The pointwise minimum of two durations.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Total ordering over the raw representation.
            #[must_use]
            pub fn total_cmp(&self, other: &Self) -> Ordering {
                self.0.total_cmp(&other.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!("{:.9}", $tag), self.0)
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|d| d.0).sum())
            }
        }
    };
}

time_point!(
    /// A point on the *real time* axis — the paper's lower-case `t`.
    ///
    /// Real time is the global, objective frame of the execution model
    /// (paper §2.3). Processes never observe real time directly; only the
    /// simulator, the analysis, and the clocks themselves do.
    RealTime,
    RealDur,
    "s"
);

time_point!(
    /// A point on a *clock time* axis — the paper's upper-case `T`.
    ///
    /// A clock-time value is only meaningful relative to a specific clock
    /// (a physical clock `Ph_p` or a logical clock `C^i_p`); this type does
    /// not record which one, the surrounding code does.
    ClockTime,
    ClockDur,
    "s(clk)"
);

duration!(
    /// A span of *real* time.
    RealDur,
    "s"
);

duration!(
    /// A span of *clock* time.
    ClockDur,
    "s(clk)"
);

impl RealDur {
    /// Reinterprets a real-time span as a clock-time span.
    ///
    /// This is an *identity on the numeric value*, useful when a parameter
    /// (such as the message delay bound `δ`) is defined on the real axis but
    /// the algorithm uses it as a clock-time constant; the paper performs
    /// the same silent reinterpretation when it writes `ADJ := T + δ − AV`.
    #[must_use]
    pub fn as_clock(self) -> ClockDur {
        ClockDur::from_secs(self.0)
    }
}

impl ClockDur {
    /// Reinterprets a clock-time span as a real-time span (numeric identity).
    #[must_use]
    pub fn as_real(self) -> RealDur {
        RealDur::from_secs(self.0)
    }
}

impl ClockTime {
    /// Interprets the clock-time coordinate as a real-time coordinate.
    ///
    /// Used for drift-free reference clocks where the two axes coincide,
    /// and by analysis code that plots both on the same chart.
    #[must_use]
    pub fn as_real(self) -> RealTime {
        RealTime::from_secs(self.0)
    }
}

impl RealTime {
    /// Interprets the real-time coordinate as a clock-time coordinate.
    #[must_use]
    pub fn as_clock(self) -> ClockTime {
        ClockTime::from_secs(self.0)
    }
}

/// A strictly ordered wrapper for use as a key in ordered collections.
///
/// Wraps a [`RealTime`] with IEEE total ordering so it can serve as a
/// `BinaryHeap`/`BTreeMap` key. (Plain `f64` is only `PartialOrd`.)
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OrderedRealTime(pub RealTime);

impl Eq for OrderedRealTime {}

impl PartialOrd for OrderedRealTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedRealTime {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl From<RealTime> for OrderedRealTime {
    fn from(t: RealTime) -> Self {
        Self(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn real_time_arithmetic_roundtrip() {
        let t = RealTime::from_secs(10.0);
        let d = RealDur::from_secs(2.5);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
        assert_eq!(t - t, RealDur::ZERO);
    }

    #[test]
    fn clock_time_arithmetic_roundtrip() {
        let big_t = ClockTime::from_secs(100.0);
        let big_d = ClockDur::from_secs(7.0);
        assert_eq!((big_t + big_d) - big_t, big_d);
        assert_eq!(big_t - big_d + big_d, big_t);
    }

    #[test]
    fn duration_scalar_ops() {
        let d = RealDur::from_secs(4.0);
        assert_eq!(d * 0.5, RealDur::from_secs(2.0));
        assert_eq!(0.5 * d, RealDur::from_secs(2.0));
        assert_eq!(d / 2.0, RealDur::from_secs(2.0));
        assert_eq!(d / RealDur::from_secs(2.0), 2.0);
        assert_eq!(-d, RealDur::from_secs(-4.0));
        assert_eq!(d.abs(), d);
        assert_eq!((-d).abs(), d);
    }

    #[test]
    fn duration_unit_constructors() {
        assert_eq!(RealDur::from_millis(1500.0), RealDur::from_secs(1.5));
        assert_eq!(RealDur::from_micros(250.0), RealDur::from_secs(0.00025));
        assert!((ClockDur::from_millis(3.0).as_millis() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn axis_reinterpretation_is_numeric_identity() {
        let d = RealDur::from_secs(0.01);
        assert_eq!(d.as_clock().as_secs(), d.as_secs());
        assert_eq!(d.as_clock().as_real(), d);
        let t = RealTime::from_secs(3.0);
        assert_eq!(t.as_clock().as_real(), t);
    }

    #[test]
    fn ordered_real_time_total_order() {
        let mut v = [
            OrderedRealTime(RealTime::from_secs(3.0)),
            OrderedRealTime(RealTime::from_secs(1.0)),
            OrderedRealTime(RealTime::from_secs(2.0)),
        ];
        v.sort();
        assert_eq!(v[0].0, RealTime::from_secs(1.0));
        assert_eq!(v[2].0, RealTime::from_secs(3.0));
    }

    #[test]
    fn ordered_real_time_handles_nan_without_panicking() {
        let nan = OrderedRealTime(RealTime::from_secs(f64::NAN));
        let one = OrderedRealTime(RealTime::from_secs(1.0));
        // total_cmp puts positive NaN after all numbers.
        assert_eq!(nan.cmp(&one), Ordering::Greater);
        assert!(!RealTime::from_secs(f64::NAN).is_finite());
    }

    #[test]
    fn display_includes_axis_tag() {
        assert!(format!("{}", ClockTime::from_secs(1.0)).contains("(clk)"));
        assert!(!format!("{}", RealTime::from_secs(1.0)).contains("(clk)"));
        assert!(format!("{}", ClockDur::from_secs(1.0)).contains("(clk)"));
    }

    #[test]
    fn min_max_helpers() {
        let a = RealTime::from_secs(1.0);
        let b = RealTime::from_secs(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = ClockDur::from_secs(-1.0);
        let y = ClockDur::from_secs(1.0);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }

    #[test]
    fn duration_sum() {
        let total: RealDur = (1..=4).map(|i| RealDur::from_secs(i as f64)).sum();
        assert_eq!(total, RealDur::from_secs(10.0));
    }

    proptest! {
        #[test]
        fn prop_add_sub_inverse(t in -1e9f64..1e9, d in -1e6f64..1e6) {
            let t = RealTime::from_secs(t);
            let d = RealDur::from_secs(d);
            let back = (t + d) - d;
            prop_assert!((back - t).abs().as_secs() < 1e-6);
        }

        #[test]
        fn prop_total_cmp_consistent_with_partial(a in -1e9f64..1e9, b in -1e9f64..1e9) {
            let (ta, tb) = (RealTime::from_secs(a), RealTime::from_secs(b));
            if a < b {
                prop_assert_eq!(ta.total_cmp(&tb), Ordering::Less);
            } else if a > b {
                prop_assert_eq!(ta.total_cmp(&tb), Ordering::Greater);
            } else {
                prop_assert_eq!(ta.total_cmp(&tb), Ordering::Equal);
            }
        }

        #[test]
        fn prop_duration_scaling_linearity(d in -1e6f64..1e6, k in -100f64..100.0) {
            let dur = ClockDur::from_secs(d);
            let lhs = (dur * k).as_secs();
            prop_assert!((lhs - d * k).abs() <= 1e-9 * (1.0 + lhs.abs()));
        }
    }
}
