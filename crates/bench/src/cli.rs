//! Shared argument layer for the sweep CLIs.
//!
//! `sweep_drive`, `sweep_shard`, and `sweep_serve` each grew their own
//! hand-rolled flag loops, and the flags they share — `--format`,
//! `--compact`, `--transport`, `--chunk`, `--capture` — drifted in
//! spelling, error text, and help strings. This module owns those:
//! every binary routes unknown flags through [`CommonArgs::take`]
//! first, so the shared flags parse identically, reject bad values
//! with identical messages, and advertise themselves with the same
//! [`COMMON_USAGE`] snippet.

use wl_harness::{Capture, StoreFormat};

/// The usage fragment for the shared flags — splice into each binary's
/// usage string so help text cannot drift.
pub const COMMON_USAGE: &str = "[--format text|binary] [--compact] \
     [--transport subprocess|dropbox|service] [--chunk C] [--capture scalar|sketch|series]";

/// The transports a `--transport` drive can ride (see
/// `wl_harness::transport`). Parsing is centralized here so every
/// binary accepts the same names and prints the same rejection.
pub const TRANSPORTS: [&str; 3] = ["subprocess", "dropbox", "service"];

/// Shared flags in their parsed form. `None` means "not given" — each
/// binary applies its own default (`sweep_serve` defaults `--format`
/// to binary, the store CLIs to text).
#[derive(Debug, Default, Clone)]
pub struct CommonArgs {
    /// `--format text|binary`: on-disk store format.
    pub format: Option<StoreFormat>,
    /// `--compact`: rewrite stores canonically after the run.
    pub compact: bool,
    /// `--transport subprocess|dropbox|service`: frontier transport.
    pub transport: Option<String>,
    /// `--chunk C`: frontier chunk size in grid points.
    pub chunk: Option<usize>,
    /// `--capture scalar|sketch|series`: what each grid point records.
    pub capture: Option<Capture>,
}

impl CommonArgs {
    /// Tries to consume `flag` (and its value, if it takes one) from
    /// the iterator. Returns `true` when the flag was one of the shared
    /// four; the caller's match loop handles everything else. Bad
    /// values exit 2 with a uniform message.
    pub fn take(&mut self, flag: &str, it: &mut std::slice::Iter<'_, String>) -> bool {
        match flag {
            "--format" => self.format = Some(require("--format", it.next())),
            "--compact" => self.compact = true,
            "--transport" => {
                let t: String = require("--transport", it.next());
                if !TRANSPORTS.contains(&t.as_str()) {
                    bad_value("--transport", &t, "subprocess, dropbox, or service");
                }
                self.transport = Some(t);
            }
            "--chunk" => self.chunk = Some(require("--chunk", it.next())),
            "--capture" => self.capture = Some(require("--capture", it.next())),
            _ => return false,
        }
        true
    }

    /// The chosen format, or the binary's default.
    #[must_use]
    pub fn format_or(&self, default: StoreFormat) -> StoreFormat {
        self.format.unwrap_or(default)
    }

    /// The chosen chunk size, or the binary's default.
    #[must_use]
    pub fn chunk_or(&self, default: usize) -> usize {
        self.chunk.unwrap_or(default)
    }

    /// The chosen capture mode, or [`Capture::Scalar`].
    #[must_use]
    pub fn capture(&self) -> Capture {
        self.capture.unwrap_or(Capture::Scalar)
    }
}

/// Parses a required flag value, exiting 2 with a uniform message when
/// it is missing or malformed — the error surface every sweep CLI
/// shares.
pub fn require<T: std::str::FromStr>(flag: &str, v: Option<&String>) -> T {
    let Some(raw) = v else {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    };
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: cannot parse {raw:?}");
        std::process::exit(2);
    })
}

fn bad_value(flag: &str, got: &str, want: &str) -> ! {
    eprintln!("{flag}: unknown value {got:?}: use {want}");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(args: &[&str]) -> (CommonArgs, Vec<String>) {
        let owned: Vec<String> = args.iter().map(ToString::to_string).collect();
        let mut common = CommonArgs::default();
        let mut rest = Vec::new();
        let mut it = owned.iter();
        while let Some(flag) = it.next() {
            if !common.take(flag, &mut it) {
                rest.push(flag.clone());
            }
        }
        (common, rest)
    }

    #[test]
    fn shared_flags_parse_and_pass_through_the_rest() {
        let (common, rest) = scan(&[
            "--grid",
            "--format",
            "binary",
            "--compact",
            "--transport",
            "dropbox",
            "--chunk",
            "8",
            "--capture",
            "sketch",
            "--store",
        ]);
        assert_eq!(common.format, Some(StoreFormat::Binary));
        assert!(common.compact);
        assert_eq!(common.transport.as_deref(), Some("dropbox"));
        assert_eq!(common.chunk, Some(8));
        assert_eq!(common.capture, Some(Capture::Sketch));
        assert_eq!(rest, ["--grid", "--store"]);
    }

    #[test]
    fn defaults_apply_when_flags_absent() {
        let (common, rest) = scan(&[]);
        assert_eq!(common.format_or(StoreFormat::Text), StoreFormat::Text);
        assert_eq!(common.chunk_or(4), 4);
        assert_eq!(common.capture(), Capture::Scalar);
        assert!(!common.compact);
        assert!(common.transport.is_none());
        assert!(rest.is_empty());
    }
}
