//! Shared helpers for the experiment binaries.
//!
//! Each `exp_*` binary in `src/bin/` regenerates one table or figure of
//! EXPERIMENTS.md. Scenario assembly and measurement live in
//! [`wl_harness`]; this crate re-exports the run helpers and keeps only
//! the experiment-local conveniences (default constants, cell
//! formatting).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use wl_harness::run::{baseline_metrics, run_summary, skew_series, steady_skew, RunSummary};

use wl_core::Params;

/// Standard parameter set used across experiments unless stated otherwise:
/// `ρ = 1e-6`, `δ = 10ms`, `ε = 1ms`.
#[must_use]
pub fn default_params(n: usize, f: usize) -> Params {
    Params::auto(n, f, 1e-6, 0.010, 0.001).expect("default parameters are feasible")
}

/// Formats seconds for table cells.
#[must_use]
pub fn fs(x: f64) -> String {
    wl_analysis::report::fmt_secs(x)
}
