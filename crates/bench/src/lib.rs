//! Shared measurement helpers for the experiment binaries.
//!
//! Each `exp_*` binary in `src/bin/` regenerates one table or figure of
//! EXPERIMENTS.md. The helpers here run a built scenario to completion and
//! extract the standard quantities (max skew, steady skew, adjustment
//! stats, per-round series) so the binaries stay declarative.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use wl_analysis::adjustment::{check_adjustments, AdjustmentReport};
use wl_analysis::agreement::{check_agreement, AgreementReport};
use wl_analysis::convergence::{round_series, RoundSeries};
use wl_analysis::skew::SkewSeries;
use wl_analysis::ExecutionView;
use wl_core::scenario::Built;
use wl_core::Params;
use wl_time::{RealDur, RealTime};

/// Everything the experiments usually need from one run.
#[derive(Debug)]
pub struct RunSummary {
    /// Agreement check from two rounds in to the end.
    pub agreement: AgreementReport,
    /// Adjustment check (first adjustment skipped as warm-up).
    pub adjustments: AdjustmentReport,
    /// Skew at each resynchronization wave.
    pub rounds: RoundSeries,
    /// Events delivered.
    pub events: u64,
    /// Suppressed timers (must be 0 for nonfaulty correctness).
    pub timers_suppressed: u64,
}

/// Runs a built maintenance scenario for `t_end` simulated seconds and
/// summarizes it.
#[must_use]
pub fn run_summary(built: Built, t_end: f64) -> RunSummary {
    let params = built.params.clone();
    let plan = built.plan.clone();
    let mut sim = built.sim;
    let outcome = sim.run();
    let view = ExecutionView::with_plan(sim.clocks(), &outcome.corr, &plan);
    let from = RealTime::from_secs(params.t0 + 2.0 * params.p_round);
    let agreement = check_agreement(
        &view,
        &params,
        from,
        RealTime::from_secs(t_end * 0.98),
        RealDur::from_secs(params.p_round / 7.0),
    );
    let adjustments = check_adjustments(&view, &params, 1);
    let rounds = round_series(&view, RealDur::from_secs(params.p_round / 4.0));
    RunSummary {
        agreement,
        adjustments,
        rounds,
        events: outcome.stats.events_delivered,
        timers_suppressed: outcome.stats.timers_suppressed,
    }
}

/// Runs a built scenario and returns only the steady-state skew measured
/// over the second half of the horizon.
#[must_use]
pub fn steady_skew(built: Built, t_end: f64) -> f64 {
    run_summary(built, t_end).agreement.steady_skew
}

/// Samples the full skew series of a built scenario (for figure-style
/// outputs).
#[must_use]
pub fn skew_series(built: Built, t_end: f64, step: f64) -> SkewSeries {
    let params = built.params.clone();
    let plan = built.plan.clone();
    let mut sim = built.sim;
    let outcome = sim.run();
    let view = ExecutionView::with_plan(sim.clocks(), &outcome.corr, &plan);
    SkewSeries::sample_with_events(
        &view,
        RealTime::from_secs(params.t0),
        RealTime::from_secs(t_end * 0.98),
        RealDur::from_secs(step),
    )
}

/// Standard parameter set used across experiments unless stated otherwise:
/// `ρ = 1e-6`, `δ = 10ms`, `ε = 1ms`.
#[must_use]
pub fn default_params(n: usize, f: usize) -> Params {
    Params::auto(n, f, 1e-6, 0.010, 0.001).expect("default parameters are feasible")
}

/// Formats seconds for table cells.
#[must_use]
pub fn fs(x: f64) -> String {
    wl_analysis::report::fmt_secs(x)
}
