//! Shared helpers for the experiment binaries.
//!
//! Each `exp_*` binary in `src/bin/` regenerates one table or figure of
//! EXPERIMENTS.md. Scenario assembly and measurement live in
//! [`wl_harness`]; this crate re-exports the run helpers and keeps only
//! the experiment-local conveniences (default constants, cell
//! formatting).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;

pub use wl_harness::run::{baseline_metrics, run_summary, skew_series, steady_skew, RunSummary};

use wl_core::Params;
use wl_harness::{derive_seed, DelayKind, DiskSweepCache, ScenarioSpec};
use wl_time::RealTime;

/// Standard parameter set used across experiments unless stated otherwise:
/// `ρ = 1e-6`, `δ = 10ms`, `ε = 1ms`.
#[must_use]
pub fn default_params(n: usize, f: usize) -> Params {
    Params::auto(n, f, 1e-6, 0.010, 0.001).expect("default parameters are feasible")
}

/// Formats seconds for table cells.
#[must_use]
pub fn fs(x: f64) -> String {
    wl_analysis::report::fmt_secs(x)
}

/// Default size of [`demo_grid`] — the grid the `sweep_shard` and
/// `sweep_drive` smoke flows (and CI) run.
pub const DEMO_GRID: usize = 24;

/// The fixed demonstration grid shared by `sweep_shard` and
/// `sweep_drive`: the same shape the sweep bench uses — three delay
/// models round-robined over machine-independent seeds. Both binaries
/// must build byte-identical grids or the CI `cmp`s would compare
/// different sweeps.
#[must_use]
pub fn demo_grid(size: usize) -> Vec<ScenarioSpec> {
    demo_grid_t(size, 2.0)
}

/// [`demo_grid`] with an explicit simulated horizon in seconds
/// (`sweep_drive --t-end`). Every process of one drive must pass the
/// same value — the horizon is part of the grid's identity, so shards
/// built at different horizons would never merge into the reference
/// store. Longer horizons multiply each point's skew-sample count,
/// which is what the CI `stats-smoke` job uses to demonstrate the
/// sketch-vs-series size asymptotics at a realistic sample volume.
#[must_use]
pub fn demo_grid_t(size: usize, t_end_secs: f64) -> Vec<ScenarioSpec> {
    let params = Params::auto(4, 1, 1e-6, 0.010, 0.001).expect("feasible parameters");
    let delays = [
        DelayKind::Constant,
        DelayKind::Uniform,
        DelayKind::AdversarialSplit,
    ];
    (0..size)
        .map(|i| {
            ScenarioSpec::new(params.clone())
                .seed(derive_seed(0x5AAD_BA5E, i as u64))
                .delay(delays[i % 3])
                .t_end(RealTime::from_secs(t_end_secs))
        })
        .collect()
}

/// CI guard: when `WL_SWEEP_EXPECT_MISSES` is set, the experiment's
/// actual cache-miss count must equal it or the process exits 1.
///
/// A miss is the only thing that triggers a simulation, so
/// `WL_SWEEP_EXPECT_MISSES=0` is a machine-checkable "this run executed
/// zero simulations" assertion — CI's warm-cache steps set it instead of
/// grepping human-readable output. Call it right after the sweep, before
/// persisting.
pub fn enforce_expected_misses(disk: &DiskSweepCache) {
    enforce_expected_misses_on(disk.cache(), &disk.status());
}

/// [`enforce_expected_misses`] against a bare in-memory cache — for
/// binaries (like `sweep_shard`) that hydrate a
/// [`SweepCache`](wl_harness::SweepCache) from a store file themselves
/// instead of going through [`DiskSweepCache`].
/// `context` is appended to the failure message.
pub fn enforce_expected_misses_on(cache: &wl_harness::SweepCache, context: &str) {
    let Ok(raw) = std::env::var("WL_SWEEP_EXPECT_MISSES") else {
        return;
    };
    let Ok(want) = raw.parse::<u64>() else {
        eprintln!("WL_SWEEP_EXPECT_MISSES={raw} is not a number");
        std::process::exit(1);
    };
    let got = cache.misses();
    if got != want {
        eprintln!("WL_SWEEP_EXPECT_MISSES={want} but this run missed {got} time(s) ({context})");
        std::process::exit(1);
    }
}
