//! E12 — the fault-tolerance boundary (assumption A2 / \[DHS\]).
//!
//! Dolev, Halpern and Strong proved clock synchronization without
//! authentication is impossible unless more than two-thirds of the
//! processes are nonfaulty. This experiment runs the identical two-faced
//! attack against `n = 3f+1` (where `reduce` provably absorbs it) and
//! `n = 3f` (where it does not): the skew stays bounded in the first case
//! and is dragged wide in the second. The four cases run concurrently
//! through `SweepRunner` — and through the shared disk cache with the
//! **series** payload (`sweep_cached_series`), so a warm re-run reads
//! its skew windows straight from cached records and executes zero
//! simulations.
//!
//! Run: `cargo run --release -p bench --bin exp_boundary`

use bench::{enforce_expected_misses, fs};
use wl_analysis::report::Table;
use wl_core::{theory, Params};
use wl_harness::{DiskSweepCache, FaultKind, Maintenance, ScenarioSpec, SweepRequest};
use wl_sim::ProcessId;
use wl_time::RealTime;

fn case_spec(n: usize, f: usize, t_end: f64, seed: u64) -> (ScenarioSpec, f64) {
    // Build params for the compliant size first, then override n; the
    // automata only need timing feasibility (validate_timing), which does
    // not depend on n. Drift is set high (1e-4) so that a frozen averaging
    // function shows up as visible divergence within the horizon.
    let mut params = Params::auto(3 * f + 1, f, 1e-4, 0.010, 0.001).unwrap();
    params.n = n;
    // The classic straddle: lies just outside the honest range (early to
    // the fast honest clocks, late to the slow ones). At n = 3f+1 `reduce`
    // still leaves an honest majority range; at n = 3f the lies pin each
    // process's median to its own value — no process ever corrects, and
    // drift pulls the fleet apart without bound. The amplitude must stay
    // well under P/2 so the attacker's own timers remain schedulable.
    let amp = 3.0 * params.beta;
    let gamma = theory::gamma(&params);
    // Even-spread drift gives every honest clock a distinct rate, so a
    // frozen averaging function turns into visible divergence.
    let mut spec = ScenarioSpec::new(params.clone())
        .seed(seed)
        .drift(wl_clock::drift::DriftModel::EvenSpread { rho: params.rho })
        .t_end(RealTime::from_secs(t_end));
    for i in 0..f {
        spec = spec.fault(ProcessId(i), FaultKind::PullApartHigh(amp));
    }
    (spec, gamma)
}

fn main() {
    let t_end = 120.0;
    let mut table = Table::new(&[
        "n",
        "f",
        "regime",
        "max skew",
        "steady skew",
        "gamma",
        "bounded by gamma",
    ])
    .with_title("E12: fault boundary under the two-faced attack (f pull-apart byzantines)");

    let mut rows = Vec::new();
    let mut specs = Vec::new();
    for f in [1usize, 2] {
        for (n, regime) in [
            (3 * f + 1, "n = 3f+1 (A2 holds)"),
            (3 * f, "n = 3f (A2 violated)"),
        ] {
            let (spec, gamma) = case_spec(n, f, t_end, 101 + f as u64);
            // The skew windows below reproduce the legacy sampling span:
            // from two rounds past T0 (settled) to just short of the end.
            let from = spec.params.t0 + 2.0 * spec.params.p_round;
            rows.push((n, f, regime, gamma, from));
            specs.push(spec);
        }
    }

    let mut disk = DiskSweepCache::open_shared();
    let outcomes = SweepRequest::new()
        .cached(disk.cache())
        .capture_series(true)
        .run::<Maintenance>(specs);
    enforce_expected_misses(&disk);

    for (&(n, f, regime, gamma, from), o) in rows.iter().zip(&outcomes) {
        let series = o.series.as_ref().expect("series sweep always captures");
        let max = series.max_skew_in(from, t_end * 0.98);
        let steady = series.max_skew_in(t_end / 2.0, t_end * 0.98);
        table.row_owned(vec![
            n.to_string(),
            f.to_string(),
            regime.to_string(),
            fs(max),
            fs(steady),
            fs(gamma),
            (max <= gamma).to_string(),
        ]);
    }
    println!("{table}");
    println!("shape check: the same attack is absorbed at n=3f+1 and not at n=3f.");
    eprintln!("{}", disk.status());
    if let Err(e) = disk.persist() {
        eprintln!("warning: could not persist sweep cache: {e}");
    }
    let _ = table.save_csv("target/exp_boundary.csv");
    println!("(CSV saved to target/exp_boundary.csv)");
}
