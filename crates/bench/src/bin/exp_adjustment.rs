//! E3 — adjustment bound (Theorem 4a).
//!
//! Records every `ADJ` of every nonfaulty process across fault mixes and
//! compares against `(1+ρ)(β+ε)+ρδ`. §10 summarizes the steady-state
//! adjustment as "about 5ε".
//!
//! The sweep goes through the shared disk cache (`WL_SWEEP_CACHE_DIR`);
//! repeat runs serve every case from it without simulating.
//!
//! Run: `cargo run --release -p bench --bin exp_adjustment`

use bench::{default_params, enforce_expected_misses, fs};
use wl_analysis::report::Table;
use wl_core::theory;
use wl_harness::{DiskSweepCache, FaultKind, Maintenance, ScenarioSpec, SweepRequest};
use wl_sim::ProcessId;
use wl_time::RealTime;

/// One experiment row: label, n, f, and the fault assignments.
type AdjustmentCase = (&'static str, usize, usize, Vec<(usize, FaultKind)>);

fn main() {
    let t_end = 60.0;
    let mut table = Table::new(&[
        "scenario",
        "n",
        "f",
        "max |ADJ|",
        "mean |ADJ|",
        "bound (Thm 4a)",
        "~5eps",
        "holds",
    ])
    .with_title("E3: adjustment bound; rho=1e-6, delta=10ms, eps=1ms, 60s");

    let cases: Vec<AdjustmentCase> = vec![
        ("fault-free", 4, 1, vec![]),
        ("1 silent", 4, 1, vec![(3, FaultKind::Silent)]),
        ("1 pull-apart", 4, 1, vec![(0, FaultKind::PullApart(0.0))]),
        ("1 spam", 4, 1, vec![(2, FaultKind::RoundSpam)]),
        (
            "2 byz (n=7)",
            7,
            2,
            vec![(0, FaultKind::PullApart(0.0)), (3, FaultKind::RoundSpam)],
        ),
    ];

    let mut rows = Vec::new();
    let mut specs = Vec::new();
    for (name, n, f, faults) in cases {
        let params = default_params(n, f);
        let mut spec = ScenarioSpec::new(params.clone())
            .seed(21)
            .t_end(RealTime::from_secs(t_end));
        for (id, kind) in faults {
            let kind = match kind {
                FaultKind::PullApart(_) => FaultKind::PullApart(params.beta / 2.0),
                k => k,
            };
            spec = spec.fault(ProcessId(id), kind);
        }
        rows.push((
            name,
            n,
            f,
            theory::adjustment_bound(&params),
            5.0 * params.eps,
        ));
        specs.push(spec);
    }

    let mut disk = DiskSweepCache::open_shared();
    let outcomes = SweepRequest::new()
        .cached(disk.cache())
        .run::<Maintenance>(specs);
    enforce_expected_misses(&disk);

    for (&(name, n, f, bound, five_eps), o) in rows.iter().zip(&outcomes) {
        table.row_owned(vec![
            name.to_string(),
            n.to_string(),
            f.to_string(),
            fs(o.max_abs_adjustment),
            fs(o.mean_abs_adjustment),
            fs(bound),
            fs(five_eps),
            o.adjustment_holds.to_string(),
        ]);
    }
    println!("{table}");
    eprintln!("{}", disk.status());
    if let Err(e) = disk.persist() {
        eprintln!("warning: could not persist sweep cache: {e}");
    }
    let _ = table.save_csv("target/exp_adjustment.csv");
    println!("(CSV saved to target/exp_adjustment.csv)");
}
