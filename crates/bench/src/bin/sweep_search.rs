//! Worst-case skew search CLI (`wl_harness::search`): hunt the
//! empirically worst adversary per scenario family and report the
//! margin to Theorem 16's γ bound.
//!
//! ```text
//! # Search the default Welch–Lynch maintenance families:
//! sweep_search
//!
//! # CI smoke: tiny bounded search with the ordering invariants enforced:
//! sweep_search --smoke --check
//!
//! # Reproduce a reported result exactly:
//! sweep_search --seed 0x5EA2C4
//! ```
//!
//! Every evaluation rides the shared disk cache
//! (`WL_SWEEP_CACHE_DIR`), so a repeated search replays from the store
//! without executing a single simulation — `WL_SWEEP_EXPECT_MISSES=0`
//! pins that in CI like any other cached experiment.
//!
//! `--check` turns the report into a machine-checkable assertion pair:
//! the found worst case must be **at least** the static fault-gallery
//! maximum (the search starts from the gallery's adversarial
//! equivalents, so falling below it means the equivalence broke) and
//! **at most** the theoretical bound γ (above it, either the theorem's
//! assumptions were violated or the simulator drifted).

use bench::{cli, default_params, enforce_expected_misses};
use wl_harness::{
    search_worst_case, DiskSweepCache, Maintenance, ScenarioSpec, SearchConfig, SearchReport,
};
use wl_time::RealTime;

fn usage() -> ! {
    eprintln!(
        "usage: sweep_search [--seed S] [--descent R] [--anneal N] [--refine K] \
         [--threads T] [--smoke] [--check] {common}",
        common = cli::COMMON_USAGE
    );
    std::process::exit(2);
}

/// The searched families: the paper's standard maintenance parameter
/// points (n, f), one seeded spec each. Small by design — each family
/// costs `starts + probes` simulations cold.
fn families() -> Vec<(String, ScenarioSpec)> {
    [(4usize, 1usize), (7, 2)]
        .into_iter()
        .map(|(n, f)| {
            let spec = ScenarioSpec::new(default_params(n, f))
                .seed(wl_harness::derive_seed(0xAD5E, (n * 8 + f) as u64))
                .t_end(RealTime::from_secs(6.0));
            (format!("maintenance n={n} f={f}"), spec)
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = SearchConfig::default();
    let mut check = false;
    let mut common = cli::CommonArgs::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if common.take(flag, &mut it) {
            continue;
        }
        match flag.as_str() {
            "--seed" => cfg.seed = parse_seed(it.next()),
            "--descent" => cfg.descent_rounds = cli::require("--descent", it.next()),
            "--anneal" => cfg.anneal_steps = cli::require("--anneal", it.next()),
            "--refine" => cfg.refine_top = cli::require("--refine", it.next()),
            "--threads" => cfg.threads = cli::require("--threads", it.next()),
            "--smoke" => {
                let seed = cfg.seed;
                cfg = SearchConfig::smoke();
                cfg.seed = seed;
            }
            "--check" => check = true,
            _ => usage(),
        }
    }

    let mut disk = DiskSweepCache::open_shared();
    let mut failures = 0usize;
    for (name, base) in families() {
        let report = search_worst_case::<Maintenance>(&base, &cfg, disk.cache());
        println!("== family: {name} ==");
        println!("{report}");
        if check {
            failures += usize::from(!enforce(&name, &report));
        }
    }
    enforce_expected_misses(&disk);
    eprintln!("{}", disk.status());
    if let Err(e) = disk.persist() {
        eprintln!("warning: could not persist sweep cache: {e}");
    }
    if failures > 0 {
        eprintln!("sweep_search --check: {failures} family check(s) failed");
        std::process::exit(1);
    }
}

/// The `--check` invariants for one family; prints and returns rather
/// than exiting so every family is reported before the process fails.
fn enforce(name: &str, report: &SearchReport) -> bool {
    let mut ok = true;
    if report.best_skew < report.gallery_max {
        eprintln!(
            "check failed [{name}]: found worst case {:.3e} below static gallery max {:.3e}",
            report.best_skew, report.gallery_max
        );
        ok = false;
    }
    if report.best_skew > report.bound {
        eprintln!(
            "check failed [{name}]: found worst case {:.3e} exceeds theoretical bound {:.3e}",
            report.best_skew, report.bound
        );
        ok = false;
    }
    if ok {
        println!(
            "check ok: gallery {:.3e} <= found {:.3e} <= gamma {:.3e}",
            report.gallery_max, report.best_skew, report.bound
        );
    }
    ok
}

/// Seeds accept decimal or `0x` hex, matching how reports echo them.
fn parse_seed(v: Option<&String>) -> u64 {
    let Some(raw) = v else { usage() };
    let parsed = raw
        .strip_prefix("0x")
        .or_else(|| raw.strip_prefix("0X"))
        .map_or_else(|| raw.parse().ok(), |hex| u64::from_str_radix(hex, 16).ok());
    parsed.unwrap_or_else(|| {
        eprintln!("--seed: cannot parse {raw:?}");
        std::process::exit(2);
    })
}
